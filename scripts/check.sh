#!/usr/bin/env bash
# Full verification matrix for the Chronos tree.
#
#   scripts/check.sh             # everything below
#   scripts/check.sh --quick     # lint + plain build + ctest only
#   scripts/check.sh --chaos     # chaos leg only (fault tests under ASan)
#   scripts/check.sh --crash     # crash leg only (kill-9 recovery, ASan)
#   scripts/check.sh --trace     # trace leg only (e2e trace + Chrome export)
#
# Legs (each can be skipped by the environment lacking the tool):
#   1. chronos_lint self-test + tree lint          (scripts/chronos_lint.py)
#   2. plain build (-Wall -Wextra -Werror) + ctest (build/)
#   3. ASan+UBSan build + ctest                    (build-asan/)
#   4. TSan build + concurrency-focused tests      (build-tsan/)
#   5. seeded chaos suite under ASan, 3 fixed seeds (build-asan/)
#   5b. kill-9 crash-recovery suite under ASan, 3 fixed seeds (build-asan/)
#   5c. trace e2e (forked server + agent) and Chrome-export validation
#   6. clang thread-safety build, if clang++ found (build-clang/, compile only)
#   7. clang-tidy over src/, if clang-tidy found
#
# The sanitizer legs rerun the full suite; the TSan leg restricts ctest to
# the concurrency/network/store suites to keep wall-clock sane (TSan is
# ~10-20x) while still covering every annotated component.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
CHAOS_ONLY=0
CRASH_ONLY=0
TRACE_ONLY=0
if [ "${1:-}" = "--quick" ]; then
  QUICK=1
elif [ "${1:-}" = "--chaos" ]; then
  CHAOS_ONLY=1
elif [ "${1:-}" = "--crash" ]; then
  CRASH_ONLY=1
elif [ "${1:-}" = "--trace" ]; then
  TRACE_ONLY=1
fi

JOBS="$(nproc)"
FAILED=()

note() { printf '\n=== %s ===\n' "$*"; }

run_leg() {
  local name="$1"
  shift
  note "${name}"
  if "$@"; then
    echo "--- ${name}: OK"
  else
    echo "--- ${name}: FAILED"
    FAILED+=("${name}")
  fi
}

lint_leg() {
  python3 scripts/chronos_lint.py --self-test &&
    python3 scripts/chronos_lint.py
}

plain_leg() {
  cmake -B build -S . >/dev/null &&
    cmake --build build -j "${JOBS}" &&
    (cd build && ctest --output-on-failure -j "${JOBS}")
}

asan_leg() {
  cmake -B build-asan -S . -DCHRONOS_SANITIZE=ON >/dev/null &&
    cmake --build build-asan -j "${JOBS}" &&
    (cd build-asan && ctest --output-on-failure -j "${JOBS}")
}

tsan_leg() {
  cmake -B build-tsan -S . -DCHRONOS_TSAN=ON >/dev/null &&
    cmake --build build-tsan -j "${JOBS}" \
      --target concurrency_test control_test store_test net_test \
               mokkadb_test obs_test common_test agent_test \
               fault_injection_test &&
    (cd build-tsan && ctest --output-on-failure -j "${JOBS}" \
       -R 'Concurrency|Control|Store|Net|Mokka|Wire|Obs|Metrics|Thread|Latch|Queue|Logger|Mutex|CondVar|Agent|Wal|Table|Heartbeat|Engine|FaultInjection|Span|Trace')
}

chaos_leg() {
  # The fault-injection suite under ASan, once per fixed seed. Each seed must
  # pass standalone: the e2e chaos test is deterministic per seed, so a
  # failure here reproduces with the same CHRONOS_CHAOS_SEED value.
  cmake -B build-asan -S . -DCHRONOS_SANITIZE=ON >/dev/null &&
    cmake --build build-asan -j "${JOBS}" --target fault_injection_test &&
    for seed in 7 21 1337; do
      echo "--- chaos seed ${seed}"
      (cd build-asan &&
         CHRONOS_CHAOS_SEED="${seed}" ctest --output-on-failure \
           -R 'FaultInjection') || return 1
    done
}

crash_leg() {
  # The kill-9 crash-recovery harness under ASan, once per fixed seed. The
  # harness forks the real control-server binary and _exit(137)s it at
  # injected seams; each seed varies the workload shape but is fully
  # deterministic, so a failure reproduces with the same CHRONOS_CRASH_SEED.
  cmake -B build-asan -S . -DCHRONOS_SANITIZE=ON >/dev/null &&
    cmake --build build-asan -j "${JOBS}" --target crash_recovery_test &&
    for seed in 7 21 1337; do
      echo "--- crash seed ${seed}"
      (cd build-asan &&
         CHRONOS_CRASH_SEED="${seed}" ctest --output-on-failure \
           -R 'CrashRecovery') || return 1
    done
}

trace_leg() {
  # The distributed-trace e2e suite (forked control server + in-process
  # agent), plus an independent re-validation of the Chrome trace the test
  # exported: a second parser asserting the event schema chrome://tracing
  # and Perfetto require, so the export format can't silently drift.
  local export_file="build/chrome-trace-smoke.json"
  rm -f "${export_file}"
  cmake -B build -S . >/dev/null &&
    cmake --build build -j "${JOBS}" --target trace_e2e_test &&
    (cd build && CHRONOS_TRACE_EXPORT_PATH="${PWD}/chrome-trace-smoke.json" \
       ctest --output-on-failure -R 'TraceE2E') &&
    python3 - "${export_file}" <<'PYEOF'
import json
import sys

with open(sys.argv[1]) as handle:
    trace = json.load(handle)
assert trace.get("displayTimeUnit") == "ms", "missing displayTimeUnit"
complete = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
assert complete, "no complete events in export"
for event in complete:
    for key in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
        assert key in event, "event missing %s: %r" % (key, event)
    assert event["dur"] >= 0, "negative duration: %r" % event
lanes = sorted({e["tid"] for e in complete})
assert lanes == [1, 2], "expected control+agent lanes, got %r" % lanes
print("chrome export OK: %d spans across lanes %r" % (len(complete), lanes))
PYEOF
}

clang_build_leg() {
  # Thread-safety analysis is Clang-only; this leg is where the
  # CHRONOS_GUARDED_BY/REQUIRES annotations become compile errors.
  cmake -B build-clang -S . \
    -DCMAKE_CXX_COMPILER=clang++ >/dev/null &&
    cmake --build build-clang -j "${JOBS}"
}

tidy_leg() {
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  # shellcheck disable=SC2046
  clang-tidy -p build --quiet $(git ls-files 'src/*.cc')
}

if [ "${CHAOS_ONLY}" = "1" ]; then
  run_leg "chaos (fault suite, ASan, 3 seeds)" chaos_leg
  note "summary"
  if [ "${#FAILED[@]}" -gt 0 ]; then
    echo "FAILED legs: ${FAILED[*]}"
    exit 1
  fi
  echo "all legs passed"
  exit 0
fi

if [ "${CRASH_ONLY}" = "1" ]; then
  run_leg "crash (kill-9 recovery, ASan, 3 seeds)" crash_leg
  note "summary"
  if [ "${#FAILED[@]}" -gt 0 ]; then
    echo "FAILED legs: ${FAILED[*]}"
    exit 1
  fi
  echo "all legs passed"
  exit 0
fi

if [ "${TRACE_ONLY}" = "1" ]; then
  run_leg "trace (e2e + chrome export)" trace_leg
  note "summary"
  if [ "${#FAILED[@]}" -gt 0 ]; then
    echo "FAILED legs: ${FAILED[*]}"
    exit 1
  fi
  echo "all legs passed"
  exit 0
fi

run_leg "lint" lint_leg
run_leg "build+ctest (plain, -Werror)" plain_leg

if [ "${QUICK}" = "0" ]; then
  run_leg "build+ctest (ASan+UBSan)" asan_leg
  run_leg "build+ctest (TSan, concurrency suites)" tsan_leg
  run_leg "chaos (fault suite, ASan, 3 seeds)" chaos_leg
  run_leg "crash (kill-9 recovery, ASan, 3 seeds)" crash_leg
  run_leg "trace (e2e + chrome export)" trace_leg
  if command -v clang++ >/dev/null 2>&1; then
    run_leg "clang -Wthread-safety build" clang_build_leg
  else
    note "clang -Wthread-safety build"
    echo "--- skipped: clang++ not on PATH (annotations are no-ops on GCC)"
  fi
  if command -v clang-tidy >/dev/null 2>&1; then
    run_leg "clang-tidy" tidy_leg
  else
    note "clang-tidy"
    echo "--- skipped: clang-tidy not on PATH"
  fi
fi

note "summary"
if [ "${#FAILED[@]}" -gt 0 ]; then
  echo "FAILED legs: ${FAILED[*]}"
  exit 1
fi
echo "all legs passed"
