#!/usr/bin/env python3
"""Repo-specific lint for the Chronos C++ tree.

Rules (each can be suppressed on a line with `// chronos-lint: allow`):

  raw-mutex        No raw <mutex>/<shared_mutex> primitives outside
                   src/common/ — use chronos::Mutex / MutexLock /
                   SharedMutex / CondVar (src/common/mutex.h) so Clang's
                   -Wthread-safety can check lock discipline.
  locked-io        No logging / stdio / HTTP calls inside a function whose
                   signature carries CHRONOS_REQUIRES(...) — those bodies run
                   with a lock held, and I/O under a lock is the repo's
                   canonical latency bug.
  include-guard    Header guards must be CHRONOS_<PATH>_H_ derived from the
                   path under src/ (tests/ and bench/ headers are exempt).
  dropped-status   A Status/StatusOr-returning call used as a bare statement
                   drops the error. `.ok();` drops it too (calling .ok() and
                   ignoring the answer). Use CHRONOS_RETURN_IF_ERROR, check
                   the value, or make the drop explicit with .IgnoreError().
  include-order    #include blocks must be internally sorted (matching
                   clang-format's style), so diffs stay mechanical.
  raw-sleep        No direct SystemClock::Get()->SleepMs(...) in src/ —
                   retry/poll/backoff sleeps must go through an injected
                   Clock* (see common/retry.h RetryPolicy/Backoff) so
                   SimulatedClock keeps tests deterministic and wall-clock
                   free. clock.cc (the implementation) and src/tools/
                   (interactive CLIs) are exempt.
  raw-steady-clock No std::chrono::steady_clock::now() timing in src/ —
                   measure durations with an obs::Span (records, exports,
                   and slow-logs in one place) or Clock::MonotonicNanos
                   through an injected Clock*. Sanctioned files: the clock
                   implementation itself, CondVar deadline arithmetic in
                   mutex.h/threading.h/heartbeat_monitor.cc, and uuid.cc's
                   seed.

Usage:
  scripts/chronos_lint.py [--root DIR] [paths...]   lint tree or given files
  scripts/chronos_lint.py --self-test               run embedded lint tests
"""

import argparse
import pathlib
import re
import sys

SOURCE_DIRS = ("src", "tests", "bench", "examples")
CPP_SUFFIXES = {".cc", ".h"}
SUPPRESS = "chronos-lint: allow"

# --- Rule: raw-mutex -------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|lock_guard|"
    r"unique_lock|shared_lock|scoped_lock|condition_variable(_any)?)\b"
)
# The wrappers themselves and the threading utilities may touch <mutex>;
# std::once_flag/call_once stay allowed everywhere (no annotation story).
RAW_MUTEX_EXEMPT = ("src/common/mutex.h",)


def check_raw_mutex(path, rel, lines, errors):
    if rel in RAW_MUTEX_EXEMPT:
        return
    for i, line in enumerate(lines, 1):
        if SUPPRESS in line:
            continue
        m = RAW_MUTEX_RE.search(strip_comment(line))
        if m:
            errors.append(
                (rel, i, "raw-mutex",
                 f"use chronos locking wrappers instead of std::{m.group(1)} "
                 "(see src/common/mutex.h)"))


# --- Rule: locked-io -------------------------------------------------------

REQUIRES_RE = re.compile(r"CHRONOS_REQUIRES(_SHARED)?\s*\(")
# Narrow token list: calls that do I/O or re-enter other subsystems. WAL and
# snapshot writes under TableStore's mutex are the storage layer's contract,
# so file primitives (fopen/fwrite/WriteFile) are deliberately NOT listed.
LOCKED_IO_RE = re.compile(
    r"\b(CHRONOS_LOG|printf|fprintf|puts|std::cout|std::cerr|"
    r"HttpGet|HttpPost|SendRequest|WriteLine|ReadLine)\b"
)


def check_locked_io(path, rel, lines, errors):
    """Flags I/O tokens inside function bodies annotated CHRONOS_REQUIRES.

    Heuristic body tracker: from a line whose signature carries
    CHRONOS_REQUIRES, follow brace depth until the body closes.
    """
    depth = 0
    in_requires_body = False
    body_start = 0
    for i, line in enumerate(lines, 1):
        code = strip_comment(line)
        if not in_requires_body and REQUIRES_RE.search(code):
            # Only function definitions matter; declarations end with ';'
            # before any '{' is seen. Scan forward on this line first.
            pass_depth = code.count("{") - code.count("}")
            if "{" in code:
                in_requires_body = True
                depth = pass_depth
                body_start = i
                if depth <= 0:
                    in_requires_body = False
                continue
            # Signature continues on following lines; peek until ';' or '{'.
            j = i
            while j < len(lines):
                nxt = strip_comment(lines[j])
                if ";" in nxt:
                    break
                if "{" in nxt:
                    in_requires_body = True
                    depth = nxt.count("{") - nxt.count("}")
                    body_start = j + 1
                    break
                j += 1
            continue
        if in_requires_body:
            if SUPPRESS not in line:
                m = LOCKED_IO_RE.search(code)
                if m:
                    errors.append(
                        (rel, i, "locked-io",
                         f"{m.group(1)} inside a CHRONOS_REQUIRES body "
                         f"(function at line {body_start}) runs under a "
                         "lock; copy state out and do I/O after unlocking"))
            depth += code.count("{") - code.count("}")
            if depth <= 0:
                in_requires_body = False


# --- Rule: raw-sleep -------------------------------------------------------

RAW_SLEEP_RE = re.compile(r"SystemClock::Get\(\)\s*->\s*SleepMs")
# clock.cc/h implement the clock itself; tools/ are interactive CLIs whose
# waits are real by nature (e.g. `chronosctl evaluation watch`).
RAW_SLEEP_EXEMPT_PREFIXES = ("src/common/clock.", "src/tools/")


def check_raw_sleep(path, rel, lines, errors):
    if any(rel.startswith(p) for p in RAW_SLEEP_EXEMPT_PREFIXES):
        return
    for i, line in enumerate(lines, 1):
        if SUPPRESS in line:
            continue
        if RAW_SLEEP_RE.search(strip_comment(line)):
            errors.append(
                (rel, i, "raw-sleep",
                 "direct SystemClock sleep; take a Clock* (options/ctor) "
                 "and use RetryPolicy/Backoff from common/retry.h so "
                 "SimulatedClock tests stay deterministic"))


# --- Rule: raw-steady-clock ------------------------------------------------

RAW_STEADY_CLOCK_RE = re.compile(r"std::chrono::steady_clock::now\s*\(")
# clock.cc implements MonotonicNanos; mutex.h / threading.h /
# heartbeat_monitor.cc compute CondVar wait deadlines (absolute time points,
# not measurements); uuid.cc seeds its RNG from the tick counter.
RAW_STEADY_CLOCK_EXEMPT = (
    "src/common/clock.cc",
    "src/common/mutex.h",
    "src/common/threading.h",
    "src/common/uuid.cc",
    "src/control/heartbeat_monitor.cc",
)


def check_raw_steady_clock(path, rel, lines, errors):
    if rel in RAW_STEADY_CLOCK_EXEMPT:
        return
    for i, line in enumerate(lines, 1):
        if SUPPRESS in line:
            continue
        if RAW_STEADY_CLOCK_RE.search(strip_comment(line)):
            errors.append(
                (rel, i, "raw-steady-clock",
                 "raw steady_clock::now() timing; wrap the region in an "
                 "obs::Span (src/obs/span.h) or read an injected Clock*'s "
                 "MonotonicNanos so durations are traced and testable"))


# --- Rule: raw-exit --------------------------------------------------------

RAW_EXIT_RE = re.compile(
    r"(?<![\w.:])(?:(?:std)?::\s*)?"
    r"(?:signal|sigaction|exit|_exit|quick_exit|abort)\s*\(")
# Process-lifecycle primitives must route through the sanctioned seams so
# every exit path is crash-consistent and testable: failpoint.cc implements
# the crash mode, lifecycle.cc owns the SIGTERM/SIGINT self-pipe, and the
# server main is the process entry point.
RAW_EXIT_EXEMPT = (
    "src/fault/failpoint.cc",
    "src/control/lifecycle.cc",
    "src/tools/control_server_main.cc",
)


def check_raw_exit(path, rel, lines, errors):
    if rel in RAW_EXIT_EXEMPT:
        return
    for i, line in enumerate(lines, 1):
        if SUPPRESS in line:
            continue
        if RAW_EXIT_RE.search(strip_comment(line)):
            errors.append(
                (rel, i, "raw-exit",
                 "raw signal()/exit()-family call; process lifecycle must "
                 "go through control/lifecycle.h (shutdown) or the fault "
                 "registry's crash mode (tests) so shutdown stays "
                 "crash-consistent"))


# --- Rule: include-guard ---------------------------------------------------


def expected_guard(rel):
    # src/common/mutex.h -> CHRONOS_COMMON_MUTEX_H_
    parts = pathlib.PurePosixPath(rel).parts
    if parts[0] != "src":
        return None  # Only src/ headers carry the canonical prefix.
    stem = "_".join(parts[1:])
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem).upper()
    return f"CHRONOS_{stem}_" if stem.endswith("_H") else f"CHRONOS_{stem}_H_"


def check_include_guard(path, rel, lines, errors):
    if not rel.endswith(".h"):
        return
    want = expected_guard(rel)
    if want is None:
        return
    text = "\n".join(lines)
    m = re.search(r"#ifndef\s+(\S+)\s*\n#define\s+(\S+)", text)
    if not m:
        errors.append((rel, 1, "include-guard",
                       f"missing include guard (expected {want})"))
        return
    if m.group(1) != want or m.group(2) != want:
        errors.append((rel, 1, "include-guard",
                       f"guard {m.group(1)} should be {want}"))


# --- Rule: dropped-status --------------------------------------------------

# Built once per run from header declarations. A name counts only if EVERY
# declaration of it returns Status/StatusOr — names that something else also
# declares with a different return type (Append, Get, ...) are ambiguous to
# a text-level lint and are skipped rather than guessed at.
STATUS_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?Status(?:Or<[^;=]*>)?\s+(\w+)\s*\(")
OTHER_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?"
    r"(?!Status\b|StatusOr\b|return\b|if\b|while\b|for\b|else\b|case\b)"
    r"[\w:]+(?:<[^;={}]*>)?[&*\s]+(\w+)\s*\(")

# Obvious non-dropping contexts on the same line.
DROP_OK_RE = re.compile(r"\.ok\(\)\s*;\s*(//.*)?$")

def final_call_name(stmt):
    """For a single-line call statement ("a->b(x)->c(y);"), returns the name
    of the LAST top-level call in the chain ("c") — the one whose return
    value the statement discards. None if the line is not call-shaped or
    contains a top-level '=' (an assignment consumes the value)."""
    if not stmt.endswith(";") or not re.match(r"^[A-Za-z_(]", stmt):
        return None
    depth = 0
    current = ""
    word_before = None  # Identifier separated from `current` by whitespace.
    last_name = None
    prev = ""
    for ch in stmt:
        if ch == "(":
            if depth == 0 and current:
                if word_before:
                    # `Type Name(` — a declaration, not a call statement.
                    return None
                last_name = current
            depth += 1
            current = ""
            word_before = None
        elif ch == ")":
            depth -= 1
            current = ""
            word_before = None
        elif ch.isalnum() or ch == "_":
            if depth == 0:
                current += ch
        else:
            if depth == 0:
                if ch == "=":
                    return None
                if ch in " \t":
                    if current:
                        word_before = current
                elif (ch in "*&" or (ch == ">" and prev != "-")):
                    # A type just ended: `StatusOr<T>`, `Json*`, `Json&` —
                    # whatever follows is a declared name, not a call.
                    word_before = "<type>"
                else:
                    word_before = None
                current = ""
        prev = ch
    return last_name


def collect_status_functions(root):
    status_names = set()
    other_names = set()
    for d in SOURCE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in base.rglob("*"):
            if path.suffix not in CPP_SUFFIXES:
                continue
            try:
                for line in path.read_text(errors="replace").splitlines():
                    m = STATUS_DECL_RE.match(line)
                    if m:
                        status_names.add(m.group(1))
                        continue
                    m = OTHER_DECL_RE.match(line)
                    if m:
                        other_names.add(m.group(1))
            except OSError:
                continue
    names = status_names - other_names
    # Never treat constructors/factories named like types as droppable.
    names.discard("Ok")
    return names


def at_statement_start(lines, index):
    """True when lines[index] (0-based) begins a new statement, i.e. is not
    a continuation of a multi-line call like CHRONOS_ASSIGN_OR_RETURN."""
    for j in range(index - 1, -1, -1):
        prev = strip_comment(lines[j]).strip()
        if not prev:
            continue
        if prev.startswith("#"):
            return not prev.endswith("\\")
        return prev.endswith((";", "{", "}", ":"))
    return True


def check_dropped_status(path, rel, lines, errors, status_functions):
    for i, line in enumerate(lines, 1):
        if SUPPRESS in line:
            continue
        code = strip_comment(line)
        stripped = code.strip()
        if not at_statement_start(lines, i - 1):
            continue
        # Case 1: `expr.ok();` as a full statement — the classic silent drop
        # that [[nodiscard]] cannot catch (calling .ok() IS a use).
        if DROP_OK_RE.search(code) and not re.search(
                r"\b(if|while|for|return|assert|EXPECT|ASSERT|CHECK)\b",
                code) and "=" not in code.split(".ok()")[0].split("(")[0]:
            errors.append(
                (rel, i, "dropped-status",
                 "`.ok();` discards the status; use IgnoreError() for an "
                 "intentional drop or actually handle the failure"))
            continue
        # Case 2: bare call statement `obj->Foo(...);` where the FINAL call
        # in the chain returns Status and nothing consumes it.
        name = final_call_name(stripped)
        if (name and name in status_functions
                and not stripped.startswith(("return ", "if ", "while ",
                                             "for ", "case ", "delete ",
                                             "new ", "(void)"))
                and ".IgnoreError()" not in stripped):
            errors.append(
                (rel, i, "dropped-status",
                 f"return value of {name} (a Status) is dropped; "
                 "propagate it, check it, or append .IgnoreError()"))


# --- Rule: include-order ---------------------------------------------------


def check_include_order(path, rel, lines, errors):
    block = []
    block_start = 0
    for i, line in enumerate(lines + [""], 1):
        m = re.match(r'#include\s+([<"][^">]+[">])', line)
        if m and SUPPRESS not in line:
            if not block:
                block_start = i
            block.append((i, m.group(1)))
        else:
            if len(block) > 1:
                names = [inc for _, inc in block]
                if names != sorted(names):
                    errors.append(
                        (rel, block_start, "include-order",
                         "#include block is not sorted"))
            block = []


# --- Driver ----------------------------------------------------------------


def strip_comment(line):
    # Good enough for lint purposes; string literals with // are rare here.
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def lint_file(root, path, status_functions):
    rel = path.relative_to(root).as_posix()
    try:
        lines = path.read_text(errors="replace").splitlines()
    except OSError as e:
        return [(rel, 0, "io", str(e))]
    errors = []
    if rel.startswith("src/"):
        check_raw_mutex(path, rel, lines, errors)
        check_raw_sleep(path, rel, lines, errors)
        check_raw_steady_clock(path, rel, lines, errors)
        check_raw_exit(path, rel, lines, errors)
    check_locked_io(path, rel, lines, errors)
    check_include_guard(path, rel, lines, errors)
    check_dropped_status(path, rel, lines, errors, status_functions)
    check_include_order(path, rel, lines, errors)
    return errors


def iter_files(root, paths):
    if paths:
        for p in paths:
            path = pathlib.Path(p).resolve()
            if path.suffix in CPP_SUFFIXES:
                yield path
        return
    for d in SOURCE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CPP_SUFFIXES:
                yield path


def run_lint(root, paths):
    status_functions = collect_status_functions(root)
    failures = []
    count = 0
    for path in iter_files(root, paths):
        count += 1
        failures.extend(lint_file(root, path, status_functions))
    for rel, line, rule, msg in failures:
        print(f"{rel}:{line}: [{rule}] {msg}")
    print(f"chronos_lint: {count} files, {len(failures)} finding(s)")
    return 1 if failures else 0


# --- Self test -------------------------------------------------------------

BAD_RAW_MUTEX = """\
#ifndef CHRONOS_X_Y_H_
#define CHRONOS_X_Y_H_
#include <mutex>
namespace chronos { struct S { std::mutex mu_; }; }
#endif  // CHRONOS_X_Y_H_
"""

BAD_LOCKED_IO = """\
#include "common/mutex.h"
namespace chronos {
void Thing::RefreshLocked() CHRONOS_REQUIRES(mu_) {
  CHRONOS_LOG(kInfo, "thing") << "refreshing";
  counter_++;
}
}  // namespace chronos
"""

BAD_GUARD = """\
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H
#endif
"""

BAD_DROPPED = """\
#include "common/status.h"
void f(Repo* repo) {
  repo->Insert(thing);
  repo->Update(thing).ok();
  CHRONOS_RETURN_IF_ERROR(repo->Insert(thing));
  repo->Delete(thing).IgnoreError();
}
"""

BAD_INCLUDE_ORDER = """\
#include <vector>
#include <string>
"""

BAD_RAW_SLEEP = """\
#include "common/clock.h"
namespace chronos {
void PollLoop() {
  while (true) {
    SystemClock::Get()->SleepMs(100);
  }
}
}  // namespace chronos
"""

BAD_STEADY_CLOCK = """\
#include <chrono>
namespace chronos {
void Measure() {
  auto start = std::chrono::steady_clock::now();
  DoWork();
  auto elapsed = std::chrono::steady_clock::now() - start;
  (void)elapsed;
}
}  // namespace chronos
"""

BAD_RAW_EXIT = """\
#include <cstdlib>
namespace chronos {
void Die() {
  ::_exit(1);
}
}  // namespace chronos
"""

GOOD = """\
#ifndef CHRONOS_X_GOOD_H_
#define CHRONOS_X_GOOD_H_
#include <string>
#include <vector>

#include "common/mutex.h"
namespace chronos {
class Thing {
 public:
  void Tick();
 private:
  void TickLocked() CHRONOS_REQUIRES(mu_);
  Mutex mu_;
  int counter_ CHRONOS_GUARDED_BY(mu_) = 0;
};
}  // namespace chronos
#endif  // CHRONOS_X_GOOD_H_
"""


def self_test():
    import tempfile

    cases = [
        # (filename under src/, contents, rule expected at least once)
        ("src/x/y.h", BAD_RAW_MUTEX, "raw-mutex"),
        ("src/x/thing.cc", BAD_LOCKED_IO, "locked-io"),
        ("src/x/guard.h", BAD_GUARD, "include-guard"),
        ("src/x/drop.cc", BAD_DROPPED, "dropped-status"),
        ("src/x/order.cc", BAD_INCLUDE_ORDER, "include-order"),
        ("src/x/sleepy.cc", BAD_RAW_SLEEP, "raw-sleep"),
        # The same sleep under src/tools/ is allowlisted (interactive CLI).
        ("src/tools/watcher.cc", BAD_RAW_SLEEP, None),
        ("src/x/dying.cc", BAD_RAW_EXIT, "raw-exit"),
        # The same call in a sanctioned lifecycle file is allowlisted.
        ("src/control/lifecycle.cc", BAD_RAW_EXIT, None),
        ("src/x/timing.cc", BAD_STEADY_CLOCK, "raw-steady-clock"),
        # The clock implementation itself may read the raw tick source.
        ("src/common/clock.cc", BAD_STEADY_CLOCK, None),
        ("src/x/good.h", GOOD, None),
    ]
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        # A header declaring Status-returning methods feeds dropped-status.
        decls = root / "src" / "x" / "repo.h"
        decls.parent.mkdir(parents=True)
        decls.write_text(
            "#ifndef CHRONOS_X_REPO_H_\n#define CHRONOS_X_REPO_H_\n"
            "struct Repo {\n  Status Insert(int);\n  Status Update(int);\n"
            "  Status Delete(int);\n};\n#endif  // CHRONOS_X_REPO_H_\n")
        status_functions = collect_status_functions(root)
        for name, contents, want_rule in cases:
            path = root / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(contents)
            found = lint_file(root, path, status_functions)
            rules = {rule for _, _, rule, _ in found}
            if want_rule is None:
                if found:
                    print(f"SELF-TEST FAIL: {name} expected clean, got "
                          f"{found}")
                    failures += 1
            elif want_rule not in rules:
                print(f"SELF-TEST FAIL: {name} expected [{want_rule}], got "
                      f"{sorted(rules) or 'no findings'}")
                failures += 1
        # dropped-status must not flag the checked/suppressed lines.
        drop_findings = [
            f for f in lint_file(root, root / "src/x/drop.cc",
                                 status_functions)
            if f[2] == "dropped-status"
        ]
        if len(drop_findings) != 2:  # Insert bare + .ok(); drop, not others.
            print(f"SELF-TEST FAIL: drop.cc expected exactly 2 "
                  f"dropped-status findings, got {drop_findings}")
            failures += 1
    if failures:
        print(f"chronos_lint self-test: {failures} failure(s)")
        return 1
    print("chronos_lint self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the embedded known-bad snippet tests")
    parser.add_argument("paths", nargs="*",
                        help="specific files to lint (default: whole tree)")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    root = pathlib.Path(
        args.root if args.root else pathlib.Path(__file__).resolve().parent /
        "..").resolve()
    sys.exit(run_lint(root, args.paths))


if __name__ == "__main__":
    main()
