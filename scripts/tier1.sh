#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
#   scripts/tier1.sh             # plain build
#   CHRONOS_SANITIZE=ON scripts/tier1.sh   # ASan+UBSan build (build-asan/)
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${CHRONOS_SANITIZE:-OFF}"
BUILD_DIR="build"
if [ "${SANITIZE}" = "ON" ]; then
  BUILD_DIR="build-asan"
fi

cmake -B "${BUILD_DIR}" -S . -DCHRONOS_SANITIZE="${SANITIZE}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"
cd "${BUILD_DIR}"
ctest --output-on-failure -j "$(nproc)"
