// A full parameter study: every parameter type the Chronos UI offers
// (checkbox, interval, ratio, boolean, value), repeated evaluations for
// variance control, and the complete analysis/archiving path — the
// "systematic assessment of a complete evaluation space" from §1.
//
// The SuE is MokkaDB again, but the study axes differ from the demo:
// compression on/off (boolean) x padded vs tight records (value) under a
// swept operation ratio, 3 repetitions per point.
//
// Build & run:  ./build/examples/parameter_study

#include <cstdio>

#include "agent/agent.h"
#include "clients/mokka_client.h"
#include "clients/mokka_provisioner.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "control/archiver.h"
#include "control/rest_api.h"

using namespace chronos;

namespace {

model::ParameterDef Def(const std::string& name, model::ParameterType type) {
  model::ParameterDef def;
  def.name = name;
  def.type = type;
  def.min = 0;
  def.max = 100000000;
  return def;
}

model::ParameterSetting Fixed(const std::string& name, json::Json value) {
  model::ParameterSetting setting;
  setting.name = name;
  setting.fixed = std::move(value);
  return setting;
}

model::ParameterSetting Swept(const std::string& name,
                              std::vector<json::Json> values) {
  model::ParameterSetting setting;
  setting.name = name;
  setting.sweep = std::move(values);
  return setting;
}

}  // namespace

int main() {
  Logger::Get()->set_min_level(LogLevel::kWarning);

  file::TempDir workdir("chronos-study");
  auto db = model::MetaDb::Open(workdir.path() + "/meta");
  control::ControlService service(db->get());
  auto admin = service.CreateUser("admin", "secret", model::UserRole::kAdmin);
  auto server = control::ControlServer::Start(&service, 0);

  // The system declares one parameter of every UI type.
  model::System system;
  system.name = "MokkaDB";
  system.parameters.push_back(Def("engine", model::ParameterType::kCheckbox));
  system.parameters.back().options = {json::Json("wiredtiger"),
                                      json::Json("mmapv1")};
  system.parameters.push_back(Def("threads", model::ParameterType::kInterval));
  system.parameters.push_back(Def("records", model::ParameterType::kInterval));
  system.parameters.push_back(
      Def("operations", model::ParameterType::kInterval));
  system.parameters.push_back(Def("ratio", model::ParameterType::kRatio));
  system.parameters.push_back(
      Def("distribution", model::ParameterType::kValue));
  auto registered = service.RegisterSystem(system);

  clients::LocalMokkaProvisioner provisioner;
  control::ProvisioningManager provisioning(&service);
  provisioning.RegisterProvisioner(&provisioner).ok();
  auto deployment = provisioning.ProvisionDeployment(
      "local-mokka", registered->id, "study-node", json::Json());

  auto project =
      service.CreateProject("parameter study", "all parameter types",
                            admin->id);
  auto experiment = service.CreateExperiment(
      project->id, admin->id, registered->id, "mix x distribution", "",
      {Swept("ratio", {json::Json("read:95,update:5"),
                       json::Json("read:50,update:50"),
                       json::Json("read:50,rmw:50")}),
       Swept("distribution",
             {json::Json("uniform"), json::Json("zipfian")}),
       Fixed("engine", json::Json("wiredtiger")),
       Fixed("threads", json::Json(2)),
       Fixed("records", json::Json(300)),
       Fixed("operations", json::Json(400))});

  // Three repetitions per point — the analysis averages them.
  auto evaluation =
      service.CreateEvaluation(experiment->id, "study", /*repetitions=*/3);
  std::printf("parameter space: 3 ratios x 2 distributions x 3 repetitions "
              "= %zu jobs\n",
              service.ListJobs(evaluation->id).size());

  agent::AgentOptions options;
  options.control_port = (*server)->port();
  options.username = "admin";
  options.password = "secret";
  options.deployment_id = deployment->id;
  options.poll_interval_ms = 30;
  agent::ChronosAgent agent(options);
  agent.SetHandler(
      clients::MakeMokkaEvaluationHandler(deployment->endpoint));
  if (!agent.Connect().ok()) return 1;
  if (!agent.Run(/*max_jobs=*/18).ok()) return 1;

  // Build an ad-hoc diagram over the study axes.
  auto results = service.CollectResults(evaluation->id);
  model::DiagramDef diagram;
  diagram.name = "Throughput by mix and distribution (3-rep mean)";
  diagram.type = model::DiagramType::kBar;
  diagram.x_field = "ratio";
  diagram.y_field = "throughput";
  diagram.group_by = "distribution";
  auto built = analysis::BuildDiagram(diagram, *results);
  if (built.ok()) {
    std::printf("\n%s\n", built->ToTable().c_str());
  }

  // Archive the whole study — settings and results together (req. iv).
  auto archive_bytes =
      control::BuildProjectArchive(&service, project->id, admin->id);
  if (archive_bytes.ok()) {
    std::string path = workdir.path() + "/study.zip";
    file::WriteFile(path, *archive_bytes).ok();
    std::printf("archived study: %zu bytes (%s)\n", archive_bytes->size(),
                path.c_str());
  }
  provisioning.TeardownAll();
  (*server)->Stop();
  return 0;
}
