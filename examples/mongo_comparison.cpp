// The paper's demonstration (§3): comparative evaluation of two storage
// engines of a document database across client thread counts, fully
// automated by Chronos.
//
// Two MokkaDB deployments stand in for the two MongoDB instances
// (wiredTiger vs mmapv1). Chronos expands the engine x threads space into
// jobs, two agents execute them in parallel, and the result analysis
// produces the line diagram of Fig. 3d as a console table, a CSV, and a
// standalone HTML report with SVG charts.
//
// Build & run:  ./build/examples/mongo_comparison [report.html]

#include <cstdio>

#include "agent/agent.h"
#include "clients/mokka_client.h"
#include "clients/mokka_provisioner.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "control/rest_api.h"
#include "sue/mokkadb/wire.h"

using namespace chronos;

int main(int argc, char** argv) {
  Logger::Get()->set_min_level(LogLevel::kWarning);
  std::string report_path = argc > 1 ? argv[1] : "mongo_comparison_report.html";

  // --- Chronos Control ---
  file::TempDir workdir("chronos-mongo-demo");
  auto db = model::MetaDb::Open(workdir.path() + "/meta");
  control::ControlService service(db->get());
  auto admin = service.CreateUser("admin", "secret", model::UserRole::kAdmin);
  auto server = control::ControlServer::Start(&service, 0);

  // --- The SuE: MokkaDB, registered with its parameters and diagrams ---
  model::System system;
  system.name = "MokkaDB";
  system.description = "Document store with wiredTiger-like and mmapv1-like "
                       "storage engines";
  {
    model::ParameterDef engine;
    engine.name = "engine";
    engine.type = model::ParameterType::kCheckbox;
    engine.options = {json::Json("wiredtiger"), json::Json("mmapv1")};
    system.parameters.push_back(engine);
    model::ParameterDef threads;
    threads.name = "threads";
    threads.type = model::ParameterType::kInterval;
    threads.min = 1;
    threads.max = 64;
    system.parameters.push_back(threads);
    for (const char* name : {"records", "operations", "warmup_ops",
                             "io_read_us", "io_write_us"}) {
      model::ParameterDef def;
      def.name = name;
      def.type = model::ParameterType::kInterval;
      def.min = 0;
      def.max = 10000000;
      system.parameters.push_back(def);
    }
    model::ParameterDef ratio;
    ratio.name = "ratio";
    ratio.type = model::ParameterType::kRatio;
    system.parameters.push_back(ratio);
  }
  {
    model::DiagramDef line;
    line.name = "Throughput by client threads";
    line.type = model::DiagramType::kLine;
    line.x_field = "threads";
    line.y_field = "throughput";
    line.group_by = "engine";
    system.diagrams.push_back(line);
    model::DiagramDef latency;
    latency.name = "p95 update latency (us) by client threads";
    latency.type = model::DiagramType::kBar;
    latency.x_field = "threads";
    latency.y_field = "metrics.latency_us.update.p95";
    latency.group_by = "engine";
    system.diagrams.push_back(latency);
  }
  auto registered = service.RegisterSystem(system);

  // --- Two deployments, set up automatically via the infrastructure
  // provisioner (the paper's §5 future work: "setting up the infrastructure
  // of an SuE automatically") ---
  clients::LocalMokkaProvisioner provisioner;
  control::ProvisioningManager provisioning(&service);
  provisioning.RegisterProvisioner(&provisioner).ok();
  std::vector<model::Deployment> deployments;
  for (int i = 0; i < 2; ++i) {
    auto deployment = provisioning.ProvisionDeployment(
        "local-mokka", registered->id, "mokkadb-" + std::to_string(i),
        json::Json());
    if (!deployment.ok()) {
      std::fprintf(stderr, "provisioning failed: %s\n",
                   deployment.status().ToString().c_str());
      return 1;
    }
    deployments.push_back(std::move(deployment).value());
  }
  std::printf("Deployments: %s and %s\n",
              deployments[0].endpoint.c_str(),
              deployments[1].endpoint.c_str());

  // --- The experiment: engines x thread counts (workload A, 50/50) ---
  auto project = service.CreateProject("MongoDB engine comparison",
                                       "EDBT'20 demo reproduction",
                                       admin->id);
  model::ParameterSetting engines;
  engines.name = "engine";
  engines.sweep = {json::Json("wiredtiger"), json::Json("mmapv1")};
  model::ParameterSetting threads;
  threads.name = "threads";
  threads.sweep = {json::Json(1), json::Json(2), json::Json(4),
                   json::Json(8)};
  model::ParameterSetting records;
  records.name = "records";
  records.fixed = json::Json(1000);
  model::ParameterSetting operations;
  operations.name = "operations";
  operations.fixed = json::Json(1200);  // Per thread.
  model::ParameterSetting ratio;
  ratio.name = "ratio";
  ratio.fixed = json::Json("read:50,update:50");
  model::ParameterSetting warmup;
  warmup.name = "warmup_ops";
  warmup.fixed = json::Json(100);
  // Simulated storage latency (see DESIGN.md): the engines' locking
  // granularity governs how this latency overlaps across client threads.
  model::ParameterSetting read_io;
  read_io.name = "io_read_us";
  read_io.fixed = json::Json(200);
  model::ParameterSetting write_io;
  write_io.name = "io_write_us";
  write_io.fixed = json::Json(800);
  auto experiment = service.CreateExperiment(
      project->id, admin->id, registered->id,
      "wiredTiger vs mmapv1 under YCSB-A", "",
      {engines, threads, records, operations, ratio, warmup, read_io,
       write_io});
  auto evaluation = service.CreateEvaluation(experiment->id, "demo run");
  std::printf("Evaluation: %zu jobs (2 engines x 4 thread counts)\n",
              service.ListJobs(evaluation->id).size());

  // --- Two agents execute the evaluation in parallel ---
  std::vector<std::unique_ptr<agent::ChronosAgent>> agents;
  for (size_t i = 0; i < deployments.size(); ++i) {
    agent::AgentOptions options;
    options.control_port = (*server)->port();
    options.username = "admin";
    options.password = "secret";
    options.deployment_id = deployments[i].id;
    options.poll_interval_ms = 50;
    auto chronos_agent = std::make_unique<agent::ChronosAgent>(options);
    chronos_agent->SetHandler(
        clients::MakeMokkaEvaluationHandler(deployments[i].endpoint));
    if (!chronos_agent->Connect().ok()) {
      std::fprintf(stderr, "agent %zu failed to connect\n", i);
      return 1;
    }
    chronos_agent->StartAsync();
    agents.push_back(std::move(chronos_agent));
  }

  // --- Monitor until done (the web UI's evaluation page, in text) ---
  while (true) {
    auto summary = service.Summarize(evaluation->id);
    int finished = summary->state_counts[model::JobState::kFinished];
    int failed = summary->state_counts[model::JobState::kFailed];
    std::printf("\rprogress: %3d%%  finished %d/%d  failed %d",
                summary->overall_progress_percent, finished,
                summary->total_jobs, failed);
    std::fflush(stdout);
    if (finished + failed == summary->total_jobs) break;
    SystemClock::Get()->SleepMs(250);
  }
  std::printf("\n");
  for (auto& chronos_agent : agents) chronos_agent->Stop();

  // --- Analysis: Fig. 3d as table + CSV + HTML/SVG report ---
  auto diagrams = service.EvaluationDiagrams(evaluation->id);
  for (const analysis::DiagramData& data : *diagrams) {
    std::printf("\n%s\n", data.ToTable().c_str());
    std::printf("CSV:\n%s\n", data.ToCsv().c_str());
  }
  std::string html = analysis::RenderHtmlReport(
      "MongoDB storage engine comparison (Chronos demo)", *diagrams);
  if (file::WriteFile(report_path, html).ok()) {
    std::printf("HTML report written to %s\n", report_path.c_str());
  }

  provisioning.TeardownAll();
  (*server)->Stop();
  return 0;
}
