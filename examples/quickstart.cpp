// Quickstart: the whole Chronos workflow in one process.
//
// 1. Open a Chronos Control metadata store and service.
// 2. Register a system-under-evaluation (a trivial "sleeper" SuE).
// 3. Create a project, an experiment with a swept parameter, and an
//    evaluation — Chronos expands the parameter space into jobs.
// 4. Run a Chronos agent against the REST API to execute the jobs.
// 5. Analyze the results as a console table.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "agent/agent.h"
#include "analysis/diagrams.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "control/rest_api.h"

using namespace chronos;  // Example code; library code never does this.

int main() {
  Logger::Get()->set_min_level(LogLevel::kWarning);

  // --- 1. Chronos Control: durable store + service + REST server ---
  file::TempDir workdir("chronos-quickstart");
  auto db = model::MetaDb::Open(workdir.path() + "/meta");
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  control::ControlService service(db->get());
  auto admin = service.CreateUser("admin", "secret", model::UserRole::kAdmin);
  auto server = control::ControlServer::Start(&service, /*port=*/0);
  std::printf("Chronos Control listening on 127.0.0.1:%d\n",
              (*server)->port());

  // --- 2. Register the SuE: parameters + how to visualize results ---
  model::System system;
  system.name = "Sleeper";
  system.description = "Sleeps for work_ms and reports how it went";
  model::ParameterDef work_ms;
  work_ms.name = "work_ms";
  work_ms.type = model::ParameterType::kInterval;
  work_ms.min = 1;
  work_ms.max = 1000;
  system.parameters.push_back(work_ms);
  model::DiagramDef diagram;
  diagram.name = "Measured latency by configured work";
  diagram.type = model::DiagramType::kLine;
  diagram.x_field = "work_ms";
  diagram.y_field = "measured_ms";
  system.diagrams.push_back(diagram);
  auto registered = service.RegisterSystem(system);

  model::Deployment deployment;
  deployment.system_id = registered->id;
  deployment.name = "local";
  auto dep = service.CreateDeployment(deployment);

  // --- 3. Project -> experiment (sweep work_ms) -> evaluation ---
  auto project = service.CreateProject("quickstart", "demo", admin->id);
  model::ParameterSetting sweep;
  sweep.name = "work_ms";
  sweep.sweep = {json::Json(10), json::Json(20), json::Json(40)};
  auto experiment = service.CreateExperiment(
      project->id, admin->id, registered->id, "sleep sweep", "", {sweep});
  auto evaluation = service.CreateEvaluation(experiment->id, "run 1");
  std::printf("Evaluation %s expanded into %zu jobs\n",
              evaluation->id.c_str(),
              service.ListJobs(evaluation->id).size());

  // --- 4. A Chronos agent executes the jobs over the REST API ---
  agent::AgentOptions options;
  options.control_port = (*server)->port();
  options.username = "admin";
  options.password = "secret";
  options.deployment_id = dep->id;
  agent::ChronosAgent agent(options);
  agent.SetHandler([](agent::JobContext* context) {
    int64_t work_ms = context->ParamInt("work_ms", 0);
    context->Log("sleeping for " + std::to_string(work_ms) + " ms");
    analysis::ScopedTimerUs timer;
    context->metrics()->StartRun();
    SystemClock::Get()->SleepMs(work_ms);
    context->metrics()->RecordLatency("sleep", timer.ElapsedUs());
    context->metrics()->EndRun();
    context->SetProgress(100);
    context->SetResultField(
        "measured_ms", static_cast<double>(timer.ElapsedUs()) / 1000.0);
    return Status::Ok();
  });
  if (!agent.Connect().ok() || !agent.Run(/*max_jobs=*/3).ok()) {
    std::fprintf(stderr, "agent failed\n");
    return 1;
  }

  // --- 5. Analysis: the toolkit's diagram of the evaluation ---
  auto diagrams = service.EvaluationDiagrams(evaluation->id);
  for (const analysis::DiagramData& data : *diagrams) {
    std::printf("\n%s\n", data.ToTable().c_str());
  }
  auto summary = service.Summarize(evaluation->id);
  std::printf("finished jobs: %d/%d\n",
              summary->state_counts[model::JobState::kFinished],
              summary->total_jobs);
  (*server)->Stop();
  return 0;
}
