// Writing a custom Chronos Agent for a brand-new SuE (§2.2: "Integrating
// the Chronos Agent library into an existing evaluation client is the only
// part which requires programming ... this usually narrows down to calling
// already existing methods of the evaluation client").
//
// The SuE here is "SortLab", a pre-existing evaluation client that
// benchmarks sorting algorithms. The Chronos integration is the ~30 lines
// inside MakeSortLabHandler: map job parameters to the client's entry
// point, report progress, and hand back metrics.
//
// Build & run:  ./build/examples/custom_agent

#include <algorithm>
#include <cstdio>
#include <vector>

#include "agent/agent.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "control/rest_api.h"

using namespace chronos;

namespace sortlab {

// ===== The pre-existing evaluation client (knows nothing of Chronos) =====

struct RunResult {
  double elapsed_ms = 0;
  uint64_t comparisons = 0;
};

RunResult RunSort(const std::string& algorithm, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> data(n);
  for (uint64_t& v : data) v = rng.NextUint64();

  uint64_t comparisons = 0;
  auto counting_less = [&comparisons](uint64_t a, uint64_t b) {
    ++comparisons;
    return a < b;
  };
  analysis::ScopedTimerUs timer;
  if (algorithm == "std_sort") {
    std::sort(data.begin(), data.end(), counting_less);
  } else if (algorithm == "stable_sort") {
    std::stable_sort(data.begin(), data.end(), counting_less);
  } else {  // heap_sort
    std::make_heap(data.begin(), data.end(), counting_less);
    std::sort_heap(data.begin(), data.end(), counting_less);
  }
  RunResult result;
  result.elapsed_ms = static_cast<double>(timer.ElapsedUs()) / 1000.0;
  result.comparisons = comparisons;
  return result;
}

// ===== The Chronos integration: one handler =====

agent::EvaluationHandler MakeSortLabHandler() {
  return [](agent::JobContext* context) -> Status {
    std::string algorithm = context->ParamString("algorithm", "std_sort");
    size_t n = static_cast<size_t>(context->ParamInt("elements", 100000));
    int repetitions = static_cast<int>(context->ParamInt("repetitions", 3));

    context->Log("sorting " + std::to_string(n) + " elements with " +
                 algorithm);
    context->metrics()->StartRun();
    double total_ms = 0;
    uint64_t total_comparisons = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      RunResult result = RunSort(algorithm, n, /*seed=*/1000 + rep);
      context->metrics()->RecordLatency(
          "sort", static_cast<uint64_t>(result.elapsed_ms * 1000));
      total_ms += result.elapsed_ms;
      total_comparisons += result.comparisons;
      if (!context->SetProgress(100 * (rep + 1) / repetitions)) {
        return Status::Aborted("aborted by Chronos");
      }
    }
    context->metrics()->EndRun();
    context->SetResultField("mean_sort_ms", total_ms / repetitions);
    context->SetResultField(
        "comparisons_per_element",
        static_cast<double>(total_comparisons) /
            (static_cast<double>(n) * repetitions));
    return Status::Ok();
  };
}

}  // namespace sortlab

int main() {
  Logger::Get()->set_min_level(LogLevel::kWarning);

  file::TempDir workdir("chronos-sortlab");
  auto db = model::MetaDb::Open(workdir.path() + "/meta");
  control::ControlService service(db->get());
  auto admin = service.CreateUser("admin", "secret", model::UserRole::kAdmin);
  auto server = control::ControlServer::Start(&service, 0);

  // Register SortLab: its parameters and two diagram types.
  model::System system;
  system.name = "SortLab";
  model::ParameterDef algorithm;
  algorithm.name = "algorithm";
  algorithm.type = model::ParameterType::kCheckbox;
  algorithm.options = {json::Json("std_sort"), json::Json("stable_sort"),
                       json::Json("heap_sort")};
  system.parameters.push_back(algorithm);
  model::ParameterDef elements;
  elements.name = "elements";
  elements.type = model::ParameterType::kInterval;
  elements.min = 1000;
  elements.max = 10000000;
  system.parameters.push_back(elements);
  model::ParameterDef repetitions;
  repetitions.name = "repetitions";
  repetitions.type = model::ParameterType::kValue;
  system.parameters.push_back(repetitions);
  model::DiagramDef line;
  line.name = "Sort time (ms) by input size";
  line.type = model::DiagramType::kLine;
  line.x_field = "elements";
  line.y_field = "mean_sort_ms";
  line.group_by = "algorithm";
  system.diagrams.push_back(line);
  model::DiagramDef pie;
  pie.name = "Comparisons per element (100k inputs)";
  pie.type = model::DiagramType::kBar;
  pie.x_field = "elements";
  pie.y_field = "comparisons_per_element";
  pie.group_by = "algorithm";
  system.diagrams.push_back(pie);
  auto registered = service.RegisterSystem(system);

  model::Deployment deployment;
  deployment.system_id = registered->id;
  deployment.name = "local-cpu";
  auto dep = service.CreateDeployment(deployment);

  // Experiment: algorithms x input sizes.
  auto project = service.CreateProject("sorting study", "", admin->id);
  model::ParameterSetting algorithms;
  algorithms.name = "algorithm";
  algorithms.sweep = {json::Json("std_sort"), json::Json("stable_sort"),
                      json::Json("heap_sort")};
  model::ParameterSetting sizes;
  sizes.name = "elements";
  sizes.sweep = {json::Json(50000), json::Json(100000), json::Json(200000)};
  model::ParameterSetting reps;
  reps.name = "repetitions";
  reps.fixed = json::Json(3);
  auto experiment = service.CreateExperiment(
      project->id, admin->id, registered->id, "algorithm comparison", "",
      {algorithms, sizes, reps});
  auto evaluation = service.CreateEvaluation(experiment->id, "sweep");
  std::printf("SortLab evaluation: %zu jobs\n",
              service.ListJobs(evaluation->id).size());

  agent::AgentOptions options;
  options.control_port = (*server)->port();
  options.username = "admin";
  options.password = "secret";
  options.deployment_id = dep->id;
  agent::ChronosAgent chronos_agent(options);
  chronos_agent.SetHandler(sortlab::MakeSortLabHandler());
  if (!chronos_agent.Connect().ok()) return 1;
  if (!chronos_agent.Run(/*max_jobs=*/9).ok()) return 1;

  auto diagrams = service.EvaluationDiagrams(evaluation->id);
  for (const analysis::DiagramData& data : *diagrams) {
    std::printf("\n%s\n", data.ToTable().c_str());
  }
  (*server)->Stop();
  return 0;
}
