// Build-bot / CI integration over the raw REST API (§2.2: "the API offers
// methods to, for example, schedule an evaluation which is caused by a
// successful build of the SuE's build bot").
//
// Everything here goes through HTTP only — exactly what an external CI
// system would do: log in, look up the experiment, POST an evaluation after
// each "successful build", poll its summary, and fetch the per-build
// results for regression tracking. Also demonstrates the versioned API: the
// CI client pins /api/v1 while a newer agent uses /api/v2 simultaneously.
//
// Build & run:  ./build/examples/ci_trigger

#include <cstdio>

#include "agent/agent.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "control/rest_api.h"
#include "net/http.h"

using namespace chronos;

namespace {

// Minimal REST helper the CI script would be built from.
class RestClient {
 public:
  RestClient(int port) : http_("127.0.0.1", port) {}

  bool Login(const std::string& username, const std::string& password) {
    json::Json body = json::Json::MakeObject();
    body.Set("username", username);
    body.Set("password", password);
    auto response = http_.Post("/api/v1/auth/login", body.Dump());
    if (!response.ok() || response->status_code != 200) return false;
    auto parsed = json::Parse(response->body);
    if (!parsed.ok()) return false;
    http_.SetDefaultHeader("X-Session", parsed->at("token").as_string());
    return true;
  }

  StatusOr<json::Json> Post(const std::string& path, const json::Json& body) {
    auto response = http_.Post(path, body.Dump());
    CHRONOS_RETURN_IF_ERROR(response.status());
    if (response->status_code >= 300) {
      return Status::Internal("HTTP " +
                              std::to_string(response->status_code) + ": " +
                              response->body);
    }
    return json::Parse(response->body);
  }

  StatusOr<json::Json> Get(const std::string& path) {
    auto response = http_.Get(path);
    CHRONOS_RETURN_IF_ERROR(response.status());
    if (response->status_code >= 300) {
      return Status::Internal("HTTP " +
                              std::to_string(response->status_code));
    }
    return json::Parse(response->body);
  }

 private:
  net::HttpClient http_;
};

}  // namespace

int main() {
  Logger::Get()->set_min_level(LogLevel::kWarning);

  // --- Hosted Chronos Control (in-process for the example) ---
  file::TempDir workdir("chronos-ci");
  auto db = model::MetaDb::Open(workdir.path() + "/meta");
  control::ControlService service(db->get());
  service.CreateUser("ci-bot", "hunter22", model::UserRole::kAdmin).ok();
  auto server = control::ControlServer::Start(&service, 0);
  int port = (*server)->port();

  // --- One-time setup through REST: system, deployment, project, experiment
  RestClient ci(port);
  if (!ci.Login("ci-bot", "hunter22")) {
    std::fprintf(stderr, "login failed\n");
    return 1;
  }

  json::Json system = json::Json::MakeObject();
  system.Set("name", "BuildBench");
  json::Json parameters = json::Json::MakeArray();
  json::Json payload_def = json::Json::MakeObject();
  payload_def.Set("name", "payload_kb");
  payload_def.Set("type", "interval");
  payload_def.Set("min", 1);
  payload_def.Set("max", 4096);
  parameters.Append(payload_def);
  system.Set("parameters", parameters);
  json::Json diagrams = json::Json::MakeArray();
  json::Json diagram = json::Json::MakeObject();
  diagram.Set("name", "Checksum throughput by payload");
  diagram.Set("type", "line");
  diagram.Set("x_field", "payload_kb");
  diagram.Set("y_field", "mb_per_s");
  diagrams.Append(diagram);
  system.Set("diagrams", diagrams);
  auto system_response = ci.Post("/api/v1/systems", system);
  std::string system_id = system_response->at("id").as_string();

  json::Json deployment = json::Json::MakeObject();
  deployment.Set("system_id", system_id);
  deployment.Set("name", "ci-runner-1");
  auto deployment_response = ci.Post("/api/v1/deployments", deployment);
  std::string deployment_id = deployment_response->at("id").as_string();

  json::Json project = json::Json::MakeObject();
  project.Set("name", "nightly perf gate");
  auto project_response = ci.Post("/api/v1/projects", project);

  json::Json experiment = json::Json::MakeObject();
  experiment.Set("project_id", project_response->at("id").as_string());
  experiment.Set("system_id", system_id);
  experiment.Set("name", "checksum regression");
  json::Json settings = json::Json::MakeArray();
  json::Json setting = json::Json::MakeObject();
  setting.Set("name", "payload_kb");
  json::Json sweep = json::Json::MakeArray();
  sweep.Append(64);
  sweep.Append(256);
  sweep.Append(1024);
  setting.Set("sweep", sweep);
  setting.Set("fixed", nullptr);
  settings.Append(setting);
  experiment.Set("settings", settings);
  auto experiment_response = ci.Post("/api/v1/experiments", experiment);
  std::string experiment_id = experiment_response->at("id").as_string();
  std::printf("experiment registered: %s\n", experiment_id.c_str());

  // --- The agent runs persistently on the CI runner (uses API v2) ---
  agent::AgentOptions options;
  options.control_port = port;
  options.api_version = 2;
  options.username = "ci-bot";
  options.password = "hunter22";
  options.deployment_id = deployment_id;
  options.poll_interval_ms = 50;
  agent::ChronosAgent runner(options);
  runner.SetHandler([](agent::JobContext* context) {
    // The "benchmark": checksum a payload_kb buffer, report MB/s.
    int64_t payload_kb = context->ParamInt("payload_kb", 64);
    std::string buffer(static_cast<size_t>(payload_kb) * 1024, 'x');
    analysis::ScopedTimerUs timer;
    uint64_t checksum = 0;
    for (int round = 0; round < 50; ++round) {
      for (char c : buffer) checksum += static_cast<unsigned char>(c);
    }
    double seconds = static_cast<double>(timer.ElapsedUs()) / 1e6;
    double mb = static_cast<double>(payload_kb) * 50 / 1024.0;
    context->SetResultField("mb_per_s", seconds > 0 ? mb / seconds : 0.0);
    context->SetResultField("checksum", static_cast<int64_t>(checksum % 997));
    context->SetProgress(100);
    return Status::Ok();
  });
  if (!runner.Connect().ok()) return 1;
  runner.StartAsync();

  // --- Each "green build" schedules an evaluation via REST ---
  for (int build = 101; build <= 103; ++build) {
    json::Json evaluation = json::Json::MakeObject();
    evaluation.Set("experiment_id", experiment_id);
    evaluation.Set("name", "build #" + std::to_string(build));
    auto created = ci.Post("/api/v1/evaluations", evaluation);
    std::string evaluation_id =
        created->at("evaluation").at("id").as_string();
    std::printf("build #%d -> evaluation %s\n", build,
                evaluation_id.c_str());

    // CI waits for the verdict.
    while (true) {
      auto summary = ci.Get("/api/v1/evaluations/" + evaluation_id);
      int64_t finished =
          summary->at("state_counts").GetIntOr("finished", 0);
      int64_t total = summary->at("total_jobs").as_int();
      if (finished == total) break;
      SystemClock::Get()->SleepMs(100);
    }
    auto results = ci.Get("/api/v1/evaluations/" + evaluation_id +
                          "/results");
    std::printf("  %zu job results archived for build #%d\n",
                results->size(), build);
  }
  runner.Stop();

  // The history is queryable per experiment — the QA monitoring use case.
  auto evaluations =
      ci.Get("/api/v1/experiments/" + experiment_id);
  std::printf("experiment '%s' retained for QA monitoring\n",
              evaluations->at("name").as_string().c_str());
  (*server)->Stop();
  return 0;
}
