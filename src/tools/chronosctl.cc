#include "tools/chronosctl.h"

#include "analysis/diagrams.h"
#include "common/clock.h"
#include "common/file_util.h"
#include "common/strings.h"
#include "json/json.h"
#include "model/entities.h"
#include "net/http.h"
#include "obs/span.h"

namespace chronos::tools {

namespace {

constexpr char kUsage[] =
    "usage: chronosctl --server host:port [--token T] <command> ...\n"
    "commands:\n"
    "  login --user U --password P      print a session token\n"
    "  status                           server info\n"
    "  metrics [--raw]                  metrics snapshot (--raw: Prometheus "
    "text)\n"
    "  projects list|create             manage projects\n"
    "  systems list                     registered SuEs\n"
    "  systems import --file F.json     register an SuE from a descriptor\n"
    "  deployments list [--system ID]   deployments\n"
    "  experiments list --project ID    experiments of a project\n"
    "  evaluations create --experiment ID [--name N]\n"
    "  evaluation show EVAL_ID          summary + job states\n"
    "  evaluation watch EVAL_ID         poll until all jobs are terminal\n"
    "  jobs list --evaluation ID [--state S]\n"
    "  job show|abort|reschedule|log JOB_ID\n"
    "  trace JOB_ID                     span timeline of the job's trace\n"
    "                                   (Control + Agent spans, one tree)\n"
    "  drain                            stop job dispatch; server begins its\n"
    "                                   graceful shutdown (admin only)\n"
    "  failpoint list                   configured fault-injection points\n"
    "  failpoint set POINT SPEC         arm a failpoint (off|error[(msg)]|\n"
    "                                   delay(ms)|close|probability(p[, s]))\n"
    "  failpoint clear POINT            remove a failpoint\n"
    "  diagrams EVAL_ID [--csv]         result analysis tables\n"
    "  report EVAL_ID --out FILE.html   html report\n"
    "  export PROJECT_ID --out FILE.zip project archive\n";

class Client {
 public:
  Client(const std::string& server, const std::string& token)
      : valid_(false) {
    size_t colon = server.rfind(':');
    uint64_t port = 0;
    if (colon == std::string::npos ||
        !strings::ParseUint64(server.substr(colon + 1), &port)) {
      return;
    }
    http_ = std::make_unique<net::HttpClient>(server.substr(0, colon),
                                              static_cast<int>(port));
    if (!token.empty()) http_->SetDefaultHeader("X-Session", token);
    valid_ = true;
  }

  bool valid() const { return valid_; }

  StatusOr<json::Json> Get(const std::string& path) {
    return Json(http_->Get(path));
  }
  StatusOr<json::Json> Post(const std::string& path, const json::Json& body) {
    return Json(http_->Post(path, body.Dump()));
  }
  StatusOr<std::string> GetRaw(const std::string& path) {
    auto response = http_->Get(path);
    CHRONOS_RETURN_IF_ERROR(response.status());
    if (response->status_code >= 300) {
      return Status::Internal("HTTP " +
                              std::to_string(response->status_code) + ": " +
                              response->body);
    }
    return response->body;
  }

 private:
  static StatusOr<json::Json> Json(
      const StatusOr<net::HttpResponse>& response) {
    CHRONOS_RETURN_IF_ERROR(response.status());
    auto body = json::Parse(response->body);
    if (response->status_code >= 300) {
      std::string message =
          body.ok() ? body->GetStringOr("error", response->body)
                    : response->body;
      return Status::Internal("HTTP " +
                              std::to_string(response->status_code) + ": " +
                              message);
    }
    return body;
  }

  std::unique_ptr<net::HttpClient> http_;
  bool valid_;
};

void PrintKv(std::ostream& out, const std::string& key,
             const std::string& value) {
  out << "  " << key << ": " << value << "\n";
}

int Fail(std::ostream& out, const Status& status) {
  out << "error: " << status.ToString() << "\n";
  return 1;
}

// Renders a Prometheus text exposition for reading: one block per family
// headed by its HELP line, samples indented underneath, # TYPE lines dropped.
void PrintMetricsPretty(std::ostream& out, const std::string& exposition) {
  for (const std::string& line : strings::Split(exposition, '\n')) {
    if (line.empty()) continue;
    if (strings::StartsWith(line, "# HELP ")) {
      std::string rest = line.substr(7);  // "<name> <help text>"
      size_t space = rest.find(' ');
      out << rest.substr(0, space);
      if (space != std::string::npos) {
        out << "  (" << rest.substr(space + 1) << ")";
      }
      out << "\n";
    } else if (!strings::StartsWith(line, "#")) {
      out << "  " << line << "\n";
    }
  }
}

}  // namespace

CommandLine CommandLine::Parse(const std::vector<std::string>& args) {
  CommandLine command_line;
  for (size_t i = 0; i < args.size(); ++i) {
    if (strings::StartsWith(args[i], "--")) {
      std::string name = args[i].substr(2);
      if (i + 1 < args.size() && !strings::StartsWith(args[i + 1], "--")) {
        command_line.flags[name] = args[++i];
      } else {
        command_line.flags[name] = "true";
      }
    } else {
      command_line.positional.push_back(args[i]);
    }
  }
  return command_line;
}

std::string CommandLine::Flag(const std::string& name,
                              const std::string& fallback) const {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

bool CommandLine::HasFlag(const std::string& name) const {
  return flags.count(name) > 0;
}

int RunChronosctl(const std::vector<std::string>& args, std::ostream& out) {
  CommandLine cmd = CommandLine::Parse(args);
  if (cmd.positional.empty()) {
    out << kUsage;
    return 2;
  }
  std::string server = cmd.Flag("server", "127.0.0.1:8080");
  Client client(server, cmd.Flag("token"));
  if (!client.valid()) {
    out << "error: bad --server (expected host:port): " << server << "\n";
    return 2;
  }
  const std::string& command = cmd.positional[0];
  std::string sub = cmd.positional.size() > 1 ? cmd.positional[1] : "";

  if (command == "login") {
    json::Json body = json::Json::MakeObject();
    body.Set("username", cmd.Flag("user"));
    body.Set("password", cmd.Flag("password"));
    auto response = client.Post("/api/v1/auth/login", body);
    if (!response.ok()) return Fail(out, response.status());
    out << response->GetStringOr("token", "") << "\n";
    return 0;
  }

  if (command == "status") {
    auto response = client.Get("/api/v1/status");
    if (!response.ok()) return Fail(out, response.status());
    out << "chronos-control at " << server << "\n";
    for (const char* key : {"users", "projects", "systems", "jobs"}) {
      PrintKv(out, key, std::to_string(response->GetIntOr(key, 0)));
    }
    return 0;
  }

  if (command == "metrics") {
    auto response = client.GetRaw("/metrics");
    if (!response.ok()) return Fail(out, response.status());
    if (cmd.HasFlag("raw")) {
      out << *response;
    } else {
      PrintMetricsPretty(out, *response);
    }
    return 0;
  }

  if (command == "projects" && sub == "list") {
    auto response = client.Get("/api/v1/projects");
    if (!response.ok()) return Fail(out, response.status());
    for (const json::Json& project : response->as_array()) {
      out << project.GetStringOr("id", "") << "  "
          << project.GetStringOr("name", "")
          << (project.GetBoolOr("archived", false) ? "  [archived]" : "")
          << "\n";
    }
    return 0;
  }

  if (command == "projects" && sub == "create") {
    json::Json body = json::Json::MakeObject();
    body.Set("name", cmd.Flag("name"));
    body.Set("description", cmd.Flag("description"));
    auto response = client.Post("/api/v1/projects", body);
    if (!response.ok()) return Fail(out, response.status());
    out << response->GetStringOr("id", "") << "\n";
    return 0;
  }

  if (command == "systems" && sub == "import") {
    // Registers an SuE from a JSON descriptor file — the file an SuE
    // extension repository would carry (the paper's git/mercurial system
    // registration, minus the VCS fetch).
    if (!cmd.HasFlag("file")) {
      out << "usage: systems import --file <descriptor.json>\n";
      return 2;
    }
    auto text = file::ReadFile(cmd.Flag("file"));
    if (!text.ok()) return Fail(out, text.status());
    auto descriptor = json::Parse(*text);
    if (!descriptor.ok()) return Fail(out, descriptor.status());
    auto response = client.Post("/api/v1/systems", *descriptor);
    if (!response.ok()) return Fail(out, response.status());
    out << response->GetStringOr("id", "") << "\n";
    return 0;
  }

  if (command == "systems" && sub == "list") {
    auto response = client.Get("/api/v1/systems");
    if (!response.ok()) return Fail(out, response.status());
    for (const json::Json& system : response->as_array()) {
      out << system.GetStringOr("id", "") << "  "
          << system.GetStringOr("name", "") << "  ("
          << system.at("parameters").size() << " params, "
          << system.at("diagrams").size() << " diagrams)\n";
    }
    return 0;
  }

  if (command == "deployments" && sub == "list") {
    std::string path = "/api/v1/deployments";
    if (cmd.HasFlag("system")) {
      path += "?system_id=" + strings::UrlEncode(cmd.Flag("system"));
    }
    auto response = client.Get(path);
    if (!response.ok()) return Fail(out, response.status());
    for (const json::Json& deployment : response->as_array()) {
      out << deployment.GetStringOr("id", "") << "  "
          << deployment.GetStringOr("name", "") << "  "
          << deployment.GetStringOr("endpoint", "-") << "  "
          << (deployment.GetBoolOr("active", true) ? "active" : "inactive")
          << "\n";
    }
    return 0;
  }

  if (command == "experiments" && sub == "list") {
    auto response = client.Get("/api/v1/experiments?project_id=" +
                               strings::UrlEncode(cmd.Flag("project")));
    if (!response.ok()) return Fail(out, response.status());
    for (const json::Json& experiment : response->as_array()) {
      out << experiment.GetStringOr("id", "") << "  "
          << experiment.GetStringOr("name", "") << "\n";
    }
    return 0;
  }

  if (command == "evaluations" && sub == "create") {
    json::Json body = json::Json::MakeObject();
    body.Set("experiment_id", cmd.Flag("experiment"));
    body.Set("name", cmd.Flag("name"));
    auto response = client.Post("/api/v1/evaluations", body);
    if (!response.ok()) return Fail(out, response.status());
    out << response->at("evaluation").GetStringOr("id", "") << "  ("
        << response->GetIntOr("total_jobs", 0) << " jobs)\n";
    return 0;
  }

  if (command == "evaluation" && sub == "watch") {
    if (cmd.positional.size() < 3) {
      out << "usage: evaluation watch <id> [--interval-ms N] [--max-polls N]\n";
      return 2;
    }
    uint64_t interval_ms = 0, max_polls = 0;
    strings::ParseUint64(cmd.Flag("interval-ms", "1000"), &interval_ms);
    strings::ParseUint64(cmd.Flag("max-polls", "100000"), &max_polls);
    for (uint64_t poll = 0; poll < max_polls; ++poll) {
      auto response =
          client.Get("/api/v1/evaluations/" + cmd.positional[2]);
      if (!response.ok()) return Fail(out, response.status());
      int64_t total = response->GetIntOr("total_jobs", 0);
      const json::Json& counts = response->at("state_counts");
      int64_t terminal = counts.GetIntOr("finished", 0) +
                         counts.GetIntOr("failed", 0) +
                         counts.GetIntOr("aborted", 0);
      out << "progress "
          << response->GetIntOr("overall_progress_percent", 0) << "%  "
          << terminal << "/" << total << " terminal (" << counts.Dump()
          << ")\n";
      if (terminal >= total) {
        out << (counts.GetIntOr("finished", 0) == total ? "all finished\n"
                                                        : "completed with "
                                                          "failures/aborts\n");
        return counts.GetIntOr("finished", 0) == total ? 0 : 1;
      }
      SystemClock::Get()->SleepMs(static_cast<int64_t>(interval_ms));
    }
    out << "gave up after max polls\n";
    return 1;
  }

  if (command == "evaluation" && sub == "show") {
    if (cmd.positional.size() < 3) {
      out << "usage: evaluation show <id>\n";
      return 2;
    }
    auto response = client.Get("/api/v1/evaluations/" + cmd.positional[2]);
    if (!response.ok()) return Fail(out, response.status());
    out << response->at("evaluation").GetStringOr("name", "") << "\n";
    PrintKv(out, "jobs", std::to_string(response->GetIntOr("total_jobs", 0)));
    PrintKv(out, "progress",
            std::to_string(response->GetIntOr("overall_progress_percent", 0)) +
                "%");
    for (const auto& [state, count] :
         response->at("state_counts").as_object()) {
      PrintKv(out, state, std::to_string(count.as_int()));
    }
    return 0;
  }

  if (command == "jobs" && sub == "list") {
    std::string path = "/api/v1/evaluations/" + cmd.Flag("evaluation") +
                       "/jobs";
    if (cmd.HasFlag("state")) path += "?state=" + cmd.Flag("state");
    auto response = client.Get(path);
    if (!response.ok()) return Fail(out, response.status());
    for (const json::Json& job : response->as_array()) {
      out << job.GetStringOr("id", "") << "  "
          << job.GetStringOr("state", "") << "  "
          << job.GetIntOr("progress_percent", 0) << "%  "
          << job.at("parameters").Dump() << "\n";
    }
    return 0;
  }

  if (command == "job") {
    if (cmd.positional.size() < 3) {
      out << "usage: job show|abort|reschedule|log <id>\n";
      return 2;
    }
    const std::string& job_id = cmd.positional[2];
    if (sub == "show") {
      auto response = client.Get("/api/v1/jobs/" + job_id);
      if (!response.ok()) return Fail(out, response.status());
      out << response->DumpPretty() << "\n";
      return 0;
    }
    if (sub == "abort" || sub == "reschedule") {
      auto response = client.Post("/api/v1/jobs/" + job_id + "/" + sub,
                                  json::Json::MakeObject());
      if (!response.ok()) return Fail(out, response.status());
      out << "ok\n";
      return 0;
    }
    if (sub == "log") {
      auto response = client.GetRaw("/api/v1/jobs/" + job_id + "/log");
      if (!response.ok()) return Fail(out, response.status());
      out << *response;
      return 0;
    }
  }

  if (command == "trace") {
    if (cmd.positional.size() < 2) {
      out << "usage: trace <job-id>\n";
      return 2;
    }
    auto response =
        client.Get("/api/v1/jobs/" + cmd.positional[1] + "/trace");
    if (!response.ok()) return Fail(out, response.status());
    std::vector<obs::SpanRecord> spans;
    for (const json::Json& span_json : response->at("spans").as_array()) {
      auto record = obs::SpanFromJson(span_json);
      if (record.ok()) spans.push_back(std::move(record).value());
    }
    out << "trace " << response->GetStringOr("trace_id", "") << "  ("
        << spans.size() << " spans)\n";
    out << obs::RenderSpanTree(spans);
    return 0;
  }

  if (command == "drain") {
    auto response =
        client.Post("/api/v1/admin/drain", json::Json::MakeObject());
    if (!response.ok()) return Fail(out, response.status());
    out << "draining\n";
    return 0;
  }

  if (command == "failpoint") {
    if (sub == "list") {
      auto response = client.Get("/api/v1/admin/failpoints");
      if (!response.ok()) return Fail(out, response.status());
      for (const json::Json& entry : response->at("failpoints").as_array()) {
        out << entry.GetStringOr("point", "") << "  "
            << entry.GetStringOr("spec", "") << "  triggers="
            << entry.GetIntOr("triggers", 0) << "/"
            << entry.GetIntOr("evaluations", 0) << "\n";
      }
      return 0;
    }
    if (sub == "set" || sub == "clear") {
      if (cmd.positional.size() < (sub == "set" ? 4u : 3u)) {
        out << "usage: failpoint set <point> <spec> | failpoint clear "
               "<point>\n";
        return 2;
      }
      json::Json body = json::Json::MakeObject();
      body.Set("point", cmd.positional[2]);
      body.Set("spec", sub == "clear" ? "clear" : cmd.positional[3]);
      auto response = client.Post("/api/v1/admin/failpoints", body);
      if (!response.ok()) return Fail(out, response.status());
      out << response->GetStringOr("point", "") << "  "
          << response->GetStringOr("spec", "") << "\n";
      return 0;
    }
  }

  if (command == "diagrams") {
    if (cmd.positional.size() < 2) {
      out << "usage: diagrams <evaluation-id> [--csv]\n";
      return 2;
    }
    auto response =
        client.Get("/api/v1/evaluations/" + cmd.positional[1] + "/diagrams");
    if (!response.ok()) return Fail(out, response.status());
    for (const json::Json& diagram_json : response->as_array()) {
      analysis::DiagramData diagram;
      diagram.name = diagram_json.GetStringOr("name", "");
      auto type = model::ParseDiagramType(
          diagram_json.GetStringOr("type", "line"));
      diagram.type = type.ok() ? *type : model::DiagramType::kLine;
      diagram.x_label = diagram_json.GetStringOr("x_label", "");
      diagram.y_label = diagram_json.GetStringOr("y_label", "");
      for (const json::Json& x : diagram_json.at("x_values").as_array()) {
        diagram.x_values.push_back(x.as_string());
      }
      for (const json::Json& series_json :
           diagram_json.at("series").as_array()) {
        analysis::Series series;
        series.name = series_json.GetStringOr("name", "");
        for (const json::Json& v : series_json.at("values").as_array()) {
          series.values.push_back(v.as_double());
        }
        diagram.series.push_back(std::move(series));
      }
      out << (cmd.HasFlag("csv") ? diagram.ToCsv() : diagram.ToTable())
          << "\n";
    }
    return 0;
  }

  if (command == "report" || command == "export") {
    if (cmd.positional.size() < 2 || !cmd.HasFlag("out")) {
      out << "usage: " << command << " <id> --out <file>\n";
      return 2;
    }
    std::string path = command == "report"
                           ? "/api/v1/evaluations/" + cmd.positional[1] +
                                 "/report"
                           : "/api/v1/projects/" + cmd.positional[1] +
                                 "/export";
    auto response = client.GetRaw(path);
    if (!response.ok()) return Fail(out, response.status());
    Status written = file::WriteFile(cmd.Flag("out"), *response);
    if (!written.ok()) return Fail(out, written);
    out << "wrote " << response->size() << " bytes to " << cmd.Flag("out")
        << "\n";
    return 0;
  }

  out << kUsage;
  return 2;
}

}  // namespace chronos::tools
