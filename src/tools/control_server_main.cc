// chronos_control_server: a standalone Chronos Control process with a
// crash-consistent lifecycle. Boot order is: open MetaDb (WAL replay) →
// startup reconciliation → serve → on SIGTERM/SIGINT or POST /admin/drain,
// drain, stop the listener, write the clean-shutdown marker (final
// checkpoint + fsync) and exit 0.
//
// This is one of the sanctioned raw-lifecycle files (see the raw-exit lint
// rule): it may call exit-family functions directly because it IS the
// process entry point.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/strings.h"
#include "control/control_service.h"
#include "control/lifecycle.h"
#include "control/rest_api.h"
#include "fault/failpoint.h"
#include "model/entities.h"
#include "model/repository.h"
#include "obs/span.h"
#include "store/table_store.h"
#include "tools/chronosctl.h"

namespace chronos::tools {
namespace {

constexpr char kUsage[] =
    "usage: chronos_control_server --data-dir DIR [options]\n"
    "  --data-dir DIR            metadata database directory (required)\n"
    "  --port N                  listen port (default 0 = ephemeral)\n"
    "  --port-file FILE          write the bound port here once listening\n"
    "  --bootstrap-admin U:P     create an admin user if the db has none\n"
    "  --heartbeat-timeout-ms N  agent liveness timeout (default 30000)\n"
    "  --max-attempts N          per-job attempt budget (default 3)\n"
    "  --monitor-interval-ms N   heartbeat sweep interval (default 2000)\n"
    "  --monitor-jitter F        sweep jitter fraction in [0,1) (default 0.1)\n"
    "  --monitor-seed N          seed for the jittered sweep schedule\n"
    "  --checkpoint-wal-bytes N  auto-checkpoint threshold (0 = never)\n"
    "  --failpoints P=SPEC;...   arm failpoints at boot (';'-separated)\n"
    "  --slow-span-ms N          WARN-log spans slower than N ms and count\n"
    "                            them in chronos_slow_spans_total (0 = off)\n";

int64_t Int64Flag(const CommandLine& cmd, const std::string& name,
                  int64_t fallback) {
  int64_t value = 0;
  if (strings::ParseInt64(cmd.Flag(name), &value)) return value;
  return fallback;
}

// Arms boot-time failpoints from "point=spec;point=spec". ';' separates
// entries because specs themselves may contain commas, e.g.
// "store.commit=crash(137);wal.fsync=error(disk full)".
Status ArmFailpoints(const std::string& config) {
  for (const std::string& entry : strings::Split(config, ';')) {
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("bad --failpoints entry: " + entry);
    }
    CHRONOS_RETURN_IF_ERROR(fault::FailPointRegistry::Get()->SetFromString(
        entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::Ok();
}

int RunControlServer(const std::vector<std::string>& args) {
  CommandLine cmd = CommandLine::Parse(args);
  std::string data_dir = cmd.Flag("data-dir");
  if (data_dir.empty()) {
    std::cerr << kUsage;
    return 2;
  }

  // Before any instrumented work (reconciliation spans below honor it).
  obs::SpanCollector::Get()->set_slow_span_threshold_ms(
      Int64Flag(cmd, "slow-span-ms", 0));

  store::TableStoreOptions store_options;
  store_options.checkpoint_wal_bytes = static_cast<uint64_t>(
      Int64Flag(cmd, "checkpoint-wal-bytes",
                static_cast<int64_t>(store_options.checkpoint_wal_bytes)));
  auto db = model::MetaDb::Open(data_dir, store_options);
  if (!db.ok()) {
    std::cerr << "error: opening " << data_dir << ": "
              << db.status().ToString() << "\n";
    return 1;
  }

  control::ControlServiceOptions service_options;
  service_options.heartbeat_timeout_ms =
      Int64Flag(cmd, "heartbeat-timeout-ms",
                service_options.heartbeat_timeout_ms);
  service_options.max_attempts = static_cast<int>(
      Int64Flag(cmd, "max-attempts", service_options.max_attempts));
  control::ControlService service(db->get(), SystemClock::Get(),
                                  service_options);

  // Bootstrap the first admin so a fresh deployment is reachable.
  std::string bootstrap = cmd.Flag("bootstrap-admin");
  if (!bootstrap.empty() && (*db)->users().Count() == 0) {
    size_t colon = bootstrap.find(':');
    if (colon == std::string::npos) {
      std::cerr << "error: --bootstrap-admin wants user:password\n";
      return 2;
    }
    auto admin = service.CreateUser(bootstrap.substr(0, colon),
                                    bootstrap.substr(colon + 1),
                                    model::UserRole::kAdmin);
    if (!admin.ok()) {
      std::cerr << "error: bootstrap admin: " << admin.status().ToString()
                << "\n";
      return 1;
    }
  }

  // Resolve whatever the previous process left half-done before serving.
  control::ReconcileReport report = service.ReconcileOnStartup();
  CHRONOS_LOG(kInfo, "control_server")
      << "startup reconciliation: clean_shutdown="
      << (report.clean_shutdown ? "true" : "false") << " actions="
      << report.ToJson().Dump();

  Status armed = ArmFailpoints(cmd.Flag("failpoints"));
  if (!armed.ok()) {
    std::cerr << "error: " << armed.ToString() << "\n";
    return 2;
  }

  Status handlers = control::InstallShutdownHandlers();
  if (!handlers.ok()) {
    std::cerr << "error: " << handlers.ToString() << "\n";
    return 1;
  }
  // POST /admin/drain ends in the same place as SIGTERM: the wait below.
  service.SetDrainCallback(control::NotifyShutdown);

  control::HeartbeatMonitorOptions monitor_options;
  monitor_options.interval_ms =
      Int64Flag(cmd, "monitor-interval-ms", 2000);
  monitor_options.jitter = 0.1;
  double jitter = 0.0;
  if (strings::ParseDouble(cmd.Flag("monitor-jitter"), &jitter)) {
    monitor_options.jitter = jitter;
  }
  monitor_options.seed =
      static_cast<uint64_t>(Int64Flag(cmd, "monitor-seed", 0));

  auto server = control::ControlServer::Start(
      &service, static_cast<int>(Int64Flag(cmd, "port", 0)), monitor_options);
  if (!server.ok()) {
    std::cerr << "error: " << server.status().ToString() << "\n";
    return 1;
  }
  CHRONOS_LOG(kInfo, "control_server")
      << "serving on 127.0.0.1:" << (*server)->port();

  if (cmd.HasFlag("port-file")) {
    // Durable + atomic so a watching parent never reads a partial write.
    Status wrote = file::WriteFileDurable(
        cmd.Flag("port-file"), std::to_string((*server)->port()) + "\n");
    if (!wrote.ok()) {
      std::cerr << "error: " << wrote.ToString() << "\n";
      return 1;
    }
  }

  int signum = control::WaitForShutdown();
  CHRONOS_LOG(kInfo, "control_server")
      << "shutdown requested (signal " << signum << "), draining";

  service.BeginDrain();  // Idempotent if the drain endpoint got here first.
  (*server)->Stop();     // In-flight requests finish; monitor stops.
  Status clean = service.MarkCleanShutdown();
  if (!clean.ok()) {
    std::cerr << "error: final checkpoint: " << clean.ToString() << "\n";
    return 1;
  }
  CHRONOS_LOG(kInfo, "control_server") << "clean shutdown complete";
  return 0;
}

}  // namespace
}  // namespace chronos::tools

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return chronos::tools::RunControlServer(args);
}
