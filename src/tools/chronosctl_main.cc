#include <iostream>
#include <string>
#include <vector>

#include "tools/chronosctl.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return chronos::tools::RunChronosctl(args, std::cout);
}
