#ifndef CHRONOS_TOOLS_CHRONOSCTL_H_
#define CHRONOS_TOOLS_CHRONOSCTL_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace chronos::tools {

// Parsed command line: positional words plus --flag value pairs
// (--flag alone is treated as boolean "true").
struct CommandLine {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static CommandLine Parse(const std::vector<std::string>& args);

  std::string Flag(const std::string& name,
                   const std::string& fallback = "") const;
  bool HasFlag(const std::string& name) const;
};

// Runs one chronosctl invocation against a Chronos Control server and
// writes human-readable output to `out`. Returns a process exit code.
//
//   chronosctl --server 127.0.0.1:8080 login --user admin --password s
//   chronosctl --server ... --token T status
//   chronosctl ... metrics [--raw]
//   chronosctl ... projects list
//   chronosctl ... projects create --name <name> [--description d]
//   chronosctl ... systems list
//   chronosctl ... deployments list [--system <id>]
//   chronosctl ... experiments list --project <id>
//   chronosctl ... evaluations create --experiment <id> [--name n]
//   chronosctl ... evaluation show <id> | evaluation watch <id>
//   chronosctl ... jobs list --evaluation <id> [--state s]
//   chronosctl ... job show <id> | job abort <id> | job reschedule <id>
//   chronosctl ... job log <id>
//   chronosctl ... drain
//   chronosctl ... diagrams <evaluation-id> [--csv]
//   chronosctl ... report <evaluation-id> --out <file.html>
//   chronosctl ... export <project-id> --out <file.zip>
int RunChronosctl(const std::vector<std::string>& args, std::ostream& out);

}  // namespace chronos::tools

#endif  // CHRONOS_TOOLS_CHRONOSCTL_H_
