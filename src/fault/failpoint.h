#ifndef CHRONOS_FAULT_FAILPOINT_H_
#define CHRONOS_FAULT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"

namespace chronos::obs {
class Counter;
}  // namespace chronos::obs

namespace chronos::fault {

// Fault-injection points ("fail points"), after MongoDB's mechanism of the
// same name: production code is sprinkled with named hooks that are inert by
// default and can be armed at runtime — from tests, from the admin REST
// endpoint (POST /api/v1/admin/failpoints), or via `chronosctl failpoint` —
// to return errors, inject latency, drop connections, or fire
// probabilistically from a *seeded* RNG so chaos runs replay bit-identically.
//
// Point IDs are lowercase, dot-separated `<subsystem>.<component>.<operation>`
// (e.g. "wal.append", "net.tcp.read", "agent.http.send"); see DESIGN.md §10
// for the full catalogue.

// What an armed point does when evaluated.
enum class Mode {
  kOff,          // Inert (same as not configured).
  kError,        // Return an error status.
  kDelay,        // Sleep `delay_ms` (no-op advance on SimulatedClock), no error.
  kClose,        // Drop the connection/stream, then return an error status.
  kProbability,  // Return an error on a seeded coin flip with probability p.
  kCrash,        // _exit(exit_code) on the spot: a kill -9-shaped crash.
};

std::string_view ModeName(Mode mode);

// Parsed form of a failpoint spec string:
//   "off" | "error" | "error(msg)" | "delay(ms)" | "close"
//   | "probability(p)" | "probability(p, seed)" | "crash" | "crash(code)"
struct FailPointSpec {
  Mode mode = Mode::kOff;
  std::string message;     // kError: custom status message (may be empty).
  int64_t delay_ms = 0;    // kDelay.
  double probability = 0;  // kProbability: chance in [0, 1] per evaluation.
  uint64_t seed = 0;       // kProbability: RNG seed (0 is a valid seed).
  int exit_code = 137;     // kCrash: process exit code (default = SIGKILL's).

  // Canonical round-trippable spec string, e.g. "probability(0.1, 42)".
  std::string ToString() const;

  static StatusOr<FailPointSpec> Parse(std::string_view text);
};

// The outcome of evaluating a point. kClose asks the call site to drop its
// connection/stream before surfacing `status`; sites without one treat it
// like kError.
struct Action {
  enum class Kind { kNone, kError, kClose };
  Kind kind = Kind::kNone;
  Status status = Status::Ok();
};

// Snapshot of one configured point, for listing/inspection.
struct PointInfo {
  std::string point;
  FailPointSpec spec;
  uint64_t evaluations = 0;  // Times an armed Evaluate reached this point.
  uint64_t triggers = 0;     // Times it actually fired (injected a fault).
};

// Process-wide registry of failpoints. Evaluate() on the hot path is a single
// relaxed atomic load while no point is armed, so leaving the hooks compiled
// into production code costs nothing measurable.
class FailPointRegistry {
 public:
  FailPointRegistry() = default;

  FailPointRegistry(const FailPointRegistry&) = delete;
  FailPointRegistry& operator=(const FailPointRegistry&) = delete;

  // Shared process-wide instance (never destroyed).
  static FailPointRegistry* Get();

  // Arms (or with Mode::kOff disarms) `point`. Resets the point's RNG and
  // trigger/evaluation counts: re-arming with the same seed replays the same
  // fault sequence, which is what makes chaos runs reproducible.
  void Set(const std::string& point, const FailPointSpec& spec);

  // Parses `spec` ("error(boom)", "probability(0.1, 42)", ...) and arms.
  Status SetFromString(const std::string& point, std::string_view spec);

  // Removes one point / all points. ClearAll() is the canonical test
  // teardown: the registry is process-global, so tests that arm points must
  // disarm them.
  void Clear(const std::string& point);
  void ClearAll();

  // Snapshot of every configured point, sorted by point ID.
  std::vector<PointInfo> List();

  // Trigger count for one point (0 if unknown).
  uint64_t triggers(const std::string& point);

  // Clock used by kDelay sleeps (default SystemClock). Inject a
  // SimulatedClock to make delay injection free of wall-clock time.
  void SetClock(Clock* clock);

  // Called by instrumented code at its injection point. Fast path: no point
  // armed anywhere -> one relaxed load, no lock, Action{kNone}.
  Action Evaluate(const std::string& point) {
    if (armed_points_.load(std::memory_order_relaxed) == 0) return Action{};
    return EvaluateSlow(point);
  }

 private:
  struct PointState {
    FailPointSpec spec;
    Rng rng{0};
    uint64_t evaluations = 0;
    uint64_t triggers = 0;
    obs::Counter* trigger_metric = nullptr;  // chronos_failpoint_triggers_total
  };

  Action EvaluateSlow(const std::string& point);

  // Number of configured points with mode != kOff; gates the fast path.
  std::atomic<int> armed_points_{0};
  std::atomic<Clock*> clock_{nullptr};  // nullptr -> SystemClock::Get().

  Mutex mu_;
  std::map<std::string, PointState> points_ CHRONOS_GUARDED_BY(mu_);
};

// Convenience for call sites without a connection to drop: evaluates `point`
// on the process-wide registry and returns the injected status (kClose
// degrades to its error status). Typical use:
//   CHRONOS_RETURN_IF_ERROR(fault::Inject("provisioner.launch"));
Status Inject(const std::string& point);

}  // namespace chronos::fault

#endif  // CHRONOS_FAULT_FAILPOINT_H_
