#include "fault/failpoint.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "obs/metrics_registry.h"

namespace chronos::fault {

namespace {

// "probability(0.1, 42)" -> inner "0.1, 42" split on ','. Returns false if
// `text` is not `name(...)` for the given name.
bool MatchCall(std::string_view text, std::string_view name,
               std::vector<std::string>* args) {
  if (!strings::StartsWith(text, name)) return false;
  std::string_view rest = text.substr(name.size());
  if (rest.empty()) return false;
  if (rest.front() != '(' || rest.back() != ')') return false;
  std::string_view inner = rest.substr(1, rest.size() - 2);
  args->clear();
  for (const std::string& piece : strings::Split(inner, ',')) {
    args->push_back(std::string(strings::Trim(piece)));
  }
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

Status InjectedError(const std::string& point, const FailPointSpec& spec) {
  if (spec.mode == Mode::kError && !spec.message.empty()) {
    return Status::Unavailable(spec.message);
  }
  if (spec.mode == Mode::kClose) {
    return Status::Unavailable("failpoint " + point + ": connection closed");
  }
  return Status::Unavailable("failpoint " + point + ": injected fault");
}

}  // namespace

std::string_view ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kError:
      return "error";
    case Mode::kDelay:
      return "delay";
    case Mode::kClose:
      return "close";
    case Mode::kProbability:
      return "probability";
    case Mode::kCrash:
      return "crash";
  }
  return "off";
}

std::string FailPointSpec::ToString() const {
  switch (mode) {
    case Mode::kOff:
      return "off";
    case Mode::kError:
      return message.empty() ? "error" : "error(" + message + ")";
    case Mode::kDelay:
      return "delay(" + std::to_string(delay_ms) + ")";
    case Mode::kClose:
      return "close";
    case Mode::kProbability:
      return "probability(" + FormatDouble(probability) + ", " +
             std::to_string(seed) + ")";
    case Mode::kCrash:
      return "crash(" + std::to_string(exit_code) + ")";
  }
  return "off";
}

StatusOr<FailPointSpec> FailPointSpec::Parse(std::string_view text) {
  std::string_view trimmed = strings::Trim(text);
  FailPointSpec spec;
  if (trimmed == "off") return spec;
  if (trimmed == "error") {
    spec.mode = Mode::kError;
    return spec;
  }
  if (trimmed == "close") {
    spec.mode = Mode::kClose;
    return spec;
  }
  if (trimmed == "crash") {
    spec.mode = Mode::kCrash;
    return spec;
  }
  std::vector<std::string> args;
  if (MatchCall(trimmed, "error", &args)) {
    spec.mode = Mode::kError;
    // The message may itself contain commas; rejoin what Split cut apart.
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) spec.message += ", ";
      spec.message += args[i];
    }
    return spec;
  }
  if (MatchCall(trimmed, "delay", &args)) {
    uint64_t ms = 0;
    if (args.size() != 1 || !strings::ParseUint64(args[0], &ms)) {
      return Status::InvalidArgument("bad delay spec: " + std::string(text));
    }
    spec.mode = Mode::kDelay;
    spec.delay_ms = static_cast<int64_t>(ms);
    return spec;
  }
  if (MatchCall(trimmed, "crash", &args)) {
    uint64_t code = 0;
    if (args.size() != 1 || !strings::ParseUint64(args[0], &code) ||
        code > 255) {
      return Status::InvalidArgument("bad crash spec: " + std::string(text));
    }
    spec.mode = Mode::kCrash;
    spec.exit_code = static_cast<int>(code);
    return spec;
  }
  if (MatchCall(trimmed, "probability", &args)) {
    double p = 0;
    if (args.empty() || args.size() > 2 || !ParseDouble(args[0], &p) ||
        p < 0.0 || p > 1.0) {
      return Status::InvalidArgument("bad probability spec: " +
                                     std::string(text));
    }
    uint64_t seed = 0;
    if (args.size() == 2 && !strings::ParseUint64(args[1], &seed)) {
      return Status::InvalidArgument("bad probability seed: " +
                                     std::string(text));
    }
    spec.mode = Mode::kProbability;
    spec.probability = p;
    spec.seed = seed;
    return spec;
  }
  return Status::InvalidArgument("unrecognized failpoint spec: " +
                                 std::string(text) +
                                 " (expected off|error[(msg)]|delay(ms)|"
                                 "close|probability(p[, seed])|"
                                 "crash[(code)])");
}

FailPointRegistry* FailPointRegistry::Get() {
  static FailPointRegistry* instance = new FailPointRegistry();
  return instance;
}

void FailPointRegistry::Set(const std::string& point,
                            const FailPointSpec& spec) {
  obs::Counter* metric = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_failpoint_triggers_total", "Faults injected, per failpoint",
      {{"point", point}});
  MutexLock lock(mu_);
  auto [it, inserted] = points_.try_emplace(point);
  PointState& state = it->second;
  if (!inserted && state.spec.mode != Mode::kOff) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
  state.spec = spec;
  state.rng.Seed(spec.seed);
  state.evaluations = 0;
  state.triggers = 0;
  state.trigger_metric = metric;
  if (spec.mode != Mode::kOff) {
    armed_points_.fetch_add(1, std::memory_order_relaxed);
  }
}

Status FailPointRegistry::SetFromString(const std::string& point,
                                        std::string_view spec) {
  if (strings::Trim(point).empty() || point != strings::Trim(point)) {
    return Status::InvalidArgument("bad failpoint name: '" + point + "'");
  }
  CHRONOS_ASSIGN_OR_RETURN(FailPointSpec parsed, FailPointSpec::Parse(spec));
  Set(point, parsed);
  return Status::Ok();
}

void FailPointRegistry::Clear(const std::string& point) {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return;
  if (it->second.spec.mode != Mode::kOff) {
    armed_points_.fetch_sub(1, std::memory_order_relaxed);
  }
  points_.erase(it);
}

void FailPointRegistry::ClearAll() {
  MutexLock lock(mu_);
  for (const auto& [point, state] : points_) {
    if (state.spec.mode != Mode::kOff) {
      armed_points_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  points_.clear();
}

std::vector<PointInfo> FailPointRegistry::List() {
  MutexLock lock(mu_);
  std::vector<PointInfo> out;
  out.reserve(points_.size());
  for (const auto& [point, state] : points_) {
    PointInfo info;
    info.point = point;
    info.spec = state.spec;
    info.evaluations = state.evaluations;
    info.triggers = state.triggers;
    out.push_back(std::move(info));
  }
  return out;  // std::map iteration order is already sorted by point ID.
}

uint64_t FailPointRegistry::triggers(const std::string& point) {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.triggers;
}

void FailPointRegistry::SetClock(Clock* clock) {
  clock_.store(clock, std::memory_order_release);
}

Action FailPointRegistry::EvaluateSlow(const std::string& point) {
  int64_t delay_ms = 0;
  Action action;
  {
    MutexLock lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end() || it->second.spec.mode == Mode::kOff) {
      return action;
    }
    PointState& state = it->second;
    state.evaluations++;
    switch (state.spec.mode) {
      case Mode::kOff:
        return action;
      case Mode::kError:
        action.kind = Action::Kind::kError;
        break;
      case Mode::kClose:
        action.kind = Action::Kind::kClose;
        break;
      case Mode::kDelay:
        delay_ms = state.spec.delay_ms;
        break;
      case Mode::kProbability:
        // Every evaluation draws, fired or not, so the fault pattern is a
        // pure function of (seed, evaluation sequence).
        if (state.rng.NextBool(state.spec.probability)) {
          action.kind = Action::Kind::kError;
        }
        break;
      case Mode::kCrash:
        // A kill -9-shaped death at a chosen seam: no flushing, no atexit
        // handlers, no destructors — whatever the code above this point made
        // durable is all recovery gets. The crash-recovery harness forks a
        // real server, arms one of these, and asserts the restart heals.
        state.triggers++;
        ::_exit(state.spec.exit_code);
    }
    if (action.kind != Action::Kind::kNone || state.spec.mode == Mode::kDelay) {
      state.triggers++;
      if (state.trigger_metric != nullptr) state.trigger_metric->Increment();
      if (action.kind != Action::Kind::kNone) {
        action.status = InjectedError(point, state.spec);
      }
    }
  }
  if (delay_ms > 0) {
    // Sleep outside the registry lock so a delayed point cannot stall
    // evaluations of other points.
    Clock* clock = clock_.load(std::memory_order_acquire);
    (clock != nullptr ? clock : SystemClock::Get())->SleepMs(delay_ms);
  }
  return action;
}

Status Inject(const std::string& point) {
  Action action = FailPointRegistry::Get()->Evaluate(point);
  if (action.kind == Action::Kind::kNone) return Status::Ok();
  return action.status;
}

}  // namespace chronos::fault
