#ifndef CHRONOS_SUE_MOKKADB_MMAP_ENGINE_H_
#define CHRONOS_SUE_MOKKADB_MMAP_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sue/mokkadb/storage_engine.h"

namespace chronos::mokka {

struct MmapEngineOptions {
  // Size of each storage extent (mmapv1 allocated files in growing extents;
  // a fixed extent size keeps the arithmetic simple).
  size_t extent_bytes = 1 << 20;
  // Records are padded to the next power of two of (size * padding_factor),
  // mirroring mmapv1's paddingFactor that leaves room for in-place growth.
  double padding_factor = 1.2;
  // Simulated storage latency per operation (see MakeStorageEngine). Writes
  // incur it WHILE HOLDING the collection-exclusive lock — concurrent
  // writers serialize, the defining mmapv1 behaviour. Reads incur it under
  // the shared lock and overlap.
  int64_t read_io_us = 0;
  int64_t write_io_us = 0;
};

// "mmapv1-like" engine: documents live in large flat extents at stable
// offsets, padded to allow in-place updates; growth past the allocated slot
// relocates the record ("document move"). Concurrency is collection-level:
// one reader-writer lock — many readers or exactly one writer. This is the
// defining contrast with the btree engine in the paper's demo.
class MmapEngine : public StorageEngine {
 public:
  explicit MmapEngine(MmapEngineOptions options = {});
  ~MmapEngine() override;

  MmapEngine(const MmapEngine&) = delete;
  MmapEngine& operator=(const MmapEngine&) = delete;

  std::string_view name() const override { return "mmap"; }

  Status Insert(const std::string& id, std::string_view document) override;
  StatusOr<std::string> Get(const std::string& id) const override;
  Status Update(const std::string& id, std::string_view document) override;
  Status Remove(const std::string& id) override;
  void Scan(const std::string& from,
            const std::function<bool(const std::string&, const std::string&)>&
                visitor) const override;
  uint64_t Count() const override;
  EngineStats Stats() const override;

  // Exposed for tests: number of extents allocated so far.
  size_t ExtentCount() const;

 private:
  struct RecordRef {
    uint32_t extent = 0;
    uint32_t offset = 0;
    uint32_t capacity = 0;  // Padded slot size.
    uint32_t size = 0;      // Live bytes.
  };

  // Rounds a requested size up to its padded slot size.
  uint32_t PaddedSize(size_t size) const;
  // Allocates a slot (freelist first, then extent tail). Lock held.
  RecordRef Allocate(uint32_t padded) CHRONOS_REQUIRES(collection_mu_);
  // Copies document bytes into the slot. Lock held.
  void WriteRecord(const RecordRef& ref, std::string_view document)
      CHRONOS_REQUIRES(collection_mu_);
  std::string ReadRecord(const RecordRef& ref) const
      CHRONOS_REQUIRES_SHARED(collection_mu_);

  MmapEngineOptions options_;

  mutable SharedMutex collection_mu_;  // THE collection-level lock.
  std::vector<std::unique_ptr<std::vector<char>>> extents_
      CHRONOS_GUARDED_BY(collection_mu_);
  size_t tail_extent_ CHRONOS_GUARDED_BY(collection_mu_) = 0;
  size_t tail_offset_ CHRONOS_GUARDED_BY(collection_mu_) = 0;
  // Free slots by capacity (power-of-two size classes).
  std::map<uint32_t, std::vector<RecordRef>> freelist_
      CHRONOS_GUARDED_BY(collection_mu_);
  // Primary index; std::map gives id-ordered scans.
  std::map<std::string, RecordRef> index_ CHRONOS_GUARDED_BY(collection_mu_);

  uint64_t inserts_ CHRONOS_GUARDED_BY(collection_mu_) = 0;
  uint64_t updates_ CHRONOS_GUARDED_BY(collection_mu_) = 0;
  uint64_t removes_ CHRONOS_GUARDED_BY(collection_mu_) = 0;
  // Bumped under the shared lock by concurrent readers, hence atomic.
  mutable std::atomic<uint64_t> reads_{0}, scans_{0};
  uint64_t logical_bytes_ CHRONOS_GUARDED_BY(collection_mu_) = 0;
  uint64_t stored_bytes_ CHRONOS_GUARDED_BY(collection_mu_) = 0;
  uint64_t moves_ CHRONOS_GUARDED_BY(collection_mu_) = 0;
};

}  // namespace chronos::mokka

#endif  // CHRONOS_SUE_MOKKADB_MMAP_ENGINE_H_
