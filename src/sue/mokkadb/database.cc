#include "sue/mokkadb/database.h"

#include "common/file_util.h"

namespace chronos::mokka {

StatusOr<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  if (db->options_.data_dir.empty()) return db;
  CHRONOS_RETURN_IF_ERROR(file::MakeDirs(db->options_.data_dir));
  CHRONOS_RETURN_IF_ERROR(db->LoadFromDisk());
  CHRONOS_ASSIGN_OR_RETURN(db->journal_, store::Wal::Open(db->JournalPath()));
  // Journaling hooks attach only after recovery so replay does not
  // re-journal.
  MutexLock lock(db->mu_);
  for (auto& [name, info] : db->collections_) {
    db->AttachJournal(name, info.collection.get());
  }
  return db;
}

Status Database::LoadFromDisk() {
  MutexLock lock(mu_);
  // 1. Snapshot.
  if (file::Exists(SnapshotPath())) {
    CHRONOS_ASSIGN_OR_RETURN(std::string text, file::ReadFile(SnapshotPath()));
    CHRONOS_ASSIGN_OR_RETURN(json::Json snapshot, json::Parse(text));
    for (const json::Json& entry : snapshot.at("collections").as_array()) {
      CHRONOS_ASSIGN_OR_RETURN(
          Collection * collection,
          CreateLocked(entry.GetStringOr("name", ""),
                       entry.GetStringOr("engine", ""),
                       entry.at("engine_options")));
      for (const json::Json& doc : entry.at("docs").as_array()) {
        CHRONOS_RETURN_IF_ERROR(collection->InsertOne(doc).status());
      }
      for (const json::Json& field : entry.at("indexes").as_array()) {
        CHRONOS_RETURN_IF_ERROR(
            collection->CreateIndex(field.as_string()));
      }
    }
  }
  // 2. Journal replay. Records that fail to apply (e.g. duplicate insert
  // from a torn shutdown) are skipped — replay is idempotent-best-effort.
  CHRONOS_ASSIGN_OR_RETURN(std::vector<std::string> records,
                           store::Wal::Replay(JournalPath()));
  for (const std::string& raw : records) {
    auto record = json::Parse(raw);
    if (!record.ok()) break;  // Corrupt tail.
    ApplyRecord(*record);
  }
  return Status::Ok();
}

void Database::ApplyRecord(const json::Json& record) {
  std::string op = record.GetStringOr("op", "");
  std::string coll_name = record.GetStringOr("coll", "");
  if (op == "create_collection") {
    CreateLocked(coll_name, record.GetStringOr("engine", ""),
                 record.at("engine_options"))
        .IgnoreError();
    return;
  }
  if (op == "drop") {
    collections_.erase(coll_name);
    return;
  }
  auto it = collections_.find(coll_name);
  if (it == collections_.end()) return;
  Collection* collection = it->second.collection.get();
  if (op == "insert") {
    collection->InsertOne(record.at("doc")).IgnoreError();
  } else if (op == "update") {
    json::Json filter = json::Json::MakeObject();
    filter.Set("_id", record.GetStringOr("id", ""));
    collection->UpdateOne(filter, record.at("doc")).IgnoreError();
  } else if (op == "delete") {
    json::Json filter = json::Json::MakeObject();
    filter.Set("_id", record.GetStringOr("id", ""));
    collection->DeleteOne(filter).IgnoreError();
  } else if (op == "create_index") {
    collection->CreateIndex(record.GetStringOr("field", "")).IgnoreError();
  }
}

void Database::AttachJournal(const std::string& name,
                             Collection* collection) {
  if (journal_ == nullptr) return;
  store::Wal* journal = journal_.get();
  bool sync = options_.sync_journal;
  collection->SetJournalHook([journal, name, sync](const json::Json& record) {
    json::Json stamped = record;
    stamped.Set("coll", name);
    journal->Append(stamped.Dump(), sync).IgnoreError();
  });
}

StatusOr<Collection*> Database::CreateLocked(
    const std::string& name, const std::string& engine,
    const json::Json& engine_options) {
  if (name.empty()) {
    return Status::InvalidArgument("collection name must not be empty");
  }
  if (collections_.count(name) > 0) {
    return Status::AlreadyExists("collection exists: " + name);
  }
  std::string engine_name =
      engine.empty() ? options_.default_engine : engine;
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<StorageEngine> storage,
                           MakeStorageEngine(engine_name, engine_options));
  auto collection = std::make_unique<Collection>(name, std::move(storage));
  Collection* raw = collection.get();
  collections_[name] =
      CollectionInfo{std::move(collection), engine_name, engine_options};
  return raw;
}

StatusOr<Collection*> Database::CreateCollection(
    const std::string& name, const std::string& engine,
    const json::Json& engine_options) {
  MutexLock lock(mu_);
  CHRONOS_ASSIGN_OR_RETURN(Collection * collection,
                           CreateLocked(name, engine, engine_options));
  if (journal_ != nullptr) {
    json::Json record = json::Json::MakeObject();
    record.Set("op", "create_collection");
    record.Set("coll", name);
    record.Set("engine", collections_[name].engine);
    record.Set("engine_options", engine_options);
    journal_->Append(record.Dump(), options_.sync_journal).IgnoreError();
    AttachJournal(name, collection);
  }
  return collection;
}

StatusOr<Collection*> Database::GetOrCreate(const std::string& name) {
  {
    MutexLock lock(mu_);
    auto it = collections_.find(name);
    if (it != collections_.end()) return it->second.collection.get();
  }
  auto created = CreateCollection(name);
  if (created.ok()) return created;
  if (created.status().IsAlreadyExists()) return Get(name);
  return created;
}

StatusOr<Collection*> Database::Get(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection: " + name);
  }
  return it->second.collection.get();
}

Status Database::Drop(const std::string& name) {
  MutexLock lock(mu_);
  if (collections_.erase(name) == 0) {
    return Status::NotFound("no collection: " + name);
  }
  if (journal_ != nullptr) {
    json::Json record = json::Json::MakeObject();
    record.Set("op", "drop");
    record.Set("coll", name);
    journal_->Append(record.Dump(), options_.sync_journal).IgnoreError();
  }
  return Status::Ok();
}

std::vector<std::string> Database::CollectionNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, info] : collections_) names.push_back(name);
  return names;
}

uint64_t Database::journal_bytes() const {
  return journal_ == nullptr ? 0 : journal_->size_bytes();
}

Status Database::CompactJournal() {
  if (journal_ == nullptr) return Status::Ok();
  MutexLock lock(mu_);
  json::Json snapshot = json::Json::MakeObject();
  json::Json collections = json::Json::MakeArray();
  for (const auto& [name, info] : collections_) {
    json::Json entry = json::Json::MakeObject();
    entry.Set("name", name);
    entry.Set("engine", info.engine);
    entry.Set("engine_options", info.engine_options);
    json::Json docs = json::Json::MakeArray();
    for (json::Json& doc : info.collection->ScanRange("", 0)) {
      docs.Append(std::move(doc));
    }
    entry.Set("docs", std::move(docs));
    json::Json indexes = json::Json::MakeArray();
    for (const std::string& field : info.collection->IndexedFields()) {
      indexes.Append(field);
    }
    entry.Set("indexes", std::move(indexes));
    collections.Append(std::move(entry));
  }
  snapshot.Set("collections", std::move(collections));

  std::string tmp = SnapshotPath() + ".tmp";
  CHRONOS_RETURN_IF_ERROR(file::WriteFile(tmp, snapshot.Dump()));
  if (std::rename(tmp.c_str(), SnapshotPath().c_str()) != 0) {
    return Status::IoError("snapshot rename failed");
  }
  return journal_->Truncate();
}

json::Json Database::Stats() const {
  MutexLock lock(mu_);
  json::Json out = json::Json::MakeObject();
  for (const auto& [name, info] : collections_) {
    json::Json entry = info.collection->Stats().ToJson();
    entry.Set("engine", std::string(info.collection->engine_name()));
    out.Set(name, std::move(entry));
  }
  return out;
}

}  // namespace chronos::mokka
