#ifndef CHRONOS_SUE_MOKKADB_STORAGE_ENGINE_H_
#define CHRONOS_SUE_MOKKADB_STORAGE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/statusor.h"
#include "json/json.h"

namespace chronos::mokka {

// Aggregate counters a storage engine exposes (surfaced by `db.stats()`).
struct EngineStats {
  uint64_t inserts = 0;
  uint64_t reads = 0;
  uint64_t updates = 0;
  uint64_t removes = 0;
  uint64_t scans = 0;
  uint64_t document_count = 0;
  uint64_t logical_bytes = 0;  // Uncompressed document bytes.
  uint64_t stored_bytes = 0;   // Bytes actually held (post-compression /
                               // including padding).
  uint64_t moves = 0;          // mmap engine: documents relocated on growth.

  json::Json ToJson() const;
};

// Pluggable per-collection storage engine, mirroring MongoDB's
// --storageEngine switch that the paper's demo compares (wiredTiger vs
// mmapv1). Keys are document ids; values are serialized documents. Engines
// are internally synchronized — their *locking granularity* is the point of
// the comparison:
//
//   * BTreeEngine ("wiredtiger"): ordered B+-tree pages, fine-grained
//     (stripe) latching so writers to different documents proceed in
//     parallel, and transparent block compression.
//   * MmapEngine ("mmapv1"): extent/arena storage with power-of-two record
//     padding, in-place updates, and one collection-level reader-writer
//     lock — readers share, every writer is exclusive.
class StorageEngine {
 public:
  virtual ~StorageEngine() = default;

  virtual std::string_view name() const = 0;

  // Fails with AlreadyExists on duplicate id.
  virtual Status Insert(const std::string& id, std::string_view document) = 0;

  virtual StatusOr<std::string> Get(const std::string& id) const = 0;

  // Fails with NotFound if absent.
  virtual Status Update(const std::string& id, std::string_view document) = 0;

  virtual Status Remove(const std::string& id) = 0;

  // Visits documents in engine order, starting at the first id >= `from`
  // (BTree: id order; Mmap: id order via its index, see implementation).
  // Stops early when the visitor returns false.
  virtual void Scan(
      const std::string& from,
      const std::function<bool(const std::string& id,
                               const std::string& document)>& visitor)
      const = 0;

  virtual uint64_t Count() const = 0;

  virtual EngineStats Stats() const = 0;
};

// Factory by engine name: "btree" (alias "wiredtiger") or "mmap" (alias
// "mmapv1").
//
// `engine_options` (optional JSON object) tunes the engine:
//   read_io_us / write_io_us — simulated storage latency per operation,
//     incurred WHILE HOLDING the engine's locks. This stands in for the
//     disk/page-cache work of a real mongod: with it enabled, the locking
//     granularity (document-level vs collection-level) governs how
//     concurrent clients overlap, reproducing the paper demo's comparative
//     behaviour even on machines without many cores.
//   compression (bool, btree only) — toggle block compression.
//   padding_factor (double, mmap only) — record padding for in-place growth.
StatusOr<std::unique_ptr<StorageEngine>> MakeStorageEngine(
    const std::string& name);
StatusOr<std::unique_ptr<StorageEngine>> MakeStorageEngine(
    const std::string& name, const json::Json& engine_options);

// Sleeps for ~`micros` to model a storage-device access (no-op for <= 0).
void SimulatedIo(int64_t micros);

}  // namespace chronos::mokka

#endif  // CHRONOS_SUE_MOKKADB_STORAGE_ENGINE_H_
