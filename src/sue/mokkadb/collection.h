#ifndef CHRONOS_SUE_MOKKADB_COLLECTION_H_
#define CHRONOS_SUE_MOKKADB_COLLECTION_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "json/json.h"
#include "sue/mokkadb/storage_engine.h"

namespace chronos::mokka {

// Options for Find-family queries.
struct FindOptions {
  uint64_t limit = 0;       // 0 = unlimited.
  std::string sort_field;   // Empty = _id order.
  bool sort_descending = false;
  // Fields to include in returned documents ("_id" always included).
  // Empty = full documents.
  std::vector<std::string> projection;
};

// Grouped aggregation over matching documents (a small slice of MongoDB's
// aggregation framework).
struct AggregationSpec {
  struct Accumulator {
    std::string op;     // "count" | "sum" | "avg" | "min" | "max"
    std::string field;  // Source field (unused for count).
  };
  // Group key field; empty = one group over all matches.
  std::string group_by;
  // Output field name -> accumulator.
  std::map<std::string, Accumulator> accumulators;
};

// Query layer over a storage engine: MongoDB-flavoured CRUD on JSON
// documents keyed by "_id".
//
// Filters are JSON objects. A field mapped to a scalar is an equality
// predicate; mapped to an operator object it supports $gt/$gte/$lt/$lte/$ne/
// $in. An empty filter matches everything. {"_id": "..."} uses the primary
// index.
//
// Updates are either a replacement document or an operator document with
// $set / $inc / $unset.
class Collection {
 public:
  Collection(std::string name, std::unique_ptr<StorageEngine> engine);

  const std::string& name() const { return name_; }
  std::string_view engine_name() const { return engine_->name(); }

  // Inserts a document. Missing "_id" gets a generated UUID; the effective
  // id is returned.
  StatusOr<std::string> InsertOne(json::Json document);

  StatusOr<json::Json> FindById(const std::string& id) const;

  // All matching documents in id order (up to limit; 0 = unlimited).
  StatusOr<std::vector<json::Json>> Find(const json::Json& filter,
                                         uint64_t limit = 0) const;

  // Find with sort / projection / limit. Sorting is applied after matching
  // (limit cuts the *sorted* result, like MongoDB).
  StatusOr<std::vector<json::Json>> FindWithOptions(
      const json::Json& filter, const FindOptions& options) const;

  StatusOr<json::Json> FindOne(const json::Json& filter) const;

  // --- Secondary indexes ---

  // Builds an equality index over `field` from the current contents;
  // maintained by subsequent mutations. Fails with AlreadyExists if the
  // index exists.
  Status CreateIndex(const std::string& field);
  Status DropIndex(const std::string& field);
  std::vector<std::string> IndexedFields() const;
  bool HasIndex(const std::string& field) const;

  // Returns number of documents modified (0 or 1).
  StatusOr<int> UpdateOne(const json::Json& filter, const json::Json& update);

  // Updates every matching document; returns the count.
  StatusOr<int> UpdateMany(const json::Json& filter, const json::Json& update);

  // Returns number of documents removed (0 or 1).
  StatusOr<int> DeleteOne(const json::Json& filter);

  StatusOr<uint64_t> CountDocuments(const json::Json& filter) const;

  // Runs the aggregation over matching documents. Returns one document per
  // group, ordered by group key: {"_id": <group value>, <name>: <value>...}.
  // Non-numeric field values are skipped by sum/avg/min/max.
  StatusOr<std::vector<json::Json>> Aggregate(
      const json::Json& filter, const AggregationSpec& spec) const;

  // Range scan: documents with id >= from, up to `limit`.
  std::vector<json::Json> ScanRange(const std::string& from,
                                    uint64_t limit) const;

  uint64_t Count() const { return engine_->Count(); }
  EngineStats Stats() const { return engine_->Stats(); }

  // Installs a journaling hook invoked after every successful mutation with
  // a record {"op": "insert"|"update"|"delete", "id": ..., "doc": ...}.
  // Used by Database's durability layer; pass nullptr to detach.
  void SetJournalHook(std::function<void(const json::Json&)> hook) {
    journal_hook_ = std::move(hook);
  }

  // True iff `document` satisfies `filter` (exposed for tests).
  static StatusOr<bool> Matches(const json::Json& document,
                                const json::Json& filter);

  // Applies an update spec to a document (exposed for tests).
  static StatusOr<json::Json> ApplyUpdate(const json::Json& document,
                                          const json::Json& update);

 private:
  // Runs `visitor` over candidate documents, using the _id fast path or a
  // matching secondary index when the filter pins an indexed field.
  Status VisitMatches(
      const json::Json& filter, uint64_t limit,
      const std::function<bool(const std::string& id, json::Json doc)>&
          visitor) const;

  // Index maintenance hooks (called with the pre/post images).
  void IndexInsert(const std::string& id, const json::Json& doc);
  void IndexRemove(const std::string& id, const json::Json& doc);

  // Returns ids the index maps to `value` for `field`, or nullopt if no
  // such index exists.
  std::optional<std::vector<std::string>> IndexLookup(
      const std::string& field, const json::Json& value) const;

  // Emits a journal record if a hook is installed.
  void Journal(const char* op, const std::string& id,
               const json::Json* doc) const;

  std::string name_;
  std::unique_ptr<StorageEngine> engine_;
  std::function<void(const json::Json&)> journal_hook_;

  // field -> (canonical value dump -> ids).
  mutable SharedMutex index_mu_;
  std::map<std::string, std::map<std::string, std::set<std::string>>>
      indexes_ CHRONOS_GUARDED_BY(index_mu_);
};

}  // namespace chronos::mokka

#endif  // CHRONOS_SUE_MOKKADB_COLLECTION_H_
