#ifndef CHRONOS_SUE_MOKKADB_WIRE_H_
#define CHRONOS_SUE_MOKKADB_WIRE_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/tcp.h"
#include "sue/mokkadb/database.h"

namespace chronos::mokka {

// Newline-delimited JSON wire protocol, one request/response pair per line:
//
//   -> {"op":"insert","coll":"usertable","doc":{...}}
//   <- {"ok":true,"id":"..."}
//   -> {"op":"find","coll":"usertable","filter":{...},"limit":10}
//   <- {"ok":true,"docs":[...]}
//
// Ops: ping, create_collection (engine), drop, insert, get (id), find,
// find_one, update_one, update_many, delete_one, count, scan (from, limit),
// stats, list_collections.
//
// This stands in for the MongoDB wire protocol: each Chronos *deployment* of
// MokkaDB is one listening server, so evaluation clients exercise a real
// network round trip per operation.

// Handles one request object against a database (also used in-process by
// tests).
json::Json HandleWireRequest(Database* db, const json::Json& request);

class WireServer {
 public:
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  // Starts serving `db` (not owned) on 127.0.0.1:port (0 = ephemeral).
  static StatusOr<std::unique_ptr<WireServer>> Start(Database* db, int port);

  int port() const { return listener_->port(); }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port());
  }

  void Stop();

 private:
  WireServer(Database* db, std::unique_ptr<net::TcpListener> listener);

  void AcceptLoop();
  void ServeConnection(std::unique_ptr<net::TcpConnection> conn);

  Database* db_;
  std::unique_ptr<net::TcpListener> listener_;
  std::thread accept_thread_;
  Mutex sessions_mu_;
  std::vector<std::thread> sessions_ CHRONOS_GUARDED_BY(sessions_mu_);
  std::atomic<bool> stopping_{false};
};

// Blocking client over one persistent connection. Not thread-safe; each
// benchmark thread owns its own client (as a MongoDB driver connection).
class WireClient {
 public:
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  static StatusOr<std::unique_ptr<WireClient>> Connect(
      const std::string& host, int port);
  // "host:port" form.
  static StatusOr<std::unique_ptr<WireClient>> ConnectEndpoint(
      const std::string& endpoint);

  Status Ping();
  Status CreateCollection(const std::string& coll, const std::string& engine,
                          const json::Json& engine_options = json::Json());
  Status Drop(const std::string& coll);
  StatusOr<std::string> Insert(const std::string& coll, json::Json doc);
  StatusOr<json::Json> Get(const std::string& coll, const std::string& id);
  StatusOr<std::vector<json::Json>> Find(const std::string& coll,
                                         const json::Json& filter,
                                         uint64_t limit = 0);
  StatusOr<int> UpdateOne(const std::string& coll, const json::Json& filter,
                          const json::Json& update);
  StatusOr<int> DeleteOne(const std::string& coll, const json::Json& filter);
  StatusOr<uint64_t> Count(const std::string& coll, const json::Json& filter);
  StatusOr<std::vector<json::Json>> Scan(const std::string& coll,
                                         const std::string& from,
                                         uint64_t limit);
  StatusOr<json::Json> Stats();

  // Raw round trip (exposed for tests / custom ops).
  StatusOr<json::Json> Call(const json::Json& request);

 private:
  explicit WireClient(std::unique_ptr<net::TcpConnection> conn)
      : conn_(std::move(conn)) {}

  std::unique_ptr<net::TcpConnection> conn_;
};

}  // namespace chronos::mokka

#endif  // CHRONOS_SUE_MOKKADB_WIRE_H_
