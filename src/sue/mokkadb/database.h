#ifndef CHRONOS_SUE_MOKKADB_DATABASE_H_
#define CHRONOS_SUE_MOKKADB_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "store/wal.h"
#include "sue/mokkadb/collection.h"

namespace chronos::mokka {

struct DatabaseOptions {
  std::string default_engine = "btree";
  // Directory for the journal + snapshot. Empty = purely in-memory (the
  // default for benchmark runs, where the dataset is regenerated per job).
  std::string data_dir;
  // fsync the journal on every mutation (paper-era mongod's j:true).
  bool sync_journal = false;
};

// An in-process MokkaDB instance: named collections, each bound to a storage
// engine chosen at creation time (mirroring `mongod --storageEngine`, which
// the paper's demo flips between wiredTiger and mmapv1).
//
// Durability: with a data_dir, every mutation is journaled through a WAL;
// Open() recovers the last snapshot plus the journal tail, and
// CompactJournal() writes a fresh snapshot and truncates the journal —
// mirroring mongod's journal + checkpoint design.
class Database {
 public:
  explicit Database(std::string default_engine = "btree")
      : options_{std::move(default_engine), "", false} {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Opens a (possibly durable) database; recovers from options.data_dir if
  // one is given and state exists there.
  static StatusOr<std::unique_ptr<Database>> Open(DatabaseOptions options);

  // Creates a collection with the given engine ("" = database default) and
  // optional engine options (see MakeStorageEngine).
  StatusOr<Collection*> CreateCollection(
      const std::string& name, const std::string& engine = "",
      const json::Json& engine_options = json::Json());

  // Returns the collection, creating it with the default engine on first
  // access (MongoDB's implicit-creation behaviour).
  StatusOr<Collection*> GetOrCreate(const std::string& name);

  StatusOr<Collection*> Get(const std::string& name) const;

  Status Drop(const std::string& name);

  std::vector<std::string> CollectionNames() const;

  const std::string& default_engine() const {
    return options_.default_engine;
  }
  bool durable() const { return journal_ != nullptr; }
  uint64_t journal_bytes() const;

  // Writes a full snapshot and truncates the journal. No-op in-memory.
  Status CompactJournal();

  // Aggregate stats over all collections.
  json::Json Stats() const;

 private:
  explicit Database(DatabaseOptions options)
      : options_(std::move(options)) {}

  struct CollectionInfo {
    std::unique_ptr<Collection> collection;
    std::string engine;
    json::Json engine_options;
  };

  // Creates the collection object without journaling (shared by the public
  // path and recovery). Caller holds mu_.
  StatusOr<Collection*> CreateLocked(const std::string& name,
                                     const std::string& engine,
                                     const json::Json& engine_options)
      CHRONOS_REQUIRES(mu_);
  // Re-applies one journal/snapshot record. Caller holds mu_.
  void ApplyRecord(const json::Json& record) CHRONOS_REQUIRES(mu_);
  // Installs the journaling hook on a collection. Caller holds mu_.
  void AttachJournal(const std::string& name, Collection* collection)
      CHRONOS_REQUIRES(mu_);
  Status LoadFromDisk() CHRONOS_EXCLUDES(mu_);
  std::string SnapshotPath() const { return options_.data_dir + "/snapshot.json"; }
  std::string JournalPath() const { return options_.data_dir + "/journal.log"; }

  DatabaseOptions options_;
  std::unique_ptr<store::Wal> journal_;
  mutable Mutex mu_;
  std::map<std::string, CollectionInfo> collections_ CHRONOS_GUARDED_BY(mu_);
};

}  // namespace chronos::mokka

#endif  // CHRONOS_SUE_MOKKADB_DATABASE_H_
