#include "sue/mokkadb/btree_engine.h"

#include <algorithm>

#include "archive/compress.h"

namespace chronos::mokka {

// Classic B+-tree node. Internal nodes hold separator keys and children;
// leaves hold (id, Slot) pairs and a next-leaf pointer for range scans.
struct BTreeEngine::Node {
  bool is_leaf = true;
  std::vector<std::string> keys;
  // Internal: children.size() == keys.size() + 1.
  std::vector<std::unique_ptr<Node>> children;
  // Leaf payloads, parallel to keys.
  std::vector<Slot> slots;
  Node* next_leaf = nullptr;
};

BTreeEngine::BTreeEngine(BTreeEngineOptions options)
    : options_(options), root_(std::make_unique<Node>()) {
  if (options_.node_capacity < 4) options_.node_capacity = 4;
}

BTreeEngine::~BTreeEngine() = default;

std::string BTreeEngine::Encode(std::string_view document, Slot* slot) const {
  slot->raw_size = static_cast<uint32_t>(document.size());
  if (options_.compression &&
      document.size() >= options_.compression_threshold) {
    std::string compressed = archive::LzCompress(document);
    if (compressed.size() < document.size()) {
      slot->compressed = true;
      slot->bytes = std::move(compressed);
      return slot->bytes;
    }
  }
  slot->compressed = false;
  slot->bytes = std::string(document);
  return slot->bytes;
}

StatusOr<std::string> BTreeEngine::Decode(const Slot& slot) const {
  if (!slot.compressed) return slot.bytes;
  return archive::LzDecompress(slot.bytes);
}

Mutex& BTreeEngine::StripeFor(const std::string& id) const {
  size_t hash = std::hash<std::string>{}(id);
  return stripes_[hash % kStripes];
}

BTreeEngine::Node* BTreeEngine::FindLeaf(const std::string& id) const {
  Node* node = root_.get();
  while (!node->is_leaf) {
    // First separator strictly greater than id decides the child.
    size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), id) -
               node->keys.begin();
    node = node->children[i].get();
  }
  return node;
}

void BTreeEngine::SplitChild(Node* parent, int index) {
  Node* child = parent->children[index].get();
  auto right = std::make_unique<Node>();
  right->is_leaf = child->is_leaf;
  size_t mid = child->keys.size() / 2;

  std::string separator;
  if (child->is_leaf) {
    // Leaf split: right gets [mid, end); separator = right's first key
    // (kept in the leaf — B+-tree semantics).
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->slots.assign(std::make_move_iterator(child->slots.begin() + mid),
                        std::make_move_iterator(child->slots.end()));
    child->keys.resize(mid);
    child->slots.resize(mid);
    right->next_leaf = child->next_leaf;
    child->next_leaf = right.get();
  } else {
    // Internal split: middle key moves up.
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    right->children.assign(
        std::make_move_iterator(child->children.begin() + mid + 1),
        std::make_move_iterator(child->children.end()));
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }
  parent->keys.insert(parent->keys.begin() + index, std::move(separator));
  parent->children.insert(parent->children.begin() + index + 1,
                          std::move(right));
}

void BTreeEngine::InsertNonFull(Node* node, const std::string& id, Slot slot) {
  while (!node->is_leaf) {
    size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), id) -
               node->keys.begin();
    if (node->children[i]->keys.size() >=
        static_cast<size_t>(options_.node_capacity)) {
      SplitChild(node, static_cast<int>(i));
      if (id >= node->keys[i]) ++i;
    }
    node = node->children[i].get();
  }
  size_t pos = std::lower_bound(node->keys.begin(), node->keys.end(), id) -
               node->keys.begin();
  node->keys.insert(node->keys.begin() + pos, id);
  node->slots.insert(node->slots.begin() + pos, std::move(slot));
}

Status BTreeEngine::Insert(const std::string& id, std::string_view document) {
  Slot slot;
  Encode(document, &slot);
  uint64_t stored = slot.bytes.size();

  // Simulated WAL/disk write happens before the short structure-exclusive
  // section, so concurrent inserts overlap their I/O (wiredTiger's group
  // commit behaviour).
  SimulatedIo(options_.write_io_us);
  WriterMutexLock lock(tree_mu_);
  // Duplicate check.
  Node* leaf = FindLeaf(id);
  size_t pos = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), id) -
               leaf->keys.begin();
  if (pos < leaf->keys.size() && leaf->keys[pos] == id) {
    return Status::AlreadyExists("duplicate _id: " + id);
  }
  if (root_->keys.size() >= static_cast<size_t>(options_.node_capacity)) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
  }
  uint64_t raw = slot.raw_size;
  InsertNonFull(root_.get(), id, std::move(slot));
  inserts_.fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  logical_bytes_.fetch_add(raw, std::memory_order_relaxed);
  stored_bytes_.fetch_add(stored, std::memory_order_relaxed);
  return Status::Ok();
}

StatusOr<std::string> BTreeEngine::Get(const std::string& id) const {
  ReaderMutexLock lock(tree_mu_);
  Node* leaf = FindLeaf(id);
  size_t pos = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), id) -
               leaf->keys.begin();
  if (pos >= leaf->keys.size() || leaf->keys[pos] != id) {
    return Status::NotFound("no document with _id: " + id);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  MutexLock stripe(StripeFor(id));
  SimulatedIo(options_.read_io_us);  // Page read under the document latch.
  return Decode(leaf->slots[pos]);
}

Status BTreeEngine::Update(const std::string& id, std::string_view document) {
  Slot slot;
  Encode(document, &slot);
  // Document-level concurrency: structure latch shared, per-document stripe
  // exclusive. Writers to different documents run in parallel.
  ReaderMutexLock lock(tree_mu_);
  Node* leaf = FindLeaf(id);
  size_t pos = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), id) -
               leaf->keys.begin();
  if (pos >= leaf->keys.size() || leaf->keys[pos] != id) {
    return Status::NotFound("no document with _id: " + id);
  }
  MutexLock stripe(StripeFor(id));
  // Dirty-page write under the document latch only: updates to different
  // documents proceed in parallel — the document-level locking that makes
  // this engine scale with client threads in the paper's demo.
  SimulatedIo(options_.write_io_us);
  Slot& existing = leaf->slots[pos];
  stored_bytes_.fetch_add(slot.bytes.size(), std::memory_order_relaxed);
  stored_bytes_.fetch_sub(existing.bytes.size(), std::memory_order_relaxed);
  logical_bytes_.fetch_add(slot.raw_size, std::memory_order_relaxed);
  logical_bytes_.fetch_sub(existing.raw_size, std::memory_order_relaxed);
  existing = std::move(slot);
  updates_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status BTreeEngine::Remove(const std::string& id) {
  SimulatedIo(options_.write_io_us);  // Log write before the short latch.
  WriterMutexLock lock(tree_mu_);
  Node* leaf = FindLeaf(id);
  size_t pos = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), id) -
               leaf->keys.begin();
  if (pos >= leaf->keys.size() || leaf->keys[pos] != id) {
    return Status::NotFound("no document with _id: " + id);
  }
  // Lazy deletion: remove from the leaf without rebalancing. Leaves may
  // underflow; lookups and scans stay correct, and page utilization is
  // reclaimed on subsequent splits — acceptable for a benchmark SuE and,
  // incidentally, what wiredTiger's deleted-cell approach amounts to.
  stored_bytes_.fetch_sub(leaf->slots[pos].bytes.size(),
                          std::memory_order_relaxed);
  logical_bytes_.fetch_sub(leaf->slots[pos].raw_size,
                           std::memory_order_relaxed);
  leaf->keys.erase(leaf->keys.begin() + pos);
  leaf->slots.erase(leaf->slots.begin() + pos);
  removes_.fetch_add(1, std::memory_order_relaxed);
  count_.fetch_sub(1, std::memory_order_relaxed);
  return Status::Ok();
}

void BTreeEngine::Scan(
    const std::string& from,
    const std::function<bool(const std::string&, const std::string&)>&
        visitor) const {
  ReaderMutexLock lock(tree_mu_);
  scans_.fetch_add(1, std::memory_order_relaxed);
  Node* leaf = FindLeaf(from);
  size_t pos = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), from) -
               leaf->keys.begin();
  while (leaf != nullptr) {
    for (; pos < leaf->keys.size(); ++pos) {
      std::string document;
      {
        MutexLock stripe(StripeFor(leaf->keys[pos]));
        auto decoded = Decode(leaf->slots[pos]);
        if (!decoded.ok()) continue;
        document = std::move(decoded).value();
      }
      if (!visitor(leaf->keys[pos], document)) return;
    }
    leaf = leaf->next_leaf;
    pos = 0;
  }
}

uint64_t BTreeEngine::Count() const {
  return count_.load(std::memory_order_relaxed);
}

int BTreeEngine::Height() const {
  ReaderMutexLock lock(tree_mu_);
  int height = 1;
  Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children[0].get();
    ++height;
  }
  return height;
}

EngineStats BTreeEngine::Stats() const {
  EngineStats stats;
  stats.inserts = inserts_.load();
  stats.reads = reads_.load();
  stats.updates = updates_.load();
  stats.removes = removes_.load();
  stats.scans = scans_.load();
  stats.document_count = count_.load();
  stats.logical_bytes = logical_bytes_.load();
  stats.stored_bytes = stored_bytes_.load();
  return stats;
}

}  // namespace chronos::mokka
