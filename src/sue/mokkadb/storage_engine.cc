#include "sue/mokkadb/storage_engine.h"

#include <time.h>

#include "sue/mokkadb/btree_engine.h"
#include "sue/mokkadb/mmap_engine.h"

namespace chronos::mokka {

json::Json EngineStats::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("inserts", inserts);
  out.Set("reads", reads);
  out.Set("updates", updates);
  out.Set("removes", removes);
  out.Set("scans", scans);
  out.Set("document_count", document_count);
  out.Set("logical_bytes", logical_bytes);
  out.Set("stored_bytes", stored_bytes);
  out.Set("moves", moves);
  double ratio = stored_bytes == 0
                     ? 1.0
                     : static_cast<double>(logical_bytes) /
                           static_cast<double>(stored_bytes);
  out.Set("compression_ratio", ratio);
  return out;
}

StatusOr<std::unique_ptr<StorageEngine>> MakeStorageEngine(
    const std::string& name) {
  return MakeStorageEngine(name, json::Json());
}

StatusOr<std::unique_ptr<StorageEngine>> MakeStorageEngine(
    const std::string& name, const json::Json& engine_options) {
  if (name == "btree" || name == "wiredtiger" || name == "wiredTiger") {
    BTreeEngineOptions options;
    options.read_io_us = engine_options.GetIntOr("read_io_us", 0);
    options.write_io_us = engine_options.GetIntOr("write_io_us", 0);
    options.compression = engine_options.GetBoolOr("compression", true);
    return std::unique_ptr<StorageEngine>(new BTreeEngine(options));
  }
  if (name == "mmap" || name == "mmapv1") {
    MmapEngineOptions options;
    options.read_io_us = engine_options.GetIntOr("read_io_us", 0);
    options.write_io_us = engine_options.GetIntOr("write_io_us", 0);
    options.padding_factor =
        engine_options.GetDoubleOr("padding_factor", options.padding_factor);
    return std::unique_ptr<StorageEngine>(new MmapEngine(options));
  }
  return Status::InvalidArgument("unknown storage engine: " + name +
                                 " (expected btree|wiredtiger|mmap|mmapv1)");
}

void SimulatedIo(int64_t micros) {
  if (micros <= 0) return;
  struct timespec ts;
  ts.tv_sec = micros / 1000000;
  ts.tv_nsec = (micros % 1000000) * 1000;
  ::nanosleep(&ts, nullptr);
}

}  // namespace chronos::mokka
