#ifndef CHRONOS_SUE_MOKKADB_BTREE_ENGINE_H_
#define CHRONOS_SUE_MOKKADB_BTREE_ENGINE_H_

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sue/mokkadb/storage_engine.h"

namespace chronos::mokka {

struct BTreeEngineOptions {
  // Transparent chlz block compression of documents (wiredTiger's default
  // snappy behaviour). Documents below the threshold stay raw.
  bool compression = true;
  size_t compression_threshold = 64;
  // Max entries per node before splitting.
  int node_capacity = 64;
  // Simulated storage latency per operation (see MakeStorageEngine). Reads
  // and updates incur it under the per-document stripe latch — concurrent
  // operations on different documents overlap. Inserts/removes incur it
  // before taking the structure latch (modelling the WAL write).
  int64_t read_io_us = 0;
  int64_t write_io_us = 0;
};

// "wiredTiger-like" engine: a B+-tree ordered by document id with
// leaf-chained range scans, document-level write concurrency via latch
// striping (updates to different documents proceed in parallel under a
// shared structure latch), and per-document compression.
class BTreeEngine : public StorageEngine {
 public:
  explicit BTreeEngine(BTreeEngineOptions options = {});
  ~BTreeEngine() override;

  BTreeEngine(const BTreeEngine&) = delete;
  BTreeEngine& operator=(const BTreeEngine&) = delete;

  std::string_view name() const override { return "btree"; }

  Status Insert(const std::string& id, std::string_view document) override;
  StatusOr<std::string> Get(const std::string& id) const override;
  Status Update(const std::string& id, std::string_view document) override;
  Status Remove(const std::string& id) override;
  void Scan(const std::string& from,
            const std::function<bool(const std::string&, const std::string&)>&
                visitor) const override;
  uint64_t Count() const override;
  EngineStats Stats() const override;

  // Tree height (root = 1); exposed for tests.
  int Height() const;

 private:
  struct Node;
  // A stored value: possibly compressed bytes plus the raw size.
  struct Slot {
    std::string bytes;
    bool compressed = false;
    uint32_t raw_size = 0;
  };

  static constexpr int kStripes = 64;

  std::string Encode(std::string_view document, Slot* slot) const;
  StatusOr<std::string> Decode(const Slot& slot) const;
  Mutex& StripeFor(const std::string& id) const;

  // Returns the leaf that owns (or would own) `id`. Caller holds tree latch.
  Node* FindLeaf(const std::string& id) const
      CHRONOS_REQUIRES_SHARED(tree_mu_);
  // Splits `child` (the i-th child of `parent`); caller holds exclusive latch.
  void SplitChild(Node* parent, int index) CHRONOS_REQUIRES(tree_mu_);
  void InsertNonFull(Node* node, const std::string& id, Slot slot)
      CHRONOS_REQUIRES(tree_mu_);

  BTreeEngineOptions options_;
  mutable SharedMutex tree_mu_;
  std::unique_ptr<Node> root_ CHRONOS_GUARDED_BY(tree_mu_);
  mutable std::array<Mutex, kStripes> stripes_;

  std::atomic<uint64_t> inserts_{0}, updates_{0}, removes_{0};
  mutable std::atomic<uint64_t> reads_{0}, scans_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> logical_bytes_{0}, stored_bytes_{0};
};

}  // namespace chronos::mokka

#endif  // CHRONOS_SUE_MOKKADB_BTREE_ENGINE_H_
