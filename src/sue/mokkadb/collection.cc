#include "sue/mokkadb/collection.h"

#include <algorithm>

#include "common/uuid.h"

namespace chronos::mokka {

namespace {

// Numeric-aware comparison: returns -1/0/+1, or an error for incomparable
// types.
StatusOr<int> CompareValues(const json::Json& a, const json::Json& b) {
  if (a.is_number() && b.is_number()) {
    double lhs = a.as_double(), rhs = b.as_double();
    return lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
  }
  if (a.is_string() && b.is_string()) {
    return a.as_string().compare(b.as_string()) < 0
               ? -1
               : (a.as_string() == b.as_string() ? 0 : 1);
  }
  return Status::InvalidArgument("incomparable types in filter");
}

bool IsOperatorObject(const json::Json& value) {
  if (!value.is_object() || value.size() == 0) return false;
  for (const auto& [key, v] : value.as_object()) {
    if (key.empty() || key[0] != '$') return false;
  }
  return true;
}

StatusOr<bool> MatchOperator(const json::Json& field_value,
                             const std::string& op, const json::Json& arg) {
  if (op == "$ne") return !(field_value == arg);
  if (op == "$in") {
    if (!arg.is_array()) {
      return Status::InvalidArgument("$in expects an array");
    }
    for (const json::Json& candidate : arg.as_array()) {
      if (field_value == candidate) return true;
    }
    return false;
  }
  if (op == "$exists") return !field_value.is_null() == arg.as_bool();
  // Ordered comparisons: a missing / incomparable field never matches.
  if (op == "$gt" || op == "$gte" || op == "$lt" || op == "$lte") {
    auto cmp = CompareValues(field_value, arg);
    if (!cmp.ok()) return false;
    if (op == "$gt") return *cmp > 0;
    if (op == "$gte") return *cmp >= 0;
    if (op == "$lt") return *cmp < 0;
    return *cmp <= 0;
  }
  return Status::InvalidArgument("unknown filter operator: " + op);
}

}  // namespace

Collection::Collection(std::string name, std::unique_ptr<StorageEngine> engine)
    : name_(std::move(name)), engine_(std::move(engine)) {}

StatusOr<bool> Collection::Matches(const json::Json& document,
                                   const json::Json& filter) {
  if (filter.is_null()) return true;
  if (!filter.is_object()) {
    return Status::InvalidArgument("filter must be an object");
  }
  for (const auto& [field, condition] : filter.as_object()) {
    const json::Json& value = document.at(field);
    if (IsOperatorObject(condition)) {
      for (const auto& [op, arg] : condition.as_object()) {
        CHRONOS_ASSIGN_OR_RETURN(bool matched, MatchOperator(value, op, arg));
        if (!matched) return false;
      }
    } else if (!(value == condition)) {
      return false;
    }
  }
  return true;
}

StatusOr<json::Json> Collection::ApplyUpdate(const json::Json& document,
                                             const json::Json& update) {
  if (!update.is_object()) {
    return Status::InvalidArgument("update must be an object");
  }
  bool has_operators = false;
  for (const auto& [key, value] : update.as_object()) {
    if (!key.empty() && key[0] == '$') has_operators = true;
  }
  if (!has_operators) {
    // Replacement document; the _id is immutable.
    json::Json replaced = update;
    replaced.Set("_id", document.at("_id"));
    return replaced;
  }
  json::Json result = document;
  for (const auto& [op, fields] : update.as_object()) {
    if (!fields.is_object()) {
      return Status::InvalidArgument(op + " expects an object");
    }
    if (op == "$set") {
      for (const auto& [field, value] : fields.as_object()) {
        if (field == "_id") {
          return Status::InvalidArgument("_id is immutable");
        }
        result.Set(field, value);
      }
    } else if (op == "$inc") {
      for (const auto& [field, delta] : fields.as_object()) {
        if (!delta.is_number()) {
          return Status::InvalidArgument("$inc expects numbers");
        }
        const json::Json& current = result.at(field);
        if (current.is_null()) {
          result.Set(field, delta);
        } else if (current.is_int() && delta.is_int()) {
          result.Set(field, current.as_int() + delta.as_int());
        } else if (current.is_number()) {
          result.Set(field, current.as_double() + delta.as_double());
        } else {
          return Status::InvalidArgument("$inc on non-numeric field " + field);
        }
      }
    } else if (op == "$unset") {
      for (const auto& [field, ignored] : fields.as_object()) {
        (void)ignored;
        if (field == "_id") {
          return Status::InvalidArgument("_id is immutable");
        }
        result.as_object_mutable().erase(field);
      }
    } else {
      return Status::InvalidArgument("unknown update operator: " + op);
    }
  }
  return result;
}

StatusOr<std::string> Collection::InsertOne(json::Json document) {
  if (!document.is_object()) {
    return Status::InvalidArgument("document must be an object");
  }
  std::string id;
  if (document.Has("_id")) {
    if (!document.at("_id").is_string() ||
        document.at("_id").as_string().empty()) {
      return Status::InvalidArgument("_id must be a non-empty string");
    }
    id = document.at("_id").as_string();
  } else {
    id = GenerateUuid();
    document.Set("_id", id);
  }
  CHRONOS_RETURN_IF_ERROR(engine_->Insert(id, document.Dump()));
  IndexInsert(id, document);
  Journal("insert", id, &document);
  return id;
}

StatusOr<json::Json> Collection::FindById(const std::string& id) const {
  CHRONOS_ASSIGN_OR_RETURN(std::string raw, engine_->Get(id));
  return json::Parse(raw);
}

Status Collection::VisitMatches(
    const json::Json& filter, uint64_t limit,
    const std::function<bool(const std::string& id, json::Json doc)>& visitor)
    const {
  // Fast path: filter pins _id to a literal.
  if (filter.is_object() && filter.Has("_id") &&
      filter.at("_id").is_string()) {
    auto doc = FindById(filter.at("_id").as_string());
    if (doc.status().IsNotFound()) return Status::Ok();
    CHRONOS_RETURN_IF_ERROR(doc.status());
    CHRONOS_ASSIGN_OR_RETURN(bool matched, Matches(*doc, filter));
    if (matched) visitor(filter.at("_id").as_string(), std::move(doc).value());
    return Status::Ok();
  }

  // Secondary-index fast path: the first indexed field with an equality
  // literal narrows the candidate set; the full filter still re-verifies.
  if (filter.is_object()) {
    for (const auto& [field, condition] : filter.as_object()) {
      if (IsOperatorObject(condition) || condition.is_object()) continue;
      auto candidate_ids = IndexLookup(field, condition);
      if (!candidate_ids.has_value()) continue;
      uint64_t emitted = 0;
      for (const std::string& id : *candidate_ids) {
        auto doc = FindById(id);
        if (doc.status().IsNotFound()) continue;  // Racing delete.
        CHRONOS_RETURN_IF_ERROR(doc.status());
        CHRONOS_ASSIGN_OR_RETURN(bool matched, Matches(*doc, filter));
        if (!matched) continue;
        if (!visitor(id, std::move(doc).value())) return Status::Ok();
        ++emitted;
        if (limit > 0 && emitted >= limit) return Status::Ok();
      }
      return Status::Ok();
    }
  }

  Status failure = Status::Ok();
  uint64_t emitted = 0;
  engine_->Scan("", [&](const std::string& id, const std::string& raw) {
    auto doc = json::Parse(raw);
    if (!doc.ok()) {
      failure = doc.status();
      return false;
    }
    auto matched = Matches(*doc, filter);
    if (!matched.ok()) {
      failure = matched.status();
      return false;
    }
    if (*matched) {
      if (!visitor(id, std::move(doc).value())) return false;
      ++emitted;
      if (limit > 0 && emitted >= limit) return false;
    }
    return true;
  });
  return failure;
}

StatusOr<std::vector<json::Json>> Collection::Find(const json::Json& filter,
                                                   uint64_t limit) const {
  std::vector<json::Json> docs;
  CHRONOS_RETURN_IF_ERROR(
      VisitMatches(filter, limit, [&docs](const std::string&, json::Json doc) {
        docs.push_back(std::move(doc));
        return true;
      }));
  return docs;
}

StatusOr<json::Json> Collection::FindOne(const json::Json& filter) const {
  CHRONOS_ASSIGN_OR_RETURN(std::vector<json::Json> docs, Find(filter, 1));
  if (docs.empty()) return Status::NotFound("no matching document");
  return docs[0];
}

StatusOr<int> Collection::UpdateOne(const json::Json& filter,
                                    const json::Json& update) {
  std::string target_id;
  json::Json target_doc;
  CHRONOS_RETURN_IF_ERROR(
      VisitMatches(filter, 1, [&](const std::string& id, json::Json doc) {
        target_id = id;
        target_doc = std::move(doc);
        return false;
      }));
  if (target_id.empty()) return 0;
  CHRONOS_ASSIGN_OR_RETURN(json::Json updated,
                           ApplyUpdate(target_doc, update));
  CHRONOS_RETURN_IF_ERROR(engine_->Update(target_id, updated.Dump()));
  IndexRemove(target_id, target_doc);
  IndexInsert(target_id, updated);
  Journal("update", target_id, &updated);
  return 1;
}

StatusOr<int> Collection::UpdateMany(const json::Json& filter,
                                     const json::Json& update) {
  std::vector<std::pair<std::string, json::Json>> targets;
  CHRONOS_RETURN_IF_ERROR(
      VisitMatches(filter, 0, [&](const std::string& id, json::Json doc) {
        targets.emplace_back(id, std::move(doc));
        return true;
      }));
  for (auto& [id, doc] : targets) {
    CHRONOS_ASSIGN_OR_RETURN(json::Json updated, ApplyUpdate(doc, update));
    CHRONOS_RETURN_IF_ERROR(engine_->Update(id, updated.Dump()));
    IndexRemove(id, doc);
    IndexInsert(id, updated);
    Journal("update", id, &updated);
  }
  return static_cast<int>(targets.size());
}

StatusOr<int> Collection::DeleteOne(const json::Json& filter) {
  std::string target_id;
  json::Json target_doc;
  CHRONOS_RETURN_IF_ERROR(
      VisitMatches(filter, 1, [&](const std::string& id, json::Json doc) {
        target_id = id;
        target_doc = std::move(doc);
        return false;
      }));
  if (target_id.empty()) return 0;
  CHRONOS_RETURN_IF_ERROR(engine_->Remove(target_id));
  IndexRemove(target_id, target_doc);
  Journal("delete", target_id, nullptr);
  return 1;
}

StatusOr<uint64_t> Collection::CountDocuments(const json::Json& filter) const {
  if (filter.is_null() || (filter.is_object() && filter.size() == 0)) {
    return engine_->Count();
  }
  uint64_t count = 0;
  CHRONOS_RETURN_IF_ERROR(
      VisitMatches(filter, 0, [&count](const std::string&, json::Json) {
        ++count;
        return true;
      }));
  return count;
}

void Collection::Journal(const char* op, const std::string& id,
                         const json::Json* doc) const {
  if (journal_hook_ == nullptr) return;
  json::Json record = json::Json::MakeObject();
  record.Set("op", op);
  record.Set("id", id);
  if (doc != nullptr) record.Set("doc", *doc);
  journal_hook_(record);
}

StatusOr<std::vector<json::Json>> Collection::Aggregate(
    const json::Json& filter, const AggregationSpec& spec) const {
  for (const auto& [name, accumulator] : spec.accumulators) {
    if (accumulator.op != "count" && accumulator.op != "sum" &&
        accumulator.op != "avg" && accumulator.op != "min" &&
        accumulator.op != "max") {
      return Status::InvalidArgument("unknown accumulator op: " +
                                     accumulator.op);
    }
    if (accumulator.op != "count" && accumulator.field.empty()) {
      return Status::InvalidArgument("accumulator '" + name +
                                     "' needs a source field");
    }
  }

  struct GroupState {
    json::Json key;
    uint64_t count = 0;
    std::map<std::string, double> sums;
    std::map<std::string, uint64_t> numeric_counts;
    std::map<std::string, double> mins;
    std::map<std::string, double> maxs;
  };
  std::map<std::string, GroupState> groups;  // Canonical key dump -> state.

  CHRONOS_RETURN_IF_ERROR(VisitMatches(
      filter, 0, [&](const std::string&, json::Json doc) {
        json::Json key =
            spec.group_by.empty() ? json::Json() : doc.at(spec.group_by);
        GroupState& group = groups[key.Dump()];
        group.key = key;
        ++group.count;
        for (const auto& [name, accumulator] : spec.accumulators) {
          if (accumulator.op == "count") continue;
          const json::Json& value = doc.at(accumulator.field);
          if (!value.is_number()) continue;
          double v = value.as_double();
          group.sums[name] += v;
          if (group.numeric_counts[name]++ == 0) {
            group.mins[name] = v;
            group.maxs[name] = v;
          } else {
            group.mins[name] = std::min(group.mins[name], v);
            group.maxs[name] = std::max(group.maxs[name], v);
          }
        }
        return true;
      }));

  std::vector<json::Json> results;
  results.reserve(groups.size());
  for (const auto& [key_dump, group] : groups) {
    json::Json out = json::Json::MakeObject();
    out.Set("_id", group.key);
    for (const auto& [name, accumulator] : spec.accumulators) {
      if (accumulator.op == "count") {
        out.Set(name, group.count);
        continue;
      }
      auto n = group.numeric_counts.find(name);
      if (n == group.numeric_counts.end() || n->second == 0) {
        out.Set(name, json::Json());  // No numeric inputs.
        continue;
      }
      if (accumulator.op == "sum") {
        out.Set(name, group.sums.at(name));
      } else if (accumulator.op == "avg") {
        out.Set(name, group.sums.at(name) / static_cast<double>(n->second));
      } else if (accumulator.op == "min") {
        out.Set(name, group.mins.at(name));
      } else {
        out.Set(name, group.maxs.at(name));
      }
    }
    results.push_back(std::move(out));
  }
  return results;
}

StatusOr<std::vector<json::Json>> Collection::FindWithOptions(
    const json::Json& filter, const FindOptions& options) const {
  // Matching first (unlimited when sorting: the limit applies to the
  // sorted result, as in MongoDB).
  uint64_t match_limit = options.sort_field.empty() ? options.limit : 0;
  CHRONOS_ASSIGN_OR_RETURN(std::vector<json::Json> docs,
                           Find(filter, match_limit));

  if (!options.sort_field.empty()) {
    std::stable_sort(
        docs.begin(), docs.end(),
        [&](const json::Json& a, const json::Json& b) {
          auto cmp = CompareValues(a.at(options.sort_field),
                                   b.at(options.sort_field));
          if (!cmp.ok()) return false;  // Incomparables keep scan order.
          return options.sort_descending ? *cmp > 0 : *cmp < 0;
        });
    if (options.limit > 0 && docs.size() > options.limit) {
      docs.resize(options.limit);
    }
  }

  if (!options.projection.empty()) {
    for (json::Json& doc : docs) {
      json::Json projected = json::Json::MakeObject();
      projected.Set("_id", doc.at("_id"));
      for (const std::string& field : options.projection) {
        if (doc.Has(field)) projected.Set(field, doc.at(field));
      }
      doc = std::move(projected);
    }
  }
  return docs;
}

Status Collection::CreateIndex(const std::string& field) {
  if (field.empty() || field == "_id") {
    return Status::InvalidArgument("cannot index field '" + field + "'");
  }
  WriterMutexLock lock(index_mu_);
  if (indexes_.count(field) > 0) {
    return Status::AlreadyExists("index exists on field: " + field);
  }
  // Build from current contents.
  std::map<std::string, std::set<std::string>> entries;
  Status failure = Status::Ok();
  engine_->Scan("", [&](const std::string& id, const std::string& raw) {
    auto doc = json::Parse(raw);
    if (!doc.ok()) {
      failure = doc.status();
      return false;
    }
    const json::Json& value = doc->at(field);
    if (!value.is_null()) entries[value.Dump()].insert(id);
    return true;
  });
  CHRONOS_RETURN_IF_ERROR(failure);
  indexes_[field] = std::move(entries);
  return Status::Ok();
}

Status Collection::DropIndex(const std::string& field) {
  WriterMutexLock lock(index_mu_);
  if (indexes_.erase(field) == 0) {
    return Status::NotFound("no index on field: " + field);
  }
  return Status::Ok();
}

std::vector<std::string> Collection::IndexedFields() const {
  ReaderMutexLock lock(index_mu_);
  std::vector<std::string> fields;
  fields.reserve(indexes_.size());
  for (const auto& [field, entries] : indexes_) fields.push_back(field);
  return fields;
}

bool Collection::HasIndex(const std::string& field) const {
  ReaderMutexLock lock(index_mu_);
  return indexes_.count(field) > 0;
}

void Collection::IndexInsert(const std::string& id, const json::Json& doc) {
  WriterMutexLock lock(index_mu_);
  for (auto& [field, entries] : indexes_) {
    const json::Json& value = doc.at(field);
    if (!value.is_null()) entries[value.Dump()].insert(id);
  }
}

void Collection::IndexRemove(const std::string& id, const json::Json& doc) {
  WriterMutexLock lock(index_mu_);
  for (auto& [field, entries] : indexes_) {
    const json::Json& value = doc.at(field);
    if (value.is_null()) continue;
    auto it = entries.find(value.Dump());
    if (it != entries.end()) {
      it->second.erase(id);
      if (it->second.empty()) entries.erase(it);
    }
  }
}

std::optional<std::vector<std::string>> Collection::IndexLookup(
    const std::string& field, const json::Json& value) const {
  ReaderMutexLock lock(index_mu_);
  auto index_it = indexes_.find(field);
  if (index_it == indexes_.end()) return std::nullopt;
  auto entry_it = index_it->second.find(value.Dump());
  if (entry_it == index_it->second.end()) {
    return std::vector<std::string>();
  }
  return std::vector<std::string>(entry_it->second.begin(),
                                  entry_it->second.end());
}

std::vector<json::Json> Collection::ScanRange(const std::string& from,
                                              uint64_t limit) const {
  std::vector<json::Json> docs;
  engine_->Scan(from, [&](const std::string&, const std::string& raw) {
    auto doc = json::Parse(raw);
    if (doc.ok()) docs.push_back(std::move(doc).value());
    return limit == 0 || docs.size() < limit;
  });
  return docs;
}

}  // namespace chronos::mokka
