#include "sue/mokkadb/wire.h"

#include "common/strings.h"

namespace chronos::mokka {

namespace {

json::Json ErrorResponse(const Status& status) {
  json::Json out = json::Json::MakeObject();
  out.Set("ok", false);
  out.Set("error", status.ToString());
  out.Set("code", std::string(StatusCodeToString(status.code())));
  return out;
}

json::Json OkResponse() {
  json::Json out = json::Json::MakeObject();
  out.Set("ok", true);
  return out;
}

Status StatusFromResponse(const json::Json& response) {
  if (response.GetBoolOr("ok", false)) return Status::Ok();
  std::string code = response.GetStringOr("code", "INTERNAL");
  std::string message = response.GetStringOr("error", "wire error");
  if (code == "NOT_FOUND") return Status::NotFound(message);
  if (code == "ALREADY_EXISTS") return Status::AlreadyExists(message);
  if (code == "INVALID_ARGUMENT") return Status::InvalidArgument(message);
  return Status::Internal(message);
}

}  // namespace

json::Json HandleWireRequest(Database* db, const json::Json& request) {
  std::string op = request.GetStringOr("op", "");
  if (op == "ping") {
    return OkResponse();
  }
  if (op == "list_collections") {
    json::Json out = OkResponse();
    json::Json names = json::Json::MakeArray();
    for (const std::string& name : db->CollectionNames()) names.Append(name);
    out.Set("collections", std::move(names));
    return out;
  }
  if (op == "stats") {
    json::Json out = OkResponse();
    out.Set("stats", db->Stats());
    return out;
  }

  std::string coll_name = request.GetStringOr("coll", "");
  if (op == "create_collection") {
    auto created = db->CreateCollection(
        coll_name, request.GetStringOr("engine", ""), request.at("options"));
    if (!created.ok()) return ErrorResponse(created.status());
    return OkResponse();
  }
  if (op == "drop") {
    Status status = db->Drop(coll_name);
    if (!status.ok()) return ErrorResponse(status);
    return OkResponse();
  }

  auto coll = db->GetOrCreate(coll_name);
  if (!coll.ok()) return ErrorResponse(coll.status());
  Collection* collection = *coll;

  if (op == "insert") {
    auto id = collection->InsertOne(request.at("doc"));
    if (!id.ok()) return ErrorResponse(id.status());
    json::Json out = OkResponse();
    out.Set("id", *id);
    return out;
  }
  if (op == "get") {
    auto doc = collection->FindById(request.GetStringOr("id", ""));
    if (!doc.ok()) return ErrorResponse(doc.status());
    json::Json out = OkResponse();
    out.Set("doc", std::move(doc).value());
    return out;
  }
  if (op == "find" || op == "find_one") {
    FindOptions options;
    options.limit = op == "find_one"
                        ? 1
                        : static_cast<uint64_t>(request.GetIntOr("limit", 0));
    // Optional sort {"field": 1|-1} and projection ["a","b"].
    if (request.at("sort").is_object() && request.at("sort").size() == 1) {
      for (const auto& [field, direction] : request.at("sort").as_object()) {
        options.sort_field = field;
        options.sort_descending = direction.as_int() < 0;
      }
    }
    for (const json::Json& field : request.at("projection").as_array()) {
      if (field.is_string()) options.projection.push_back(field.as_string());
    }
    auto docs = collection->FindWithOptions(request.at("filter"), options);
    if (!docs.ok()) return ErrorResponse(docs.status());
    json::Json out = OkResponse();
    json::Json array = json::Json::MakeArray();
    for (json::Json& doc : *docs) array.Append(std::move(doc));
    out.Set("docs", std::move(array));
    return out;
  }
  if (op == "aggregate") {
    AggregationSpec spec;
    spec.group_by = request.GetStringOr("group_by", "");
    for (const auto& [name, accumulator] :
         request.at("accumulators").as_object()) {
      spec.accumulators[name] = AggregationSpec::Accumulator{
          accumulator.GetStringOr("op", ""),
          accumulator.GetStringOr("field", "")};
    }
    auto results = collection->Aggregate(request.at("filter"), spec);
    if (!results.ok()) return ErrorResponse(results.status());
    json::Json out = OkResponse();
    json::Json array = json::Json::MakeArray();
    for (json::Json& result : *results) array.Append(std::move(result));
    out.Set("groups", std::move(array));
    return out;
  }
  if (op == "create_index") {
    Status status = collection->CreateIndex(request.GetStringOr("field", ""));
    if (!status.ok()) return ErrorResponse(status);
    return OkResponse();
  }
  if (op == "drop_index") {
    Status status = collection->DropIndex(request.GetStringOr("field", ""));
    if (!status.ok()) return ErrorResponse(status);
    return OkResponse();
  }
  if (op == "list_indexes") {
    json::Json out = OkResponse();
    json::Json fields = json::Json::MakeArray();
    for (const std::string& field : collection->IndexedFields()) {
      fields.Append(field);
    }
    out.Set("fields", std::move(fields));
    return out;
  }
  if (op == "update_one" || op == "update_many") {
    auto n = op == "update_one"
                 ? collection->UpdateOne(request.at("filter"),
                                         request.at("update"))
                 : collection->UpdateMany(request.at("filter"),
                                          request.at("update"));
    if (!n.ok()) return ErrorResponse(n.status());
    json::Json out = OkResponse();
    out.Set("n", static_cast<int64_t>(*n));
    return out;
  }
  if (op == "delete_one") {
    auto n = collection->DeleteOne(request.at("filter"));
    if (!n.ok()) return ErrorResponse(n.status());
    json::Json out = OkResponse();
    out.Set("n", static_cast<int64_t>(*n));
    return out;
  }
  if (op == "count") {
    auto n = collection->CountDocuments(request.at("filter"));
    if (!n.ok()) return ErrorResponse(n.status());
    json::Json out = OkResponse();
    out.Set("n", *n);
    return out;
  }
  if (op == "scan") {
    std::vector<json::Json> docs = collection->ScanRange(
        request.GetStringOr("from", ""),
        static_cast<uint64_t>(request.GetIntOr("limit", 0)));
    json::Json out = OkResponse();
    json::Json array = json::Json::MakeArray();
    for (json::Json& doc : docs) array.Append(std::move(doc));
    out.Set("docs", std::move(array));
    return out;
  }
  return ErrorResponse(Status::InvalidArgument("unknown op: " + op));
}

WireServer::WireServer(Database* db,
                       std::unique_ptr<net::TcpListener> listener)
    : db_(db), listener_(std::move(listener)) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

WireServer::~WireServer() { Stop(); }

StatusOr<std::unique_ptr<WireServer>> WireServer::Start(Database* db,
                                                        int port) {
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<net::TcpListener> listener,
                           net::TcpListener::Listen(port));
  return std::unique_ptr<WireServer>(
      new WireServer(db, std::move(listener)));
}

void WireServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> sessions;
  {
    MutexLock lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (std::thread& session : sessions) {
    if (session.joinable()) session.join();
  }
}

void WireServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_->Accept();
    if (!conn.ok()) break;
    std::shared_ptr<net::TcpConnection> shared(conn.value().release());
    MutexLock lock(sessions_mu_);
    sessions_.emplace_back([this, shared]() mutable {
      std::unique_ptr<net::TcpConnection> owned(
          new net::TcpConnection(std::move(*shared)));
      ServeConnection(std::move(owned));
    });
  }
}

void WireServer::ServeConnection(std::unique_ptr<net::TcpConnection> conn) {
  conn->SetReadTimeoutMs(60000).IgnoreError();
  while (!stopping_.load()) {
    auto line = conn->ReadLine(16 * 1024 * 1024);
    if (!line.ok() || line->empty()) return;
    json::Json response;
    auto request = json::Parse(*line);
    if (!request.ok()) {
      response = ErrorResponse(request.status());
    } else {
      response = HandleWireRequest(db_, *request);
    }
    if (!conn->WriteAll(response.Dump() + "\n").ok()) return;
  }
}

WireClient::~WireClient() = default;

StatusOr<std::unique_ptr<WireClient>> WireClient::Connect(
    const std::string& host, int port) {
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<net::TcpConnection> conn,
                           net::TcpConnection::Connect(host, port));
  CHRONOS_RETURN_IF_ERROR(conn->SetReadTimeoutMs(60000));
  return std::unique_ptr<WireClient>(new WireClient(std::move(conn)));
}

StatusOr<std::unique_ptr<WireClient>> WireClient::ConnectEndpoint(
    const std::string& endpoint) {
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("endpoint must be host:port");
  }
  uint64_t port = 0;
  if (!strings::ParseUint64(endpoint.substr(colon + 1), &port)) {
    return Status::InvalidArgument("bad endpoint port: " + endpoint);
  }
  return Connect(endpoint.substr(0, colon), static_cast<int>(port));
}

StatusOr<json::Json> WireClient::Call(const json::Json& request) {
  CHRONOS_RETURN_IF_ERROR(conn_->WriteAll(request.Dump() + "\n"));
  CHRONOS_ASSIGN_OR_RETURN(std::string line,
                           conn_->ReadLine(16 * 1024 * 1024));
  if (line.empty()) return Status::Unavailable("server closed connection");
  return json::Parse(line);
}

Status WireClient::Ping() {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "ping");
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  return StatusFromResponse(response);
}

Status WireClient::CreateCollection(const std::string& coll,
                                    const std::string& engine,
                                    const json::Json& engine_options) {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "create_collection");
  request.Set("coll", coll);
  request.Set("engine", engine);
  if (!engine_options.is_null()) request.Set("options", engine_options);
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  return StatusFromResponse(response);
}

Status WireClient::Drop(const std::string& coll) {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "drop");
  request.Set("coll", coll);
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  return StatusFromResponse(response);
}

StatusOr<std::string> WireClient::Insert(const std::string& coll,
                                         json::Json doc) {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "insert");
  request.Set("coll", coll);
  request.Set("doc", std::move(doc));
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  CHRONOS_RETURN_IF_ERROR(StatusFromResponse(response));
  return response.GetStringOr("id", "");
}

StatusOr<json::Json> WireClient::Get(const std::string& coll,
                                     const std::string& id) {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "get");
  request.Set("coll", coll);
  request.Set("id", id);
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  CHRONOS_RETURN_IF_ERROR(StatusFromResponse(response));
  return response.at("doc");
}

StatusOr<std::vector<json::Json>> WireClient::Find(const std::string& coll,
                                                   const json::Json& filter,
                                                   uint64_t limit) {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "find");
  request.Set("coll", coll);
  request.Set("filter", filter);
  request.Set("limit", limit);
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  CHRONOS_RETURN_IF_ERROR(StatusFromResponse(response));
  std::vector<json::Json> docs;
  for (const json::Json& doc : response.at("docs").as_array()) {
    docs.push_back(doc);
  }
  return docs;
}

StatusOr<int> WireClient::UpdateOne(const std::string& coll,
                                    const json::Json& filter,
                                    const json::Json& update) {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "update_one");
  request.Set("coll", coll);
  request.Set("filter", filter);
  request.Set("update", update);
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  CHRONOS_RETURN_IF_ERROR(StatusFromResponse(response));
  return static_cast<int>(response.GetIntOr("n", 0));
}

StatusOr<int> WireClient::DeleteOne(const std::string& coll,
                                    const json::Json& filter) {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "delete_one");
  request.Set("coll", coll);
  request.Set("filter", filter);
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  CHRONOS_RETURN_IF_ERROR(StatusFromResponse(response));
  return static_cast<int>(response.GetIntOr("n", 0));
}

StatusOr<uint64_t> WireClient::Count(const std::string& coll,
                                     const json::Json& filter) {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "count");
  request.Set("coll", coll);
  request.Set("filter", filter);
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  CHRONOS_RETURN_IF_ERROR(StatusFromResponse(response));
  return static_cast<uint64_t>(response.GetIntOr("n", 0));
}

StatusOr<std::vector<json::Json>> WireClient::Scan(const std::string& coll,
                                                   const std::string& from,
                                                   uint64_t limit) {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "scan");
  request.Set("coll", coll);
  request.Set("from", from);
  request.Set("limit", limit);
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  CHRONOS_RETURN_IF_ERROR(StatusFromResponse(response));
  std::vector<json::Json> docs;
  for (const json::Json& doc : response.at("docs").as_array()) {
    docs.push_back(doc);
  }
  return docs;
}

StatusOr<json::Json> WireClient::Stats() {
  json::Json request = json::Json::MakeObject();
  request.Set("op", "stats");
  CHRONOS_ASSIGN_OR_RETURN(json::Json response, Call(request));
  CHRONOS_RETURN_IF_ERROR(StatusFromResponse(response));
  return response.at("stats");
}

}  // namespace chronos::mokka
