#include "sue/mokkadb/mmap_engine.h"

#include <cstring>

namespace chronos::mokka {

MmapEngine::MmapEngine(MmapEngineOptions options) : options_(options) {
  if (options_.extent_bytes < 4096) options_.extent_bytes = 4096;
  if (options_.padding_factor < 1.0) options_.padding_factor = 1.0;
}

MmapEngine::~MmapEngine() = default;

uint32_t MmapEngine::PaddedSize(size_t size) const {
  size_t wanted = static_cast<size_t>(
      static_cast<double>(size) * options_.padding_factor);
  if (wanted < 16) wanted = 16;
  // Round up to the next power of two (mmapv1's record size classes).
  size_t padded = 16;
  while (padded < wanted) padded <<= 1;
  return static_cast<uint32_t>(padded);
}

MmapEngine::RecordRef MmapEngine::Allocate(uint32_t padded) {
  auto it = freelist_.find(padded);
  if (it != freelist_.end() && !it->second.empty()) {
    RecordRef ref = it->second.back();
    it->second.pop_back();
    return ref;
  }
  if (extents_.empty() || tail_offset_ + padded > options_.extent_bytes) {
    extents_.push_back(
        std::make_unique<std::vector<char>>(options_.extent_bytes));
    tail_extent_ = extents_.size() - 1;
    tail_offset_ = 0;
  }
  RecordRef ref;
  ref.extent = static_cast<uint32_t>(tail_extent_);
  ref.offset = static_cast<uint32_t>(tail_offset_);
  ref.capacity = padded;
  tail_offset_ += padded;
  return ref;
}

void MmapEngine::WriteRecord(const RecordRef& ref, std::string_view document) {
  std::memcpy(extents_[ref.extent]->data() + ref.offset, document.data(),
              document.size());
}

std::string MmapEngine::ReadRecord(const RecordRef& ref) const {
  return std::string(extents_[ref.extent]->data() + ref.offset, ref.size);
}

Status MmapEngine::Insert(const std::string& id, std::string_view document) {
  if (document.size() > options_.extent_bytes) {
    return Status::InvalidArgument("document exceeds extent size");
  }
  WriterMutexLock lock(collection_mu_);
  if (index_.count(id) > 0) {
    return Status::AlreadyExists("duplicate _id: " + id);
  }
  // The simulated datafile write happens inside the collection-exclusive
  // lock: this is mmapv1 — every writer serializes on the collection.
  SimulatedIo(options_.write_io_us);
  RecordRef ref = Allocate(PaddedSize(document.size()));
  ref.size = static_cast<uint32_t>(document.size());
  WriteRecord(ref, document);
  index_[id] = ref;
  ++inserts_;
  logical_bytes_ += document.size();
  stored_bytes_ += ref.capacity;
  return Status::Ok();
}

StatusOr<std::string> MmapEngine::Get(const std::string& id) const {
  ReaderMutexLock lock(collection_mu_);
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("no document with _id: " + id);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  SimulatedIo(options_.read_io_us);  // Page fault under the shared lock.
  return ReadRecord(it->second);
}

Status MmapEngine::Update(const std::string& id, std::string_view document) {
  if (document.size() > options_.extent_bytes) {
    return Status::InvalidArgument("document exceeds extent size");
  }
  // mmapv1 semantics: every write takes the collection-level lock
  // exclusively — concurrent writers serialize here.
  WriterMutexLock lock(collection_mu_);
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("no document with _id: " + id);
  }
  SimulatedIo(options_.write_io_us);  // Serialized under the exclusive lock.
  RecordRef& ref = it->second;
  logical_bytes_ += document.size();
  logical_bytes_ -= ref.size;
  if (document.size() <= ref.capacity) {
    // Fits the padded slot: cheap in-place update.
    ref.size = static_cast<uint32_t>(document.size());
    WriteRecord(ref, document);
  } else {
    // Document move: free the old slot, allocate a bigger one.
    freelist_[ref.capacity].push_back(ref);
    stored_bytes_ -= ref.capacity;
    RecordRef moved = Allocate(PaddedSize(document.size()));
    moved.size = static_cast<uint32_t>(document.size());
    WriteRecord(moved, document);
    stored_bytes_ += moved.capacity;
    ref = moved;
    ++moves_;
  }
  ++updates_;
  return Status::Ok();
}

Status MmapEngine::Remove(const std::string& id) {
  WriterMutexLock lock(collection_mu_);
  auto it = index_.find(id);
  if (it == index_.end()) {
    return Status::NotFound("no document with _id: " + id);
  }
  SimulatedIo(options_.write_io_us);
  freelist_[it->second.capacity].push_back(it->second);
  stored_bytes_ -= it->second.capacity;
  logical_bytes_ -= it->second.size;
  index_.erase(it);
  ++removes_;
  return Status::Ok();
}

void MmapEngine::Scan(
    const std::string& from,
    const std::function<bool(const std::string&, const std::string&)>&
        visitor) const {
  ReaderMutexLock lock(collection_mu_);
  scans_.fetch_add(1, std::memory_order_relaxed);
  for (auto it = index_.lower_bound(from); it != index_.end(); ++it) {
    if (!visitor(it->first, ReadRecord(it->second))) return;
  }
}

uint64_t MmapEngine::Count() const {
  ReaderMutexLock lock(collection_mu_);
  return index_.size();
}

size_t MmapEngine::ExtentCount() const {
  ReaderMutexLock lock(collection_mu_);
  return extents_.size();
}

EngineStats MmapEngine::Stats() const {
  ReaderMutexLock lock(collection_mu_);
  EngineStats stats;
  stats.inserts = inserts_;
  stats.reads = reads_.load(std::memory_order_relaxed);
  stats.updates = updates_;
  stats.removes = removes_;
  stats.scans = scans_.load(std::memory_order_relaxed);
  stats.document_count = index_.size();
  stats.logical_bytes = logical_bytes_;
  stats.stored_bytes = stored_bytes_;
  stats.moves = moves_;
  return stats;
}

}  // namespace chronos::mokka
