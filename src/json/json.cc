#include "json/json.h"

#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace chronos::json {

namespace {

const Json* NullJson() {
  static const Json* null_value = new Json();
  return null_value;
}

void AppendUtf8(std::string* out, uint32_t codepoint) {
  if (codepoint <= 0x7F) {
    out->push_back(static_cast<char>(codepoint));
  } else if (codepoint <= 0x7FF) {
    out->push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
    out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  } else if (codepoint <= 0xFFFF) {
    out->push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
    out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (codepoint >> 18)));
    out->push_back(static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
  }
}

// Recursive-descent parser over a string_view with explicit depth limiting.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> ParseDocument() {
    SkipWhitespace();
    CHRONOS_ASSIGN_OR_RETURN(Json value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        CHRONOS_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Json(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return Json(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Json(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return Json(nullptr);
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<Json> ParseObject(int depth) {
    Consume('{');
    Object object;
    SkipWhitespace();
    if (Consume('}')) return Json(std::move(object));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      CHRONOS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      CHRONOS_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      object[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    return Json(std::move(object));
  }

  StatusOr<Json> ParseArray(int depth) {
    Consume('[');
    Array array;
    SkipWhitespace();
    if (Consume(']')) return Json(std::move(array));
    while (true) {
      SkipWhitespace();
      CHRONOS_ASSIGN_OR_RETURN(Json value, ParseValue(depth + 1));
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    return Json(std::move(array));
  }

  StatusOr<std::string> ParseString() {
    Consume('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          CHRONOS_ASSIGN_OR_RETURN(uint32_t unit, ParseHex4());
          // Surrogate pair handling.
          if (unit >= 0xD800 && unit <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              CHRONOS_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate");
              }
              unit = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Error("unpaired high surrogate");
            }
          } else if (unit >= 0xDC00 && unit <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(&out, unit);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return out;
  }

  StatusOr<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  StatusOr<Json> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size()) return Error("invalid number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      return Error("invalid number");
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t int_value;
      if (strings::ParseInt64(token, &int_value)) return Json(int_value);
      // Integer overflow: fall through and represent as double.
    }
    double dbl_value;
    if (!strings::ParseDouble(token, &dbl_value)) {
      return Error("unparsable number");
    }
    return Json(dbl_value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void FormatDouble(std::string* out, double value) {
  if (std::isnan(value) || std::isinf(value)) {
    // JSON has no NaN/Inf; emit null like most tolerant encoders.
    out->append("null");
    return;
  }
  // %g trims trailing zeros; 15 significant digits round-trip nearly all
  // doubles, 17 always does.
  for (int precision : {15, 17}) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
    double parsed = 0;
    if (precision == 17 ||
        (strings::ParseDouble(candidate, &parsed) && parsed == value)) {
      out->append(candidate);
      return;
    }
  }
}

}  // namespace

std::string_view TypeName(Type type) {
  switch (type) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return "bool";
    case Type::kInt:
      return "int";
    case Type::kDouble:
      return "double";
    case Type::kString:
      return "string";
    case Type::kArray:
      return "array";
    case Type::kObject:
      return "object";
  }
  return "?";
}

const Json& Json::at(const std::string& key) const {
  if (is_object()) {
    auto it = object_.find(key);
    if (it != object_.end()) return it->second;
  }
  return *NullJson();
}

const Json& Json::at(size_t index) const {
  if (is_array() && index < array_.size()) return array_[index];
  return *NullJson();
}

Json& Json::Set(const std::string& key, Json value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  object_[key] = std::move(value);
  return *this;
}

StatusOr<std::string> Json::GetString(const std::string& key) const {
  const Json& v = at(key);
  if (!v.is_string()) {
    return Status::InvalidArgument("field '" + key + "' is not a string");
  }
  return v.as_string();
}

StatusOr<int64_t> Json::GetInt(const std::string& key) const {
  const Json& v = at(key);
  if (!v.is_int()) {
    return Status::InvalidArgument("field '" + key + "' is not an integer");
  }
  return v.as_int();
}

StatusOr<double> Json::GetDouble(const std::string& key) const {
  const Json& v = at(key);
  if (!v.is_number()) {
    return Status::InvalidArgument("field '" + key + "' is not a number");
  }
  return v.as_double();
}

StatusOr<bool> Json::GetBool(const std::string& key) const {
  const Json& v = at(key);
  if (!v.is_bool()) {
    return Status::InvalidArgument("field '" + key + "' is not a boolean");
  }
  return v.as_bool();
}

std::string Json::GetStringOr(const std::string& key,
                              const std::string& fallback) const {
  const Json& v = at(key);
  return v.is_string() ? v.as_string() : fallback;
}

int64_t Json::GetIntOr(const std::string& key, int64_t fallback) const {
  const Json& v = at(key);
  return v.is_number() ? v.as_int() : fallback;
}

double Json::GetDoubleOr(const std::string& key, double fallback) const {
  const Json& v = at(key);
  return v.is_number() ? v.as_double() : fallback;
}

bool Json::GetBoolOr(const std::string& key, bool fallback) const {
  const Json& v = at(key);
  return v.is_bool() ? v.as_bool() : fallback;
}

std::string EscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\b':
        out.append("\\b");
        break;
      case '\f':
        out.append("\\f");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out.append(buf);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&] {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent) * (depth + 1), ' ');
    }
  };
  auto newline_close = [&] {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent) * depth, ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kInt:
      out->append(std::to_string(int_));
      break;
    case Type::kDouble:
      FormatDouble(out, double_);
      break;
    case Type::kString:
      out->push_back('"');
      out->append(EscapeString(string_));
      out->push_back('"');
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const Json& item : array_) {
        if (!first) out->push_back(',');
        first = false;
        newline();
        item.DumpTo(out, indent, depth + 1);
      }
      newline_close();
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        newline();
        out->push_back('"');
        out->append(EscapeString(key));
        out->append(indent > 0 ? "\": " : "\":");
        value.DumpTo(out, indent, depth + 1);
      }
      newline_close();
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0, 0);
  return out;
}

std::string Json::DumpPretty() const {
  std::string out;
  DumpTo(&out, 2, 0);
  return out;
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) {
    // int/double cross-comparison on equal numeric value.
    if (a.is_number() && b.is_number()) {
      return a.as_double() == b.as_double();
    }
    return false;
  }
  switch (a.type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return a.bool_ == b.bool_;
    case Type::kInt:
      return a.int_ == b.int_;
    case Type::kDouble:
      return a.double_ == b.double_;
    case Type::kString:
      return a.string_ == b.string_;
    case Type::kArray:
      return a.array_ == b.array_;
    case Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

StatusOr<Json> Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace chronos::json
