#ifndef CHRONOS_JSON_JSON_H_
#define CHRONOS_JSON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace chronos::json {

class Json;

using Array = std::vector<Json>;
// std::map keeps object keys ordered, which makes serialization
// deterministic — important for archives, tests and the WAL.
using Object = std::map<std::string, Json>;

enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

std::string_view TypeName(Type type);

// A JSON document value. Integers are kept distinct from doubles so ids and
// counters round-trip exactly.
class Json {
 public:
  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}          // NOLINT
  Json(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  Json(int value) : type_(Type::kInt), int_(value) {}     // NOLINT
  Json(int64_t value) : type_(Type::kInt), int_(value) {}  // NOLINT
  Json(uint64_t value)                                     // NOLINT
      : type_(Type::kInt), int_(static_cast<int64_t>(value)) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}  // NOLINT
  Json(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT
  Json(std::string value)  // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}
  Json(std::string_view value)  // NOLINT
      : type_(Type::kString), string_(value) {}
  Json(Array value) : type_(Type::kArray), array_(std::move(value)) {}  // NOLINT
  Json(Object value)  // NOLINT
      : type_(Type::kObject), object_(std::move(value)) {}

  static Json MakeObject() { return Json(Object{}); }
  static Json MakeArray() { return Json(Array{}); }

  Json(const Json&) = default;
  Json& operator=(const Json&) = default;
  Json(Json&&) noexcept = default;
  Json& operator=(Json&&) noexcept = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_double() const { return type_ == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors. Calling the wrong accessor returns a zero value; use
  // the Get* helpers below for checked access.
  bool as_bool() const { return is_bool() ? bool_ : false; }
  int64_t as_int() const {
    if (is_int()) return int_;
    if (is_double()) return static_cast<int64_t>(double_);
    return 0;
  }
  double as_double() const {
    if (is_double()) return double_;
    if (is_int()) return static_cast<double>(int_);
    return 0.0;
  }
  const std::string& as_string() const {
    static const std::string* empty = new std::string();
    return is_string() ? string_ : *empty;
  }
  const Array& as_array() const {
    static const Array* empty = new Array();
    return is_array() ? array_ : *empty;
  }
  Array& as_array_mutable() { return array_; }
  const Object& as_object() const {
    static const Object* empty = new Object();
    return is_object() ? object_ : *empty;
  }
  Object& as_object_mutable() { return object_; }

  // --- Object helpers ---

  bool Has(const std::string& key) const {
    return is_object() && object_.count(key) > 0;
  }

  // Returns the member or a null Json if missing / not an object.
  const Json& at(const std::string& key) const;

  // Inserts/replaces a member; turns a null value into an object first.
  Json& Set(const std::string& key, Json value);

  // Checked member access with type validation.
  StatusOr<std::string> GetString(const std::string& key) const;
  StatusOr<int64_t> GetInt(const std::string& key) const;
  StatusOr<double> GetDouble(const std::string& key) const;
  StatusOr<bool> GetBool(const std::string& key) const;

  // Unchecked with default.
  std::string GetStringOr(const std::string& key,
                          const std::string& fallback) const;
  int64_t GetIntOr(const std::string& key, int64_t fallback) const;
  double GetDoubleOr(const std::string& key, double fallback) const;
  bool GetBoolOr(const std::string& key, bool fallback) const;

  // --- Array helpers ---

  size_t size() const {
    if (is_array()) return array_.size();
    if (is_object()) return object_.size();
    return 0;
  }
  const Json& at(size_t index) const;
  void Append(Json value) {
    if (type_ == Type::kNull) type_ = Type::kArray;
    array_.push_back(std::move(value));
  }

  // Compact serialization (no whitespace). Deterministic: object keys are
  // emitted in sorted order.
  std::string Dump() const;
  // Pretty-printed with 2-space indentation.
  std::string DumpPretty() const;

  // Deep structural equality.
  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

// Parses a complete JSON document; trailing non-whitespace is an error.
// Enforces a nesting depth limit to keep adversarial inputs from overflowing
// the stack.
StatusOr<Json> Parse(std::string_view text);

// Escapes a string for embedding in JSON output (without quotes).
std::string EscapeString(std::string_view s);

}  // namespace chronos::json

#endif  // CHRONOS_JSON_JSON_H_
