#include "agent/agent.h"

#include <optional>

#include "archive/zip.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/strings.h"
#include "fault/failpoint.h"
#include "net/ftp.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace chronos::agent {

namespace {

// Parses a JSON response body; non-2xx responses become error statuses.
StatusOr<json::Json> CheckedJson(const StatusOr<net::HttpResponse>& response) {
  CHRONOS_RETURN_IF_ERROR(response.status());
  if (response->status_code >= 300) {
    std::string message = "HTTP " + std::to_string(response->status_code);
    auto body = json::Parse(response->body);
    if (body.ok()) message += ": " + body->GetStringOr("error", "");
    if (response->status_code == 401 || response->status_code == 403) {
      return Status::Unauthenticated(message);
    }
    if (response->status_code == 404) return Status::NotFound(message);
    if (response->status_code == 412) {
      return Status::FailedPrecondition(message);
    }
    return Status::Unavailable(message);
  }
  if (response->body.empty()) return json::Json::MakeObject();
  return json::Parse(response->body);
}

}  // namespace

uint64_t SpanShipper::Attach(json::Json* body) {
  obs::SpanCollector* collector = obs::SpanCollector::Get();
  if (!collector->enabled()) return 0;
  std::vector<obs::SpanRecord> spans =
      collector->SnapshotSince(acked_seq_.load());
  if (spans.empty()) return 0;
  uint64_t last = spans.back().seq;  // SnapshotSince sorts by seq.
  body->Set("spans", obs::SpansToJson(spans));
  return last;
}

void SpanShipper::Ack(uint64_t up_to_seq) {
  uint64_t current = acked_seq_.load();
  while (up_to_seq > current &&
         !acked_seq_.compare_exchange_weak(current, up_to_seq)) {
  }
}

JobContext::JobContext(net::HttpClient* http, std::string api_base,
                       model::Job job, Clock* clock, SpanShipper* shipper)
    : http_(http),
      api_base_(std::move(api_base)),
      job_(std::move(job)),
      clock_(clock),
      shipper_(shipper),
      metrics_(clock),
      result_fields_(json::Json::MakeObject()) {}

JobContext::~JobContext() = default;

int64_t JobContext::ParamInt(const std::string& name,
                             int64_t fallback) const {
  auto it = job_.parameters.find(name);
  return it != job_.parameters.end() && it->second.is_number()
             ? it->second.as_int()
             : fallback;
}

double JobContext::ParamDouble(const std::string& name,
                               double fallback) const {
  auto it = job_.parameters.find(name);
  return it != job_.parameters.end() && it->second.is_number()
             ? it->second.as_double()
             : fallback;
}

std::string JobContext::ParamString(const std::string& name,
                                    const std::string& fallback) const {
  auto it = job_.parameters.find(name);
  return it != job_.parameters.end() && it->second.is_string()
             ? it->second.as_string()
             : fallback;
}

bool JobContext::ParamBool(const std::string& name, bool fallback) const {
  auto it = job_.parameters.find(name);
  return it != job_.parameters.end() && it->second.is_bool()
             ? it->second.as_bool()
             : fallback;
}

bool JobContext::SetProgress(int percent) {
  json::Json body = json::Json::MakeObject();
  body.Set("percent", static_cast<int64_t>(percent));
  // The attempt tags the post so a delivery delayed past a reschedule
  // cannot touch the successor attempt.
  body.Set("attempt", static_cast<int64_t>(job_.attempt));
  auto response = CheckedJson(http_->Post(
      api_base_ + "/agent/jobs/" + job_.id + "/progress", body.Dump()));
  if (!response.ok()) return !aborted_.load();
  std::string state = response->GetStringOr("state", "running");
  if (state != "running") {
    aborted_.store(true);
    return false;
  }
  return true;
}

void JobContext::Log(const std::string& line) {
  {
    MutexLock lock(mu_);
    pending_log_lines_.push_back(line);
  }
  CHRONOS_LOG(kDebug, "agent.job") << job_.id << ": " << line;
}

void JobContext::SetResultField(const std::string& name, json::Json value) {
  MutexLock lock(mu_);
  result_fields_.Set(name, std::move(value));
}

void JobContext::AddResultFile(const std::string& name,
                               std::string contents) {
  MutexLock lock(mu_);
  result_files_[name] = std::move(contents);
}

Status JobContext::FlushLogs() {
  std::vector<std::string> lines;
  {
    MutexLock lock(mu_);
    lines.swap(pending_log_lines_);
  }
  if (lines.empty()) return Status::Ok();
  json::Json body = json::Json::MakeObject();
  json::Json array = json::Json::MakeArray();
  for (const std::string& line : lines) array.Append(line);
  body.Set("lines", std::move(array));
  return CheckedJson(http_->Post(api_base_ + "/agent/jobs/" + job_.id + "/log",
                                 body.Dump()))
      .status();
}

Status JobContext::SendHeartbeat() {
  static obs::Counter* heartbeats = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_agent_heartbeats_total", "Job heartbeats sent to Control");
  heartbeats->Increment();
  obs::Span span("agent.heartbeat");
  span.SetAttribute("job_id", job_.id);
  json::Json body = json::Json::MakeObject();
  body.Set("attempt", static_cast<int64_t>(job_.attempt));
  // Heartbeats double as the span shipping channel while a job runs: spans
  // finished since the last acknowledged post ride along here.
  uint64_t pending = shipper_ != nullptr ? shipper_->Attach(&body) : 0;
  auto response = CheckedJson(http_->Post(
      api_base_ + "/agent/jobs/" + job_.id + "/heartbeat", body.Dump()));
  if (response.ok() && pending > 0) shipper_->Ack(pending);
  if (response.ok() &&
      response->GetStringOr("state", "running") != "running") {
    aborted_.store(true);
  }
  return response.status();
}

json::Json JobContext::BuildResultJson() {
  MutexLock lock(mu_);
  json::Json result = result_fields_;
  result.Set("metrics", metrics_.ToJson());
  // Parameters travel with the result so analysis can group/bucket without
  // a join.
  result.Set("parameters", model::AssignmentToJson(job_.parameters));
  return result;
}

std::map<std::string, std::string> JobContext::TakeResultFiles() {
  MutexLock lock(mu_);
  std::map<std::string, std::string> files;
  files.swap(result_files_);
  return files;
}

ChronosAgent::ChronosAgent(AgentOptions options)
    : options_(std::move(options)) {
  http_ = std::make_unique<net::HttpClient>(options_.control_host,
                                            options_.control_port);
  // Every request this agent sends can be failed by arming this point
  // (chaos tests use probability mode to model a lossy Agent<->Control link).
  http_->SetFailPoint("agent.http.send");
}

ChronosAgent::~ChronosAgent() { Stop(); }

std::string ChronosAgent::ApiBase() const {
  return "/api/v" + std::to_string(options_.api_version);
}

Clock* ChronosAgent::clock() const {
  return options_.clock != nullptr ? options_.clock : SystemClock::Get();
}

StatusOr<net::HttpResponse> ChronosAgent::PostWithRetry(
    const std::string& path, const std::string& body) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 500;
  policy.clock = clock();
  StatusOr<net::HttpResponse> response =
      Status::Internal("PostWithRetry never ran");
  policy.Run([&] {
        response = http_->Post(path, body);
        return response.status();
      })
      .IgnoreError();  // The real outcome is in `response`.
  // A 401 mid-run usually means Control restarted and its in-memory
  // sessions are gone, not that the credentials went bad: log in again and
  // replay the request once. Login requests themselves are excluded (their
  // 401 IS bad credentials), as is the never-logged-in state.
  if (response.ok() && response->status_code == 401 && !token_.empty() &&
      path.find("/auth/login") == std::string::npos) {
    if (Connect().ok()) {
      policy.Run([&] {
            response = http_->Post(path, body);
            return response.status();
          })
          .IgnoreError();
    }
  }
  return response;
}

Status ChronosAgent::Connect() {
  json::Json body = json::Json::MakeObject();
  body.Set("username", options_.username);
  body.Set("password", options_.password);
  CHRONOS_ASSIGN_OR_RETURN(
      json::Json response,
      CheckedJson(PostWithRetry(ApiBase() + "/auth/login", body.Dump())));
  token_ = response.GetStringOr("token", "");
  if (token_.empty()) return Status::Unauthenticated("login returned no token");
  http_->SetDefaultHeader("X-Session", token_);
  return Status::Ok();
}

StatusOr<bool> ChronosAgent::RunOnce() {
  if (handler_ == nullptr) {
    return Status::FailedPrecondition("no evaluation handler registered");
  }
  static obs::Counter* polls = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_agent_polls_total", "Job poll requests sent to Control");
  polls->Increment();
  // One trace per poll cycle: every request this agent sends until the next
  // poll (poll, heartbeats, log batches, result upload) carries these ids, and
  // Control adopts them at ingress so its log records correlate with ours and
  // its server spans parent under this root.
  obs::Span cycle_span("agent.poll");
  cycle_span.SetAttribute("deployment_id", options_.deployment_id);
  std::optional<obs::TraceScope> fallback_scope;
  if (!cycle_span.context().valid()) {
    // Collector disabled: keep log correlation alive without recording.
    fallback_scope.emplace(obs::TraceContext::Generate());
  }
  http_->SetDefaultHeader(obs::kTraceHeader, obs::CurrentTrace().ToHeader());
  json::Json poll_body = json::Json::MakeObject();
  poll_body.Set("deployment_id", options_.deployment_id);
  // The poll flushes whatever the previous cycle left unshipped (its root
  // span, the result-upload tail) so Control's timeline converges one poll
  // behind at worst.
  uint64_t pending = shipper_.Attach(&poll_body);
  CHRONOS_ASSIGN_OR_RETURN(
      json::Json response,
      CheckedJson(PostWithRetry(ApiBase() + "/agent/poll", poll_body.Dump())));
  if (pending > 0) shipper_.Ack(pending);
  if (response.at("job").is_null()) return false;
  CHRONOS_ASSIGN_OR_RETURN(model::Job job,
                           model::Job::FromJson(response.at("job")));
  cycle_span.SetAttribute("job_id", job.id);
  CHRONOS_RETURN_IF_ERROR(ExecuteJob(std::move(job)));
  return true;
}

Status ChronosAgent::ExecuteJob(model::Job job) {
  std::string job_id = job.id;
  obs::Span span("agent.execute");
  span.SetAttribute("job_id", job_id);
  span.SetAttribute("attempt", std::to_string(job.attempt));
  JobContext context(http_.get(), ApiBase(), std::move(job), clock(),
                     &shipper_);
  CHRONOS_LOG(kInfo, "agent") << "starting job " << job_id;
  context.Log("agent picked up job (attempt " +
              std::to_string(context.job().attempt) + ")");

  static obs::Counter* executed = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_agent_jobs_executed_total", "Jobs executed by this agent");
  executed->Increment();

  // Background heartbeat + periodic log shipping while the handler runs. The
  // keepalive thread inherits the poll cycle's trace so its heartbeat logs
  // correlate too (thread-local trace state doesn't cross threads on its own).
  // Both intervals <= 0 skips the thread: no keepalive duty, and chaos tests
  // get a single-threaded agent whose request sequence — and therefore its
  // seeded fault pattern — is deterministic.
  std::atomic<bool> done{false};
  std::thread keepalive;
  if (options_.heartbeat_interval_ms > 0 ||
      options_.log_flush_interval_ms > 0) {
    keepalive = std::thread([this, &context, &done,
                             trace = CurrentTraceIds()] {
      obs::TraceScope trace_scope(
          obs::TraceContext{trace.trace_id, trace.span_id});
      int64_t since_flush = 0;
      int64_t since_heartbeat = 0;
      while (!done.load()) {
        clock()->SleepMs(50);
        since_flush += 50;
        since_heartbeat += 50;
        if (done.load()) break;
        if (options_.log_flush_interval_ms > 0 &&
            since_flush >= options_.log_flush_interval_ms) {
          context.FlushLogs().IgnoreError();
          since_flush = 0;
        }
        if (options_.heartbeat_interval_ms > 0 &&
            since_heartbeat >= options_.heartbeat_interval_ms) {
          context.SendHeartbeat().IgnoreError();
          since_heartbeat = 0;
        }
      }
    });
  }

  Status handler_status = handler_(&context);
  done.store(true);
  if (keepalive.joinable()) keepalive.join();
  context.FlushLogs().IgnoreError();
  jobs_executed_.fetch_add(1);

  if (context.IsAborted()) {
    CHRONOS_LOG(kInfo, "agent") << "job " << job_id << " aborted by server";
    span.SetError("aborted by server");
    return Status::Ok();  // Terminal state already set server-side.
  }
  if (!handler_status.ok()) {
    CHRONOS_LOG(kWarning, "agent")
        << "job " << job_id << " failed: " << handler_status.ToString();
    json::Json fail_body = json::Json::MakeObject();
    fail_body.Set("reason", handler_status.ToString());
    // Per-attempt key: a retried delivery (even across a Control restart)
    // is recognized instead of failing the next attempt.
    fail_body.Set("idempotency_key",
                  job_id + "#" + std::to_string(context.job().attempt));
    // End before the post so the execute span ships with the failure it
    // explains rather than one cycle later.
    span.SetError(handler_status.ToString());
    span.End();
    uint64_t pending = shipper_.Attach(&fail_body);
    Status fail_status =
        CheckedJson(PostWithRetry(
                        ApiBase() + "/agent/jobs/" + job_id + "/fail",
                        fail_body.Dump()))
            .status();
    if (fail_status.ok() && pending > 0) shipper_.Ack(pending);
    return fail_status;
  }
  return UploadResult(&context);
}

Status ChronosAgent::UploadResult(JobContext* context) {
  const std::string& job_id = context->job().id;
  obs::Span span("agent.upload_result");
  span.SetAttribute("job_id", job_id);
  json::Json data = context->BuildResultJson();

  // Assemble the zip bundle: handler files + the shipped log.
  std::map<std::string, std::string> files = context->TakeResultFiles();
  files["result.json"] = data.DumpPretty();
  std::string bundle = archive::ZipFiles(files);

  std::string zip_base64;
  if (!options_.ftp_host.empty()) {
    // Offload the bundle to the FTP server; reference it in the result.
    // The whole connect-store-quit sequence retries as a unit: FTP keeps no
    // state between attempts, and the store is idempotent (same name, same
    // bytes).
    std::string remote_name = "job-" + job_id + ".zip";
    RetryPolicy policy;
    policy.max_attempts = 5;
    policy.initial_backoff_ms = 50;
    policy.max_backoff_ms = 1000;
    policy.clock = clock();
    CHRONOS_RETURN_IF_ERROR(policy.Run([&]() -> Status {
      CHRONOS_RETURN_IF_ERROR(fault::Inject("agent.ftp.upload"));
      CHRONOS_ASSIGN_OR_RETURN(
          std::unique_ptr<net::FtpClient> ftp,
          net::FtpClient::Connect(options_.ftp_host, options_.ftp_port,
                                  options_.ftp_username,
                                  options_.ftp_password));
      CHRONOS_RETURN_IF_ERROR(ftp->Store(remote_name, bundle));
      ftp->Quit().IgnoreError();
      return Status::Ok();
    }));
    data.Set("bundle_ftp_ref", remote_name);
  } else {
    zip_base64 = strings::Base64Encode(bundle);
  }

  json::Json body = json::Json::MakeObject();
  body.Set("data", std::move(data));
  body.Set("zip_base64", zip_base64);
  body.Set("idempotency_key",
           job_id + "#" + std::to_string(context->job().attempt));
  // End before the post: the span covers bundle assembly + FTP offload (the
  // HTTP hop gets Control's server span) and ships inside the very result
  // body it describes.
  span.SetAttribute("bundle_bytes", std::to_string(bundle.size()));
  span.End();
  uint64_t pending = shipper_.Attach(&body);
  Status status =
      CheckedJson(PostWithRetry(ApiBase() + "/agent/jobs/" + job_id +
                                    "/result",
                                body.Dump()))
          .status();
  if (status.ok() && pending > 0) shipper_.Ack(pending);
  if (status.ok()) {
    static obs::Counter* uploads = obs::MetricsRegistry::Get()->GetCounter(
        "chronos_agent_uploads_total", "Result bundles uploaded to Control");
    uploads->Increment();
    CHRONOS_LOG(kInfo, "agent") << "job " << job_id << " finished";
  }
  return status;
}

Status ChronosAgent::Run(int max_jobs) {
  // Failure backoff: capped exponential starting at one poll interval, so a
  // Control outage doesn't get hammered at poll frequency but recovery is
  // noticed within ~30 poll intervals.
  RetryPolicy policy;
  policy.initial_backoff_ms = options_.poll_interval_ms;
  policy.max_backoff_ms = options_.poll_interval_ms * 32;
  policy.clock = clock();
  Backoff backoff(policy);
  while (!stop_requested_.load()) {
    auto ran = RunOnce();
    // Check the job budget before acting on errors: if the final job ran
    // but its result upload failed, the agent is still done.
    if (max_jobs > 0 && jobs_executed_.load() >= max_jobs) {
      return Status::Ok();
    }
    if (!ran.ok()) {
      // Transient control-server trouble: back off and retry.
      CHRONOS_LOG(kWarning, "agent")
          << "poll failed: " << ran.status().ToString();
      backoff.SleepNext();
      continue;
    }
    backoff.Reset();
    if (!*ran) {
      clock()->SleepMs(options_.poll_interval_ms);
    }
  }
  return Status::Ok();
}

void ChronosAgent::StartAsync(int max_jobs) {
  Stop();
  stop_requested_.store(false);
  loop_thread_ = std::thread([this, max_jobs] { Run(max_jobs).ok(); });
}

void ChronosAgent::Stop() {
  stop_requested_.store(true);
  if (loop_thread_.joinable()) loop_thread_.join();
}

}  // namespace chronos::agent
