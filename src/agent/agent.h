#ifndef CHRONOS_AGENT_AGENT_H_
#define CHRONOS_AGENT_AGENT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/metrics.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "model/entities.h"
#include "net/http.h"

namespace chronos::agent {

// Configuration of a Chronos Agent instance. An agent serves exactly one
// deployment (multiple identical deployments -> run multiple agents, which
// is how evaluations parallelize).
struct AgentOptions {
  std::string control_host = "127.0.0.1";
  int control_port = 0;
  int api_version = 2;  // The versioned REST API level to speak.
  std::string username;
  std::string password;
  std::string deployment_id;
  int64_t poll_interval_ms = 100;
  // Keepalive cadence while a job runs. Both <= 0 disables the keepalive
  // thread entirely — the agent becomes strictly single-threaded, which the
  // deterministic chaos tests rely on.
  int64_t heartbeat_interval_ms = 2000;
  int64_t log_flush_interval_ms = 1000;
  // Time source for every sleep/backoff in the agent (poll pacing, retry
  // backoff, keepalive ticks). nullptr -> SystemClock. Tests inject a
  // SimulatedClock so nothing real-sleeps.
  Clock* clock = nullptr;
  // Optional FTP target for result bundles ("allows to use a different
  // server or a NAS for storing the results"). Empty host = upload the
  // bundle inline over HTTP.
  std::string ftp_host;
  int ftp_port = 0;
  std::string ftp_username;
  std::string ftp_password;
};

// Ships spans recorded in this process to Chronos Control by piggybacking
// a "spans" array on agent POST bodies (poll/heartbeat/result/fail), so one
// trace timeline stitches both processes without a dedicated span endpoint.
// The cursor tracks the highest collector sequence number Control has
// acknowledged; a failed post leaves the cursor alone and the next post
// re-ships the tail (at-least-once — Control's ImportSpans deduplicates).
class SpanShipper {
 public:
  // Attaches every span recorded after the acknowledged cursor to `body`
  // as "spans". Returns the highest sequence attached (0 = nothing new).
  uint64_t Attach(json::Json* body);

  // Advances the acknowledged cursor after a successful post. Never moves
  // backwards; safe to call from the keepalive and main threads at once.
  void Ack(uint64_t up_to_seq);

  uint64_t acked() const { return acked_seq_.load(); }

 private:
  std::atomic<uint64_t> acked_seq_{0};
};

// Handed to the evaluation handler while a job runs. Provides progress
// updates, log shipping, the built-in metrics collector, abort detection,
// and the result document under construction.
class JobContext {
 public:
  JobContext(net::HttpClient* http, std::string api_base, model::Job job,
             Clock* clock, SpanShipper* shipper = nullptr);
  ~JobContext();

  JobContext(const JobContext&) = delete;
  JobContext& operator=(const JobContext&) = delete;

  const model::Job& job() const { return job_; }
  const model::ParameterAssignment& parameters() const {
    return job_.parameters;
  }

  // Convenience typed parameter access with defaults.
  int64_t ParamInt(const std::string& name, int64_t fallback) const;
  double ParamDouble(const std::string& name, double fallback) const;
  std::string ParamString(const std::string& name,
                          const std::string& fallback) const;
  bool ParamBool(const std::string& name, bool fallback) const;

  // Pushes a progress percentage to Chronos Control; returns false if the
  // job is no longer running there (aborted) — the handler should stop.
  bool SetProgress(int percent);

  // True once Chronos Control reported a non-running state.
  bool IsAborted() const { return aborted_.load(); }

  // Buffers a log line; the agent ships buffered lines periodically
  // ("the agent periodically sends the output of the logger").
  void Log(const std::string& line);

  // Built-in measurement support shipped with the result.
  analysis::MetricsCollector* metrics() { return &metrics_; }

  // Sets a top-level field of the result JSON document.
  void SetResultField(const std::string& name, json::Json value);

  // Adds an extra file to the result zip bundle.
  void AddResultFile(const std::string& name, std::string contents);

  // --- Used by the agent runtime ---

  // Sends buffered log lines; safe to call concurrently.
  Status FlushLogs();
  Status SendHeartbeat();
  json::Json BuildResultJson();
  std::map<std::string, std::string> TakeResultFiles();

 private:
  net::HttpClient* http_;
  std::string api_base_;
  model::Job job_;
  Clock* clock_;
  SpanShipper* shipper_;  // May be null (tests constructing a bare context).
  analysis::MetricsCollector metrics_;
  std::atomic<bool> aborted_{false};

  Mutex mu_;
  std::vector<std::string> pending_log_lines_ CHRONOS_GUARDED_BY(mu_);
  json::Json result_fields_ CHRONOS_GUARDED_BY(mu_);
  std::map<std::string, std::string> result_files_ CHRONOS_GUARDED_BY(mu_);
};

// The handler implements the actual evaluation against the SuE. Returning
// non-OK marks the job failed with the status message as reason. If the
// context reports IsAborted, the handler should return Aborted (any status
// is accepted; the job is already terminal on the server).
using EvaluationHandler = std::function<Status(JobContext*)>;

// The generic Chronos Agent: logs in, polls Chronos Control for jobs of its
// deployment, runs the registered handler, streams progress/log/heartbeats,
// and uploads the result (HTTP, or FTP for the bundle).
class ChronosAgent {
 public:
  explicit ChronosAgent(AgentOptions options);
  ~ChronosAgent();

  ChronosAgent(const ChronosAgent&) = delete;
  ChronosAgent& operator=(const ChronosAgent&) = delete;

  void SetHandler(EvaluationHandler handler) {
    handler_ = std::move(handler);
  }

  // Logs in to Chronos Control. Must succeed before Run/RunOnce.
  Status Connect();

  // Polls once; executes at most one job. Returns true iff a job ran.
  StatusOr<bool> RunOnce();

  // Poll-execute loop until Stop() (or until `max_jobs` executed if > 0).
  Status Run(int max_jobs = 0);

  // Runs the loop on a background thread until Stop().
  void StartAsync(int max_jobs = 0);
  void Stop();

  int jobs_executed() const { return jobs_executed_.load(); }
  const std::string& session_token() const { return token_; }
  SpanShipper* span_shipper() { return &shipper_; }

 private:
  std::string ApiBase() const;
  Clock* clock() const;
  Status ExecuteJob(model::Job job);
  Status UploadResult(JobContext* context);
  // POST with transport-level retries (capped backoff on the agent clock).
  // Retries only transport faults (Unavailable/DeadlineExceeded/IoError);
  // HTTP-level errors come back as responses and are not retried here.
  StatusOr<net::HttpResponse> PostWithRetry(const std::string& path,
                                            const std::string& body);

  AgentOptions options_;
  EvaluationHandler handler_;
  SpanShipper shipper_;
  std::unique_ptr<net::HttpClient> http_;
  std::string token_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<int> jobs_executed_{0};
  std::thread loop_thread_;
};

}  // namespace chronos::agent

#endif  // CHRONOS_AGENT_AGENT_H_
