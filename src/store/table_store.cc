#include "store/table_store.h"

#include <algorithm>
#include <cstdio>

#include "common/file_util.h"
#include "fault/failpoint.h"
#include "obs/span.h"

namespace chronos::store {

namespace {

constexpr char kOpInsert[] = "insert";
constexpr char kOpUpdate[] = "update";
constexpr char kOpDelete[] = "delete";

// Reserved top-level snapshot key holding checkpoint metadata (not a table):
// "_meta": {"wal_seq": N} records the highest WAL sequence number the
// snapshot covers, so replay can skip records already folded in.
constexpr char kSnapshotMetaKey[] = "_meta";

json::Json MakeMutation(const char* op, const std::string& table,
                        const std::string& id) {
  json::Json m = json::Json::MakeObject();
  m.Set("op", op);
  m.Set("table", table);
  m.Set("id", id);
  return m;
}

}  // namespace

TableStore::TableStore(std::string dir, TableStoreOptions options)
    : dir_(std::move(dir)), options_(options) {}

TableStore::~TableStore() = default;

std::string TableStore::SnapshotPath() const { return dir_ + "/snapshot.json"; }
std::string TableStore::WalPath() const { return dir_ + "/wal.log"; }

StatusOr<std::unique_ptr<TableStore>> TableStore::Open(
    const std::string& dir, TableStoreOptions options) {
  CHRONOS_RETURN_IF_ERROR(file::MakeDirs(dir));
  std::unique_ptr<TableStore> table_store(new TableStore(dir, options));
  CHRONOS_RETURN_IF_ERROR(table_store->Load());
  CHRONOS_ASSIGN_OR_RETURN(table_store->wal_, Wal::Open(table_store->WalPath()));
  {
    // The WAL recovers its counter from its own records only; after a clean
    // shutdown the log is empty, so without this floor a new incarnation
    // would restart at seq 1 and the snapshot's covered-sequence stamp
    // would silently mask every record it writes on the next replay.
    MutexLock lock(table_store->mu_);
    table_store->wal_->EnsureNextSeqAtLeast(table_store->loaded_covered_seq_ +
                                            1);
  }
  return table_store;
}

Status TableStore::Load() {
  // Open-time only (no concurrent callers yet), but Apply and tables_ demand
  // the capability, so hold it for the whole load.
  MutexLock lock(mu_);
  // 1. Snapshot (if present).
  uint64_t covered_seq = 0;
  if (file::Exists(SnapshotPath())) {
    CHRONOS_ASSIGN_OR_RETURN(std::string text, file::ReadFile(SnapshotPath()));
    CHRONOS_ASSIGN_OR_RETURN(json::Json snapshot, json::Parse(text));
    if (!snapshot.is_object()) {
      return Status::Corruption("snapshot is not an object");
    }
    for (const auto& [table_name, rows] : snapshot.as_object()) {
      if (table_name == kSnapshotMetaKey) {
        covered_seq =
            static_cast<uint64_t>(rows.GetIntOr("wal_seq", 0));
        loaded_covered_seq_ = covered_seq;
        continue;
      }
      Table table;
      for (const auto& [id, row] : rows.as_object()) {
        table[id] = row;
      }
      tables_[table_name] = std::move(table);
    }
  }
  // 2. WAL replay over the snapshot. A crash between snapshot rename and WAL
  // truncate leaves records the snapshot already contains; their sequence
  // numbers are <= covered_seq, so they are skipped instead of re-applied
  // (re-applying would resurrect rows deleted after the covered prefix and
  // roll back row versions).
  CHRONOS_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                           Wal::ReplayRecords(WalPath()));
  for (const WalRecord& record : records) {
    if (record.seq <= covered_seq) continue;
    auto mutation = json::Parse(record.payload);
    if (!mutation.ok()) {
      // A record passed its CRC but fails to parse: treat as corrupt tail.
      break;
    }
    Apply(*mutation);
  }
  return Status::Ok();
}

Status TableStore::LogAndApply(const json::Json& mutation) {
  // Fails the whole commit before the WAL sees it ("store.commit" covers
  // the durability boundary; "wal.append" the log write itself).
  CHRONOS_RETURN_IF_ERROR(fault::Inject("store.commit"));
  CHRONOS_RETURN_IF_ERROR(wal_->Append(mutation.Dump(), options_.sync_writes));
  Apply(mutation);
  return MaybeCheckpointLocked();
}

void TableStore::Apply(const json::Json& mutation) {
  const std::string& op = mutation.at("op").as_string();
  const std::string& table_name = mutation.at("table").as_string();
  const std::string& id = mutation.at("id").as_string();
  if (op == kOpDelete) {
    auto it = tables_.find(table_name);
    if (it != tables_.end()) it->second.erase(id);
  } else {
    tables_[table_name][id] = mutation.at("row");
  }
  ++applied_;
}

Status TableStore::MaybeCheckpointLocked() {
  if (options_.checkpoint_wal_bytes == 0) return Status::Ok();
  if (wal_->size_bytes() < options_.checkpoint_wal_bytes) return Status::Ok();
  return CheckpointLocked();
}

Status TableStore::CheckpointLocked() {
  // Unlike the commit spans this one ends while mu_ is still held (callers
  // own the lock); a slow-checkpoint WARN under the lock is rare and
  // accepted — see DESIGN.md §12.
  obs::Span span("store.checkpoint");
  span.SetAttribute("wal_bytes", std::to_string(wal_->size_bytes()));
  // Snapshot under the already-held mutex (callers hold mu_).
  json::Json snapshot = json::Json::MakeObject();
  for (const auto& [table_name, table] : tables_) {
    json::Json rows = json::Json::MakeObject();
    for (const auto& [id, row] : table) rows.Set(id, row);
    snapshot.Set(table_name, std::move(rows));
  }
  json::Json meta = json::Json::MakeObject();
  meta.Set("wal_seq", static_cast<int64_t>(wal_->last_seq()));
  snapshot.Set(kSnapshotMetaKey, std::move(meta));
  std::string tmp = SnapshotPath() + ".tmp";
  CHRONOS_RETURN_IF_ERROR(file::WriteFileDurable(tmp, snapshot.Dump()));
  if (std::rename(tmp.c_str(), SnapshotPath().c_str()) != 0) {
    return Status::IoError("snapshot rename failed");
  }
  // The rename is only durable once the directory entry is synced; until
  // then a crash can serve the old snapshot with a truncated WAL.
  CHRONOS_RETURN_IF_ERROR(file::SyncDir(dir_));
  // Crash seam between the visible snapshot and the WAL truncate — the
  // window the covered-sequence stamp exists for.
  CHRONOS_RETURN_IF_ERROR(fault::Inject("store.checkpoint.after_rename"));
  return wal_->Truncate();
}

Status TableStore::Insert(const std::string& table, const std::string& id,
                          json::Json row) {
  if (!row.is_object()) return Status::InvalidArgument("row must be an object");
  // Span before lock: destruction order releases mu_ first, so a slow-span
  // WARN never logs under the store mutex.
  obs::Span span("store.commit");
  span.SetAttribute("op", "insert");
  span.SetAttribute("table", table);
  MutexLock lock(mu_);
  auto table_it = tables_.find(table);
  if (table_it != tables_.end() && table_it->second.count(id) > 0) {
    return Status::AlreadyExists("row exists: " + table + "/" + id);
  }
  row.Set("id", id);
  row.Set("_version", static_cast<int64_t>(1));
  json::Json mutation = MakeMutation(kOpInsert, table, id);
  mutation.Set("row", std::move(row));
  return LogAndApply(mutation);
}

Status TableStore::Update(const std::string& table, const std::string& id,
                          json::Json row, int64_t expected_version) {
  if (!row.is_object()) return Status::InvalidArgument("row must be an object");
  obs::Span span("store.commit");
  span.SetAttribute("op", "update");
  span.SetAttribute("table", table);
  MutexLock lock(mu_);
  auto table_it = tables_.find(table);
  if (table_it == tables_.end() || table_it->second.count(id) == 0) {
    return Status::NotFound("row not found: " + table + "/" + id);
  }
  int64_t current_version = table_it->second[id].GetIntOr("_version", 0);
  if (expected_version >= 0 && current_version != expected_version) {
    return Status::FailedPrecondition(
        "version mismatch on " + table + "/" + id + ": expected " +
        std::to_string(expected_version) + ", found " +
        std::to_string(current_version));
  }
  row.Set("id", id);
  row.Set("_version", current_version + 1);
  json::Json mutation = MakeMutation(kOpUpdate, table, id);
  mutation.Set("row", std::move(row));
  return LogAndApply(mutation);
}

Status TableStore::Upsert(const std::string& table, const std::string& id,
                          json::Json row) {
  if (!row.is_object()) return Status::InvalidArgument("row must be an object");
  obs::Span span("store.commit");
  span.SetAttribute("op", "upsert");
  span.SetAttribute("table", table);
  MutexLock lock(mu_);
  int64_t version = 0;
  auto table_it = tables_.find(table);
  if (table_it != tables_.end()) {
    auto row_it = table_it->second.find(id);
    if (row_it != table_it->second.end()) {
      version = row_it->second.GetIntOr("_version", 0);
    }
  }
  row.Set("id", id);
  row.Set("_version", version + 1);
  json::Json mutation = MakeMutation(kOpUpdate, table, id);
  mutation.Set("row", std::move(row));
  return LogAndApply(mutation);
}

Status TableStore::Delete(const std::string& table, const std::string& id) {
  obs::Span span("store.commit");
  span.SetAttribute("op", "delete");
  span.SetAttribute("table", table);
  MutexLock lock(mu_);
  auto table_it = tables_.find(table);
  if (table_it == tables_.end() || table_it->second.count(id) == 0) {
    return Status::NotFound("row not found: " + table + "/" + id);
  }
  return LogAndApply(MakeMutation(kOpDelete, table, id));
}

StatusOr<json::Json> TableStore::Get(const std::string& table,
                                     const std::string& id) const {
  MutexLock lock(mu_);
  auto table_it = tables_.find(table);
  if (table_it != tables_.end()) {
    auto row_it = table_it->second.find(id);
    if (row_it != table_it->second.end()) return row_it->second;
  }
  return Status::NotFound("row not found: " + table + "/" + id);
}

bool TableStore::Exists(const std::string& table, const std::string& id) const {
  MutexLock lock(mu_);
  auto table_it = tables_.find(table);
  return table_it != tables_.end() && table_it->second.count(id) > 0;
}

std::vector<json::Json> TableStore::Scan(const std::string& table) const {
  MutexLock lock(mu_);
  std::vector<json::Json> rows;
  auto table_it = tables_.find(table);
  if (table_it != tables_.end()) {
    rows.reserve(table_it->second.size());
    for (const auto& [id, row] : table_it->second) rows.push_back(row);
  }
  return rows;
}

std::vector<json::Json> TableStore::FindBy(const std::string& table,
                                           const std::string& field,
                                           const json::Json& value) const {
  return FindIf(table, [&](const json::Json& row) {
    return row.at(field) == value;
  });
}

std::vector<json::Json> TableStore::FindIf(
    const std::string& table,
    const std::function<bool(const json::Json&)>& pred) const {
  MutexLock lock(mu_);
  std::vector<json::Json> rows;
  auto table_it = tables_.find(table);
  if (table_it != tables_.end()) {
    for (const auto& [id, row] : table_it->second) {
      if (pred(row)) rows.push_back(row);
    }
  }
  return rows;
}

size_t TableStore::Count(const std::string& table) const {
  MutexLock lock(mu_);
  auto table_it = tables_.find(table);
  return table_it == tables_.end() ? 0 : table_it->second.size();
}

std::vector<std::string> TableStore::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Status TableStore::Checkpoint() {
  MutexLock lock(mu_);
  return CheckpointLocked();
}

uint64_t TableStore::wal_bytes() const {
  MutexLock lock(mu_);
  return wal_->size_bytes();
}

uint64_t TableStore::applied_mutations() const {
  MutexLock lock(mu_);
  return applied_;
}

}  // namespace chronos::store
