#ifndef CHRONOS_STORE_TABLE_STORE_H_
#define CHRONOS_STORE_TABLE_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "json/json.h"
#include "store/wal.h"

namespace chronos::store {

struct TableStoreOptions {
  // fsync the WAL on every mutation. Chronos Control metadata defaults to
  // durable commits; benchmarks may relax this.
  bool sync_writes = true;
  // Checkpoint automatically once the WAL exceeds this size (0 = never).
  uint64_t checkpoint_wal_bytes = 16 * 1024 * 1024;
};

// A row is a JSON object; every row has a string primary key ("id"). The
// store additionally maintains an optimistic-concurrency version counter per
// row (exposed as "_version") so multi-step updates can be made atomic.
//
// Durability model (MySQL substitute for Chronos Control):
//   * every mutation is appended to a WAL before being applied in memory;
//   * Checkpoint() writes a full JSON snapshot and truncates the WAL;
//   * Open() loads the snapshot (if any) and replays the WAL over it —
//     crash at any point recovers the last committed mutation.
//
// Thread-safe: a single store-wide mutex serializes mutations (metadata
// traffic is small; fairness beats parallelism here).
class TableStore {
 public:
  ~TableStore();

  TableStore(const TableStore&) = delete;
  TableStore& operator=(const TableStore&) = delete;

  // Opens (creating if needed) a store rooted at directory `dir`.
  static StatusOr<std::unique_ptr<TableStore>> Open(
      const std::string& dir, TableStoreOptions options = {});

  // Inserts a row; fails with AlreadyExists if the id is taken. The stored
  // row gains "_version" = 1.
  Status Insert(const std::string& table, const std::string& id,
                json::Json row);

  // Replaces a row; fails with NotFound. If expected_version >= 0, fails
  // with FailedPrecondition unless it matches the stored version.
  Status Update(const std::string& table, const std::string& id,
                json::Json row, int64_t expected_version = -1);

  // Insert-or-replace without version checking.
  Status Upsert(const std::string& table, const std::string& id,
                json::Json row);

  Status Delete(const std::string& table, const std::string& id);

  StatusOr<json::Json> Get(const std::string& table,
                           const std::string& id) const;
  bool Exists(const std::string& table, const std::string& id) const;

  // All rows of a table, sorted by id.
  std::vector<json::Json> Scan(const std::string& table) const;

  // Rows where row[field] == value (linear scan; metadata tables are small).
  std::vector<json::Json> FindBy(const std::string& table,
                                 const std::string& field,
                                 const json::Json& value) const;

  // Rows matching a predicate.
  std::vector<json::Json> FindIf(
      const std::string& table,
      const std::function<bool(const json::Json&)>& pred) const;

  size_t Count(const std::string& table) const;
  std::vector<std::string> TableNames() const;

  // Writes a snapshot and truncates the WAL.
  Status Checkpoint();

  uint64_t wal_bytes() const;

  // Monotonic sequence number of applied mutations (for tests/metrics).
  uint64_t applied_mutations() const;

 private:
  TableStore(std::string dir, TableStoreOptions options);

  using Table = std::map<std::string, json::Json>;  // id -> row

  Status Load() CHRONOS_EXCLUDES(mu_);
  Status LogAndApply(const json::Json& mutation) CHRONOS_REQUIRES(mu_);
  void Apply(const json::Json& mutation) CHRONOS_REQUIRES(mu_);
  Status MaybeCheckpointLocked() CHRONOS_REQUIRES(mu_);
  Status CheckpointLocked() CHRONOS_REQUIRES(mu_);
  std::string SnapshotPath() const;
  std::string WalPath() const;

  std::string dir_;
  TableStoreOptions options_;
  std::unique_ptr<Wal> wal_;

  mutable Mutex mu_;
  std::unordered_map<std::string, Table> tables_ CHRONOS_GUARDED_BY(mu_);
  uint64_t applied_ CHRONOS_GUARDED_BY(mu_) = 0;
  // Covered-sequence stamp read from the snapshot at Load() time. Open()
  // feeds it to the WAL as a sequence floor: after a checkpoint truncated
  // the log, a fresh incarnation must not reissue sequence numbers the
  // snapshot already covers.
  uint64_t loaded_covered_seq_ CHRONOS_GUARDED_BY(mu_) = 0;
};

}  // namespace chronos::store

#endif  // CHRONOS_STORE_TABLE_STORE_H_
