#ifndef CHRONOS_STORE_WAL_H_
#define CHRONOS_STORE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"

namespace chronos::store {

// Append-only write-ahead log. Each record is framed as
//   [u32 payload_len][u32 crc32(payload)][payload]
// (little endian). Append is atomic under an internal mutex; Sync flushes to
// the OS and fsyncs. Replay tolerates a torn tail: the first record whose
// frame is incomplete or whose CRC mismatches ends the replay (everything
// before it is returned), matching the recovery contract of production WALs.
class Wal {
 public:
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating if needed) the log at `path` for appending.
  static StatusOr<std::unique_ptr<Wal>> Open(const std::string& path);

  // Appends one record. If `sync`, fsyncs before returning.
  Status Append(std::string_view payload, bool sync);

  Status Sync();

  // Bytes currently in the log file.
  uint64_t size_bytes() const {
    MutexLock lock(mu_);
    return size_bytes_;
  }

  // Closes, removes and recreates the log (after a checkpoint).
  Status Truncate();

  const std::string& path() const { return path_; }

  // Reads all intact records from a log file. Missing file -> empty list.
  static StatusOr<std::vector<std::string>> Replay(const std::string& path);

 private:
  Wal(std::FILE* file, std::string path, uint64_t size)
      : file_(file), path_(std::move(path)), size_bytes_(size) {}

  mutable Mutex mu_;
  std::FILE* file_ CHRONOS_GUARDED_BY(mu_);
  std::string path_;
  uint64_t size_bytes_ CHRONOS_GUARDED_BY(mu_);
};

}  // namespace chronos::store

#endif  // CHRONOS_STORE_WAL_H_
