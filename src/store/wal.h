#ifndef CHRONOS_STORE_WAL_H_
#define CHRONOS_STORE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"

namespace chronos::store {

// One replayed WAL record: a monotonically increasing sequence number plus
// the opaque payload the caller appended.
struct WalRecord {
  uint64_t seq = 0;
  std::string payload;
};

// Append-only write-ahead log. Each record is framed as
//   [u32 payload_len][u32 crc32(seq || payload)][u64 seq][payload]
// (little endian; the CRC covers the encoded sequence number and the
// payload). Sequence numbers start at 1, never repeat, and — critically —
// survive Truncate(): a snapshot stamped with the last sequence it covers
// lets recovery skip records that are already folded into the snapshot,
// which closes the crash window between snapshot rename and WAL truncate.
//
// Append is atomic under an internal mutex; Sync flushes to the OS and
// fsyncs. Replay tolerates a torn tail: the first record whose frame is
// incomplete, whose CRC mismatches, or whose sequence number is not strictly
// increasing ends the replay (everything before it is returned), matching
// the recovery contract of production WALs.
class Wal {
 public:
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating if needed) the log at `path` for appending. Replays any
  // existing records to recover the next sequence number.
  static StatusOr<std::unique_ptr<Wal>> Open(const std::string& path);

  // Appends one record. If `sync`, fsyncs before returning.
  Status Append(std::string_view payload, bool sync);

  Status Sync();

  // Bytes currently in the log file.
  uint64_t size_bytes() const {
    MutexLock lock(mu_);
    return size_bytes_;
  }

  // Sequence number of the last appended record (0 if none ever). Monotonic
  // across Truncate(): a snapshot taken now covers every record <= this.
  uint64_t last_seq() const {
    MutexLock lock(mu_);
    return next_seq_ - 1;
  }

  // Raises the sequence counter so the next append gets at least `floor`.
  // Open() only recovers the counter from the log's own records, so after a
  // checkpoint truncated the log a new incarnation would restart at 1 —
  // below the snapshot's covered-sequence stamp, which would mask every new
  // record on the next replay. The store calls this with covered_seq + 1.
  void EnsureNextSeqAtLeast(uint64_t floor) {
    MutexLock lock(mu_);
    if (next_seq_ < floor) next_seq_ = floor;
  }

  // Empties the log in place (after a checkpoint) — ftruncate + fsync on the
  // open descriptor, never close/remove/recreate, so a crash at any point
  // leaves either the old intact log or an empty one, and the sequence
  // counter keeps climbing.
  Status Truncate();

  const std::string& path() const { return path_; }

  // Reads all intact record payloads from a log file, in order. Missing
  // file -> empty list.
  static StatusOr<std::vector<std::string>> Replay(const std::string& path);

  // Like Replay but keeps the sequence numbers, for callers that need to
  // skip records already covered by a snapshot.
  static StatusOr<std::vector<WalRecord>> ReplayRecords(
      const std::string& path);

 private:
  Wal(std::FILE* file, std::string path, uint64_t size, uint64_t next_seq)
      : file_(file),
        path_(std::move(path)),
        size_bytes_(size),
        next_seq_(next_seq) {}

  mutable Mutex mu_;
  std::FILE* file_ CHRONOS_GUARDED_BY(mu_);
  std::string path_;
  uint64_t size_bytes_ CHRONOS_GUARDED_BY(mu_);
  uint64_t next_seq_ CHRONOS_GUARDED_BY(mu_);
};

}  // namespace chronos::store

#endif  // CHRONOS_STORE_WAL_H_
