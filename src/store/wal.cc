#include "store/wal.h"

#include <unistd.h>

#include <cstring>

#include "archive/crc32.h"
#include "common/file_util.h"
#include "fault/failpoint.h"
#include "obs/metrics_registry.h"

namespace chronos::store {

namespace {

void EncodeU32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t DecodeU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

}  // namespace

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open WAL: " + path);
  }
  long pos = std::ftell(file);
  uint64_t size = pos < 0 ? 0 : static_cast<uint64_t>(pos);
  return std::unique_ptr<Wal>(new Wal(file, path, size));
}

Status Wal::Append(std::string_view payload, bool sync) {
  if (payload.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("WAL record too large");
  }
  char header[8];
  EncodeU32(header, static_cast<uint32_t>(payload.size()));
  EncodeU32(header + 4, archive::Crc32(payload));

  MutexLock lock(mu_);
  {
    // Fault injection (DESIGN.md §10). "wal.append" fails before any byte is
    // written; the crash-shape points write a deliberately incomplete frame
    // — exactly what a power cut mid-append leaves behind — so recovery
    // tests can assert Replay's torn-tail contract against real files.
    fault::Action append_fault =
        fault::FailPointRegistry::Get()->Evaluate("wal.append");
    if (append_fault.kind != fault::Action::Kind::kNone) {
      return append_fault.status;
    }
    fault::Action torn =
        fault::FailPointRegistry::Get()->Evaluate("wal.append.torn");
    if (torn.kind != fault::Action::Kind::kNone) {
      // Full header + half the payload: frame length promises more bytes
      // than the file holds.
      size_t partial = payload.size() / 2;
      size_t wrote = std::fwrite(header, 1, sizeof(header), file_);
      wrote += std::fwrite(payload.data(), 1, partial, file_);
      std::fflush(file_);
      size_bytes_ += wrote;
      return torn.status;
    }
    fault::Action short_write =
        fault::FailPointRegistry::Get()->Evaluate("wal.append.short");
    if (short_write.kind != fault::Action::Kind::kNone) {
      // Only part of the 8-byte header: a tail too short to even frame.
      size_t wrote = std::fwrite(header, 1, sizeof(header) / 2, file_);
      std::fflush(file_);
      size_bytes_ += wrote;
      return short_write.status;
    }
  }
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::IoError("WAL write failed: " + path_);
  }
  size_bytes_ += sizeof(header) + payload.size();
  static obs::Counter* appends = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_wal_appends_total", "Records appended to any WAL");
  static obs::Counter* bytes = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_wal_bytes_total", "Bytes appended to any WAL (incl. framing)");
  appends->Increment();
  bytes->Increment(sizeof(header) + payload.size());
  if (sync) {
    CHRONOS_RETURN_IF_ERROR(fault::Inject("wal.fsync"));
    if (std::fflush(file_) != 0) return Status::IoError("WAL flush failed");
    if (::fsync(::fileno(file_)) != 0) return Status::IoError("WAL fsync failed");
  }
  return Status::Ok();
}

Status Wal::Sync() {
  MutexLock lock(mu_);
  CHRONOS_RETURN_IF_ERROR(fault::Inject("wal.fsync"));
  if (std::fflush(file_) != 0) return Status::IoError("WAL flush failed");
  if (::fsync(::fileno(file_)) != 0) return Status::IoError("WAL fsync failed");
  return Status::Ok();
}

Status Wal::Truncate() {
  MutexLock lock(mu_);
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot truncate WAL: " + path_);
  }
  size_bytes_ = 0;
  return Status::Ok();
}

StatusOr<std::vector<std::string>> Wal::Replay(const std::string& path) {
  std::vector<std::string> records;
  if (!file::Exists(path)) return records;
  CHRONOS_ASSIGN_OR_RETURN(std::string data, file::ReadFile(path));

  size_t pos = 0;
  while (pos + 8 <= data.size()) {
    uint32_t length = DecodeU32(data.data() + pos);
    uint32_t crc = DecodeU32(data.data() + pos + 4);
    if (pos + 8 + length > data.size()) break;  // Torn tail.
    std::string_view payload(data.data() + pos + 8, length);
    if (archive::Crc32(payload) != crc) break;  // Corrupt tail.
    records.emplace_back(payload);
    pos += 8 + length;
  }
  return records;
}

}  // namespace chronos::store
