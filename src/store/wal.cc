#include "store/wal.h"

#include <unistd.h>

#include <cstring>

#include "archive/crc32.h"
#include "common/file_util.h"
#include "fault/failpoint.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace chronos::store {

namespace {

// Frame layout: [u32 len][u32 crc][u64 seq][payload]. The CRC covers the
// encoded sequence number and the payload so a flipped bit in either ends
// replay at the damage.
constexpr size_t kHeaderSize = 16;

void EncodeU32(char* out, uint32_t v) {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
  out[2] = static_cast<char>((v >> 16) & 0xFF);
  out[3] = static_cast<char>((v >> 24) & 0xFF);
}

uint32_t DecodeU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

void EncodeU64(char* out, uint64_t v) {
  EncodeU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFull));
  EncodeU32(out + 4, static_cast<uint32_t>(v >> 32));
}

uint64_t DecodeU64(const char* in) {
  return static_cast<uint64_t>(DecodeU32(in)) |
         static_cast<uint64_t>(DecodeU32(in + 4)) << 32;
}

uint32_t FrameCrc(const char* seq_bytes, std::string_view payload) {
  uint32_t crc = archive::Crc32(std::string_view(seq_bytes, 8));
  return archive::Crc32(payload, crc);
}

}  // namespace

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  // Recover the sequence counter before opening for append: new records must
  // continue strictly after everything an earlier incarnation wrote, or a
  // snapshot's covered-sequence stamp would mask them on replay.
  uint64_t next_seq = 1;
  if (file::Exists(path)) {
    CHRONOS_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                             ReplayRecords(path));
    if (!records.empty()) next_seq = records.back().seq + 1;
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("cannot open WAL: " + path);
  }
  long pos = std::ftell(file);
  uint64_t size = pos < 0 ? 0 : static_cast<uint64_t>(pos);
  return std::unique_ptr<Wal>(new Wal(file, path, size, next_seq));
}

Status Wal::Append(std::string_view payload, bool sync) {
  if (payload.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("WAL record too large");
  }

  // Span before lock so it ends (and may WARN-log) after mu_ is released.
  obs::Span span("wal.append");
  span.SetAttribute("bytes", std::to_string(payload.size()));
  span.SetAttribute("sync", sync ? "true" : "false");
  MutexLock lock(mu_);
  char header[kHeaderSize];
  EncodeU32(header, static_cast<uint32_t>(payload.size()));
  EncodeU64(header + 8, next_seq_);
  EncodeU32(header + 4, FrameCrc(header + 8, payload));
  {
    // Fault injection (DESIGN.md §10). "wal.append" fails before any byte is
    // written; the crash-shape points write a deliberately incomplete frame
    // — exactly what a power cut mid-append leaves behind — so recovery
    // tests can assert Replay's torn-tail contract against real files.
    fault::Action append_fault =
        fault::FailPointRegistry::Get()->Evaluate("wal.append");
    if (append_fault.kind != fault::Action::Kind::kNone) {
      return append_fault.status;
    }
    fault::Action torn =
        fault::FailPointRegistry::Get()->Evaluate("wal.append.torn");
    if (torn.kind != fault::Action::Kind::kNone) {
      // Full header + half the payload: frame length promises more bytes
      // than the file holds. The burnt sequence number is unrecoverable
      // behind the tear, so skipping it keeps the log strictly increasing.
      size_t partial = payload.size() / 2;
      size_t wrote = std::fwrite(header, 1, sizeof(header), file_);
      wrote += std::fwrite(payload.data(), 1, partial, file_);
      std::fflush(file_);
      size_bytes_ += wrote;
      ++next_seq_;
      return torn.status;
    }
    fault::Action short_write =
        fault::FailPointRegistry::Get()->Evaluate("wal.append.short");
    if (short_write.kind != fault::Action::Kind::kNone) {
      // Only part of the frame header: a tail too short to even frame.
      size_t wrote = std::fwrite(header, 1, sizeof(header) / 2, file_);
      std::fflush(file_);
      size_bytes_ += wrote;
      ++next_seq_;
      return short_write.status;
    }
  }
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header) ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    return Status::IoError("WAL write failed: " + path_);
  }
  size_bytes_ += sizeof(header) + payload.size();
  ++next_seq_;
  static obs::Counter* appends = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_wal_appends_total", "Records appended to any WAL");
  static obs::Counter* bytes = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_wal_bytes_total", "Bytes appended to any WAL (incl. framing)");
  appends->Increment();
  bytes->Increment(sizeof(header) + payload.size());
  if (sync) {
    obs::Span fsync_span("wal.fsync");
    CHRONOS_RETURN_IF_ERROR(fault::Inject("wal.fsync"));
    if (std::fflush(file_) != 0) return Status::IoError("WAL flush failed");
    if (::fsync(::fileno(file_)) != 0) return Status::IoError("WAL fsync failed");
  }
  return Status::Ok();
}

Status Wal::Sync() {
  obs::Span span("wal.fsync");
  MutexLock lock(mu_);
  CHRONOS_RETURN_IF_ERROR(fault::Inject("wal.fsync"));
  if (std::fflush(file_) != 0) return Status::IoError("WAL flush failed");
  if (::fsync(::fileno(file_)) != 0) return Status::IoError("WAL fsync failed");
  return Status::Ok();
}

Status Wal::Truncate() {
  MutexLock lock(mu_);
  CHRONOS_RETURN_IF_ERROR(fault::Inject("wal.truncate"));
  // In place, on the descriptor that stays open: there is no window where
  // the log does not exist, and a crash leaves either the old intact file or
  // an empty one. The stream was opened in append mode, so subsequent writes
  // land at the (new) end regardless of the stdio position.
  if (std::fflush(file_) != 0) {
    return Status::IoError("WAL flush failed: " + path_);
  }
  if (::ftruncate(::fileno(file_), 0) != 0) {
    return Status::IoError("cannot truncate WAL: " + path_);
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IoError("WAL fsync failed: " + path_);
  }
  size_bytes_ = 0;
  // next_seq_ deliberately keeps climbing: sequence numbers are the link
  // between snapshots and the log, so they must never restart.
  return Status::Ok();
}

StatusOr<std::vector<std::string>> Wal::Replay(const std::string& path) {
  CHRONOS_ASSIGN_OR_RETURN(std::vector<WalRecord> records,
                           ReplayRecords(path));
  std::vector<std::string> payloads;
  payloads.reserve(records.size());
  for (WalRecord& record : records) {
    payloads.push_back(std::move(record.payload));
  }
  return payloads;
}

StatusOr<std::vector<WalRecord>> Wal::ReplayRecords(const std::string& path) {
  std::vector<WalRecord> records;
  if (!file::Exists(path)) return records;
  CHRONOS_ASSIGN_OR_RETURN(std::string data, file::ReadFile(path));

  size_t pos = 0;
  uint64_t prev_seq = 0;
  while (pos + kHeaderSize <= data.size()) {
    uint32_t length = DecodeU32(data.data() + pos);
    uint32_t crc = DecodeU32(data.data() + pos + 4);
    uint64_t seq = DecodeU64(data.data() + pos + 8);
    if (pos + kHeaderSize + length > data.size()) break;  // Torn tail.
    std::string_view payload(data.data() + pos + kHeaderSize, length);
    if (FrameCrc(data.data() + pos + 8, payload) != crc) break;  // Corrupt.
    if (seq <= prev_seq) break;  // Sequence must be strictly increasing.
    records.push_back(WalRecord{seq, std::string(payload)});
    prev_seq = seq;
    pos += kHeaderSize + length;
  }
  return records;
}

}  // namespace chronos::store
