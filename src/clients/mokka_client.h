#ifndef CHRONOS_CLIENTS_MOKKA_CLIENT_H_
#define CHRONOS_CLIENTS_MOKKA_CLIENT_H_

#include <functional>
#include <string>

#include "agent/agent.h"
#include "analysis/metrics.h"
#include "common/statusor.h"
#include "workload/workload.h"

namespace chronos::clients {

// Benchmark configuration the MokkaDB evaluation client executes against one
// deployment — the C++ twin of the paper's MongoDB Chronos agent.
struct MokkaBenchConfig {
  std::string endpoint;                 // "host:port" of the MokkaDB server.
  std::string collection = "usertable";
  std::string engine = "btree";         // btree|wiredtiger|mmap|mmapv1.
  // Engine tuning forwarded to MakeStorageEngine; io_read_us/io_write_us
  // model storage latency so the engines' locking granularity shows even on
  // few-core hosts (see DESIGN.md, substitutions).
  json::Json engine_options;
  int threads = 1;                      // Concurrent client threads.
  workload::WorkloadSpec spec;          // Population + operation mix.
  uint64_t warmup_ops_per_thread = 0;   // Unmeasured warm-up phase.
  bool drop_before_load = true;
  // Offered load per client thread (YCSB's -target). 0 = closed loop at
  // full speed. With a target, each thread paces operations to the given
  // rate, so latency is measured under controlled load.
  double target_ops_per_sec_per_thread = 0;
};

// Runs the full evaluation workflow from the paper's §1 against a MokkaDB
// deployment: (1) set up — (re)create the collection with the requested
// storage engine and ingest the benchmark population; (2) warm up; (3) run
// the measured operation mix on `threads` connections. Latencies land in
// `metrics` per operation type; the returned JSON summarizes throughput and
// dataset shape.
//
// `progress` (optional) receives 0..100 and may return false to request
// cancellation (abort support).
StatusOr<json::Json> RunMokkaBenchmark(
    const MokkaBenchConfig& config, analysis::MetricsCollector* metrics,
    const std::function<bool(int)>& progress = {});

// Builds MokkaBenchConfig from a Chronos job's parameters:
//   engine (string), threads (int), records (int), operations (int),
//   workload (preset a..f) OR ratio ("read:95,update:5"),
//   distribution (uniform|zipfian|...), field_count, field_length,
//   warmup_ops.
StatusOr<MokkaBenchConfig> ConfigFromParameters(
    const model::ParameterAssignment& parameters,
    const std::string& endpoint);

// The ready-made evaluation handler for a Chronos agent serving a MokkaDB
// deployment at `endpoint`: builds the config from the job parameters, runs
// the benchmark, reports progress, and fills the result document.
agent::EvaluationHandler MakeMokkaEvaluationHandler(std::string endpoint);

}  // namespace chronos::clients

#endif  // CHRONOS_CLIENTS_MOKKA_CLIENT_H_
