#ifndef CHRONOS_CLIENTS_MOKKA_PROVISIONER_H_
#define CHRONOS_CLIENTS_MOKKA_PROVISIONER_H_

#include <map>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "control/provisioner.h"
#include "sue/mokkadb/wire.h"

namespace chronos::clients {

// Reference DeploymentProvisioner: launches MokkaDB instances in-process
// (the "on-premise cluster" of a single machine). Spec options:
//   {"default_engine": "btree"|"mmap"}   — database default engine.
class LocalMokkaProvisioner : public control::DeploymentProvisioner {
 public:
  LocalMokkaProvisioner() = default;
  ~LocalMokkaProvisioner() override;

  std::string_view name() const override { return "local-mokka"; }

  StatusOr<Instance> Launch(const json::Json& spec) override;
  Status Terminate(const std::string& handle) override;

  size_t running_count() const;

 private:
  struct Running {
    std::unique_ptr<mokka::Database> database;
    std::unique_ptr<mokka::WireServer> server;
  };

  mutable Mutex mu_;
  std::map<std::string, Running> running_ CHRONOS_GUARDED_BY(mu_);
  int next_handle_ CHRONOS_GUARDED_BY(mu_) = 1;
};

}  // namespace chronos::clients

#endif  // CHRONOS_CLIENTS_MOKKA_PROVISIONER_H_
