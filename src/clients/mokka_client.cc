#include "clients/mokka_client.h"

#include <atomic>
#include <thread>
#include <vector>

#include "sue/mokkadb/wire.h"

namespace chronos::clients {

namespace {

using mokka::WireClient;
using workload::OpType;
using workload::Operation;
using workload::WorkloadGenerator;

Status RunOperation(WireClient* client, const std::string& collection,
                    const Operation& op,
                    analysis::MetricsCollector* metrics) {
  analysis::ScopedTimerUs timer;
  Status status = Status::Ok();
  switch (op.type) {
    case OpType::kRead: {
      auto doc = client->Get(collection, op.key);
      // A zipfian/latest chooser may point at a key deleted or not yet
      // inserted; NotFound is part of normal benchmark traffic.
      if (!doc.ok() && !doc.status().IsNotFound()) status = doc.status();
      break;
    }
    case OpType::kUpdate: {
      json::Json filter = json::Json::MakeObject();
      filter.Set("_id", op.key);
      auto n = client->UpdateOne(collection, filter, op.document);
      if (!n.ok()) status = n.status();
      break;
    }
    case OpType::kInsert: {
      auto id = client->Insert(collection, op.document);
      if (!id.ok() && !id.status().IsAlreadyExists()) status = id.status();
      break;
    }
    case OpType::kScan: {
      auto docs = client->Scan(collection, op.key, op.scan_length);
      if (!docs.ok()) status = docs.status();
      break;
    }
    case OpType::kReadModifyWrite: {
      // Two round trips under one latency measurement, like YCSB-F.
      auto doc = client->Get(collection, op.key);
      if (!doc.ok() && !doc.status().IsNotFound()) {
        status = doc.status();
        break;
      }
      if (doc.ok()) {
        json::Json filter = json::Json::MakeObject();
        filter.Set("_id", op.key);
        auto n = client->UpdateOne(collection, filter, op.document);
        if (!n.ok()) status = n.status();
      }
      break;
    }
  }
  metrics->RecordLatency(std::string(OpTypeName(op.type)),
                         timer.ElapsedUs());
  return status;
}

}  // namespace

StatusOr<json::Json> RunMokkaBenchmark(
    const MokkaBenchConfig& config, analysis::MetricsCollector* metrics,
    const std::function<bool(int)>& progress) {
  if (config.threads < 1) {
    return Status::InvalidArgument("threads must be >= 1");
  }
  auto report = [&progress](int percent) {
    return progress == nullptr || progress(percent);
  };

  // --- Phase 1: set-up (create collection, ingest population) ---
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<WireClient> admin,
                           WireClient::ConnectEndpoint(config.endpoint));
  if (config.drop_before_load) admin->Drop(config.collection).IgnoreError();
  CHRONOS_RETURN_IF_ERROR(admin->CreateCollection(
      config.collection, config.engine, config.engine_options));

  WorkloadGenerator loader(config.spec);
  std::vector<std::string> keys = loader.LoadKeys();
  {
    // Parallel load across the client threads.
    std::atomic<size_t> cursor{0};
    std::atomic<bool> load_failed{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < config.threads; ++t) {
      threads.emplace_back([&, t] {
        auto client = WireClient::ConnectEndpoint(config.endpoint);
        if (!client.ok()) {
          load_failed.store(true);
          return;
        }
        WorkloadGenerator documents(config.spec, /*thread_index=*/t + 1000);
        while (true) {
          size_t index = cursor.fetch_add(1);
          if (index >= keys.size() || load_failed.load()) break;
          json::Json doc = documents.MakeDocument(keys[index]);
          auto id = (*client)->Insert(config.collection, std::move(doc));
          if (!id.ok()) {
            load_failed.store(true);
            break;
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    if (load_failed.load()) {
      return Status::Unavailable("benchmark load phase failed");
    }
  }
  if (!report(20)) return Status::Aborted("cancelled during load");

  // --- Phase 2: warm-up (unmeasured) ---
  if (config.warmup_ops_per_thread > 0) {
    std::vector<std::thread> threads;
    std::atomic<bool> warmup_failed{false};
    for (int t = 0; t < config.threads; ++t) {
      threads.emplace_back([&, t] {
        auto client = WireClient::ConnectEndpoint(config.endpoint);
        if (!client.ok()) {
          warmup_failed.store(true);
          return;
        }
        WorkloadGenerator generator(config.spec, /*thread_index=*/t + 2000);
        analysis::MetricsCollector scratch;
        for (uint64_t i = 0; i < config.warmup_ops_per_thread; ++i) {
          RunOperation(client->get(), config.collection,
                       generator.NextOperation(), &scratch)
              .IgnoreError();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    if (warmup_failed.load()) {
      return Status::Unavailable("benchmark warm-up failed");
    }
  }
  if (!report(30)) return Status::Aborted("cancelled during warm-up");

  // --- Phase 3: measured run ---
  metrics->StartRun();
  std::atomic<bool> run_failed{false};
  std::atomic<bool> cancelled{false};
  std::atomic<uint64_t> completed{0};
  uint64_t total_ops = config.spec.operation_count *
                       static_cast<uint64_t>(config.threads);
  std::vector<std::thread> threads;
  for (int t = 0; t < config.threads; ++t) {
    threads.emplace_back([&, t] {
      auto client = WireClient::ConnectEndpoint(config.endpoint);
      if (!client.ok()) {
        run_failed.store(true);
        return;
      }
      WorkloadGenerator generator(config.spec, t);
      // Open-loop pacing for a target rate: operation i is released at
      // start + i * interval; falling behind is not compensated by bursts.
      uint64_t interval_ns =
          config.target_ops_per_sec_per_thread > 0
              ? static_cast<uint64_t>(1e9 /
                                      config.target_ops_per_sec_per_thread)
              : 0;
      uint64_t pace_start_ns = SystemClock::Get()->MonotonicNanos();
      for (uint64_t i = 0; i < config.spec.operation_count; ++i) {
        if (run_failed.load() || cancelled.load()) return;
        if (interval_ns > 0) {
          uint64_t release_ns = pace_start_ns + i * interval_ns;
          uint64_t now_ns = SystemClock::Get()->MonotonicNanos();
          if (now_ns < release_ns) {
            // Real-time rate pacing, not a retry loop: the benchmark
            // measures the SuE against the wall clock by design.
            SystemClock::Get()->SleepMs(  // chronos-lint: allow
                static_cast<int64_t>((release_ns - now_ns) / 1000000));
          }
        }
        Status status = RunOperation(client->get(), config.collection,
                                     generator.NextOperation(), metrics);
        if (!status.ok()) {
          run_failed.store(true);
          return;
        }
        completed.fetch_add(1);
      }
    });
  }
  // Progress reporting from the coordinating thread (30% -> 95%).
  while (true) {
    uint64_t done = completed.load();
    bool all_done = done >= total_ops || run_failed.load();
    int percent =
        30 + static_cast<int>(65.0 * static_cast<double>(done) /
                              static_cast<double>(total_ops == 0 ? 1
                                                                 : total_ops));
    if (!report(percent)) cancelled.store(true);
    if (all_done || cancelled.load()) break;
    // Paces progress reports against the real benchmark run it observes.
    SystemClock::Get()->SleepMs(20);  // chronos-lint: allow
  }
  for (std::thread& thread : threads) thread.join();
  metrics->EndRun();
  if (cancelled.load()) return Status::Aborted("cancelled during run");
  if (run_failed.load()) {
    return Status::Unavailable("benchmark run phase failed");
  }

  // Dataset shape for the record.
  auto count = admin->Count(config.collection, json::Json());
  json::Json summary = json::Json::MakeObject();
  summary.Set("engine", config.engine);
  summary.Set("threads", static_cast<int64_t>(config.threads));
  summary.Set("records", config.spec.record_count);
  summary.Set("operations_total", completed.load());
  summary.Set("throughput", metrics->Throughput());
  summary.Set("runtime_ms", metrics->RuntimeMs());
  if (count.ok()) summary.Set("final_document_count", *count);
  auto stats = admin->Stats();
  if (stats.ok()) summary.Set("engine_stats", stats->at(config.collection));
  report(100);
  return summary;
}

StatusOr<MokkaBenchConfig> ConfigFromParameters(
    const model::ParameterAssignment& parameters,
    const std::string& endpoint) {
  MokkaBenchConfig config;
  config.endpoint = endpoint;
  auto get = [&parameters](const std::string& name) -> const json::Json* {
    auto it = parameters.find(name);
    return it == parameters.end() ? nullptr : &it->second;
  };

  if (const json::Json* engine = get("engine")) {
    config.engine = engine->as_string();
  }
  if (const json::Json* threads = get("threads")) {
    config.threads = static_cast<int>(threads->as_int());
  }
  if (const json::Json* records = get("records")) {
    config.spec.record_count = static_cast<uint64_t>(records->as_int());
  }
  if (const json::Json* operations = get("operations")) {
    config.spec.operation_count =
        static_cast<uint64_t>(operations->as_int());
  }
  if (const json::Json* workload_name = get("workload")) {
    CHRONOS_ASSIGN_OR_RETURN(workload::WorkloadSpec preset,
                             workload::WorkloadSpec::Preset(
                                 workload_name->as_string()));
    preset.record_count = config.spec.record_count;
    preset.operation_count = config.spec.operation_count;
    config.spec = preset;
  }
  if (const json::Json* ratio = get("ratio")) {
    CHRONOS_RETURN_IF_ERROR(config.spec.ApplyRatio(ratio->as_string()));
  }
  if (const json::Json* distribution = get("distribution")) {
    CHRONOS_ASSIGN_OR_RETURN(
        config.spec.distribution,
        workload::ParseDistributionKind(distribution->as_string()));
  }
  if (const json::Json* field_count = get("field_count")) {
    config.spec.field_count = static_cast<int>(field_count->as_int());
  }
  if (const json::Json* field_length = get("field_length")) {
    config.spec.field_length = static_cast<int>(field_length->as_int());
  }
  if (const json::Json* warmup = get("warmup_ops")) {
    config.warmup_ops_per_thread = static_cast<uint64_t>(warmup->as_int());
  }
  if (const json::Json* read_io = get("io_read_us")) {
    config.engine_options.Set("read_io_us", read_io->as_int());
  }
  if (const json::Json* write_io = get("io_write_us")) {
    config.engine_options.Set("write_io_us", write_io->as_int());
  }
  if (config.threads < 1 || config.threads > 256) {
    return Status::InvalidArgument("threads out of range");
  }
  return config;
}

agent::EvaluationHandler MakeMokkaEvaluationHandler(std::string endpoint) {
  return [endpoint](agent::JobContext* context) -> Status {
    CHRONOS_ASSIGN_OR_RETURN(
        MokkaBenchConfig config,
        ConfigFromParameters(context->parameters(), endpoint));
    context->Log("benchmark config: engine=" + config.engine + " threads=" +
                 std::to_string(config.threads) + " records=" +
                 std::to_string(config.spec.record_count) + " ops=" +
                 std::to_string(config.spec.operation_count));
    CHRONOS_ASSIGN_OR_RETURN(
        json::Json summary,
        RunMokkaBenchmark(config, context->metrics(),
                          [context](int percent) {
                            return context->SetProgress(percent);
                          }));
    // Promote headline metrics to top-level result fields so diagram
    // definitions can reference them directly.
    context->SetResultField("throughput",
                            summary.at("throughput"));
    context->SetResultField("runtime_ms", summary.at("runtime_ms"));
    context->SetResultField("engine", summary.at("engine"));
    context->SetResultField("summary", summary);
    context->AddResultFile("summary.json", summary.DumpPretty());
    context->Log("benchmark complete: " +
                 summary.at("throughput").Dump() + " ops/s");
    return Status::Ok();
  };
}

}  // namespace chronos::clients
