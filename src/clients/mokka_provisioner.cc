#include "clients/mokka_provisioner.h"

namespace chronos::clients {

LocalMokkaProvisioner::~LocalMokkaProvisioner() {
  MutexLock lock(mu_);
  for (auto& [handle, running] : running_) {
    running.server->Stop();
  }
}

StatusOr<control::DeploymentProvisioner::Instance>
LocalMokkaProvisioner::Launch(const json::Json& spec) {
  std::string engine = spec.GetStringOr("default_engine", "btree");
  auto database = std::make_unique<mokka::Database>(engine);
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<mokka::WireServer> server,
                           mokka::WireServer::Start(database.get(), 0));
  Instance instance;
  instance.endpoint = server->endpoint();
  MutexLock lock(mu_);
  instance.handle = "mokka-" + std::to_string(next_handle_++);
  running_[instance.handle] =
      Running{std::move(database), std::move(server)};
  return instance;
}

Status LocalMokkaProvisioner::Terminate(const std::string& handle) {
  MutexLock lock(mu_);
  auto it = running_.find(handle);
  if (it == running_.end()) {
    return Status::NotFound("no running instance: " + handle);
  }
  it->second.server->Stop();
  running_.erase(it);
  return Status::Ok();
}

size_t LocalMokkaProvisioner::running_count() const {
  MutexLock lock(mu_);
  return running_.size();
}

}  // namespace chronos::clients
