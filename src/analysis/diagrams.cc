#include "analysis/diagrams.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "common/strings.h"
#include "json/json.h"

namespace chronos::analysis {

namespace {

std::string FormatValue(double v) {
  char buf[32];
  if (std::floor(v) == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  return buf;
}

std::string JsonScalarToLabel(const json::Json& v) {
  if (v.is_string()) return v.as_string();
  if (v.is_bool()) return v.as_bool() ? "true" : "false";
  if (v.is_number()) return FormatValue(v.as_double());
  return v.Dump();
}

// Numeric-aware label ordering so thread counts sort 1,2,4,...,16 not
// lexicographically.
bool LabelLess(const std::string& a, const std::string& b) {
  double da, db;
  if (strings::ParseDouble(a, &da) && strings::ParseDouble(b, &db)) {
    return da < db;
  }
  return a < b;
}

// Escapes text for embedding in HTML/SVG element content.
std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

const char* kSeriesColors[] = {"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
                               "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"};

}  // namespace

json::Json DiagramData::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("name", name);
  out.Set("type", std::string(model::DiagramTypeName(type)));
  out.Set("x_label", x_label);
  out.Set("y_label", y_label);
  json::Json x = json::Json::MakeArray();
  for (const std::string& v : x_values) x.Append(v);
  out.Set("x_values", std::move(x));
  json::Json series_json = json::Json::MakeArray();
  for (const Series& s : series) {
    json::Json entry = json::Json::MakeObject();
    entry.Set("name", s.name);
    json::Json values = json::Json::MakeArray();
    for (double v : s.values) values.Append(v);
    entry.Set("values", std::move(values));
    series_json.Append(std::move(entry));
  }
  out.Set("series", std::move(series_json));
  return out;
}

std::string DiagramData::ToCsv() const {
  std::string out = x_label.empty() ? "series" : x_label;
  for (const Series& s : series) {
    out += "," + s.name;
  }
  out += "\n";
  for (size_t i = 0; i < x_values.size(); ++i) {
    out += x_values[i];
    for (const Series& s : series) {
      out += ",";
      if (i < s.values.size()) out += FormatValue(s.values[i]);
    }
    out += "\n";
  }
  return out;
}

std::string DiagramData::ToTable() const {
  // Column widths.
  size_t label_width = std::max<size_t>(x_label.size(), 8);
  for (const std::string& x : x_values) {
    label_width = std::max(label_width, x.size());
  }
  std::vector<size_t> widths;
  for (const Series& s : series) {
    size_t w = std::max<size_t>(s.name.size(), 10);
    for (double v : s.values) w = std::max(w, FormatValue(v).size());
    widths.push_back(w);
  }
  auto pad = [](const std::string& s, size_t w) {
    return s.size() >= w ? s : std::string(w - s.size(), ' ') + s;
  };

  std::string out = name + " (" + std::string(model::DiagramTypeName(type)) +
                    (y_label.empty() ? "" : ", y=" + y_label) + ")\n";
  out += pad(x_label.empty() ? "x" : x_label, label_width);
  for (size_t i = 0; i < series.size(); ++i) {
    out += "  " + pad(series[i].name, widths[i]);
  }
  out += "\n";
  out += std::string(label_width, '-');
  for (size_t i = 0; i < series.size(); ++i) {
    out += "  " + std::string(widths[i], '-');
  }
  out += "\n";
  for (size_t row = 0; row < x_values.size(); ++row) {
    out += pad(x_values[row], label_width);
    for (size_t i = 0; i < series.size(); ++i) {
      std::string cell = row < series[i].values.size()
                             ? FormatValue(series[i].values[row])
                             : "-";
      out += "  " + pad(cell, widths[i]);
    }
    out += "\n";
  }
  return out;
}

json::Json ExtractField(const JobResult& result, const std::string& field) {
  auto it = result.parameters.find(field);
  if (it != result.parameters.end()) return it->second;
  // Dotted path into the result document.
  const json::Json* node = &result.data;
  for (const std::string& part : strings::Split(field, '.', true)) {
    node = &node->at(part);
  }
  return *node;
}

StatusOr<DiagramData> BuildDiagram(const model::DiagramDef& def,
                                   const std::vector<JobResult>& results) {
  DiagramData diagram;
  diagram.name = def.name;
  diagram.type = def.type;
  diagram.x_label = def.x_field;
  diagram.y_label = def.y_field;
  if (def.y_field.empty()) {
    return Status::InvalidArgument("diagram '" + def.name +
                                   "' has no y_field");
  }

  // group name -> x label -> accumulated values.
  std::map<std::string, std::map<std::string, std::vector<double>>> groups;
  std::set<std::string> x_seen;
  for (const JobResult& result : results) {
    json::Json y = ExtractField(result, def.y_field);
    if (!y.is_number()) continue;  // Job without this metric.
    std::string x = def.x_field.empty()
                        ? ""
                        : JsonScalarToLabel(ExtractField(result, def.x_field));
    std::string group =
        def.group_by.empty()
            ? def.y_field
            : JsonScalarToLabel(ExtractField(result, def.group_by));
    groups[group][x].push_back(y.as_double());
    x_seen.insert(x);
  }
  if (groups.empty()) {
    return Status::NotFound("no job result carries metric '" + def.y_field +
                            "'");
  }

  diagram.x_values.assign(x_seen.begin(), x_seen.end());
  std::sort(diagram.x_values.begin(), diagram.x_values.end(), LabelLess);

  for (const auto& [group, buckets] : groups) {
    Series series;
    series.name = group;
    for (const std::string& x : diagram.x_values) {
      auto it = buckets.find(x);
      if (it == buckets.end() || it->second.empty()) {
        series.values.push_back(0);
        continue;
      }
      double sum = 0;
      for (double v : it->second) sum += v;
      series.values.push_back(sum / static_cast<double>(it->second.size()));
    }
    diagram.series.push_back(std::move(series));
  }
  return diagram;
}

std::string RenderSvg(const DiagramData& diagram, int width, int height) {
  constexpr int kMarginLeft = 70, kMarginRight = 20, kMarginTop = 30,
                kMarginBottom = 50;
  int plot_w = width - kMarginLeft - kMarginRight;
  int plot_h = height - kMarginTop - kMarginBottom;

  double max_value = 0;
  for (const Series& s : diagram.series) {
    for (double v : s.values) max_value = std::max(max_value, v);
  }
  if (max_value <= 0) max_value = 1;

  std::string svg = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(width) + "\" height=\"" +
                    std::to_string(height) + "\">\n";
  svg += "<text x=\"" + std::to_string(width / 2) +
         "\" y=\"18\" text-anchor=\"middle\" font-size=\"14\">" +
         HtmlEscape(diagram.name) + "</text>\n";

  auto x_of = [&](size_t i, size_t n) {
    if (n <= 1) return kMarginLeft + plot_w / 2;
    return kMarginLeft +
           static_cast<int>(static_cast<double>(i) * plot_w / (n - 1));
  };
  auto y_of = [&](double v) {
    return kMarginTop + plot_h -
           static_cast<int>(v / max_value * plot_h);
  };

  if (diagram.type == model::DiagramType::kPie) {
    // Pie over the first value of every series.
    double total = 0;
    for (const Series& s : diagram.series) {
      if (!s.values.empty()) total += std::max(0.0, s.values[0]);
    }
    if (total <= 0) total = 1;
    double cx = width / 2.0, cy = (height + kMarginTop) / 2.0;
    double radius = std::min(plot_w, plot_h) / 2.2;
    double angle = -3.14159265 / 2;
    for (size_t i = 0; i < diagram.series.size(); ++i) {
      double share = diagram.series[i].values.empty()
                         ? 0
                         : std::max(0.0, diagram.series[i].values[0]) / total;
      double next = angle + share * 2 * 3.14159265;
      double x1 = cx + radius * std::cos(angle), y1 = cy + radius * std::sin(angle);
      double x2 = cx + radius * std::cos(next), y2 = cy + radius * std::sin(next);
      int large = share > 0.5 ? 1 : 0;
      char path[256];
      std::snprintf(path, sizeof(path),
                    "<path d=\"M%.1f,%.1f L%.1f,%.1f A%.1f,%.1f 0 %d 1 "
                    "%.1f,%.1f Z\" fill=\"%s\"/>\n",
                    cx, cy, x1, y1, radius, radius, large, x2, y2,
                    kSeriesColors[i % 8]);
      svg += path;
      angle = next;
    }
  } else {
    // Axes.
    svg += "<line x1=\"" + std::to_string(kMarginLeft) + "\" y1=\"" +
           std::to_string(kMarginTop) + "\" x2=\"" +
           std::to_string(kMarginLeft) + "\" y2=\"" +
           std::to_string(kMarginTop + plot_h) +
           "\" stroke=\"#333\"/>\n";
    svg += "<line x1=\"" + std::to_string(kMarginLeft) + "\" y1=\"" +
           std::to_string(kMarginTop + plot_h) + "\" x2=\"" +
           std::to_string(kMarginLeft + plot_w) + "\" y2=\"" +
           std::to_string(kMarginTop + plot_h) + "\" stroke=\"#333\"/>\n";
    // Y max label.
    svg += "<text x=\"" + std::to_string(kMarginLeft - 6) + "\" y=\"" +
           std::to_string(kMarginTop + 4) +
           "\" text-anchor=\"end\" font-size=\"10\">" +
           FormatValue(max_value) + "</text>\n";
    // X labels.
    for (size_t i = 0; i < diagram.x_values.size(); ++i) {
      svg += "<text x=\"" +
             std::to_string(x_of(i, diagram.x_values.size())) + "\" y=\"" +
             std::to_string(kMarginTop + plot_h + 16) +
             "\" text-anchor=\"middle\" font-size=\"10\">" +
             HtmlEscape(diagram.x_values[i]) + "</text>\n";
    }

    if (diagram.type == model::DiagramType::kLine) {
      for (size_t s = 0; s < diagram.series.size(); ++s) {
        std::string points;
        for (size_t i = 0; i < diagram.series[s].values.size(); ++i) {
          points += std::to_string(x_of(i, diagram.x_values.size())) + "," +
                    std::to_string(y_of(diagram.series[s].values[i])) + " ";
        }
        svg += "<polyline fill=\"none\" stroke=\"" +
               std::string(kSeriesColors[s % 8]) +
               "\" stroke-width=\"2\" points=\"" + points + "\"/>\n";
      }
    } else {  // Bar.
      size_t n = diagram.x_values.size();
      size_t groups = diagram.series.size();
      double slot = n > 0 ? static_cast<double>(plot_w) / n : plot_w;
      double bar_w = groups > 0 ? slot * 0.7 / groups : slot;
      for (size_t s = 0; s < groups; ++s) {
        for (size_t i = 0; i < diagram.series[s].values.size() && i < n; ++i) {
          double x = kMarginLeft + slot * i + slot * 0.15 + bar_w * s;
          int y = y_of(diagram.series[s].values[i]);
          char rect[256];
          std::snprintf(rect, sizeof(rect),
                        "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" "
                        "height=\"%d\" fill=\"%s\"/>\n",
                        x, y, bar_w, kMarginTop + plot_h - y,
                        kSeriesColors[s % 8]);
          svg += rect;
        }
      }
    }
  }

  // Legend.
  int legend_y = kMarginTop;
  for (size_t s = 0; s < diagram.series.size(); ++s) {
    char item[256];
    std::snprintf(item, sizeof(item),
                  "<rect x=\"%d\" y=\"%d\" width=\"10\" height=\"10\" "
                  "fill=\"%s\"/><text x=\"%d\" y=\"%d\" font-size=\"10\">",
                  width - kMarginRight - 110, legend_y,
                  kSeriesColors[s % 8], width - kMarginRight - 96,
                  legend_y + 9);
    svg += item;
    svg += HtmlEscape(diagram.series[s].name) + "</text>\n";
    legend_y += 14;
  }
  svg += "</svg>\n";
  return svg;
}

std::string RenderHtmlReport(const std::string& title,
                             const std::vector<DiagramData>& diagrams) {
  std::string html =
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>" +
      HtmlEscape(title) +
      "</title>\n<style>body{font-family:sans-serif;margin:24px;}"
      "table{border-collapse:collapse;margin:12px 0;}"
      "td,th{border:1px solid #ccc;padding:4px 10px;text-align:right;}"
      "th{background:#f4f4f4;}pre{background:#f8f8f8;padding:8px;}"
      "</style></head>\n<body>\n<h1>" +
      HtmlEscape(title) + "</h1>\n";
  for (const DiagramData& diagram : diagrams) {
    html += "<h2>" + HtmlEscape(diagram.name) + "</h2>\n";
    html += RenderSvg(diagram);
    // Data table next to the chart.
    html += "<table><tr><th>" +
            HtmlEscape(diagram.x_label.empty() ? "x"
                                                       : diagram.x_label) +
            "</th>";
    for (const Series& s : diagram.series) {
      html += "<th>" + HtmlEscape(s.name) + "</th>";
    }
    html += "</tr>\n";
    for (size_t i = 0; i < diagram.x_values.size(); ++i) {
      html += "<tr><td>" + HtmlEscape(diagram.x_values[i]) + "</td>";
      for (const Series& s : diagram.series) {
        html += "<td>" +
                (i < s.values.size() ? FormatValue(s.values[i]) : "-") +
                "</td>";
      }
      html += "</tr>\n";
    }
    html += "</table>\n";
  }
  html += "</body></html>\n";
  return html;
}

}  // namespace chronos::analysis
