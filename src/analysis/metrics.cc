#include "analysis/metrics.h"

namespace chronos::analysis {

MetricsCollector::MetricsCollector(Clock* clock) : clock_(clock) {}

void MetricsCollector::StartRun() {
  MutexLock lock(mu_);
  run_started_ = true;
  run_ended_ = false;
  run_start_ns_ = clock_->MonotonicNanos();
  run_end_ns_ = 0;
}

void MetricsCollector::EndRun() {
  MutexLock lock(mu_);
  run_ended_ = true;
  run_end_ns_ = clock_->MonotonicNanos();
}

void MetricsCollector::RecordLatency(const std::string& op,
                                     uint64_t latency_us) {
  MutexLock lock(mu_);
  auto it = latencies_.find(op);
  if (it == latencies_.end()) {
    it = latencies_.emplace(op, std::make_unique<Histogram>()).first;
  }
  it->second->Record(latency_us);
}

void MetricsCollector::Increment(const std::string& counter, uint64_t delta) {
  MutexLock lock(mu_);
  counters_[counter] += delta;
}

void MetricsCollector::SetGauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
}

uint64_t MetricsCollector::TotalOperations() const {
  MutexLock lock(mu_);
  uint64_t total = 0;
  for (const auto& [op, histogram] : latencies_) total += histogram->count();
  return total;
}

double MetricsCollector::RuntimeMs() const {
  MutexLock lock(mu_);
  if (!run_started_) return 0;
  uint64_t end = run_ended_ ? run_end_ns_ : clock_->MonotonicNanos();
  if (end < run_start_ns_) return 0;
  return static_cast<double>(end - run_start_ns_) / 1e6;
}

double MetricsCollector::Throughput() const {
  double runtime_ms = RuntimeMs();
  if (runtime_ms <= 0) return 0;
  return static_cast<double>(TotalOperations()) / (runtime_ms / 1000.0);
}

json::Json MetricsCollector::ToJson() const {
  double runtime_ms = RuntimeMs();
  uint64_t operations = TotalOperations();
  MutexLock lock(mu_);
  json::Json out = json::Json::MakeObject();
  out.Set("runtime_ms", runtime_ms);
  out.Set("operations", operations);
  out.Set("throughput_ops",
          runtime_ms > 0
              ? static_cast<double>(operations) / (runtime_ms / 1000.0)
              : 0.0);

  json::Json latency = json::Json::MakeObject();
  for (const auto& [op, histogram] : latencies_) {
    json::Json stats = json::Json::MakeObject();
    stats.Set("count", histogram->count());
    stats.Set("mean", histogram->mean());
    stats.Set("p50", histogram->Percentile(0.5));
    stats.Set("p95", histogram->Percentile(0.95));
    stats.Set("p99", histogram->Percentile(0.99));
    stats.Set("max", histogram->max());
    stats.Set("stddev", histogram->stddev());
    latency.Set(op, std::move(stats));
  }
  out.Set("latency_us", std::move(latency));

  json::Json counters = json::Json::MakeObject();
  for (const auto& [name, value] : counters_) counters.Set(name, value);
  out.Set("counters", std::move(counters));

  json::Json gauges = json::Json::MakeObject();
  for (const auto& [name, value] : gauges_) gauges.Set(name, value);
  out.Set("gauges", std::move(gauges));
  return out;
}

void MetricsCollector::Reset() {
  MutexLock lock(mu_);
  latencies_.clear();
  counters_.clear();
  gauges_.clear();
  run_started_ = false;
  run_ended_ = false;
  run_start_ns_ = 0;
  run_end_ns_ = 0;
}

}  // namespace chronos::analysis
