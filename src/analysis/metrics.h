#ifndef CHRONOS_ANALYSIS_METRICS_H_
#define CHRONOS_ANALYSIS_METRICS_H_

#include <map>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "json/json.h"

namespace chronos::analysis {

// Standard run metrics the paper requires the toolkit to provide out of the
// box ("provide standard metrics for measurements, e.g., execution time").
// The agent library embeds one collector per job; evaluation clients record
// per-operation latencies into it and the collector renders the result-JSON
// metrics block.
class MetricsCollector {
 public:
  explicit MetricsCollector(Clock* clock = SystemClock::Get());

  // Marks the measured interval (excluding setup/warm-up).
  void StartRun();
  void EndRun();

  // Records one operation of the named kind with its latency.
  void RecordLatency(const std::string& op, uint64_t latency_us);
  // Counts an operation without latency information.
  void Increment(const std::string& counter, uint64_t delta = 1);
  // Free-form scalar gauge (e.g. dataset size).
  void SetGauge(const std::string& name, double value);

  uint64_t TotalOperations() const;
  double RuntimeMs() const;
  // Operations per second over the measured interval.
  double Throughput() const;

  // {"runtime_ms":..,"throughput_ops":..,"operations":..,
  //  "latency_us":{"read":{"mean":..,"p50":..,"p95":..,"p99":..,"max":..}},
  //  "counters":{..},"gauges":{..}}
  json::Json ToJson() const;

  void Reset();

 private:
  Clock* clock_;
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Histogram>> latencies_
      CHRONOS_GUARDED_BY(mu_);
  std::map<std::string, uint64_t> counters_ CHRONOS_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ CHRONOS_GUARDED_BY(mu_);
  bool run_started_ CHRONOS_GUARDED_BY(mu_) = false;
  bool run_ended_ CHRONOS_GUARDED_BY(mu_) = false;
  uint64_t run_start_ns_ CHRONOS_GUARDED_BY(mu_) = 0;
  uint64_t run_end_ns_ CHRONOS_GUARDED_BY(mu_) = 0;
};

// Stopwatch measuring microseconds, for RecordLatency call sites.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Clock* clock = SystemClock::Get())
      : clock_(clock), start_ns_(clock->MonotonicNanos()) {}
  uint64_t ElapsedUs() const {
    return (clock_->MonotonicNanos() - start_ns_) / 1000;
  }

 private:
  Clock* clock_;
  uint64_t start_ns_;
};

}  // namespace chronos::analysis

#endif  // CHRONOS_ANALYSIS_METRICS_H_
