#ifndef CHRONOS_ANALYSIS_DIAGRAMS_H_
#define CHRONOS_ANALYSIS_DIAGRAMS_H_

#include <string>
#include <vector>

#include "json/json.h"
#include "model/entities.h"

namespace chronos::analysis {

// One finished job's contribution to the analysis: its parameter assignment
// and the result JSON the agent uploaded.
struct JobResult {
  model::ParameterAssignment parameters;
  json::Json data;
};

// A renderable series: one line on a line chart / one bar group on a bar
// chart / the slices of a pie.
struct Series {
  std::string name;  // group_by value, e.g. "wiredtiger".
  std::vector<double> values;
};

// Diagram-ready data extracted from a set of job results according to a
// DiagramDef — exactly what the Chronos web UI renders in "Basic Result
// Analysis" (Fig. 3d).
struct DiagramData {
  std::string name;
  model::DiagramType type = model::DiagramType::kLine;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> x_values;  // Category labels along the x axis.
  std::vector<Series> series;

  json::Json ToJson() const;

  // "engine,threads=1,threads=2,...\nwiredtiger,1234.5,..." CSV export.
  std::string ToCsv() const;

  // Fixed-width console table (the "rows/series the paper reports").
  std::string ToTable() const;
};

// Looks up `field` in the job's parameters first, then in the result JSON
// (supporting one level of dotted nesting, e.g. "latency_us.read.p95").
json::Json ExtractField(const JobResult& result, const std::string& field);

// Groups the results by `def.group_by`, buckets them by `def.x_field`, and
// reduces each bucket's `def.y_field` values by arithmetic mean (multiple
// repetitions of the same point average out).
StatusOr<DiagramData> BuildDiagram(const model::DiagramDef& def,
                                   const std::vector<JobResult>& results);

// Renders a standalone HTML report (inline SVG charts, no external assets)
// for a set of diagrams — the toolkit's result-visualization output.
std::string RenderHtmlReport(const std::string& title,
                             const std::vector<DiagramData>& diagrams);

// Renders one diagram as an SVG fragment (exposed for tests).
std::string RenderSvg(const DiagramData& diagram, int width = 640,
                      int height = 360);

}  // namespace chronos::analysis

#endif  // CHRONOS_ANALYSIS_DIAGRAMS_H_
