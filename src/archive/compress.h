#ifndef CHRONOS_ARCHIVE_COMPRESS_H_
#define CHRONOS_ARCHIVE_COMPRESS_H_

#include <string>
#include <string_view>

#include "common/statusor.h"

namespace chronos::archive {

// Byte-oriented LZ77-family block compressor ("chlz"), in the spirit of
// snappy/LZ4: greedy hash-table matching, literal runs and back-references,
// no entropy coding. Used by MokkaDB's btree engine for page compression —
// mirroring wiredTiger's default snappy block compression.
//
// Format: varint original size, then a token stream. Each token byte packs
// (literal_len:4, match_len:4); extended lengths use continuation bytes;
// matches carry a 2-byte little-endian offset.
std::string LzCompress(std::string_view input);

// Returns Corruption on malformed input. Never reads past `input`.
StatusOr<std::string> LzDecompress(std::string_view input);

}  // namespace chronos::archive

#endif  // CHRONOS_ARCHIVE_COMPRESS_H_
