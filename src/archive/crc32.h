#ifndef CHRONOS_ARCHIVE_CRC32_H_
#define CHRONOS_ARCHIVE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace chronos::archive {

// CRC-32 (IEEE 802.3, the polynomial used by ZIP and gzip).
// `seed` allows incremental computation: pass the previous result.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace chronos::archive

#endif  // CHRONOS_ARCHIVE_CRC32_H_
