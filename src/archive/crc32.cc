#include "archive/crc32.h"

#include <array>

namespace chronos::archive {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256>* table =
      new std::array<uint32_t, 256>(BuildTable());
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = (*table)[(crc ^ c) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace chronos::archive
