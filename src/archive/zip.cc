#include "archive/zip.h"

#include <cstring>

#include "archive/crc32.h"

namespace chronos::archive {

namespace {

constexpr uint32_t kLocalHeaderSig = 0x04034b50;
constexpr uint32_t kCentralDirSig = 0x02014b50;
constexpr uint32_t kEndOfCentralDirSig = 0x06054b50;
constexpr uint16_t kVersion = 20;       // 2.0
constexpr uint16_t kMethodStored = 0;

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint16_t GetU16(std::string_view data, size_t offset) {
  return static_cast<uint16_t>(static_cast<unsigned char>(data[offset])) |
         static_cast<uint16_t>(static_cast<unsigned char>(data[offset + 1]))
             << 8;
}

uint32_t GetU32(std::string_view data, size_t offset) {
  return static_cast<uint32_t>(static_cast<unsigned char>(data[offset])) |
         static_cast<uint32_t>(static_cast<unsigned char>(data[offset + 1]))
             << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[offset + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[offset + 3]))
             << 24;
}

}  // namespace

Status ZipWriter::Add(const std::string& name, std::string_view contents) {
  if (name.empty()) return Status::InvalidArgument("empty zip entry name");
  if (name.size() > 0xFFFF) {
    return Status::InvalidArgument("zip entry name too long");
  }
  if (contents.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument("zip entry too large (no zip64 support)");
  }
  for (const ZipEntry& entry : entries_) {
    if (entry.name == name) {
      return Status::AlreadyExists("duplicate zip entry: " + name);
    }
  }
  entries_.push_back(ZipEntry{name, std::string(contents)});
  return Status::Ok();
}

std::string ZipWriter::Finish() const {
  std::string out;
  std::vector<uint32_t> offsets;
  std::vector<uint32_t> crcs;
  offsets.reserve(entries_.size());
  crcs.reserve(entries_.size());

  for (const ZipEntry& entry : entries_) {
    offsets.push_back(static_cast<uint32_t>(out.size()));
    uint32_t crc = Crc32(entry.contents);
    crcs.push_back(crc);
    PutU32(&out, kLocalHeaderSig);
    PutU16(&out, kVersion);
    PutU16(&out, 0);  // flags
    PutU16(&out, kMethodStored);
    PutU16(&out, 0);  // mod time
    PutU16(&out, 0);  // mod date
    PutU32(&out, crc);
    PutU32(&out, static_cast<uint32_t>(entry.contents.size()));  // compressed
    PutU32(&out, static_cast<uint32_t>(entry.contents.size()));  // original
    PutU16(&out, static_cast<uint16_t>(entry.name.size()));
    PutU16(&out, 0);  // extra length
    out.append(entry.name);
    out.append(entry.contents);
  }

  uint32_t central_start = static_cast<uint32_t>(out.size());
  for (size_t i = 0; i < entries_.size(); ++i) {
    const ZipEntry& entry = entries_[i];
    PutU32(&out, kCentralDirSig);
    PutU16(&out, kVersion);  // version made by
    PutU16(&out, kVersion);  // version needed
    PutU16(&out, 0);         // flags
    PutU16(&out, kMethodStored);
    PutU16(&out, 0);  // mod time
    PutU16(&out, 0);  // mod date
    PutU32(&out, crcs[i]);
    PutU32(&out, static_cast<uint32_t>(entry.contents.size()));
    PutU32(&out, static_cast<uint32_t>(entry.contents.size()));
    PutU16(&out, static_cast<uint16_t>(entry.name.size()));
    PutU16(&out, 0);  // extra
    PutU16(&out, 0);  // comment
    PutU16(&out, 0);  // disk number
    PutU16(&out, 0);  // internal attrs
    PutU32(&out, 0);  // external attrs
    PutU32(&out, offsets[i]);
    out.append(entry.name);
  }
  uint32_t central_size = static_cast<uint32_t>(out.size()) - central_start;

  PutU32(&out, kEndOfCentralDirSig);
  PutU16(&out, 0);  // disk
  PutU16(&out, 0);  // central dir disk
  PutU16(&out, static_cast<uint16_t>(entries_.size()));
  PutU16(&out, static_cast<uint16_t>(entries_.size()));
  PutU32(&out, central_size);
  PutU32(&out, central_start);
  PutU16(&out, 0);  // comment length
  return out;
}

StatusOr<ZipReader> ZipReader::Open(std::string_view data) {
  // Find end-of-central-directory record; it is the last structure, and we
  // wrote no archive comment, but tolerate up to 64k of trailing comment as
  // the spec allows.
  if (data.size() < 22) return Status::Corruption("zip too small");
  size_t eocd = std::string_view::npos;
  size_t scan_limit = data.size() >= 22 + 0xFFFF ? data.size() - 22 - 0xFFFF : 0;
  for (size_t i = data.size() - 22 + 1; i-- > scan_limit;) {
    if (GetU32(data, i) == kEndOfCentralDirSig) {
      eocd = i;
      break;
    }
  }
  if (eocd == std::string_view::npos) {
    return Status::Corruption("zip: end of central directory not found");
  }
  uint16_t entry_count = GetU16(data, eocd + 10);
  uint32_t central_size = GetU32(data, eocd + 12);
  uint32_t central_start = GetU32(data, eocd + 16);
  if (static_cast<size_t>(central_start) + central_size > data.size()) {
    return Status::Corruption("zip: central directory out of range");
  }

  ZipReader reader;
  size_t pos = central_start;
  for (uint16_t i = 0; i < entry_count; ++i) {
    if (pos + 46 > data.size() || GetU32(data, pos) != kCentralDirSig) {
      return Status::Corruption("zip: bad central directory entry");
    }
    uint16_t method = GetU16(data, pos + 10);
    uint32_t crc = GetU32(data, pos + 16);
    uint32_t compressed_size = GetU32(data, pos + 20);
    uint32_t original_size = GetU32(data, pos + 24);
    uint16_t name_len = GetU16(data, pos + 28);
    uint16_t extra_len = GetU16(data, pos + 30);
    uint16_t comment_len = GetU16(data, pos + 32);
    uint32_t local_offset = GetU32(data, pos + 42);
    if (pos + 46 + name_len > data.size()) {
      return Status::Corruption("zip: entry name out of range");
    }
    std::string name(data.substr(pos + 46, name_len));
    pos += 46 + name_len + extra_len + comment_len;

    if (method != kMethodStored) {
      return Status::Unimplemented("zip: unsupported compression method");
    }
    if (compressed_size != original_size) {
      return Status::Corruption("zip: stored entry size mismatch");
    }
    // Read the payload via the local header (its name/extra lengths may
    // differ from the central directory's).
    if (static_cast<size_t>(local_offset) + 30 > data.size() ||
        GetU32(data, local_offset) != kLocalHeaderSig) {
      return Status::Corruption("zip: bad local header for " + name);
    }
    uint16_t local_name_len = GetU16(data, local_offset + 26);
    uint16_t local_extra_len = GetU16(data, local_offset + 28);
    size_t payload = static_cast<size_t>(local_offset) + 30 + local_name_len +
                     local_extra_len;
    if (payload + original_size > data.size()) {
      return Status::Corruption("zip: payload out of range for " + name);
    }
    std::string contents(data.substr(payload, original_size));
    if (Crc32(contents) != crc) {
      return Status::Corruption("zip: CRC mismatch for " + name);
    }
    reader.entries_[name] = std::move(contents);
  }
  return reader;
}

std::vector<std::string> ZipReader::EntryNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, contents] : entries_) names.push_back(name);
  return names;
}

bool ZipReader::Has(const std::string& name) const {
  return entries_.count(name) > 0;
}

StatusOr<std::string> ZipReader::Read(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("zip entry not found: " + name);
  }
  return it->second;
}

std::string ZipFiles(const std::map<std::string, std::string>& files) {
  ZipWriter writer;
  for (const auto& [name, contents] : files) {
    writer.Add(name, contents).IgnoreError();
  }
  return writer.Finish();
}

StatusOr<std::map<std::string, std::string>> UnzipFiles(
    std::string_view data) {
  CHRONOS_ASSIGN_OR_RETURN(ZipReader reader, ZipReader::Open(data));
  std::map<std::string, std::string> files;
  for (const std::string& name : reader.EntryNames()) {
    CHRONOS_ASSIGN_OR_RETURN(std::string contents, reader.Read(name));
    files[name] = std::move(contents);
  }
  return files;
}

}  // namespace chronos::archive
