#ifndef CHRONOS_ARCHIVE_ZIP_H_
#define CHRONOS_ARCHIVE_ZIP_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace chronos::archive {

// Minimal ZIP (PKWARE APPNOTE) implementation using the "stored"
// (uncompressed) method, which every unzip tool understands. Chronos uses it
// for result bundles (one zip per job) and project archives.

struct ZipEntry {
  std::string name;
  std::string contents;
};

// Builds a zip archive in memory.
class ZipWriter {
 public:
  // Adds a file entry. Names use '/' separators; duplicates are rejected.
  Status Add(const std::string& name, std::string_view contents);

  // Serializes local headers + central directory + end record.
  std::string Finish() const;

  size_t entry_count() const { return entries_.size(); }

 private:
  std::vector<ZipEntry> entries_;
};

// Parses a zip produced by ZipWriter (or any stored-method zip).
class ZipReader {
 public:
  // Validates the central directory and per-entry CRCs.
  static StatusOr<ZipReader> Open(std::string_view data);

  std::vector<std::string> EntryNames() const;
  bool Has(const std::string& name) const;
  StatusOr<std::string> Read(const std::string& name) const;
  size_t entry_count() const { return entries_.size(); }

 private:
  std::map<std::string, std::string> entries_;
};

// Convenience: zip a map of name -> contents / unzip into one.
std::string ZipFiles(const std::map<std::string, std::string>& files);
StatusOr<std::map<std::string, std::string>> UnzipFiles(std::string_view data);

}  // namespace chronos::archive

#endif  // CHRONOS_ARCHIVE_ZIP_H_
