#include "archive/compress.h"

#include <cstring>
#include <vector>

namespace chronos::archive {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 0xFFFF;
constexpr int kHashBits = 14;

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool GetVarint(std::string_view data, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

// Emits `len` using a 4-bit field: values 0..14 inline, 15 means "15 plus
// following byte(s)", each continuation byte adding up to 255.
void PutExtendedLength(std::string* out, size_t len) {
  len -= 15;  // The 15 was encoded in the token nibble.
  while (len >= 255) {
    out->push_back(static_cast<char>(255));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

bool GetExtendedLength(std::string_view data, size_t* pos, size_t* len) {
  while (true) {
    if (*pos >= data.size()) return false;
    uint8_t byte = static_cast<uint8_t>(data[*pos]);
    ++*pos;
    *len += byte;
    if (byte != 255) return true;
  }
}

uint32_t HashBytes(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::string LzCompress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  PutVarint(&out, input.size());
  if (input.empty()) return out;

  std::vector<int64_t> table(1u << kHashBits, -1);
  size_t pos = 0;
  size_t literal_start = 0;

  auto emit = [&](size_t match_pos, size_t match_len) {
    size_t literal_len = pos - literal_start;
    size_t lit_nibble = literal_len < 15 ? literal_len : 15;
    size_t match_nibble;
    if (match_len == 0) {
      match_nibble = 0;
    } else {
      size_t adjusted = match_len - kMinMatch + 1;  // 1.. means a real match
      match_nibble = adjusted < 15 ? adjusted : 15;
    }
    out.push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15) PutExtendedLength(&out, literal_len);
    out.append(input.substr(literal_start, literal_len));
    if (match_len > 0) {
      size_t adjusted = match_len - kMinMatch + 1;
      if (match_nibble == 15) PutExtendedLength(&out, adjusted);
      size_t offset = pos - match_pos;
      out.push_back(static_cast<char>(offset & 0xFF));
      out.push_back(static_cast<char>((offset >> 8) & 0xFF));
    }
  };

  while (pos + kMinMatch <= input.size()) {
    uint32_t h = HashBytes(input.data() + pos);
    int64_t candidate = table[h];
    table[h] = static_cast<int64_t>(pos);
    if (candidate >= 0 && pos - static_cast<size_t>(candidate) <= kMaxOffset &&
        std::memcmp(input.data() + candidate, input.data() + pos, kMinMatch) ==
            0) {
      size_t match_len = kMinMatch;
      size_t limit = input.size() - pos;
      while (match_len < limit &&
             input[candidate + match_len] == input[pos + match_len]) {
        ++match_len;
      }
      emit(static_cast<size_t>(candidate), match_len);
      pos += match_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  pos = input.size();
  emit(0, 0);  // Flush trailing literals.
  return out;
}

StatusOr<std::string> LzDecompress(std::string_view input) {
  size_t pos = 0;
  uint64_t original_size = 0;
  if (!GetVarint(input, &pos, &original_size)) {
    return Status::Corruption("chlz: truncated size header");
  }
  std::string out;
  out.reserve(original_size);
  while (out.size() < original_size) {
    if (pos >= input.size()) return Status::Corruption("chlz: truncated token");
    uint8_t token = static_cast<uint8_t>(input[pos++]);
    size_t literal_len = token >> 4;
    if (literal_len == 15 && !GetExtendedLength(input, &pos, &literal_len)) {
      return Status::Corruption("chlz: truncated literal length");
    }
    if (pos + literal_len > input.size()) {
      return Status::Corruption("chlz: literal out of range");
    }
    out.append(input.substr(pos, literal_len));
    pos += literal_len;

    size_t match_nibble = token & 0xF;
    if (match_nibble == 0) continue;  // Literal-only token (stream tail).
    size_t adjusted = match_nibble;
    if (adjusted == 15 && !GetExtendedLength(input, &pos, &adjusted)) {
      return Status::Corruption("chlz: truncated match length");
    }
    size_t match_len = adjusted + kMinMatch - 1;
    if (pos + 2 > input.size()) {
      return Status::Corruption("chlz: truncated match offset");
    }
    size_t offset = static_cast<uint8_t>(input[pos]) |
                    (static_cast<size_t>(static_cast<uint8_t>(input[pos + 1]))
                     << 8);
    pos += 2;
    if (offset == 0 || offset > out.size()) {
      return Status::Corruption("chlz: invalid match offset");
    }
    // Byte-by-byte copy supports overlapping matches (run-length encoding).
    size_t src = out.size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != original_size) {
    return Status::Corruption("chlz: size mismatch after decode");
  }
  return out;
}

}  // namespace chronos::archive
