#ifndef CHRONOS_CONTROL_LIFECYCLE_H_
#define CHRONOS_CONTROL_LIFECYCLE_H_

#include "common/status.h"

namespace chronos::control {

// Shutdown plumbing for the control-server binary: a self-pipe that the
// SIGTERM/SIGINT handlers (and the drain endpoint's callback) write to and
// the main thread blocks on. The handlers do nothing but write one byte —
// everything heavy (drain, final checkpoint) runs on the main thread, which
// is the only async-signal-safe way to do it.
//
// This is one of the two files sanctioned to touch raw process-lifecycle
// primitives (see the raw-exit lint rule); everything else must route
// through here or through fault::FailPointRegistry's crash mode.

// Installs SIGTERM + SIGINT handlers that notify the shutdown pipe.
// Idempotent; must be called before WaitForShutdown.
Status InstallShutdownHandlers();

// Requests shutdown from ordinary code (e.g. the drain endpoint callback).
// Async-signal-safe.
void NotifyShutdown();

// Blocks until shutdown is requested. Returns the signal number that
// triggered it, or 0 for a programmatic NotifyShutdown.
int WaitForShutdown();

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_LIFECYCLE_H_
