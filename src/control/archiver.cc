#include "control/archiver.h"

#include "archive/zip.h"
#include "common/strings.h"
#include "common/uuid.h"

namespace chronos::control {

StatusOr<std::string> BuildProjectArchive(ControlService* service,
                                          const std::string& project_id,
                                          const std::string& user_id) {
  CHRONOS_ASSIGN_OR_RETURN(model::Project project,
                           service->GetProject(project_id, user_id));
  archive::ZipWriter writer;
  CHRONOS_RETURN_IF_ERROR(
      writer.Add("project.json", project.ToJson().DumpPretty()));

  for (const model::Experiment& experiment :
       service->ListExperiments(project_id)) {
    std::string experiment_dir = "experiments/" + experiment.id + "/";
    CHRONOS_RETURN_IF_ERROR(writer.Add(experiment_dir + "experiment.json",
                                       experiment.ToJson().DumpPretty()));
    // The system definition travels with the archive so results stay
    // interpretable even if the registry changes later.
    auto system = service->GetSystem(experiment.system_id);
    if (system.ok()) {
      CHRONOS_RETURN_IF_ERROR(writer.Add(experiment_dir + "system.json",
                                         system->ToJson().DumpPretty()));
    }
    for (const model::Evaluation& evaluation :
         service->ListEvaluations(experiment.id)) {
      std::string eval_dir = experiment_dir + "evaluations/" + evaluation.id +
                             "/";
      CHRONOS_RETURN_IF_ERROR(writer.Add(eval_dir + "evaluation.json",
                                         evaluation.ToJson().DumpPretty()));
      for (const model::Job& job : service->ListJobs(evaluation.id)) {
        std::string job_dir = eval_dir + "jobs/" + job.id + "/";
        CHRONOS_RETURN_IF_ERROR(
            writer.Add(job_dir + "job.json", job.ToJson().DumpPretty()));
        std::string log = service->JobLog(job.id);
        if (!log.empty()) {
          CHRONOS_RETURN_IF_ERROR(writer.Add(job_dir + "job.log", log));
        }
        auto result = service->GetResult(job.id);
        if (result.ok()) {
          CHRONOS_RETURN_IF_ERROR(writer.Add(job_dir + "result.json",
                                             result->data.DumpPretty()));
          if (!result->zip_base64.empty()) {
            std::string bundle;
            if (strings::Base64Decode(result->zip_base64, &bundle)) {
              CHRONOS_RETURN_IF_ERROR(
                  writer.Add(job_dir + "bundle.zip", bundle));
            }
          }
        }
      }
    }
  }
  return writer.Finish();
}

StatusOr<int> ImportProjectArchive(ControlService* service,
                                   const std::string& archive_bytes,
                                   const std::string& new_owner_id) {
  CHRONOS_ASSIGN_OR_RETURN(archive::ZipReader reader,
                           archive::ZipReader::Open(archive_bytes));
  CHRONOS_ASSIGN_OR_RETURN(std::string project_json,
                           reader.Read("project.json"));
  CHRONOS_ASSIGN_OR_RETURN(json::Json project_doc,
                           json::Parse(project_json));
  CHRONOS_ASSIGN_OR_RETURN(model::Project project,
                           model::Project::FromJson(project_doc));

  CHRONOS_ASSIGN_OR_RETURN(
      model::Project imported,
      service->CreateProject(project.name + " (imported)",
                             project.description, new_owner_id));
  int count = 1;

  // Re-create experiments (the definitions; run history stays in the
  // archive for offline inspection).
  for (const std::string& name : reader.EntryNames()) {
    if (!strings::StartsWith(name, "experiments/") ||
        !strings::EndsWith(name, "/experiment.json")) {
      continue;
    }
    CHRONOS_ASSIGN_OR_RETURN(std::string text, reader.Read(name));
    auto doc = json::Parse(text);
    if (!doc.ok()) continue;
    auto experiment = model::Experiment::FromJson(*doc);
    if (!experiment.ok()) continue;
    auto created = service->CreateExperiment(
        imported.id, new_owner_id, experiment->system_id, experiment->name,
        experiment->description, experiment->settings);
    if (created.ok()) ++count;
  }
  return count;
}

}  // namespace chronos::control
