#include "control/auth.h"

#include "common/sha256.h"
#include "common/uuid.h"

namespace chronos::control {

std::string HashPassword(const std::string& password,
                         const std::string& salt) {
  // Iterated salted SHA-256. The iteration count trades brute-force cost
  // against login latency; 1000 keeps unit tests fast.
  std::string digest = salt + ":" + password;
  for (int i = 0; i < 1000; ++i) {
    digest = Sha256(digest);
  }
  return Sha256Hex(digest);
}

std::string GenerateSalt() { return GenerateUuid(); }

bool VerifyPassword(const std::string& password, const std::string& salt,
                    const std::string& hash) {
  return HashPassword(password, salt) == hash;
}

std::string SessionManager::CreateSession(const std::string& user_id) {
  std::string token = GenerateUuid();
  MutexLock lock(mu_);
  sessions_[token] = Session{user_id, clock_->NowMs() + ttl_ms_};
  return token;
}

StatusOr<std::string> SessionManager::Resolve(const std::string& token) {
  MutexLock lock(mu_);
  auto it = sessions_.find(token);
  if (it == sessions_.end()) {
    return Status::Unauthenticated("unknown session token");
  }
  if (it->second.expires_at < clock_->NowMs()) {
    sessions_.erase(it);
    return Status::Unauthenticated("session expired");
  }
  return it->second.user_id;
}

Status SessionManager::Invalidate(const std::string& token) {
  MutexLock lock(mu_);
  if (sessions_.erase(token) == 0) {
    return Status::NotFound("no such session");
  }
  return Status::Ok();
}

int SessionManager::Sweep() {
  MutexLock lock(mu_);
  int removed = 0;
  TimestampMs now = clock_->NowMs();
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.expires_at < now) {
      it = sessions_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

size_t SessionManager::active_sessions() const {
  MutexLock lock(mu_);
  return sessions_.size();
}

}  // namespace chronos::control
