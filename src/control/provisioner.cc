#include "control/provisioner.h"

#include "common/logging.h"
#include "fault/failpoint.h"

namespace chronos::control {

Status ProvisioningManager::RegisterProvisioner(
    DeploymentProvisioner* provisioner) {
  MutexLock lock(mu_);
  std::string name(provisioner->name());
  if (provisioners_.count(name) > 0) {
    return Status::AlreadyExists("provisioner registered: " + name);
  }
  provisioners_[name] = provisioner;
  return Status::Ok();
}

std::vector<std::string> ProvisioningManager::ProvisionerNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(provisioners_.size());
  for (const auto& [name, provisioner] : provisioners_) {
    names.push_back(name);
  }
  return names;
}

StatusOr<model::Deployment> ProvisioningManager::ProvisionDeployment(
    const std::string& provisioner_name, const std::string& system_id,
    const std::string& deployment_name, const json::Json& spec) {
  DeploymentProvisioner* provisioner = nullptr;
  {
    MutexLock lock(mu_);
    auto it = provisioners_.find(provisioner_name);
    if (it == provisioners_.end()) {
      return Status::NotFound("no provisioner: " + provisioner_name);
    }
    provisioner = it->second;
  }
  CHRONOS_RETURN_IF_ERROR(fault::Inject("provisioner.launch"));
  CHRONOS_ASSIGN_OR_RETURN(DeploymentProvisioner::Instance instance,
                           provisioner->Launch(spec));

  model::Deployment deployment;
  deployment.system_id = system_id;
  deployment.name = deployment_name.empty()
                        ? provisioner_name + "-" + instance.handle
                        : deployment_name;
  deployment.environment = provisioner_name;
  deployment.endpoint = instance.endpoint;
  auto created = service_->CreateDeployment(std::move(deployment));
  if (!created.ok()) {
    // Roll the instance back rather than leak it.
    Status terminated = provisioner->Terminate(instance.handle);
    if (!terminated.ok()) {
      CHRONOS_LOG(kWarning, "provisioner")
          << "rollback terminate failed, instance may leak: "
          << terminated.ToString();
    }
    return created.status();
  }
  {
    MutexLock lock(mu_);
    provisioned_[created->id] = Record{provisioner, instance.handle};
  }
  return created;
}

Status ProvisioningManager::TeardownDeployment(
    const std::string& deployment_id) {
  // Before the record is dropped from the table, so an injected failure
  // leaves the deployment tracked and a retry can still tear it down.
  CHRONOS_RETURN_IF_ERROR(fault::Inject("provisioner.terminate"));
  Record record;
  {
    MutexLock lock(mu_);
    auto it = provisioned_.find(deployment_id);
    if (it == provisioned_.end()) {
      return Status::NotFound("deployment was not provisioned here: " +
                              deployment_id);
    }
    record = it->second;
    provisioned_.erase(it);
  }
  CHRONOS_RETURN_IF_ERROR(record.provisioner->Terminate(record.handle));
  return service_->DeleteDeployment(deployment_id);
}

int ProvisioningManager::TeardownAll() {
  std::vector<std::string> ids;
  {
    MutexLock lock(mu_);
    for (const auto& [id, record] : provisioned_) ids.push_back(id);
  }
  int count = 0;
  for (const std::string& id : ids) {
    if (TeardownDeployment(id).ok()) ++count;
  }
  return count;
}

size_t ProvisioningManager::active_count() const {
  MutexLock lock(mu_);
  return provisioned_.size();
}

}  // namespace chronos::control
