#ifndef CHRONOS_CONTROL_HEARTBEAT_MONITOR_H_
#define CHRONOS_CONTROL_HEARTBEAT_MONITOR_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "control/control_service.h"

namespace chronos::control {

// Background reliability sweep (requirement iii): periodically fails running
// jobs whose agents stopped heartbeating; the service auto-reschedules them
// while attempts remain.
class HeartbeatMonitor {
 public:
  HeartbeatMonitor(ControlService* service, int64_t interval_ms = 5000);
  ~HeartbeatMonitor();

  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

  void Start();
  void Stop();

  // Total jobs failed by this monitor since Start.
  int64_t jobs_failed() const { return jobs_failed_.load(); }

  // Sweeps executed since Start (each sweep is one CheckHeartbeats pass).
  int64_t sweeps() const { return sweeps_.load(); }

 private:
  void Loop();

  ControlService* service_;
  int64_t interval_ms_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::atomic<int64_t> jobs_failed_{0};
  std::atomic<int64_t> sweeps_{0};
};

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_HEARTBEAT_MONITOR_H_
