#ifndef CHRONOS_CONTROL_HEARTBEAT_MONITOR_H_
#define CHRONOS_CONTROL_HEARTBEAT_MONITOR_H_

#include <atomic>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "control/control_service.h"

namespace chronos::control {

// Background reliability sweep (requirement iii): periodically fails running
// jobs whose agents stopped heartbeating; the service auto-reschedules them
// while attempts remain.
class HeartbeatMonitor {
 public:
  HeartbeatMonitor(ControlService* service, int64_t interval_ms = 5000);
  ~HeartbeatMonitor();

  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

  void Start();
  void Stop();

  // Total jobs failed by this monitor since Start.
  int64_t jobs_failed() const { return jobs_failed_.load(); }

  // Sweeps executed since Start (each sweep is one CheckHeartbeats pass).
  int64_t sweeps() const { return sweeps_.load(); }

 private:
  void Loop();
  // Sleeps up to timeout_ms; returns true if Stop() was requested meanwhile.
  bool WaitForStop(int64_t timeout_ms) CHRONOS_EXCLUDES(mu_);

  ControlService* service_;
  int64_t interval_ms_;
  // Start/Stop are externally serialized (owner's thread); thread_ itself is
  // not touched by Loop, so it needs no lock.
  std::thread thread_;
  Mutex mu_;
  CondVar cv_;
  bool stop_requested_ CHRONOS_GUARDED_BY(mu_) = false;
  std::atomic<int64_t> jobs_failed_{0};
  std::atomic<int64_t> sweeps_{0};
};

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_HEARTBEAT_MONITOR_H_
