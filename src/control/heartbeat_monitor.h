#ifndef CHRONOS_CONTROL_HEARTBEAT_MONITOR_H_
#define CHRONOS_CONTROL_HEARTBEAT_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "control/control_service.h"

namespace chronos::control {

struct HeartbeatMonitorOptions {
  int64_t interval_ms = 5000;
  // Fraction of the interval each sweep wait is jittered by, in [0, 1):
  // the wait is drawn uniformly from interval * [1 - jitter, 1 + jitter].
  // Jitter de-synchronizes sweeps across control replicas sharing a store
  // (a thundering herd of simultaneous FailJob races); 0 disables it.
  double jitter = 0.0;
  // Seed for the jitter draw, so a sweep schedule replays exactly.
  uint64_t seed = 0;
};

// Background reliability sweep (requirement iii): periodically fails running
// jobs whose agents stopped heartbeating; the service auto-reschedules them
// while attempts remain.
class HeartbeatMonitor {
 public:
  HeartbeatMonitor(ControlService* service, HeartbeatMonitorOptions options);
  HeartbeatMonitor(ControlService* service, int64_t interval_ms = 5000);
  ~HeartbeatMonitor();

  HeartbeatMonitor(const HeartbeatMonitor&) = delete;
  HeartbeatMonitor& operator=(const HeartbeatMonitor&) = delete;

  void Start();
  void Stop();

  // Total jobs failed by this monitor since Start.
  int64_t jobs_failed() const { return jobs_failed_.load(); }

  // Sweeps executed since Start (each sweep is one CheckHeartbeats pass).
  int64_t sweeps() const { return sweeps_.load(); }

  // Next sweep wait in ms: interval jittered by the seeded RNG. Pure
  // function of (options, draw count), so the schedule is testable and
  // replayable; exposed for exactly that.
  int64_t NextIntervalMs();

 private:
  void Loop();
  // Sleeps up to timeout_ms; returns true if Stop() was requested meanwhile.
  bool WaitForStop(int64_t timeout_ms) CHRONOS_EXCLUDES(mu_);

  ControlService* service_;
  HeartbeatMonitorOptions options_;
  // Start/Stop are externally serialized (owner's thread); thread_ itself is
  // not touched by Loop, so it needs no lock.
  std::thread thread_;
  Mutex mu_;
  CondVar cv_;
  bool stop_requested_ CHRONOS_GUARDED_BY(mu_) = false;
  Rng jitter_rng_ CHRONOS_GUARDED_BY(mu_);
  std::atomic<int64_t> jobs_failed_{0};
  std::atomic<int64_t> sweeps_{0};
};

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_HEARTBEAT_MONITOR_H_
