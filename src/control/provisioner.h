#ifndef CHRONOS_CONTROL_PROVISIONER_H_
#define CHRONOS_CONTROL_PROVISIONER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "control/control_service.h"

namespace chronos::control {

// The paper's §5 future work, implemented: "Future releases of Chronos will
// be extended with the functionality for setting up the infrastructure of
// an SuE automatically, for example, in an on-premise cluster or in the
// Cloud."
//
// A DeploymentProvisioner knows how to start and stop instances of one SuE
// family. Chronos Control routes provision/teardown requests (v2 API) to
// the provisioner registered for the system.

class DeploymentProvisioner {
 public:
  virtual ~DeploymentProvisioner() = default;

  // Human-readable backend name ("local", "k8s", ...).
  virtual std::string_view name() const = 0;

  // Launches one SuE instance per `spec` and returns its network endpoint
  // plus a provisioner-private handle used for teardown.
  struct Instance {
    std::string endpoint;
    std::string handle;
  };
  virtual StatusOr<Instance> Launch(const json::Json& spec) = 0;

  virtual Status Terminate(const std::string& handle) = 0;
};

// Orchestrates provisioners against the control service: launching an
// instance registers it as a deployment; tearing a deployment down
// terminates the instance and removes the deployment.
class ProvisioningManager {
 public:
  explicit ProvisioningManager(ControlService* service) : service_(service) {}

  // Registers a provisioner under its name(). Not owned.
  Status RegisterProvisioner(DeploymentProvisioner* provisioner);
  std::vector<std::string> ProvisionerNames() const;

  // Launches an instance via `provisioner_name` and registers it as an
  // active deployment of `system_id`.
  StatusOr<model::Deployment> ProvisionDeployment(
      const std::string& provisioner_name, const std::string& system_id,
      const std::string& deployment_name, const json::Json& spec);

  // Terminates the instance behind a provisioned deployment and deletes
  // the deployment. Fails with NotFound for unknown or unprovisioned
  // deployments.
  Status TeardownDeployment(const std::string& deployment_id);

  // Tears down everything this manager provisioned.
  int TeardownAll();

  size_t active_count() const;

 private:
  struct Record {
    DeploymentProvisioner* provisioner;
    std::string handle;
  };

  ControlService* service_;
  mutable Mutex mu_;
  std::map<std::string, DeploymentProvisioner*> provisioners_
      CHRONOS_GUARDED_BY(mu_);
  // deployment_id -> record.
  std::map<std::string, Record> provisioned_ CHRONOS_GUARDED_BY(mu_);
};

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_PROVISIONER_H_
