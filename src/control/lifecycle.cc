#include "control/lifecycle.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>

namespace chronos::control {

namespace {

std::atomic<int> g_pipe_read_fd{-1};
std::atomic<int> g_pipe_write_fd{-1};
std::atomic<int> g_signal{0};

// Everything here must stay async-signal-safe: atomics and write(2) only.
void OnShutdownSignal(int signum) {
  g_signal.store(signum, std::memory_order_relaxed);
  int fd = g_pipe_write_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char byte = 1;
    ssize_t ignored = ::write(fd, &byte, 1);
    (void)ignored;
  }
}

}  // namespace

Status InstallShutdownHandlers() {
  if (g_pipe_write_fd.load() >= 0) return Status::Ok();  // Already installed.
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::IoError("shutdown pipe creation failed");
  }
  g_pipe_read_fd.store(fds[0]);
  g_pipe_write_fd.store(fds[1]);
  struct sigaction action = {};
  action.sa_handler = OnShutdownSignal;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  if (::sigaction(SIGTERM, &action, nullptr) != 0 ||
      ::sigaction(SIGINT, &action, nullptr) != 0) {
    return Status::IoError("installing shutdown signal handlers failed");
  }
  return Status::Ok();
}

void NotifyShutdown() {
  int fd = g_pipe_write_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char byte = 1;
    ssize_t ignored = ::write(fd, &byte, 1);
    (void)ignored;
  }
}

int WaitForShutdown() {
  int fd = g_pipe_read_fd.load();
  if (fd < 0) return 0;
  struct pollfd pfd = {};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    int rc = ::poll(&pfd, 1, -1);
    if (rc > 0) break;
    if (rc < 0 && errno != EINTR) break;  // Unexpected; treat as shutdown.
  }
  char byte = 0;
  while (::read(fd, &byte, 1) < 0 && errno == EINTR) {
  }
  return g_signal.load(std::memory_order_relaxed);
}

}  // namespace chronos::control
