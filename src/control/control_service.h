#ifndef CHRONOS_CONTROL_CONTROL_SERVICE_H_
#define CHRONOS_CONTROL_CONTROL_SERVICE_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagrams.h"
#include "common/clock.h"
#include "control/auth.h"
#include "model/repository.h"

namespace chronos::control {

struct ControlServiceOptions {
  // A running job whose agent misses heartbeats for this long is failed
  // (requirement iii: automated failure handling).
  int64_t heartbeat_timeout_ms = 30000;
  // Failed jobs are automatically rescheduled until this many attempts.
  int max_attempts = 3;
  bool auto_reschedule = true;
};

// Per-evaluation state tallies for monitoring views.
struct EvaluationSummary {
  model::Evaluation evaluation;
  std::map<model::JobState, int> state_counts;
  int total_jobs = 0;
  int overall_progress_percent = 0;  // Mean progress over jobs.

  json::Json ToJson() const;
};

// The business layer of Chronos Control: everything the web UI and the REST
// API expose, over the durable MetaDb. Thread-safe (serialization is
// delegated to the store's optimistic versioning where races matter).
class ControlService {
 public:
  ControlService(model::MetaDb* db, Clock* clock = SystemClock::Get(),
                 ControlServiceOptions options = {});

  // --- Users & sessions ---

  StatusOr<model::User> CreateUser(const std::string& username,
                                   const std::string& password,
                                   model::UserRole role);
  StatusOr<std::string> Login(const std::string& username,
                              const std::string& password);
  Status Logout(const std::string& token);
  StatusOr<model::User> Authenticate(const std::string& token);
  std::vector<model::User> ListUsers();

  // --- Projects (access checks at project level, per the paper) ---

  StatusOr<model::Project> CreateProject(const std::string& name,
                                         const std::string& description,
                                         const std::string& owner_id);
  StatusOr<model::Project> GetProject(const std::string& project_id,
                                      const std::string& user_id);
  std::vector<model::Project> ListProjects(const std::string& user_id);
  Status AddProjectMember(const std::string& project_id,
                          const std::string& acting_user_id,
                          const std::string& new_member_id);
  Status SetProjectArchived(const std::string& project_id,
                            const std::string& user_id, bool archived);

  // --- Systems & deployments ---

  StatusOr<model::System> RegisterSystem(model::System system);
  StatusOr<model::System> GetSystem(const std::string& system_id);
  std::vector<model::System> ListSystems();
  Status UpdateSystem(const model::System& system);

  StatusOr<model::Deployment> CreateDeployment(model::Deployment deployment);
  std::vector<model::Deployment> ListDeployments(
      const std::string& system_id = "");
  Status SetDeploymentActive(const std::string& deployment_id, bool active);
  Status DeleteDeployment(const std::string& deployment_id);

  // --- Experiments ---

  StatusOr<model::Experiment> CreateExperiment(
      const std::string& project_id, const std::string& user_id,
      const std::string& system_id, const std::string& name,
      const std::string& description,
      std::vector<model::ParameterSetting> settings);
  StatusOr<model::Experiment> GetExperiment(const std::string& experiment_id);
  std::vector<model::Experiment> ListExperiments(
      const std::string& project_id);
  Status SetExperimentArchived(const std::string& experiment_id,
                               bool archived);

  // --- Evaluations & jobs ---

  // Expands the experiment's parameter space into one job per assignment.
  // `repetitions` > 1 creates that many jobs per assignment ("certain
  // evaluations need to be repeated multiple times", §3); the analysis
  // averages repeated points.
  StatusOr<model::Evaluation> CreateEvaluation(
      const std::string& experiment_id, const std::string& name,
      int repetitions = 1);
  StatusOr<model::Evaluation> GetEvaluation(const std::string& evaluation_id);
  std::vector<model::Evaluation> ListEvaluations(
      const std::string& experiment_id);
  StatusOr<EvaluationSummary> Summarize(const std::string& evaluation_id);

  StatusOr<model::Job> GetJob(const std::string& job_id);
  std::vector<model::Job> ListJobs(const std::string& evaluation_id,
                                   std::optional<model::JobState> state = {});
  // User actions from the job page: abort scheduled/running, reschedule
  // failed.
  Status AbortJob(const std::string& job_id);
  Status RescheduleJob(const std::string& job_id);

  // --- Agent-facing dispatch ---

  // Hands the oldest scheduled job matching the deployment's system to the
  // calling agent, transitioning it to running. Returns nullopt when no
  // work is available or the deployment is already busy. Safe under
  // concurrent polls (optimistic versioning; losers retry internally).
  StatusOr<std::optional<model::Job>> PollJob(
      const std::string& deployment_id);

  // Progress/heartbeat/log from the running agent. The returned state lets
  // the agent observe aborts.
  StatusOr<model::JobState> ReportProgress(const std::string& job_id,
                                           int percent);
  StatusOr<model::JobState> Heartbeat(const std::string& job_id);
  Status AppendLog(const std::string& job_id,
                   const std::vector<std::string>& lines);

  // Terminal reports.
  Status UploadResult(const std::string& job_id, json::Json data,
                      const std::string& zip_base64);
  Status FailJob(const std::string& job_id, const std::string& reason);

  // --- Job detail views ---

  std::vector<model::JobEvent> JobEvents(const std::string& job_id);
  std::string JobLog(const std::string& job_id);
  StatusOr<model::Result> GetResult(const std::string& job_id);

  // --- Failure handling (requirement iii) ---

  // Fails running jobs with stale heartbeats; auto-reschedules while
  // attempts remain. Returns the number of jobs failed. Called periodically
  // by HeartbeatMonitor and directly by tests.
  int CheckHeartbeats();

  // --- Analysis ---

  StatusOr<std::vector<analysis::JobResult>> CollectResults(
      const std::string& evaluation_id);
  // Builds every diagram declared by the experiment's system over the
  // evaluation's finished jobs.
  StatusOr<std::vector<analysis::DiagramData>> EvaluationDiagrams(
      const std::string& evaluation_id);

  model::MetaDb* db() { return db_; }
  SessionManager* sessions() { return &sessions_; }
  Clock* clock() { return clock_; }
  const ControlServiceOptions& options() const { return options_; }

 private:
  // Applies a checked state transition with optimistic retry. `mutate` may
  // adjust more fields after the state is set.
  Status TransitionJob(const std::string& job_id, model::JobState to,
                       const std::function<void(model::Job*)>& mutate);
  void RecordEvent(const std::string& job_id, const std::string& kind,
                   const std::string& message);

  model::MetaDb* db_;
  Clock* clock_;
  ControlServiceOptions options_;
  SessionManager sessions_;
  // Next event sequence number; seeded past any persisted events on
  // construction so ordering survives control-server restarts.
  std::atomic<int64_t> event_seq_;
};

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_CONTROL_SERVICE_H_
