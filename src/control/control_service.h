#ifndef CHRONOS_CONTROL_CONTROL_SERVICE_H_
#define CHRONOS_CONTROL_CONTROL_SERVICE_H_

#include <atomic>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/diagrams.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "control/auth.h"
#include "model/repository.h"

namespace chronos::control {

struct ControlServiceOptions {
  // A running job whose agent misses heartbeats for this long is failed
  // (requirement iii: automated failure handling).
  int64_t heartbeat_timeout_ms = 30000;
  // Failed jobs are automatically rescheduled until this many attempts.
  int max_attempts = 3;
  bool auto_reschedule = true;
};

// What startup reconciliation did, keyed by action name ("grace_lease",
// "complete_upload", "sanitize_scheduled", "drop_empty_evaluation",
// "drop_orphan_result", "drop_orphan_event"). After a clean shutdown the
// fast path applies: `clean_shutdown` is true and `actions` is empty.
struct ReconcileReport {
  bool clean_shutdown = false;
  std::map<std::string, int> actions;

  int total() const;
  json::Json ToJson() const;
};

// Per-evaluation state tallies for monitoring views.
struct EvaluationSummary {
  model::Evaluation evaluation;
  std::map<model::JobState, int> state_counts;
  int total_jobs = 0;
  int overall_progress_percent = 0;  // Mean progress over jobs.

  json::Json ToJson() const;
};

// The business layer of Chronos Control: everything the web UI and the REST
// API expose, over the durable MetaDb. Thread-safe (serialization is
// delegated to the store's optimistic versioning where races matter).
class ControlService {
 public:
  ControlService(model::MetaDb* db, Clock* clock = SystemClock::Get(),
                 ControlServiceOptions options = {});

  // --- Users & sessions ---

  StatusOr<model::User> CreateUser(const std::string& username,
                                   const std::string& password,
                                   model::UserRole role);
  StatusOr<std::string> Login(const std::string& username,
                              const std::string& password);
  Status Logout(const std::string& token);
  StatusOr<model::User> Authenticate(const std::string& token);
  std::vector<model::User> ListUsers();

  // --- Projects (access checks at project level, per the paper) ---

  StatusOr<model::Project> CreateProject(const std::string& name,
                                         const std::string& description,
                                         const std::string& owner_id);
  StatusOr<model::Project> GetProject(const std::string& project_id,
                                      const std::string& user_id);
  std::vector<model::Project> ListProjects(const std::string& user_id);
  Status AddProjectMember(const std::string& project_id,
                          const std::string& acting_user_id,
                          const std::string& new_member_id);
  Status SetProjectArchived(const std::string& project_id,
                            const std::string& user_id, bool archived);

  // --- Systems & deployments ---

  StatusOr<model::System> RegisterSystem(model::System system);
  StatusOr<model::System> GetSystem(const std::string& system_id);
  std::vector<model::System> ListSystems();
  Status UpdateSystem(const model::System& system);

  StatusOr<model::Deployment> CreateDeployment(model::Deployment deployment);
  std::vector<model::Deployment> ListDeployments(
      const std::string& system_id = "");
  Status SetDeploymentActive(const std::string& deployment_id, bool active);
  Status DeleteDeployment(const std::string& deployment_id);

  // --- Experiments ---

  StatusOr<model::Experiment> CreateExperiment(
      const std::string& project_id, const std::string& user_id,
      const std::string& system_id, const std::string& name,
      const std::string& description,
      std::vector<model::ParameterSetting> settings);
  StatusOr<model::Experiment> GetExperiment(const std::string& experiment_id);
  std::vector<model::Experiment> ListExperiments(
      const std::string& project_id);
  Status SetExperimentArchived(const std::string& experiment_id,
                               bool archived);

  // --- Evaluations & jobs ---

  // Expands the experiment's parameter space into one job per assignment.
  // `repetitions` > 1 creates that many jobs per assignment ("certain
  // evaluations need to be repeated multiple times", §3); the analysis
  // averages repeated points.
  StatusOr<model::Evaluation> CreateEvaluation(
      const std::string& experiment_id, const std::string& name,
      int repetitions = 1);
  StatusOr<model::Evaluation> GetEvaluation(const std::string& evaluation_id);
  std::vector<model::Evaluation> ListEvaluations(
      const std::string& experiment_id);
  StatusOr<EvaluationSummary> Summarize(const std::string& evaluation_id);

  StatusOr<model::Job> GetJob(const std::string& job_id);
  std::vector<model::Job> ListJobs(const std::string& evaluation_id,
                                   std::optional<model::JobState> state = {});
  // User actions from the job page: abort scheduled/running, reschedule
  // failed.
  Status AbortJob(const std::string& job_id);
  Status RescheduleJob(const std::string& job_id);

  // --- Agent-facing dispatch ---

  // Hands the oldest scheduled job matching the deployment's system to the
  // calling agent, transitioning it to running. Returns nullopt when no
  // work is available, the service is draining, or the deployment is already
  // busy. Safe under concurrent polls (optimistic versioning; losers retry
  // internally).
  StatusOr<std::optional<model::Job>> PollJob(
      const std::string& deployment_id);

  // Progress/heartbeat/log from the running agent. The returned state lets
  // the agent observe aborts. `attempt` (0 = not supplied, for old agents)
  // guards against posts from a superseded attempt touching the current one:
  // a mismatch returns kAborted without mutating the job, which tells the
  // stale sender to stop.
  StatusOr<model::JobState> ReportProgress(const std::string& job_id,
                                           int percent, int attempt = 0);
  StatusOr<model::JobState> Heartbeat(const std::string& job_id,
                                      int attempt = 0);
  Status AppendLog(const std::string& job_id,
                   const std::vector<std::string>& lines);

  // Ingests a "spans" array an agent piggybacked on a poll/heartbeat/result
  // post into the process-wide SpanCollector, deduplicating replays (the
  // agent ships at-least-once). Returns the number of new spans kept.
  // Malformed entries are skipped.
  size_t ImportSpans(const json::Json& spans);

  // Terminal reports. `idempotency_key` ("<job_id>#<attempt>", empty = no
  // replay protection) makes retries safe: a second delivery of the same
  // terminal report — including across a Control restart — is recognized and
  // acknowledged without re-applying the transition (or re-triggering the
  // failure reschedule).
  Status UploadResult(const std::string& job_id, json::Json data,
                      const std::string& zip_base64,
                      const std::string& idempotency_key = "");
  Status FailJob(const std::string& job_id, const std::string& reason,
                 const std::string& idempotency_key = "");

  // --- Job detail views ---

  std::vector<model::JobEvent> JobEvents(const std::string& job_id);
  std::string JobLog(const std::string& job_id);
  StatusOr<model::Result> GetResult(const std::string& job_id);

  // --- Failure handling (requirement iii) ---

  // Fails running jobs with stale heartbeats; auto-reschedules while
  // attempts remain. Returns the number of jobs failed. Called periodically
  // by HeartbeatMonitor and directly by tests.
  int CheckHeartbeats();

  // --- Lifecycle (crash consistency & graceful drain) ---

  // Replays the MetaDb after a boot and deterministically resolves whatever
  // a crash left half-done. After a clean shutdown (see MarkCleanShutdown)
  // the marker short-circuits all scans and the report shows zero actions.
  // The marker is one-shot: it is consumed here so the next boot only sees
  // it if the intervening shutdown was clean too.
  //
  // Actions on a dirty boot, in order:
  //   complete_upload     running job that already has a Result row — the
  //                       crash hit between result insert and the finished
  //                       transition; finish it now.
  //   grace_lease         running job without a result: its agent session
  //                       died with the process, but the agent itself may
  //                       still be working. Stamp last_heartbeat_at = now so
  //                       the heartbeat monitor grants one full timeout
  //                       before failing + rescheduling through the normal
  //                       attempt budget.
  //   sanitize_scheduled  scheduled job carrying executor residue
  //                       (deployment_id/progress/timestamps) — scrub it.
  //   drop_empty_evaluation  evaluation with zero jobs (crash mid-expansion).
  //   drop_orphan_result / drop_orphan_event  rows pointing at absent jobs.
  // Each action is logged and counted in chronos_reconciliation_total.
  ReconcileReport ReconcileOnStartup();

  // Report of the reconciliation this instance ran at startup.
  const ReconcileReport& reconcile_report() const { return reconcile_report_; }

  // Stops handing out work: PollJob returns "no job" from now on. In-flight
  // uploads/heartbeats still apply, so agents can finish what they hold.
  // Invokes the drain callback (once) so the hosting process can begin its
  // orderly shutdown.
  void BeginDrain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  // Called by BeginDrain exactly once; the server main wires this to its
  // shutdown notification.
  void SetDrainCallback(std::function<void()> callback);

  // Writes the clean-shutdown marker and checkpoints the store (snapshot +
  // empty WAL + fsync). Call after the HTTP server has stopped; the next
  // boot's ReconcileOnStartup takes the zero-action fast path.
  Status MarkCleanShutdown();

  // --- Analysis ---

  StatusOr<std::vector<analysis::JobResult>> CollectResults(
      const std::string& evaluation_id);
  // Builds every diagram declared by the experiment's system over the
  // evaluation's finished jobs.
  StatusOr<std::vector<analysis::DiagramData>> EvaluationDiagrams(
      const std::string& evaluation_id);

  model::MetaDb* db() { return db_; }
  SessionManager* sessions() { return &sessions_; }
  Clock* clock() { return clock_; }
  const ControlServiceOptions& options() const { return options_; }

 private:
  // Applies a checked state transition with optimistic retry. `mutate` may
  // adjust more fields after the state is set.
  Status TransitionJob(const std::string& job_id, model::JobState to,
                       const std::function<void(model::Job*)>& mutate);
  void RecordEvent(const std::string& job_id, const std::string& kind,
                   const std::string& message);
  // Clears the one-shot clean-shutdown marker if present (no write if absent).
  void ConsumeCleanShutdownMarker();

  model::MetaDb* db_;
  Clock* clock_;
  ControlServiceOptions options_;
  SessionManager sessions_;
  // Next event sequence number; seeded past any persisted events on
  // construction so ordering survives control-server restarts.
  std::atomic<int64_t> event_seq_;
  std::atomic<bool> draining_{false};
  Mutex drain_mu_;
  std::function<void()> drain_callback_ CHRONOS_GUARDED_BY(drain_mu_);
  ReconcileReport reconcile_report_;
};

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_CONTROL_SERVICE_H_
