#ifndef CHRONOS_CONTROL_WEB_UI_H_
#define CHRONOS_CONTROL_WEB_UI_H_

#include "control/control_service.h"
#include "net/router.h"

namespace chronos::control {

// Server-rendered HTML views of the evaluation state — the toolkit's web UI
// (requirement i: defining, scheduling, monitoring, analyzing). Pure HTML +
// inline SVG, no scripts, no external assets:
//
//   GET /ui?token=...                    projects overview
//   GET /ui/projects/{id}?token=...      experiments + evaluations
//   GET /ui/evaluations/{id}?token=...   job table, progress, diagrams
//   GET /ui/jobs/{id}?token=...          parameters, timeline, log
//
// Browsers cannot send the X-Session header, so UI pages authenticate via
// the `token` query parameter (obtained from POST /api/v1/auth/login) and
// propagate it through links.
void MountWebUi(net::Router* router, ControlService* service);

// Escapes text for HTML element content (exposed for tests).
std::string HtmlEscape(const std::string& text);

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_WEB_UI_H_
