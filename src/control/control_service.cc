#include "control/control_service.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/retry.h"
#include "common/uuid.h"
#include "fault/failpoint.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace chronos::control {

using model::Job;
using model::JobState;

namespace {

// Store-level home of control-plane lifecycle state (not an entity table):
// row "lifecycle" holds the one-shot clean-shutdown marker that lets the
// next boot skip reconciliation scans.
constexpr char kControlMetaTable[] = "control_meta";
constexpr char kLifecycleRowId[] = "lifecycle";

// Canonical per-attempt idempotency key for terminal reports.
std::string AttemptKey(const std::string& job_id, int attempt) {
  return job_id + "#" + std::to_string(attempt);
}

// Six-digit zero-padded job sequence, so lexicographic id order equals
// creation order within an evaluation.
std::string PadSequence(int sequence) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%06d", sequence);
  return buf;
}

// Scheduler metrics (process-wide; handles cached in local statics).

obs::Counter* JobsScheduledTotal() {
  static obs::Counter* counter = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_jobs_scheduled_total",
      "Jobs entering the scheduled state (incl. reschedules)");
  return counter;
}

obs::Gauge* JobQueueDepth() {
  static obs::Gauge* gauge = obs::MetricsRegistry::Get()->GetGauge(
      "chronos_jobs_queue_depth", "Jobs currently waiting in scheduled state");
  return gauge;
}

// Bookkeeping shared by every observed state change: queue-depth gauge,
// per-transition counters, and an operator-facing log line that carries the
// request's trace ids.
void ObserveTransition(const std::string& job_id, JobState from,
                       JobState to) {
  auto* registry = obs::MetricsRegistry::Get();
  if (from == JobState::kScheduled) JobQueueDepth()->Add(-1);
  switch (to) {
    case JobState::kScheduled:
      JobQueueDepth()->Add(1);
      JobsScheduledTotal()->Increment();
      break;
    case JobState::kRunning: {
      static obs::Counter* claimed = registry->GetCounter(
          "chronos_jobs_claimed_total", "Jobs claimed by agents");
      claimed->Increment();
      break;
    }
    case JobState::kFinished: {
      static obs::Counter* finished = registry->GetCounter(
          "chronos_jobs_finished_total", "Jobs finished with a result");
      finished->Increment();
      break;
    }
    case JobState::kFailed: {
      static obs::Counter* failed = registry->GetCounter(
          "chronos_jobs_failed_total", "Jobs transitioned to failed");
      failed->Increment();
      break;
    }
    case JobState::kAborted: {
      static obs::Counter* aborted = registry->GetCounter(
          "chronos_jobs_aborted_total", "Jobs aborted by users");
      aborted->Increment();
      break;
    }
  }
  CHRONOS_LOG(kInfo, "control.job")
      << job_id << ": " << model::JobStateName(from) << " -> "
      << model::JobStateName(to);
}

// Tallies one reconciliation action locally and in the process-wide
// chronos_reconciliation_total{action=...} counter.
void CountReconciliation(ReconcileReport* report, const std::string& action) {
  report->actions[action]++;
  obs::MetricsRegistry::Get()
      ->GetCounter("chronos_reconciliation_total",
                   "Startup reconciliation actions, per action",
                   {{"action", action}})
      ->Increment();
}

}  // namespace

int ReconcileReport::total() const {
  int sum = 0;
  for (const auto& [action, count] : actions) sum += count;
  return sum;
}

json::Json ReconcileReport::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("clean_shutdown", clean_shutdown);
  json::Json by_action = json::Json::MakeObject();
  for (const auto& [action, count] : actions) {
    by_action.Set(action, static_cast<int64_t>(count));
  }
  out.Set("actions", std::move(by_action));
  out.Set("total", static_cast<int64_t>(total()));
  return out;
}

json::Json EvaluationSummary::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("evaluation", evaluation.ToJson());
  json::Json counts = json::Json::MakeObject();
  for (const auto& [state, count] : state_counts) {
    counts.Set(std::string(model::JobStateName(state)),
               static_cast<int64_t>(count));
  }
  out.Set("state_counts", std::move(counts));
  out.Set("total_jobs", static_cast<int64_t>(total_jobs));
  out.Set("overall_progress_percent",
          static_cast<int64_t>(overall_progress_percent));
  return out;
}

ControlService::ControlService(model::MetaDb* db, Clock* clock,
                               ControlServiceOptions options)
    : db_(db), clock_(clock), options_(options), sessions_(clock) {
  // Resume the event sequence past anything already persisted.
  int64_t max_seq = 0;
  for (const model::JobEvent& event : db_->job_events().All()) {
    max_seq = std::max(max_seq, event.seq);
  }
  event_seq_.store(max_seq + 1);
}

// --- Users & sessions ---

StatusOr<model::User> ControlService::CreateUser(const std::string& username,
                                                 const std::string& password,
                                                 model::UserRole role) {
  if (username.empty()) {
    return Status::InvalidArgument("username must not be empty");
  }
  if (password.size() < 4) {
    return Status::InvalidArgument("password too short");
  }
  if (!db_->users().FindBy("username", json::Json(username)).empty()) {
    return Status::AlreadyExists("username taken: " + username);
  }
  model::User user;
  user.id = GenerateUuid();
  user.username = username;
  user.salt = GenerateSalt();
  user.password_hash = HashPassword(password, user.salt);
  user.role = role;
  user.created_at = clock_->NowMs();
  CHRONOS_RETURN_IF_ERROR(db_->users().Insert(user));
  return user;
}

StatusOr<std::string> ControlService::Login(const std::string& username,
                                            const std::string& password) {
  auto users = db_->users().FindBy("username", json::Json(username));
  if (users.empty()) {
    return Status::Unauthenticated("unknown user or wrong password");
  }
  const model::User& user = users[0];
  if (!VerifyPassword(password, user.salt, user.password_hash)) {
    return Status::Unauthenticated("unknown user or wrong password");
  }
  return sessions_.CreateSession(user.id);
}

Status ControlService::Logout(const std::string& token) {
  return sessions_.Invalidate(token);
}

StatusOr<model::User> ControlService::Authenticate(const std::string& token) {
  CHRONOS_ASSIGN_OR_RETURN(std::string user_id, sessions_.Resolve(token));
  auto user = db_->users().Get(user_id);
  if (!user.ok()) return Status::Unauthenticated("session user vanished");
  return user;
}

std::vector<model::User> ControlService::ListUsers() {
  return db_->users().All();
}

// --- Projects ---

StatusOr<model::Project> ControlService::CreateProject(
    const std::string& name, const std::string& description,
    const std::string& owner_id) {
  if (name.empty()) return Status::InvalidArgument("project name empty");
  if (!db_->users().Exists(owner_id)) {
    return Status::NotFound("owner not found: " + owner_id);
  }
  model::Project project;
  project.id = GenerateUuid();
  project.name = name;
  project.description = description;
  project.owner_id = owner_id;
  project.member_ids = {owner_id};
  project.created_at = clock_->NowMs();
  CHRONOS_RETURN_IF_ERROR(db_->projects().Insert(project));
  return project;
}

StatusOr<model::Project> ControlService::GetProject(
    const std::string& project_id, const std::string& user_id) {
  CHRONOS_ASSIGN_OR_RETURN(model::Project project,
                           db_->projects().Get(project_id));
  // Admins see everything; members see their projects.
  auto user = db_->users().Get(user_id);
  bool is_admin = user.ok() && user->role == model::UserRole::kAdmin;
  if (!is_admin && !project.HasMember(user_id)) {
    return Status::PermissionDenied("not a member of project " + project_id);
  }
  return project;
}

std::vector<model::Project> ControlService::ListProjects(
    const std::string& user_id) {
  auto user = db_->users().Get(user_id);
  bool is_admin = user.ok() && user->role == model::UserRole::kAdmin;
  std::vector<model::Project> visible;
  for (model::Project& project : db_->projects().All()) {
    if (is_admin || project.HasMember(user_id)) {
      visible.push_back(std::move(project));
    }
  }
  return visible;
}

Status ControlService::AddProjectMember(const std::string& project_id,
                                        const std::string& acting_user_id,
                                        const std::string& new_member_id) {
  CHRONOS_ASSIGN_OR_RETURN(model::Project project,
                           GetProject(project_id, acting_user_id));
  if (!db_->users().Exists(new_member_id)) {
    return Status::NotFound("user not found: " + new_member_id);
  }
  if (project.HasMember(new_member_id)) {
    return Status::AlreadyExists("already a member");
  }
  project.member_ids.push_back(new_member_id);
  return db_->projects().Update(project);
}

Status ControlService::SetProjectArchived(const std::string& project_id,
                                          const std::string& user_id,
                                          bool archived) {
  CHRONOS_ASSIGN_OR_RETURN(model::Project project,
                           GetProject(project_id, user_id));
  project.archived = archived;
  return db_->projects().Update(project);
}

// --- Systems & deployments ---

StatusOr<model::System> ControlService::RegisterSystem(model::System system) {
  if (system.name.empty()) {
    return Status::InvalidArgument("system name empty");
  }
  if (system.id.empty()) system.id = GenerateUuid();
  CHRONOS_RETURN_IF_ERROR(db_->systems().Insert(system));
  return system;
}

StatusOr<model::System> ControlService::GetSystem(
    const std::string& system_id) {
  return db_->systems().Get(system_id);
}

std::vector<model::System> ControlService::ListSystems() {
  return db_->systems().All();
}

Status ControlService::UpdateSystem(const model::System& system) {
  return db_->systems().Update(system);
}

StatusOr<model::Deployment> ControlService::CreateDeployment(
    model::Deployment deployment) {
  if (!db_->systems().Exists(deployment.system_id)) {
    return Status::NotFound("system not found: " + deployment.system_id);
  }
  if (deployment.id.empty()) deployment.id = GenerateUuid();
  CHRONOS_RETURN_IF_ERROR(db_->deployments().Insert(deployment));
  return deployment;
}

std::vector<model::Deployment> ControlService::ListDeployments(
    const std::string& system_id) {
  if (system_id.empty()) return db_->deployments().All();
  return db_->deployments().FindBy("system_id", json::Json(system_id));
}

Status ControlService::SetDeploymentActive(const std::string& deployment_id,
                                           bool active) {
  CHRONOS_ASSIGN_OR_RETURN(model::Deployment deployment,
                           db_->deployments().Get(deployment_id));
  deployment.active = active;
  return db_->deployments().Update(deployment);
}

Status ControlService::DeleteDeployment(const std::string& deployment_id) {
  return db_->deployments().Delete(deployment_id);
}

// --- Experiments ---

StatusOr<model::Experiment> ControlService::CreateExperiment(
    const std::string& project_id, const std::string& user_id,
    const std::string& system_id, const std::string& name,
    const std::string& description,
    std::vector<model::ParameterSetting> settings) {
  CHRONOS_ASSIGN_OR_RETURN(model::Project project,
                           GetProject(project_id, user_id));
  if (project.archived) {
    return Status::FailedPrecondition("project is archived");
  }
  CHRONOS_ASSIGN_OR_RETURN(model::System system, GetSystem(system_id));
  // Validate every setting against the system's parameter declarations.
  for (const model::ParameterSetting& setting : settings) {
    const model::ParameterDef* def = system.FindParameter(setting.name);
    if (def == nullptr) {
      return Status::InvalidArgument("system '" + system.name +
                                     "' declares no parameter '" +
                                     setting.name + "'");
    }
    CHRONOS_RETURN_IF_ERROR(model::ValidateSetting(*def, setting));
  }
  model::Experiment experiment;
  experiment.id = GenerateUuid();
  experiment.project_id = project_id;
  experiment.system_id = system_id;
  experiment.name = name;
  experiment.description = description;
  experiment.settings = std::move(settings);
  experiment.created_at = clock_->NowMs();
  CHRONOS_RETURN_IF_ERROR(db_->experiments().Insert(experiment));
  return experiment;
}

StatusOr<model::Experiment> ControlService::GetExperiment(
    const std::string& experiment_id) {
  return db_->experiments().Get(experiment_id);
}

std::vector<model::Experiment> ControlService::ListExperiments(
    const std::string& project_id) {
  return db_->experiments().FindBy("project_id", json::Json(project_id));
}

Status ControlService::SetExperimentArchived(const std::string& experiment_id,
                                             bool archived) {
  CHRONOS_ASSIGN_OR_RETURN(model::Experiment experiment,
                           db_->experiments().Get(experiment_id));
  experiment.archived = archived;
  return db_->experiments().Update(experiment);
}

// --- Evaluations & jobs ---

StatusOr<model::Evaluation> ControlService::CreateEvaluation(
    const std::string& experiment_id, const std::string& name,
    int repetitions) {
  if (repetitions < 1 || repetitions > 1000) {
    return Status::InvalidArgument("repetitions out of range [1, 1000]");
  }
  CHRONOS_ASSIGN_OR_RETURN(model::Experiment experiment,
                           GetExperiment(experiment_id));
  if (experiment.archived) {
    return Status::FailedPrecondition("experiment is archived");
  }
  CHRONOS_ASSIGN_OR_RETURN(
      std::vector<model::ParameterAssignment> assignments,
      model::ExpandParameterSpace(experiment.settings));
  if (repetitions > 1) {
    std::vector<model::ParameterAssignment> repeated;
    repeated.reserve(assignments.size() * repetitions);
    for (const model::ParameterAssignment& assignment : assignments) {
      for (int r = 0; r < repetitions; ++r) repeated.push_back(assignment);
    }
    assignments = std::move(repeated);
  }

  model::Evaluation evaluation;
  evaluation.id = GenerateUuid();
  evaluation.experiment_id = experiment_id;
  evaluation.name = name.empty() ? experiment.name + " run" : name;
  evaluation.created_at = clock_->NowMs();
  CHRONOS_RETURN_IF_ERROR(db_->evaluations().Insert(evaluation));

  int sequence = 0;
  for (model::ParameterAssignment& assignment : assignments) {
    Job job;
    // Sequence-prefixed ids keep Scan order == creation order.
    job.id = evaluation.id + "-" + PadSequence(sequence++);
    job.evaluation_id = evaluation.id;
    job.experiment_id = experiment_id;
    job.system_id = experiment.system_id;
    job.state = JobState::kScheduled;
    job.parameters = std::move(assignment);
    job.created_at = clock_->NowMs();
    CHRONOS_RETURN_IF_ERROR(db_->jobs().Insert(job));
    RecordEvent(job.id, "state", "job created (scheduled)");
    JobsScheduledTotal()->Increment();
    JobQueueDepth()->Add(1);
  }
  return evaluation;
}

StatusOr<model::Evaluation> ControlService::GetEvaluation(
    const std::string& evaluation_id) {
  return db_->evaluations().Get(evaluation_id);
}

std::vector<model::Evaluation> ControlService::ListEvaluations(
    const std::string& experiment_id) {
  return db_->evaluations().FindBy("experiment_id",
                                   json::Json(experiment_id));
}

StatusOr<EvaluationSummary> ControlService::Summarize(
    const std::string& evaluation_id) {
  EvaluationSummary summary;
  CHRONOS_ASSIGN_OR_RETURN(summary.evaluation, GetEvaluation(evaluation_id));
  int progress_sum = 0;
  for (const Job& job : ListJobs(evaluation_id)) {
    summary.state_counts[job.state]++;
    ++summary.total_jobs;
    progress_sum += job.state == JobState::kFinished ? 100
                                                     : job.progress_percent;
  }
  summary.overall_progress_percent =
      summary.total_jobs == 0 ? 0 : progress_sum / summary.total_jobs;
  return summary;
}

StatusOr<Job> ControlService::GetJob(const std::string& job_id) {
  return db_->jobs().Get(job_id);
}

std::vector<Job> ControlService::ListJobs(
    const std::string& evaluation_id, std::optional<JobState> state) {
  std::vector<Job> jobs =
      db_->jobs().FindBy("evaluation_id", json::Json(evaluation_id));
  if (state.has_value()) {
    jobs.erase(std::remove_if(jobs.begin(), jobs.end(),
                              [&](const Job& job) {
                                return job.state != *state;
                              }),
               jobs.end());
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const Job& a, const Job& b) { return a.id < b.id; });
  return jobs;
}

Status ControlService::TransitionJob(
    const std::string& job_id, JobState to,
    const std::function<void(Job*)>& mutate) {
  // Optimistic retry loop around the read-check-write. Under contention
  // (many agents claiming from one evaluation) bare spinning makes every
  // loser re-collide; a short capped backoff between attempts spreads the
  // re-reads out. The policy runs on the service clock, so tests on
  // SimulatedClock stay wall-clock free.
  RetryPolicy policy;
  policy.max_attempts = 16;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 16;
  policy.clock = clock_;
  Backoff backoff(policy);
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) backoff.SleepNext();
    CHRONOS_ASSIGN_OR_RETURN(auto snapshot,
                             db_->jobs().GetWithVersion(job_id));
    auto [job, version] = snapshot;
    CHRONOS_RETURN_IF_ERROR(model::CheckTransition(job.state, to));
    JobState from = job.state;
    job.state = to;
    if (mutate) mutate(&job);
    Status status = db_->jobs().UpdateIfVersion(job, version);
    if (status.ok()) {
      RecordEvent(job_id, "state",
                  std::string(model::JobStateName(from)) + " -> " +
                      std::string(model::JobStateName(to)));
      ObserveTransition(job_id, from, to);
      return Status::Ok();
    }
    if (!status.IsFailedPrecondition()) return status;
    // Lost the race; back off, re-read and re-validate.
  }
  return Status::Aborted("job transition contention on " + job_id);
}

Status ControlService::AbortJob(const std::string& job_id) {
  TimestampMs now = clock_->NowMs();
  return TransitionJob(job_id, JobState::kAborted, [now](Job* job) {
    job->finished_at = now;
  });
}

Status ControlService::RescheduleJob(const std::string& job_id) {
  TimestampMs now = clock_->NowMs();
  return TransitionJob(job_id, JobState::kScheduled, [now](Job* job) {
    job->attempt += 1;
    job->deployment_id.clear();
    job->progress_percent = 0;
    job->failure_reason.clear();
    job->started_at = 0;
    job->finished_at = 0;
    job->last_heartbeat_at = 0;
    (void)now;
  });
}

// --- Agent-facing dispatch ---

StatusOr<std::optional<Job>> ControlService::PollJob(
    const std::string& deployment_id) {
  obs::Span span("control.claim");
  span.SetAttribute("deployment_id", deployment_id);
  // Draining: stop handing out new work, but answer the poll normally so
  // agents idle instead of erroring out.
  if (draining_.load(std::memory_order_relaxed)) return std::optional<Job>();
  CHRONOS_ASSIGN_OR_RETURN(model::Deployment deployment,
                           db_->deployments().Get(deployment_id));
  if (!deployment.active) {
    return Status::FailedPrecondition("deployment is inactive");
  }
  // One job at a time per deployment.
  auto running = db_->jobs().FindIf([&](const json::Json& row) {
    return row.GetStringOr("state", "") == "running" &&
           row.GetStringOr("deployment_id", "") == deployment_id;
  });
  if (!running.empty()) return std::optional<Job>();

  // Oldest scheduled job for this system. Job ids embed the evaluation
  // sequence, so sorting by (created_at, id) is deterministic.
  std::vector<Job> candidates = db_->jobs().FindIf([&](const json::Json& row) {
    return row.GetStringOr("state", "") == "scheduled" &&
           row.GetStringOr("system_id", "") == deployment.system_id;
  });
  std::sort(candidates.begin(), candidates.end(),
            [](const Job& a, const Job& b) {
              if (a.created_at != b.created_at) {
                return a.created_at < b.created_at;
              }
              return a.id < b.id;
            });

  TimestampMs now = clock_->NowMs();
  // The claiming poll's trace id (the agent's cycle root, installed at HTTP
  // ingress) is stamped onto the job so GET /jobs/{id}/trace can find it.
  const std::string claim_trace_id = CurrentTraceIds().trace_id;
  for (Job& candidate : candidates) {
    Status status = TransitionJob(
        candidate.id, JobState::kRunning, [&](Job* job) {
          job->deployment_id = deployment_id;
          job->started_at = now;
          job->last_heartbeat_at = now;
          job->trace_id = claim_trace_id;
        });
    if (status.ok()) {
      // Crash seam: the claim is durable but the agent never hears about
      // it. Recovery must re-run the job via the heartbeat timeout, not
      // lose it or hand it out twice.
      CHRONOS_RETURN_IF_ERROR(fault::Inject("control.claim.committed"));
      span.SetAttribute("job_id", candidate.id);
      return std::optional<Job>(*GetJob(candidate.id));
    }
    // Another agent won this job (or it was aborted); try the next.
  }
  return std::optional<Job>();
}

StatusOr<JobState> ControlService::ReportProgress(const std::string& job_id,
                                                  int percent, int attempt) {
  percent = std::clamp(percent, 0, 100);
  CHRONOS_ASSIGN_OR_RETURN(auto snapshot, db_->jobs().GetWithVersion(job_id));
  auto [job, version] = snapshot;
  if (attempt > 0 && job.attempt != attempt) {
    // A post from a superseded attempt must not touch the live one; kAborted
    // tells the stale sender to stop.
    return JobState::kAborted;
  }
  if (job.state != JobState::kRunning) {
    // Not an error: the agent learns the job was aborted/failed meanwhile.
    return job.state;
  }
  job.progress_percent = percent;
  job.last_heartbeat_at = clock_->NowMs();
  Status status = db_->jobs().UpdateIfVersion(job, version);
  if (!status.ok() && !status.IsFailedPrecondition()) return status;
  RecordEvent(job_id, "progress", std::to_string(percent) + "%");
  return JobState::kRunning;
}

StatusOr<JobState> ControlService::Heartbeat(const std::string& job_id,
                                             int attempt) {
  CHRONOS_ASSIGN_OR_RETURN(auto snapshot, db_->jobs().GetWithVersion(job_id));
  auto [job, version] = snapshot;
  if (attempt > 0 && job.attempt != attempt) return JobState::kAborted;
  if (job.state != JobState::kRunning) return job.state;
  job.last_heartbeat_at = clock_->NowMs();
  db_->jobs().UpdateIfVersion(job, version).IgnoreError();  // Racy loss is harmless.
  return JobState::kRunning;
}

Status ControlService::AppendLog(const std::string& job_id,
                                 const std::vector<std::string>& lines) {
  if (!db_->jobs().Exists(job_id)) {
    return Status::NotFound("job not found: " + job_id);
  }
  for (const std::string& line : lines) {
    RecordEvent(job_id, "log", line);
  }
  return Status::Ok();
}

size_t ControlService::ImportSpans(const json::Json& spans) {
  if (!spans.is_array()) return 0;
  static obs::Counter* imported_total =
      obs::MetricsRegistry::Get()->GetCounter(
          "chronos_spans_imported_total",
          "Agent-side spans ingested from piggybacked posts");
  obs::SpanCollector* collector = obs::SpanCollector::Get();
  size_t imported = 0;
  for (const json::Json& value : spans.as_array()) {
    auto record = obs::SpanFromJson(value);
    if (!record.ok()) continue;  // Garbage from a peer is dropped, not fatal.
    // Shipping is at-least-once (the agent's cursor only advances on a
    // successful post), so replays are expected; keep the first copy.
    if (collector->Contains(record->trace_id, record->span_id)) continue;
    collector->Record(*std::move(record));
    ++imported;
  }
  imported_total->Increment(imported);
  return imported;
}

Status ControlService::UploadResult(const std::string& job_id,
                                    json::Json data,
                                    const std::string& zip_base64,
                                    const std::string& idempotency_key) {
  obs::Span span("control.upload_result");
  span.SetAttribute("job_id", job_id);
  CHRONOS_ASSIGN_OR_RETURN(Job job, GetJob(job_id));
  if (!idempotency_key.empty()) {
    // Replay detection. The result row is inserted before the finished
    // transition commits, so ANY earlier delivery of this key left a row
    // behind — even one cut short by a crash between the two writes.
    for (const model::Result& existing :
         db_->results().FindBy("job_id", json::Json(job_id))) {
      if (existing.idempotency_key != idempotency_key) continue;
      if (job.state == JobState::kRunning &&
          idempotency_key == AttemptKey(job_id, job.attempt)) {
        // First delivery died inside the insert/transition window; finish
        // the half-applied upload now.
        TimestampMs now = clock_->NowMs();
        return TransitionJob(job_id, JobState::kFinished, [&](Job* job_ptr) {
          job_ptr->finished_at = now;
          job_ptr->progress_percent = 100;
          job_ptr->terminal_key = idempotency_key;
        });
      }
      // Already fully applied (or the job has since moved on to another
      // attempt); acknowledge without acting.
      return Status::Ok();
    }
  }
  if (job.state != JobState::kRunning) {
    return Status::FailedPrecondition(
        "result upload for job in state " +
        std::string(model::JobStateName(job.state)));
  }
  model::Result result;
  result.id = GenerateUuid();
  result.job_id = job_id;
  result.data = std::move(data);
  result.zip_base64 = zip_base64;
  result.idempotency_key = idempotency_key;
  result.uploaded_at = clock_->NowMs();
  CHRONOS_RETURN_IF_ERROR(db_->results().Insert(result));

  TimestampMs now = clock_->NowMs();
  return TransitionJob(job_id, JobState::kFinished, [&](Job* job_ptr) {
    job_ptr->finished_at = now;
    job_ptr->progress_percent = 100;
    job_ptr->terminal_key = idempotency_key;
  });
}

Status ControlService::FailJob(const std::string& job_id,
                               const std::string& reason,
                               const std::string& idempotency_key) {
  obs::Span span("control.fail_job");
  span.SetAttribute("job_id", job_id);
  span.SetAttribute("reason", reason);
  if (!idempotency_key.empty()) {
    CHRONOS_ASSIGN_OR_RETURN(Job job, GetJob(job_id));
    if (job.terminal_key == idempotency_key) {
      // Replay of an already-applied failure. The job may have been
      // rescheduled (or even re-claimed) since; acting again would fail the
      // NEXT attempt and burn its budget, so just acknowledge.
      return Status::Ok();
    }
  }
  TimestampMs now = clock_->NowMs();
  CHRONOS_RETURN_IF_ERROR(
      TransitionJob(job_id, JobState::kFailed, [&](Job* job) {
        job->failure_reason = reason;
        job->finished_at = now;
        if (!idempotency_key.empty()) job->terminal_key = idempotency_key;
      }));
  if (options_.auto_reschedule) {
    auto job = GetJob(job_id);
    if (job.ok() && job->attempt < options_.max_attempts) {
      Status status = RescheduleJob(job_id);
      if (status.ok()) {
        RecordEvent(job_id, "note",
                    "auto-rescheduled after failure: " + reason);
      }
    }
  }
  return Status::Ok();
}

// --- Job detail views ---

std::vector<model::JobEvent> ControlService::JobEvents(
    const std::string& job_id) {
  std::vector<model::JobEvent> events =
      db_->job_events().FindBy("job_id", json::Json(job_id));
  std::sort(events.begin(), events.end(),
            [](const model::JobEvent& a, const model::JobEvent& b) {
              return a.seq < b.seq;
            });
  return events;
}

std::string ControlService::JobLog(const std::string& job_id) {
  std::string log;
  for (const model::JobEvent& event : JobEvents(job_id)) {
    if (event.kind == "log") {
      log += event.message;
      log += '\n';
    }
  }
  return log;
}

StatusOr<model::Result> ControlService::GetResult(const std::string& job_id) {
  auto results = db_->results().FindBy("job_id", json::Json(job_id));
  if (results.empty()) {
    return Status::NotFound("no result for job " + job_id);
  }
  return results[0];
}

// --- Failure handling ---

int ControlService::CheckHeartbeats() {
  TimestampMs now = clock_->NowMs();
  TimestampMs cutoff = now - options_.heartbeat_timeout_ms;
  int failed = 0;
  for (const Job& job : db_->jobs().FindIf([&](const json::Json& row) {
         return row.GetStringOr("state", "") == "running" &&
                row.GetIntOr("last_heartbeat_at", 0) < cutoff;
       })) {
    Status status =
        FailJob(job.id, "heartbeat timeout (agent presumed dead)");
    if (status.ok()) ++failed;
  }
  return failed;
}

// --- Lifecycle (crash consistency & graceful drain) ---

ReconcileReport ControlService::ReconcileOnStartup() {
  obs::Span span("control.reconcile");
  ReconcileReport report;
  store::TableStore* store = db_->table_store();
  auto marker = store->Get(kControlMetaTable, kLifecycleRowId);
  if (marker.ok() && marker->GetBoolOr("clean_shutdown", false)) {
    // The previous incarnation shut down cleanly, so nothing can be
    // half-done: skip every scan. The marker is consumed (one-shot) so a
    // later crash is not masked by a stale flag.
    report.clean_shutdown = true;
    ConsumeCleanShutdownMarker();
    reconcile_report_ = report;
    CHRONOS_LOG(kInfo, "control.lifecycle")
        << "clean shutdown detected; reconciliation skipped";
    return report;
  }
  ConsumeCleanShutdownMarker();
  TimestampMs now = clock_->NowMs();

  // 1. Running jobs. Their agent sessions were in memory and died with the
  // process; what remains decides the outcome. A result row whose key
  // matches the current attempt means the upload landed but the finished
  // transition did not — complete it. Otherwise grant a grace lease: stamp
  // the heartbeat so the monitor gives the (possibly still alive) agent one
  // full timeout before failing and rescheduling through the attempt budget.
  for (const Job& job : db_->jobs().FindIf([](const json::Json& row) {
         return row.GetStringOr("state", "") == "running";
       })) {
    const std::string key = AttemptKey(job.id, job.attempt);
    bool upload_landed = false;
    for (const model::Result& result :
         db_->results().FindBy("job_id", json::Json(job.id))) {
      if (result.idempotency_key == key) {
        upload_landed = true;
        break;
      }
    }
    if (upload_landed) {
      Status status =
          TransitionJob(job.id, JobState::kFinished, [&](Job* job_ptr) {
            job_ptr->finished_at = now;
            job_ptr->progress_percent = 100;
            job_ptr->terminal_key = key;
          });
      if (status.ok()) {
        RecordEvent(job.id, "note",
                    "startup reconciliation: completed half-applied upload");
        CountReconciliation(&report, "complete_upload");
      }
      continue;
    }
    auto snapshot = db_->jobs().GetWithVersion(job.id);
    if (!snapshot.ok()) continue;
    auto [fresh, version] = *snapshot;
    fresh.last_heartbeat_at = now;
    if (db_->jobs().UpdateIfVersion(fresh, version).ok()) {
      RecordEvent(job.id, "note",
                  "startup reconciliation: grace lease (agent session lost "
                  "in restart)");
      CountReconciliation(&report, "grace_lease");
    }
  }

  // 2. Scheduled jobs carrying executor residue (a crash mid-reschedule or
  // a torn claim): scrub the fields a fresh scheduled job would not have.
  for (const Job& job : db_->jobs().FindIf([](const json::Json& row) {
         return row.GetStringOr("state", "") == "scheduled" &&
                (!row.GetStringOr("deployment_id", "").empty() ||
                 row.GetIntOr("progress_percent", 0) != 0 ||
                 row.GetIntOr("started_at", 0) != 0 ||
                 row.GetIntOr("last_heartbeat_at", 0) != 0);
       })) {
    auto snapshot = db_->jobs().GetWithVersion(job.id);
    if (!snapshot.ok()) continue;
    auto [fresh, version] = *snapshot;
    fresh.deployment_id.clear();
    fresh.progress_percent = 0;
    fresh.started_at = 0;
    fresh.last_heartbeat_at = 0;
    if (db_->jobs().UpdateIfVersion(fresh, version).ok()) {
      RecordEvent(job.id, "note",
                  "startup reconciliation: scrubbed executor residue");
      CountReconciliation(&report, "sanitize_scheduled");
    }
  }

  // 3. Evaluations with zero jobs: the crash hit mid-expansion. The shell
  // carries no recoverable work (the experiment can simply be re-run), so
  // drop it rather than leave a forever-0% evaluation in every list view.
  for (const model::Evaluation& evaluation : db_->evaluations().All()) {
    if (db_->jobs()
            .FindBy("evaluation_id", json::Json(evaluation.id))
            .empty()) {
      if (db_->evaluations().Delete(evaluation.id).ok()) {
        CountReconciliation(&report, "drop_empty_evaluation");
      }
    }
  }

  // 4. Rows pointing at jobs that do not exist (defensive; jobs are never
  // deleted today, but a dangling reference must not survive a repair).
  for (const model::Result& result : db_->results().All()) {
    if (db_->jobs().Exists(result.job_id)) continue;
    if (db_->results().Delete(result.id).ok()) {
      CountReconciliation(&report, "drop_orphan_result");
    }
  }
  for (const model::JobEvent& event : db_->job_events().All()) {
    if (db_->jobs().Exists(event.job_id)) continue;
    if (db_->job_events().Delete(event.id).ok()) {
      CountReconciliation(&report, "drop_orphan_event");
    }
  }

  reconcile_report_ = report;
  CHRONOS_LOG(kInfo, "control.lifecycle")
      << "startup reconciliation: " << report.total() << " action(s)";
  return report;
}

void ControlService::BeginDrain() {
  if (draining_.exchange(true)) return;  // Idempotent.
  CHRONOS_LOG(kInfo, "control.lifecycle")
      << "drain requested: no new jobs will be handed out";
  std::function<void()> callback;
  {
    MutexLock lock(drain_mu_);
    callback = drain_callback_;
  }
  if (callback) callback();
}

void ControlService::SetDrainCallback(std::function<void()> callback) {
  MutexLock lock(drain_mu_);
  drain_callback_ = std::move(callback);
}

Status ControlService::MarkCleanShutdown() {
  json::Json row = json::Json::MakeObject();
  row.Set("clean_shutdown", true);
  row.Set("shutdown_at", clock_->NowMs());
  CHRONOS_RETURN_IF_ERROR(
      db_->table_store()->Upsert(kControlMetaTable, kLifecycleRowId, row));
  // Fold the marker (and everything else) into a fresh snapshot; the next
  // boot reads it without replaying a WAL.
  return db_->table_store()->Checkpoint();
}

void ControlService::ConsumeCleanShutdownMarker() {
  store::TableStore* store = db_->table_store();
  auto marker = store->Get(kControlMetaTable, kLifecycleRowId);
  if (!marker.ok() || !marker->GetBoolOr("clean_shutdown", false)) return;
  json::Json row = json::Json::MakeObject();
  row.Set("clean_shutdown", false);
  row.Set("consumed_at", clock_->NowMs());
  store->Upsert(kControlMetaTable, kLifecycleRowId, row).IgnoreError();
}

// --- Analysis ---

StatusOr<std::vector<analysis::JobResult>> ControlService::CollectResults(
    const std::string& evaluation_id) {
  CHRONOS_RETURN_IF_ERROR(GetEvaluation(evaluation_id).status());
  std::vector<analysis::JobResult> results;
  for (const Job& job : ListJobs(evaluation_id, JobState::kFinished)) {
    auto result = GetResult(job.id);
    if (!result.ok()) continue;
    analysis::JobResult entry;
    entry.parameters = job.parameters;
    entry.data = result->data;
    results.push_back(std::move(entry));
  }
  return results;
}

StatusOr<std::vector<analysis::DiagramData>>
ControlService::EvaluationDiagrams(const std::string& evaluation_id) {
  CHRONOS_ASSIGN_OR_RETURN(model::Evaluation evaluation,
                           GetEvaluation(evaluation_id));
  CHRONOS_ASSIGN_OR_RETURN(model::Experiment experiment,
                           GetExperiment(evaluation.experiment_id));
  CHRONOS_ASSIGN_OR_RETURN(model::System system,
                           GetSystem(experiment.system_id));
  CHRONOS_ASSIGN_OR_RETURN(std::vector<analysis::JobResult> results,
                           CollectResults(evaluation_id));
  std::vector<analysis::DiagramData> diagrams;
  for (const model::DiagramDef& def : system.diagrams) {
    auto diagram = analysis::BuildDiagram(def, results);
    if (diagram.ok()) diagrams.push_back(std::move(diagram).value());
  }
  return diagrams;
}

void ControlService::RecordEvent(const std::string& job_id,
                                 const std::string& kind,
                                 const std::string& message) {
  model::JobEvent event;
  event.id = GenerateUuid();
  event.job_id = job_id;
  event.seq = event_seq_.fetch_add(1);
  event.timestamp_ms = clock_->NowMs();
  event.kind = kind;
  event.message = message;
  db_->job_events().Insert(event).IgnoreError();
}

}  // namespace chronos::control
