#include "control/heartbeat_monitor.h"

#include <chrono>

#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace chronos::control {

HeartbeatMonitor::HeartbeatMonitor(ControlService* service,
                                   HeartbeatMonitorOptions options)
    : service_(service), options_(options), jitter_rng_(options.seed) {}

HeartbeatMonitor::HeartbeatMonitor(ControlService* service,
                                   int64_t interval_ms)
    : HeartbeatMonitor(service,
                       HeartbeatMonitorOptions{interval_ms, 0.0, 0}) {}

int64_t HeartbeatMonitor::NextIntervalMs() {
  if (options_.jitter <= 0.0) return options_.interval_ms;
  MutexLock lock(mu_);
  // Uniform in interval * [1 - jitter, 1 + jitter], floored at 1ms.
  double factor = 1.0 + options_.jitter * (2.0 * jitter_rng_.NextDouble() - 1.0);
  auto jittered =
      static_cast<int64_t>(static_cast<double>(options_.interval_ms) * factor);
  return jittered < 1 ? 1 : jittered;
}

HeartbeatMonitor::~HeartbeatMonitor() { Stop(); }

void HeartbeatMonitor::Start() {
  if (thread_.joinable()) return;
  {
    MutexLock lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void HeartbeatMonitor::Stop() {
  {
    MutexLock lock(mu_);
    stop_requested_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

bool HeartbeatMonitor::WaitForStop(int64_t timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  MutexLock lock(mu_);
  while (!stop_requested_) {
    if (!cv_.WaitUntil(mu_, deadline)) return stop_requested_;
  }
  return true;
}

void HeartbeatMonitor::Loop() {
  static obs::Counter* sweep_counter = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_heartbeat_sweeps_total",
      "Heartbeat reliability sweeps executed");
  static obs::Counter* failed_counter = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_heartbeat_jobs_failed_total",
      "Jobs failed by the heartbeat monitor (stale agents)");
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_requested_) return;
    }
    int failed;
    {
      // Each sweep is its own trace root (the monitor thread has no ambient
      // context); a FailJob inside nests under it.
      obs::Span span("control.heartbeat_round");
      failed = service_->CheckHeartbeats();
      span.SetAttribute("jobs_failed", std::to_string(failed));
    }
    jobs_failed_.fetch_add(failed);
    sweeps_.fetch_add(1);
    sweep_counter->Increment();
    failed_counter->Increment(static_cast<uint64_t>(failed));
    if (WaitForStop(NextIntervalMs())) return;
  }
}

}  // namespace chronos::control
