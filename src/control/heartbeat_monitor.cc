#include "control/heartbeat_monitor.h"

namespace chronos::control {

HeartbeatMonitor::HeartbeatMonitor(ControlService* service,
                                   int64_t interval_ms)
    : service_(service), interval_ms_(interval_ms) {}

HeartbeatMonitor::~HeartbeatMonitor() { Stop(); }

void HeartbeatMonitor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void HeartbeatMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HeartbeatMonitor::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    lock.unlock();
    jobs_failed_.fetch_add(service_->CheckHeartbeats());
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_requested_; });
  }
}

}  // namespace chronos::control
