#include "control/heartbeat_monitor.h"

#include "obs/metrics_registry.h"

namespace chronos::control {

HeartbeatMonitor::HeartbeatMonitor(ControlService* service,
                                   int64_t interval_ms)
    : service_(service), interval_ms_(interval_ms) {}

HeartbeatMonitor::~HeartbeatMonitor() { Stop(); }

void HeartbeatMonitor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void HeartbeatMonitor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HeartbeatMonitor::Loop() {
  static obs::Counter* sweep_counter = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_heartbeat_sweeps_total",
      "Heartbeat reliability sweeps executed");
  static obs::Counter* failed_counter = obs::MetricsRegistry::Get()->GetCounter(
      "chronos_heartbeat_jobs_failed_total",
      "Jobs failed by the heartbeat monitor (stale agents)");
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    lock.unlock();
    int failed = service_->CheckHeartbeats();
    jobs_failed_.fetch_add(failed);
    sweeps_.fetch_add(1);
    sweep_counter->Increment();
    failed_counter->Increment(static_cast<uint64_t>(failed));
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_requested_; });
  }
}

}  // namespace chronos::control
