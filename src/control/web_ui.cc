#include "control/web_ui.h"

#include "analysis/diagrams.h"
#include "common/strings.h"

namespace chronos::control {

namespace {

using net::HttpRequest;
using net::HttpResponse;

constexpr char kStyle[] =
    "body{font-family:sans-serif;margin:24px;max-width:1000px;}"
    "table{border-collapse:collapse;margin:12px 0;width:100%;}"
    "td,th{border:1px solid #ccc;padding:4px 10px;text-align:left;}"
    "th{background:#f4f4f4;}"
    "a{color:#1f77b4;text-decoration:none;}a:hover{text-decoration:underline;}"
    ".state{padding:1px 8px;border-radius:8px;color:#fff;font-size:12px;}"
    ".state-scheduled{background:#888;}.state-running{background:#1f77b4;}"
    ".state-finished{background:#2ca02c;}.state-failed{background:#d62728;}"
    ".state-aborted{background:#ff7f0e;}"
    ".bar{background:#eee;height:14px;width:220px;display:inline-block;}"
    ".bar>div{background:#1f77b4;height:14px;}"
    "pre{background:#f8f8f8;padding:8px;overflow-x:auto;}";

std::string Page(const std::string& title, const std::string& body) {
  return "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>" +
         HtmlEscape(title) + " - Chronos</title><style>" + kStyle +
         "</style></head>\n<body>\n<h1>" + HtmlEscape(title) + "</h1>\n" +
         body + "\n</body></html>\n";
}

std::string StateBadge(model::JobState state) {
  std::string name(model::JobStateName(state));
  return "<span class=\"state state-" + name + "\">" + name + "</span>";
}

std::string ProgressBar(int percent) {
  return "<span class=\"bar\"><div style=\"width:" +
         std::to_string(percent * 220 / 100) + "px\"></div></span> " +
         std::to_string(percent) + "%";
}

// Authenticates via ?token=; returns the user or replies 401.
using UiHandler =
    std::function<HttpResponse(const HttpRequest&, const model::User&,
                               const std::string& token_suffix)>;

net::HttpHandler WithUiAuth(ControlService* service, UiHandler handler) {
  return [service, handler = std::move(handler)](const HttpRequest& request) {
    auto params = request.QueryParams();
    std::string token =
        params.count("token") > 0 ? params.at("token") : std::string();
    auto user = service->Authenticate(token);
    if (!user.ok()) {
      return HttpResponse::Ok(
          Page("Chronos",
               "<p>Sign in via <code>POST /api/v1/auth/login</code> and open "
               "<code>/ui?token=&lt;token&gt;</code>.</p>"),
          "text/html");
    }
    return handler(request, *user, "?token=" + strings::UrlEncode(token));
  };
}

}  // namespace

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

void MountWebUi(net::Router* router, ControlService* service) {
  // --- Projects overview ---
  router->Get(
      "/ui",
      WithUiAuth(service, [service](const HttpRequest&,
                                    const model::User& user,
                                    const std::string& token) {
        std::string body =
            "<p>Signed in as <b>" + HtmlEscape(user.username) + "</b> (" +
            std::string(model::UserRoleName(user.role)) + ")</p>";
        body += "<table><tr><th>Project</th><th>Description</th>"
                "<th>Members</th><th>Status</th></tr>\n";
        for (const model::Project& project :
             service->ListProjects(user.id)) {
          body += "<tr><td><a href=\"/ui/projects/" + project.id + token +
                  "\">" + HtmlEscape(project.name) + "</a></td><td>" +
                  HtmlEscape(project.description) + "</td><td>" +
                  std::to_string(project.member_ids.size()) + "</td><td>" +
                  (project.archived ? "archived" : "active") + "</td></tr>\n";
        }
        body += "</table>";
        return HttpResponse::Ok(Page("Projects", body), "text/html");
      }));

  // --- Project page: experiments and their evaluations ---
  router->Get(
      "/ui/projects/{id}",
      WithUiAuth(service, [service](const HttpRequest& request,
                                    const model::User& user,
                                    const std::string& token) {
        auto project =
            service->GetProject(request.path_params.at("id"), user.id);
        if (!project.ok()) return HttpResponse::FromStatus(project.status());
        std::string body = "<p><a href=\"/ui" + token +
                           "\">&larr; projects</a></p>";
        for (const model::Experiment& experiment :
             service->ListExperiments(project->id)) {
          body += "<h2>" + HtmlEscape(experiment.name) + "</h2>";
          body += "<p>" + HtmlEscape(experiment.description) + "</p>";
          body += "<table><tr><th>Evaluation</th><th>Jobs</th>"
                  "<th>Progress</th></tr>\n";
          for (const model::Evaluation& evaluation :
               service->ListEvaluations(experiment.id)) {
            auto summary = service->Summarize(evaluation.id);
            if (!summary.ok()) continue;
            body += "<tr><td><a href=\"/ui/evaluations/" + evaluation.id +
                    token + "\">" + HtmlEscape(evaluation.name) +
                    "</a></td><td>" + std::to_string(summary->total_jobs) +
                    "</td><td>" +
                    ProgressBar(summary->overall_progress_percent) +
                    "</td></tr>\n";
          }
          body += "</table>";
        }
        return HttpResponse::Ok(Page("Project: " + project->name, body),
                                "text/html");
      }));

  // --- Evaluation page: job table + diagrams (Fig. 3b + 3d) ---
  router->Get(
      "/ui/evaluations/{id}",
      WithUiAuth(service, [service](const HttpRequest& request,
                                    const model::User&,
                                    const std::string& token) {
        const std::string& evaluation_id = request.path_params.at("id");
        auto summary = service->Summarize(evaluation_id);
        if (!summary.ok()) return HttpResponse::FromStatus(summary.status());

        std::string body =
            "<p>Overall progress: " +
            ProgressBar(summary->overall_progress_percent) + "</p>";
        body += "<table><tr><th>Job</th><th>State</th><th>Attempt</th>"
                "<th>Progress</th><th>Parameters</th></tr>\n";
        for (const model::Job& job : service->ListJobs(evaluation_id)) {
          body += "<tr><td><a href=\"/ui/jobs/" + job.id + token + "\">" +
                  job.id.substr(job.id.size() > 6 ? job.id.size() - 6 : 0) +
                  "</a></td><td>" + StateBadge(job.state) + "</td><td>" +
                  std::to_string(job.attempt) + "</td><td>" +
                  ProgressBar(job.progress_percent) + "</td><td><code>" +
                  HtmlEscape(model::AssignmentToJson(job.parameters).Dump()) +
                  "</code></td></tr>\n";
        }
        body += "</table>";

        // Result analysis inline (Fig. 3d).
        auto diagrams = service->EvaluationDiagrams(evaluation_id);
        if (diagrams.ok() && !diagrams->empty()) {
          body += "<h2>Result analysis</h2>";
          for (const analysis::DiagramData& diagram : *diagrams) {
            body += analysis::RenderSvg(diagram);
          }
        }
        return HttpResponse::Ok(
            Page("Evaluation: " + summary->evaluation.name, body),
            "text/html");
      }));

  // --- Job page: status, timeline, log (Fig. 3c) ---
  router->Get(
      "/ui/jobs/{id}",
      WithUiAuth(service, [service](const HttpRequest& request,
                                    const model::User&,
                                    const std::string& token) {
        auto job = service->GetJob(request.path_params.at("id"));
        if (!job.ok()) return HttpResponse::FromStatus(job.status());
        std::string body = "<p><a href=\"/ui/evaluations/" +
                           job->evaluation_id + token +
                           "\">&larr; evaluation</a></p>";
        body += "<p>State: " + StateBadge(job->state) +
                " &nbsp; Attempt: " + std::to_string(job->attempt) +
                " &nbsp; Progress: " + ProgressBar(job->progress_percent) +
                "</p>";
        if (!job->failure_reason.empty()) {
          body += "<p><b>Failure:</b> " + HtmlEscape(job->failure_reason) +
                  "</p>";
        }
        body += "<h2>Parameters</h2><pre>" +
                HtmlEscape(
                    model::AssignmentToJson(job->parameters).DumpPretty()) +
                "</pre>";

        body += "<h2>Timeline</h2><table><tr><th>Time</th><th>Kind</th>"
                "<th>Event</th></tr>\n";
        for (const model::JobEvent& event : service->JobEvents(job->id)) {
          if (event.kind == "log") continue;  // Shown below.
          body += "<tr><td>" + FormatTimestamp(event.timestamp_ms) +
                  "</td><td>" + HtmlEscape(event.kind) + "</td><td>" +
                  HtmlEscape(event.message) + "</td></tr>\n";
        }
        body += "</table>";

        std::string log = service->JobLog(job->id);
        if (!log.empty()) {
          body += "<h2>Log</h2><pre>" + HtmlEscape(log) + "</pre>";
        }
        auto result = service->GetResult(job->id);
        if (result.ok()) {
          body += "<h2>Result</h2><pre>" +
                  HtmlEscape(result->data.DumpPretty()) + "</pre>";
        }
        return HttpResponse::Ok(Page("Job detail", body), "text/html");
      }));
}

}  // namespace chronos::control
