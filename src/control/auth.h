#ifndef CHRONOS_CONTROL_AUTH_H_
#define CHRONOS_CONTROL_AUTH_H_

#include <map>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "model/entities.h"

namespace chronos::control {

// Salted password hashing (SHA-256, iterated). Chronos Control stores only
// (salt, hash).
std::string HashPassword(const std::string& password, const std::string& salt);
std::string GenerateSalt();
bool VerifyPassword(const std::string& password, const std::string& salt,
                    const std::string& hash);

// In-memory session tokens ("advanced session management" of the web UI).
// Tokens are opaque UUIDs handed out at login and carried in the X-Session
// header.
class SessionManager {
 public:
  explicit SessionManager(Clock* clock = SystemClock::Get(),
                          int64_t ttl_ms = 12 * 3600 * 1000)
      : clock_(clock), ttl_ms_(ttl_ms) {}

  // Creates a session for the user and returns the token.
  std::string CreateSession(const std::string& user_id);

  // Resolves a token to its user id; expired/unknown tokens fail with
  // Unauthenticated.
  StatusOr<std::string> Resolve(const std::string& token);

  Status Invalidate(const std::string& token);

  // Drops expired sessions; returns how many were removed.
  int Sweep();

  size_t active_sessions() const;

 private:
  struct Session {
    std::string user_id;
    TimestampMs expires_at;
  };

  Clock* clock_;
  int64_t ttl_ms_;
  mutable Mutex mu_;
  std::map<std::string, Session> sessions_ CHRONOS_GUARDED_BY(mu_);
};

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_AUTH_H_
