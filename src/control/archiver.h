#ifndef CHRONOS_CONTROL_ARCHIVER_H_
#define CHRONOS_CONTROL_ARCHIVER_H_

#include <string>

#include "common/statusor.h"
#include "control/control_service.h"

namespace chronos::control {

// Builds a self-contained ZIP archive of a project: its definition, all
// experiments, evaluations, jobs (with parameters and timelines), and every
// result (JSON inline, the result bundle as a nested zip entry). This is the
// paper's requirement (iv): "archiving the results of the evaluations as
// well as of all parameter settings which have led to these results".
StatusOr<std::string> BuildProjectArchive(ControlService* service,
                                          const std::string& project_id,
                                          const std::string& user_id);

// Restores (re-inserts) a previously exported archive into the metadata
// store under fresh "imported" ids — used to inspect archived evaluations.
// Returns the number of entities imported.
StatusOr<int> ImportProjectArchive(ControlService* service,
                                   const std::string& archive_bytes,
                                   const std::string& new_owner_id);

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_ARCHIVER_H_
