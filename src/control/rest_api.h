#ifndef CHRONOS_CONTROL_REST_API_H_
#define CHRONOS_CONTROL_REST_API_H_

#include <memory>
#include <string>

#include "control/control_service.h"
#include "control/heartbeat_monitor.h"
#include "control/provisioner.h"
#include "net/http.h"
#include "net/router.h"

namespace chronos::control {

// Mounts the versioned REST API onto a router. Both versions are served
// simultaneously ("the API is versioned. This allows new clients to use the
// newly developed features while other clients still use older versions"):
//
//   /api/v1/... — the stable contract (single-job agent poll).
//   /api/v2/... — adds one-round-trip agent polls that bundle the job with
//                 its experiment and system, and a batch log endpoint.
//
// Every route except /api/*/status, /api/*/auth/login and the metrics
// exposition (/metrics and /api/*/metrics) requires a valid X-Session token.
//
// When `monitor` is non-null, /api/*/status additionally reports the
// reliability sweep activity (heartbeat_sweeps, heartbeat_jobs_failed).
void MountRestApi(net::Router* router, ControlService* service,
                  HeartbeatMonitor* monitor = nullptr);

// Mounts the v2-only infrastructure-provisioning endpoints (§5 future work:
// automatic SuE set-up). Admin-only:
//   GET  /api/v2/provisioners
//   POST /api/v2/deployments/provision  {provisioner, system_id, name, spec}
//   POST /api/v2/deployments/{id}/teardown
void MountProvisioningApi(net::Router* router, ControlService* service,
                          ProvisioningManager* manager);

// A fully assembled Chronos Control server: HTTP listener + REST API +
// heartbeat monitor.
class ControlServer {
 public:
  ~ControlServer();

  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  // Serves `service` (not owned) on 127.0.0.1:port (0 = ephemeral). If
  // `provisioning` is non-null (not owned), the v2 provisioning endpoints
  // are mounted too.
  static StatusOr<std::unique_ptr<ControlServer>> Start(
      ControlService* service, int port, int64_t monitor_interval_ms = 2000,
      ProvisioningManager* provisioning = nullptr);

  // Same, with full heartbeat-monitor options (jittered sweep schedule).
  static StatusOr<std::unique_ptr<ControlServer>> Start(
      ControlService* service, int port,
      HeartbeatMonitorOptions monitor_options,
      ProvisioningManager* provisioning = nullptr);

  int port() const { return http_->port(); }
  void Stop();

 private:
  ControlServer(ControlService* service);

  std::unique_ptr<net::Router> router_;
  std::unique_ptr<net::HttpServer> http_;
  std::unique_ptr<HeartbeatMonitor> monitor_;
};

}  // namespace chronos::control

#endif  // CHRONOS_CONTROL_REST_API_H_
