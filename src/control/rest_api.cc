#include "control/rest_api.h"

#include "analysis/diagrams.h"
#include "common/strings.h"
#include "control/archiver.h"
#include "control/web_ui.h"
#include "fault/failpoint.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"

namespace chronos::control {

namespace {

using net::HttpRequest;
using net::HttpResponse;

template <typename T>
json::Json EntitiesToJson(const std::vector<T>& entities) {
  json::Json array = json::Json::MakeArray();
  for (const T& entity : entities) array.Append(entity.ToJson());
  return array;
}

// Wraps a handler with session authentication; the resolved user is passed
// through.
net::HttpHandler WithAuth(
    ControlService* service,
    std::function<HttpResponse(const HttpRequest&, const model::User&)>
        handler) {
  return [service, handler = std::move(handler)](const HttpRequest& request) {
    std::string token = request.headers.Get("X-Session");
    if (token.empty()) {
      return HttpResponse::Error(401, "missing X-Session header");
    }
    auto user = service->Authenticate(token);
    if (!user.ok()) return HttpResponse::FromStatus(user.status());
    return handler(request, *user);
  };
}

HttpResponse RequireAdmin(const model::User& user) {
  if (user.role != model::UserRole::kAdmin) {
    return HttpResponse::Error(403, "admin role required");
  }
  return HttpResponse();  // 200 sentinel, body unused.
}

// Prometheus text exposition of the process-wide registry. Unauthenticated
// like /status: scrapers and operators need it without a session.
// Renders a trace's spans, either as the native span-list JSON or — with
// ?format=chrome — as a Chrome trace_event file loadable in chrome://tracing
// or https://ui.perfetto.dev.
HttpResponse TraceResponse(const HttpRequest& request,
                           const std::string& trace_id,
                           const std::string& job_id) {
  std::vector<obs::SpanRecord> spans =
      obs::SpanCollector::Get()->ForTrace(trace_id);
  if (spans.empty()) {
    return HttpResponse::Error(404,
                               "no spans recorded for trace " + trace_id);
  }
  auto params = request.QueryParams();
  if (params.count("format") > 0 && params.at("format") == "chrome") {
    HttpResponse response;
    response.status_code = 200;
    response.headers.Set("Content-Type", "application/json");
    response.body = obs::RenderChromeTrace(spans);
    return response;
  }
  json::Json out = json::Json::MakeObject();
  out.Set("trace_id", trace_id);
  if (!job_id.empty()) out.Set("job_id", job_id);
  out.Set("spans", obs::SpansToJson(spans));
  return HttpResponse::Json(out);
}

HttpResponse MetricsExposition(const HttpRequest&) {
  HttpResponse response;
  response.status_code = 200;
  response.headers.Set("Content-Type",
                       "text/plain; version=0.0.4; charset=utf-8");
  response.body = obs::MetricsRegistry::Get()->RenderPrometheus();
  return response;
}

// Shared route set; `version` selects contract details (v2 additions).
void MountVersion(net::Router* router, ControlService* service,
                  HeartbeatMonitor* monitor, int version) {
  const std::string base = "/api/v" + std::to_string(version);

  // --- Unauthenticated ---

  router->Get(base + "/status",
              [service, monitor, version](const HttpRequest&) {
    json::Json body = json::Json::MakeObject();
    body.Set("service", "chronos-control");
    body.Set("api_version", static_cast<int64_t>(version));
    body.Set("users", service->db()->users().Count());
    body.Set("projects", service->db()->projects().Count());
    body.Set("systems", service->db()->systems().Count());
    body.Set("jobs", service->db()->jobs().Count());
    if (monitor != nullptr) {
      // Reliability activity at a glance, no metrics scrape needed.
      body.Set("heartbeat_sweeps", monitor->sweeps());
      body.Set("heartbeat_jobs_failed", monitor->jobs_failed());
    }
    // Lifecycle: whether the instance is draining, and what startup
    // reconciliation had to repair (empty actions after a clean shutdown).
    body.Set("draining", service->draining());
    body.Set("reconciliation", service->reconcile_report().ToJson());
    // Span collector health: volume since boot plus distinct traces
    // currently resident in the ring.
    obs::SpanCollector* collector = obs::SpanCollector::Get();
    json::Json spans = json::Json::MakeObject();
    spans.Set("recorded", static_cast<int64_t>(collector->recorded()));
    spans.Set("dropped", static_cast<int64_t>(collector->dropped()));
    spans.Set("active_traces",
              static_cast<int64_t>(collector->active_traces()));
    body.Set("spans", std::move(spans));
    return HttpResponse::Json(body);
  });

  router->Get(base + "/metrics", MetricsExposition);

  router->Post(base + "/auth/login", [service](const HttpRequest& request) {
    auto body = request.JsonBody();
    if (!body.ok()) return HttpResponse::FromStatus(body.status());
    auto token = service->Login(body->GetStringOr("username", ""),
                                body->GetStringOr("password", ""));
    if (!token.ok()) return HttpResponse::FromStatus(token.status());
    json::Json out = json::Json::MakeObject();
    out.Set("token", *token);
    return HttpResponse::Json(out);
  });

  // --- Sessions / users ---

  router->Post(base + "/auth/logout",
               WithAuth(service, [service](const HttpRequest& request,
                                           const model::User&) {
                 service->Logout(request.headers.Get("X-Session")).IgnoreError();
                 return HttpResponse::Json(json::Json::MakeObject());
               }));

  router->Get(base + "/whoami",
              WithAuth(service, [](const HttpRequest&,
                                   const model::User& user) {
                json::Json out = user.ToJson();
                // Never leak credentials material.
                out.as_object_mutable().erase("password_hash");
                out.as_object_mutable().erase("salt");
                return HttpResponse::Json(out);
              }));

  router->Post(
      base + "/users",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User& user) {
        HttpResponse guard = RequireAdmin(user);
        if (guard.status_code != 200) return guard;
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        auto role = model::ParseUserRole(body->GetStringOr("role", "member"));
        if (!role.ok()) return HttpResponse::FromStatus(role.status());
        auto created = service->CreateUser(body->GetStringOr("username", ""),
                                           body->GetStringOr("password", ""),
                                           *role);
        if (!created.ok()) return HttpResponse::FromStatus(created.status());
        json::Json out = created->ToJson();
        out.as_object_mutable().erase("password_hash");
        out.as_object_mutable().erase("salt");
        return HttpResponse::Json(out, 201);
      }));

  router->Get(base + "/users",
              WithAuth(service, [service](const HttpRequest&,
                                          const model::User& user) {
                HttpResponse guard = RequireAdmin(user);
                if (guard.status_code != 200) return guard;
                json::Json array = json::Json::MakeArray();
                for (const model::User& listed : service->ListUsers()) {
                  json::Json entry = listed.ToJson();
                  entry.as_object_mutable().erase("password_hash");
                  entry.as_object_mutable().erase("salt");
                  array.Append(std::move(entry));
                }
                return HttpResponse::Json(array);
              }));

  // --- Admin: fault injection ---
  //
  // Runtime control over the process-wide failpoint registry (DESIGN.md
  // §10). Admin-only: arming a failpoint is an operational act on par with
  // user management.

  router->Get(base + "/admin/failpoints",
              WithAuth(service, [](const HttpRequest&,
                                   const model::User& user) {
                HttpResponse guard = RequireAdmin(user);
                if (guard.status_code != 200) return guard;
                json::Json array = json::Json::MakeArray();
                for (const fault::PointInfo& info :
                     fault::FailPointRegistry::Get()->List()) {
                  json::Json entry = json::Json::MakeObject();
                  entry.Set("point", info.point);
                  entry.Set("spec", info.spec.ToString());
                  entry.Set("evaluations",
                            static_cast<int64_t>(info.evaluations));
                  entry.Set("triggers", static_cast<int64_t>(info.triggers));
                  array.Append(std::move(entry));
                }
                json::Json out = json::Json::MakeObject();
                out.Set("failpoints", std::move(array));
                return HttpResponse::Json(out);
              }));

  router->Post(
      base + "/admin/failpoints",
      WithAuth(service, [](const HttpRequest& request,
                           const model::User& user) {
        HttpResponse guard = RequireAdmin(user);
        if (guard.status_code != 200) return guard;
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        std::string point = body->GetStringOr("point", "");
        std::string spec = body->GetStringOr("spec", "");
        if (point.empty()) {
          return HttpResponse::Error(400, "missing 'point'");
        }
        fault::FailPointRegistry* registry = fault::FailPointRegistry::Get();
        json::Json out = json::Json::MakeObject();
        out.Set("point", point);
        if (spec == "clear") {
          registry->Clear(point);
          out.Set("spec", "cleared");
          return HttpResponse::Json(out);
        }
        Status status = registry->SetFromString(point, spec);
        if (!status.ok()) return HttpResponse::FromStatus(status);
        // Echo the canonical spec so callers see what was parsed.
        for (const fault::PointInfo& info : registry->List()) {
          if (info.point == point) out.Set("spec", info.spec.ToString());
        }
        return HttpResponse::Json(out);
      }));

  // --- Admin: lifecycle ---

  // Graceful drain: stop handing out jobs and ask the hosting process to
  // begin its orderly shutdown (finish in-flight requests, checkpoint,
  // exit 0). Admin-only; `chronosctl drain` calls this.
  router->Post(base + "/admin/drain",
               WithAuth(service, [service](const HttpRequest&,
                                           const model::User& user) {
                 HttpResponse guard = RequireAdmin(user);
                 if (guard.status_code != 200) return guard;
                 service->BeginDrain();
                 json::Json out = json::Json::MakeObject();
                 out.Set("draining", true);
                 return HttpResponse::Json(out);
               }));

  // --- Projects ---

  router->Post(
      base + "/projects",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User& user) {
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        auto created = service->CreateProject(
            body->GetStringOr("name", ""),
            body->GetStringOr("description", ""), user.id);
        if (!created.ok()) return HttpResponse::FromStatus(created.status());
        return HttpResponse::Json(created->ToJson(), 201);
      }));

  router->Get(base + "/projects",
              WithAuth(service, [service](const HttpRequest&,
                                          const model::User& user) {
                return HttpResponse::Json(
                    EntitiesToJson(service->ListProjects(user.id)));
              }));

  router->Get(base + "/projects/{id}",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User& user) {
                auto project = service->GetProject(
                    request.path_params.at("id"), user.id);
                if (!project.ok()) {
                  return HttpResponse::FromStatus(project.status());
                }
                return HttpResponse::Json(project->ToJson());
              }));

  router->Post(
      base + "/projects/{id}/members",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User& user) {
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        Status status = service->AddProjectMember(
            request.path_params.at("id"), user.id,
            body->GetStringOr("user_id", ""));
        if (!status.ok()) return HttpResponse::FromStatus(status);
        return HttpResponse::Json(json::Json::MakeObject());
      }));

  router->Post(base + "/projects/{id}/archive",
               WithAuth(service, [service](const HttpRequest& request,
                                           const model::User& user) {
                 Status status = service->SetProjectArchived(
                     request.path_params.at("id"), user.id, true);
                 if (!status.ok()) return HttpResponse::FromStatus(status);
                 return HttpResponse::Json(json::Json::MakeObject());
               }));

  router->Get(base + "/projects/{id}/export",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User& user) {
                auto archive = BuildProjectArchive(
                    service, request.path_params.at("id"), user.id);
                if (!archive.ok()) {
                  return HttpResponse::FromStatus(archive.status());
                }
                HttpResponse response;
                response.status_code = 200;
                response.headers.Set("Content-Type", "application/zip");
                response.body = std::move(archive).value();
                return response;
              }));

  // --- Systems ---

  router->Post(
      base + "/systems",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User& user) {
        HttpResponse guard = RequireAdmin(user);
        if (guard.status_code != 200) return guard;
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        if (!body->Has("id")) body->Set("id", std::string(""));
        // Accept systems without parameters/diagrams blocks.
        if (!body->Has("parameters")) body->Set("parameters", json::Array{});
        if (!body->Has("diagrams")) body->Set("diagrams", json::Array{});
        if (body->at("id").as_string().empty()) {
          body->Set("id", std::string("pending"));
        }
        auto system = model::System::FromJson(*body);
        if (!system.ok()) return HttpResponse::FromStatus(system.status());
        if (system->id == "pending") system->id.clear();
        auto created = service->RegisterSystem(std::move(system).value());
        if (!created.ok()) return HttpResponse::FromStatus(created.status());
        return HttpResponse::Json(created->ToJson(), 201);
      }));

  router->Get(base + "/systems",
              WithAuth(service, [service](const HttpRequest&,
                                          const model::User&) {
                return HttpResponse::Json(
                    EntitiesToJson(service->ListSystems()));
              }));

  router->Get(base + "/systems/{id}",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                auto system = service->GetSystem(request.path_params.at("id"));
                if (!system.ok()) {
                  return HttpResponse::FromStatus(system.status());
                }
                return HttpResponse::Json(system->ToJson());
              }));

  // --- Deployments ---

  router->Post(
      base + "/deployments",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User&) {
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        model::Deployment deployment;
        deployment.system_id = body->GetStringOr("system_id", "");
        deployment.name = body->GetStringOr("name", "");
        deployment.environment = body->GetStringOr("environment", "");
        deployment.version = body->GetStringOr("version", "");
        deployment.endpoint = body->GetStringOr("endpoint", "");
        deployment.active = body->GetBoolOr("active", true);
        auto created = service->CreateDeployment(std::move(deployment));
        if (!created.ok()) return HttpResponse::FromStatus(created.status());
        return HttpResponse::Json(created->ToJson(), 201);
      }));

  router->Get(base + "/deployments",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                auto params = request.QueryParams();
                std::string system_id = params.count("system_id") > 0
                                            ? params.at("system_id")
                                            : "";
                return HttpResponse::Json(
                    EntitiesToJson(service->ListDeployments(system_id)));
              }));

  router->Delete(base + "/deployments/{id}",
                 WithAuth(service, [service](const HttpRequest& request,
                                             const model::User&) {
                   Status status = service->DeleteDeployment(
                       request.path_params.at("id"));
                   if (!status.ok()) return HttpResponse::FromStatus(status);
                   return HttpResponse::Json(json::Json::MakeObject());
                 }));

  // --- Experiments ---

  router->Post(
      base + "/experiments",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User& user) {
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        std::vector<model::ParameterSetting> settings;
        for (const json::Json& setting_json :
             body->at("settings").as_array()) {
          auto setting = model::ParameterSetting::FromJson(setting_json);
          if (!setting.ok()) {
            return HttpResponse::FromStatus(setting.status());
          }
          settings.push_back(std::move(setting).value());
        }
        auto created = service->CreateExperiment(
            body->GetStringOr("project_id", ""), user.id,
            body->GetStringOr("system_id", ""), body->GetStringOr("name", ""),
            body->GetStringOr("description", ""), std::move(settings));
        if (!created.ok()) return HttpResponse::FromStatus(created.status());
        return HttpResponse::Json(created->ToJson(), 201);
      }));

  router->Get(base + "/experiments",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                auto params = request.QueryParams();
                std::string project_id = params.count("project_id") > 0
                                             ? params.at("project_id")
                                             : "";
                return HttpResponse::Json(
                    EntitiesToJson(service->ListExperiments(project_id)));
              }));

  router->Get(base + "/experiments/{id}",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                auto experiment =
                    service->GetExperiment(request.path_params.at("id"));
                if (!experiment.ok()) {
                  return HttpResponse::FromStatus(experiment.status());
                }
                return HttpResponse::Json(experiment->ToJson());
              }));

  router->Get(base + "/experiments/{id}/evaluations",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                return HttpResponse::Json(EntitiesToJson(
                    service->ListEvaluations(request.path_params.at("id"))));
              }));

  // --- Evaluations ---

  router->Post(
      base + "/evaluations",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User&) {
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        auto created = service->CreateEvaluation(
            body->GetStringOr("experiment_id", ""),
            body->GetStringOr("name", ""),
            static_cast<int>(body->GetIntOr("repetitions", 1)));
        if (!created.ok()) return HttpResponse::FromStatus(created.status());
        auto summary = service->Summarize(created->id);
        return HttpResponse::Json(
            summary.ok() ? summary->ToJson() : created->ToJson(), 201);
      }));

  router->Get(base + "/evaluations/{id}",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                auto summary =
                    service->Summarize(request.path_params.at("id"));
                if (!summary.ok()) {
                  return HttpResponse::FromStatus(summary.status());
                }
                return HttpResponse::Json(summary->ToJson());
              }));

  router->Get(
      base + "/evaluations/{id}/jobs",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User&) {
        auto params = request.QueryParams();
        std::optional<model::JobState> state;
        if (params.count("state") > 0) {
          auto parsed = model::ParseJobState(params.at("state"));
          if (!parsed.ok()) return HttpResponse::FromStatus(parsed.status());
          state = *parsed;
        }
        return HttpResponse::Json(EntitiesToJson(
            service->ListJobs(request.path_params.at("id"), state)));
      }));

  router->Get(base + "/evaluations/{id}/results",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                auto results =
                    service->CollectResults(request.path_params.at("id"));
                if (!results.ok()) {
                  return HttpResponse::FromStatus(results.status());
                }
                json::Json array = json::Json::MakeArray();
                for (const analysis::JobResult& result : *results) {
                  json::Json entry = json::Json::MakeObject();
                  entry.Set("parameters",
                            model::AssignmentToJson(result.parameters));
                  entry.Set("data", result.data);
                  array.Append(std::move(entry));
                }
                return HttpResponse::Json(array);
              }));

  router->Get(
      base + "/evaluations/{id}/diagrams",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User&) {
        auto diagrams =
            service->EvaluationDiagrams(request.path_params.at("id"));
        if (!diagrams.ok()) {
          return HttpResponse::FromStatus(diagrams.status());
        }
        json::Json array = json::Json::MakeArray();
        for (const analysis::DiagramData& diagram : *diagrams) {
          array.Append(diagram.ToJson());
        }
        return HttpResponse::Json(array);
      }));

  router->Get(
      base + "/evaluations/{id}/report",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User&) {
        const std::string& evaluation_id = request.path_params.at("id");
        auto diagrams = service->EvaluationDiagrams(evaluation_id);
        if (!diagrams.ok()) {
          return HttpResponse::FromStatus(diagrams.status());
        }
        auto evaluation = service->GetEvaluation(evaluation_id);
        std::string title = evaluation.ok() ? evaluation->name : "Evaluation";
        return HttpResponse::Ok(
            analysis::RenderHtmlReport(title, *diagrams), "text/html");
      }));

  // --- Jobs ---

  router->Get(base + "/jobs/{id}",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                auto job = service->GetJob(request.path_params.at("id"));
                if (!job.ok()) return HttpResponse::FromStatus(job.status());
                return HttpResponse::Json(job->ToJson());
              }));

  router->Post(base + "/jobs/{id}/abort",
               WithAuth(service, [service](const HttpRequest& request,
                                           const model::User&) {
                 Status status =
                     service->AbortJob(request.path_params.at("id"));
                 if (!status.ok()) return HttpResponse::FromStatus(status);
                 return HttpResponse::Json(json::Json::MakeObject());
               }));

  router->Post(base + "/jobs/{id}/reschedule",
               WithAuth(service, [service](const HttpRequest& request,
                                           const model::User&) {
                 Status status =
                     service->RescheduleJob(request.path_params.at("id"));
                 if (!status.ok()) return HttpResponse::FromStatus(status);
                 return HttpResponse::Json(json::Json::MakeObject());
               }));

  router->Get(base + "/jobs/{id}/events",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                return HttpResponse::Json(EntitiesToJson(
                    service->JobEvents(request.path_params.at("id"))));
              }));

  router->Get(base + "/jobs/{id}/log",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                return HttpResponse::Ok(
                    service->JobLog(request.path_params.at("id")));
              }));

  router->Get(base + "/jobs/{id}/result",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                auto result =
                    service->GetResult(request.path_params.at("id"));
                if (!result.ok()) {
                  return HttpResponse::FromStatus(result.status());
                }
                return HttpResponse::Json(result->ToJson());
              }));

  // --- Traces ---

  // The trace stitched for one job: its trace_id is stamped at claim time
  // and agent-side spans arrive piggybacked on agent posts, so this shows
  // both halves of the distributed timeline.
  router->Get(base + "/jobs/{id}/trace",
              WithAuth(service, [service](const HttpRequest& request,
                                          const model::User&) {
                const std::string& job_id = request.path_params.at("id");
                auto job = service->GetJob(job_id);
                if (!job.ok()) return HttpResponse::FromStatus(job.status());
                if (job->trace_id.empty()) {
                  return HttpResponse::Error(
                      404, "job " + job_id + " has no recorded trace");
                }
                return TraceResponse(request, job->trace_id, job_id);
              }));

  router->Get(base + "/traces/{trace_id}",
              WithAuth(service, [](const HttpRequest& request,
                                   const model::User&) {
                return TraceResponse(
                    request, request.path_params.at("trace_id"), "");
              }));

  // --- Agent endpoints ---

  router->Post(
      base + "/agent/poll",
      WithAuth(service, [service, version](const HttpRequest& request,
                                           const model::User&) {
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        // Agents piggyback locally recorded spans on their posts.
        if (body->Has("spans")) service->ImportSpans(body->at("spans"));
        auto job = service->PollJob(body->GetStringOr("deployment_id", ""));
        if (!job.ok()) return HttpResponse::FromStatus(job.status());
        json::Json out = json::Json::MakeObject();
        if (!job->has_value()) {
          out.Set("job", nullptr);
          return HttpResponse::Json(out);
        }
        out.Set("job", (*job)->ToJson());
        if (version >= 2) {
          // v2: bundle the experiment and system so the agent needs no
          // follow-up round trips.
          auto experiment = service->GetExperiment((*job)->experiment_id);
          if (experiment.ok()) out.Set("experiment", experiment->ToJson());
          auto system = service->GetSystem((*job)->system_id);
          if (system.ok()) out.Set("system", system->ToJson());
        }
        return HttpResponse::Json(out);
      }));

  router->Post(
      base + "/agent/jobs/{id}/progress",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User&) {
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        auto state = service->ReportProgress(
            request.path_params.at("id"),
            static_cast<int>(body->GetIntOr("percent", 0)),
            static_cast<int>(body->GetIntOr("attempt", 0)));
        if (!state.ok()) return HttpResponse::FromStatus(state.status());
        json::Json out = json::Json::MakeObject();
        out.Set("state", std::string(model::JobStateName(*state)));
        return HttpResponse::Json(out);
      }));

  router->Post(base + "/agent/jobs/{id}/heartbeat",
               WithAuth(service, [service](const HttpRequest& request,
                                           const model::User&) {
                 // Body is optional for backward compatibility.
                 auto body = request.JsonBody();
                 if (body.ok() && body->Has("spans")) {
                   service->ImportSpans(body->at("spans"));
                 }
                 int attempt = body.ok()
                                   ? static_cast<int>(
                                         body->GetIntOr("attempt", 0))
                                   : 0;
                 auto state =
                     service->Heartbeat(request.path_params.at("id"), attempt);
                 if (!state.ok()) {
                   return HttpResponse::FromStatus(state.status());
                 }
                 json::Json out = json::Json::MakeObject();
                 out.Set("state", std::string(model::JobStateName(*state)));
                 return HttpResponse::Json(out);
               }));

  router->Post(
      base + "/agent/jobs/{id}/log",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User&) {
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        std::vector<std::string> lines;
        for (const json::Json& line : body->at("lines").as_array()) {
          lines.push_back(line.as_string());
        }
        Status status =
            service->AppendLog(request.path_params.at("id"), lines);
        if (!status.ok()) return HttpResponse::FromStatus(status);
        return HttpResponse::Json(json::Json::MakeObject());
      }));

  router->Post(
      base + "/agent/jobs/{id}/result",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User&) {
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        if (body->Has("spans")) service->ImportSpans(body->at("spans"));
        Status status = service->UploadResult(
            request.path_params.at("id"), body->at("data"),
            body->GetStringOr("zip_base64", ""),
            body->GetStringOr("idempotency_key", ""));
        if (!status.ok()) return HttpResponse::FromStatus(status);
        return HttpResponse::Json(json::Json::MakeObject(), 201);
      }));

  router->Post(
      base + "/agent/jobs/{id}/fail",
      WithAuth(service, [service](const HttpRequest& request,
                                  const model::User&) {
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        if (body->Has("spans")) service->ImportSpans(body->at("spans"));
        Status status = service->FailJob(
            request.path_params.at("id"), body->GetStringOr("reason", ""),
            body->GetStringOr("idempotency_key", ""));
        if (!status.ok()) return HttpResponse::FromStatus(status);
        return HttpResponse::Json(json::Json::MakeObject());
      }));
}

}  // namespace

void MountRestApi(net::Router* router, ControlService* service,
                  HeartbeatMonitor* monitor) {
  MountVersion(router, service, monitor, 1);
  MountVersion(router, service, monitor, 2);
  // Conventional scrape path for Prometheus-style collectors.
  router->Get("/metrics", MetricsExposition);
}

void MountProvisioningApi(net::Router* router, ControlService* service,
                          ProvisioningManager* manager) {
  router->Get("/api/v2/provisioners",
              WithAuth(service, [manager](const HttpRequest&,
                                          const model::User&) {
                json::Json out = json::Json::MakeObject();
                json::Json names = json::Json::MakeArray();
                for (const std::string& name : manager->ProvisionerNames()) {
                  names.Append(name);
                }
                out.Set("provisioners", std::move(names));
                out.Set("active_deployments", manager->active_count());
                return HttpResponse::Json(out);
              }));

  router->Post(
      "/api/v2/deployments/provision",
      WithAuth(service, [manager](const HttpRequest& request,
                                  const model::User& user) {
        HttpResponse guard = RequireAdmin(user);
        if (guard.status_code != 200) return guard;
        auto body = request.JsonBody();
        if (!body.ok()) return HttpResponse::FromStatus(body.status());
        auto deployment = manager->ProvisionDeployment(
            body->GetStringOr("provisioner", ""),
            body->GetStringOr("system_id", ""),
            body->GetStringOr("name", ""), body->at("spec"));
        if (!deployment.ok()) {
          return HttpResponse::FromStatus(deployment.status());
        }
        return HttpResponse::Json(deployment->ToJson(), 201);
      }));

  router->Post(
      "/api/v2/deployments/{id}/teardown",
      WithAuth(service, [manager](const HttpRequest& request,
                                  const model::User& user) {
        HttpResponse guard = RequireAdmin(user);
        if (guard.status_code != 200) return guard;
        Status status =
            manager->TeardownDeployment(request.path_params.at("id"));
        if (!status.ok()) return HttpResponse::FromStatus(status);
        return HttpResponse::Json(json::Json::MakeObject());
      }));
}

ControlServer::ControlServer(ControlService*)
    : router_(std::make_unique<net::Router>()) {}

ControlServer::~ControlServer() { Stop(); }

StatusOr<std::unique_ptr<ControlServer>> ControlServer::Start(
    ControlService* service, int port, int64_t monitor_interval_ms,
    ProvisioningManager* provisioning) {
  return Start(service, port,
               HeartbeatMonitorOptions{monitor_interval_ms, 0.0, 0},
               provisioning);
}

StatusOr<std::unique_ptr<ControlServer>> ControlServer::Start(
    ControlService* service, int port, HeartbeatMonitorOptions monitor_options,
    ProvisioningManager* provisioning) {
  std::unique_ptr<ControlServer> server(new ControlServer(service));
  // Create (but don't start) the monitor first so /status can report it.
  server->monitor_ =
      std::make_unique<HeartbeatMonitor>(service, monitor_options);
  MountRestApi(server->router_.get(), service, server->monitor_.get());
  MountWebUi(server->router_.get(), service);
  if (provisioning != nullptr) {
    MountProvisioningApi(server->router_.get(), service, provisioning);
  }
  net::Router* router = server->router_.get();
  CHRONOS_ASSIGN_OR_RETURN(
      server->http_,
      net::HttpServer::Start(port, [router](const HttpRequest& request) {
        return router->Dispatch(request);
      }));
  server->monitor_->Start();
  return server;
}

void ControlServer::Stop() {
  if (monitor_ != nullptr) monitor_->Stop();
  if (http_ != nullptr) http_->Stop();
}

}  // namespace chronos::control
