#ifndef CHRONOS_MODEL_JOB_STATE_H_
#define CHRONOS_MODEL_JOB_STATE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "common/statusor.h"

namespace chronos::model {

// Job lifecycle exactly as defined in the paper (§2.1): "A job can be in one
// of the following states: scheduled, running, finished, aborted, or failed.
// Jobs which are in the status scheduled or running can be aborted and those
// which are failed can be re-scheduled."
enum class JobState {
  kScheduled,
  kRunning,
  kFinished,
  kAborted,
  kFailed,
};

std::string_view JobStateName(JobState state);
StatusOr<JobState> ParseJobState(std::string_view name);

// True iff `from -> to` is a legal transition:
//   scheduled -> running | aborted
//   running   -> finished | failed | aborted
//   failed    -> scheduled (reschedule)
bool IsValidTransition(JobState from, JobState to);

// Validates and describes an attempted transition.
Status CheckTransition(JobState from, JobState to);

// Terminal states cannot progress except failed -> scheduled.
bool IsTerminal(JobState state);

}  // namespace chronos::model

#endif  // CHRONOS_MODEL_JOB_STATE_H_
