#ifndef CHRONOS_MODEL_ENTITIES_H_
#define CHRONOS_MODEL_ENTITIES_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "json/json.h"
#include "model/job_state.h"
#include "model/parameter_space.h"

namespace chronos::model {

// The Chronos data model (§2.1): projects, experiments, evaluations, jobs,
// systems, and deployments, plus users and results. Every entity carries a
// UUID id and (de)serializes to the JSON row format of the TableStore.

enum class UserRole { kAdmin, kMember };
std::string_view UserRoleName(UserRole role);
StatusOr<UserRole> ParseUserRole(std::string_view name);

struct User {
  std::string id;
  std::string username;
  // Salted hash; never the clear-text password (see control/auth.h).
  std::string password_hash;
  std::string salt;
  UserRole role = UserRole::kMember;
  TimestampMs created_at = 0;

  json::Json ToJson() const;
  static StatusOr<User> FromJson(const json::Json& value);
};

// "A project is an organizational unit which groups experiments and allows
// multiple users to collaborate." Access permissions live at project level.
struct Project {
  std::string id;
  std::string name;
  std::string description;
  std::string owner_id;
  std::vector<std::string> member_ids;  // Includes the owner.
  bool archived = false;
  TimestampMs created_at = 0;

  bool HasMember(const std::string& user_id) const;

  json::Json ToJson() const;
  static StatusOr<Project> FromJson(const json::Json& value);
};

// Diagram types the result visualization supports (§2.2): bar, line, pie.
enum class DiagramType { kBar, kLine, kPie };
std::string_view DiagramTypeName(DiagramType type);
StatusOr<DiagramType> ParseDiagramType(std::string_view name);

// Declares how a system's results should be visualized.
struct DiagramDef {
  std::string name;
  DiagramType type = DiagramType::kLine;
  // Result-JSON field plotted on the x axis (a parameter name) and y axis
  // (a metric name); series are grouped by `group_by` (e.g. storage engine).
  std::string x_field;
  std::string y_field;
  std::string group_by;

  json::Json ToJson() const;
  static StatusOr<DiagramDef> FromJson(const json::Json& value);
};

// "A system is the internal representation of an SuE. For every SuE, it is
// defined which parameters the SuE expects, how the results are structured,
// and how they should be visualized."
struct System {
  std::string id;
  std::string name;
  std::string description;
  std::vector<ParameterDef> parameters;
  std::vector<DiagramDef> diagrams;

  const ParameterDef* FindParameter(const std::string& name) const;

  json::Json ToJson() const;
  static StatusOr<System> FromJson(const json::Json& value);
};

// "A deployment is an instance of an SuE in a specific environment." Multiple
// identical deployments parallelize an evaluation.
struct Deployment {
  std::string id;
  std::string system_id;
  std::string name;
  std::string environment;  // Free-form ("host-a", "docker", ...).
  std::string version;      // SuE version under test.
  std::string endpoint;     // host:port the evaluation client should target.
  bool active = true;

  json::Json ToJson() const;
  static StatusOr<Deployment> FromJson(const json::Json& value);
};

// "An experiment is the definition of an evaluation with all its parameters;
// when executed, it results in the creation of an evaluation."
struct Experiment {
  std::string id;
  std::string project_id;
  std::string system_id;
  std::string name;
  std::string description;
  std::vector<ParameterSetting> settings;
  bool archived = false;
  TimestampMs created_at = 0;

  json::Json ToJson() const;
  static StatusOr<Experiment> FromJson(const json::Json& value);
};

// "An evaluation is the run of an experiment and consists of one or multiple
// jobs."
struct Evaluation {
  std::string id;
  std::string experiment_id;
  std::string name;
  TimestampMs created_at = 0;

  json::Json ToJson() const;
  static StatusOr<Evaluation> FromJson(const json::Json& value);
};

// "A job is a subset of an evaluation, e.g., the run of a benchmark for a
// specific set of parameters and a given DB storage engine."
struct Job {
  std::string id;
  std::string evaluation_id;
  std::string experiment_id;
  std::string system_id;
  std::string deployment_id;  // Assigned when dispatched.
  JobState state = JobState::kScheduled;
  ParameterAssignment parameters;
  int progress_percent = 0;
  int attempt = 1;
  std::string failure_reason;
  // Idempotency key of the last applied terminal report ("<job_id>#<attempt>").
  // Deliberately NOT cleared on reschedule: a late retry of the old attempt's
  // terminal post must still be recognized as already applied.
  std::string terminal_key;
  // Trace id of the poll cycle that last claimed this job (stamped by
  // ControlService::PollJob); GET /jobs/{id}/trace resolves through it.
  // Kept across reschedules until the next claim overwrites it, so the last
  // attempt stays debuggable post-mortem.
  std::string trace_id;
  TimestampMs created_at = 0;
  TimestampMs started_at = 0;
  TimestampMs finished_at = 0;
  TimestampMs last_heartbeat_at = 0;

  json::Json ToJson() const;
  static StatusOr<Job> FromJson(const json::Json& value);
};

// "A result belongs to a job and consists of a JSON and a zip file."
struct Result {
  std::string id;
  std::string job_id;
  json::Json data;        // The analyzable JSON document.
  std::string zip_base64; // Raw zip bundle, base64 for row storage.
  // Per-attempt key sent by the agent; lets a retried upload (e.g. across a
  // Control restart) be detected instead of inserted twice.
  std::string idempotency_key;
  TimestampMs uploaded_at = 0;

  json::Json ToJson() const;
  static StatusOr<Result> FromJson(const json::Json& value);
};

// One timeline event attached to a job ("The timeline shows all events
// associated with this job").
struct JobEvent {
  std::string id;
  std::string job_id;
  // Monotonic sequence assigned by Chronos Control; orders events recorded
  // within the same millisecond.
  int64_t seq = 0;
  TimestampMs timestamp_ms = 0;
  std::string kind;  // "state", "progress", "log", "note"
  std::string message;

  json::Json ToJson() const;
  static StatusOr<JobEvent> FromJson(const json::Json& value);
};

}  // namespace chronos::model

#endif  // CHRONOS_MODEL_ENTITIES_H_
