#include "model/parameter_space.h"

#include <cmath>

namespace chronos::model {

std::string_view ParameterTypeName(ParameterType type) {
  switch (type) {
    case ParameterType::kBoolean:
      return "boolean";
    case ParameterType::kValue:
      return "value";
    case ParameterType::kCheckbox:
      return "checkbox";
    case ParameterType::kInterval:
      return "interval";
    case ParameterType::kRatio:
      return "ratio";
  }
  return "?";
}

StatusOr<ParameterType> ParseParameterType(std::string_view name) {
  if (name == "boolean") return ParameterType::kBoolean;
  if (name == "value") return ParameterType::kValue;
  if (name == "checkbox") return ParameterType::kCheckbox;
  if (name == "interval") return ParameterType::kInterval;
  if (name == "ratio") return ParameterType::kRatio;
  return Status::InvalidArgument("unknown parameter type: " +
                                 std::string(name));
}

json::Json ParameterDef::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("name", name);
  out.Set("type", std::string(ParameterTypeName(type)));
  out.Set("description", description);
  out.Set("default", default_value);
  json::Json opts = json::Json::MakeArray();
  for (const json::Json& option : options) opts.Append(option);
  out.Set("options", std::move(opts));
  out.Set("min", min);
  out.Set("max", max);
  out.Set("step", step);
  return out;
}

StatusOr<ParameterDef> ParameterDef::FromJson(const json::Json& value) {
  ParameterDef def;
  CHRONOS_ASSIGN_OR_RETURN(def.name, value.GetString("name"));
  CHRONOS_ASSIGN_OR_RETURN(std::string type_name, value.GetString("type"));
  CHRONOS_ASSIGN_OR_RETURN(def.type, ParseParameterType(type_name));
  def.description = value.GetStringOr("description", "");
  def.default_value = value.at("default");
  for (const json::Json& option : value.at("options").as_array()) {
    def.options.push_back(option);
  }
  def.min = value.GetDoubleOr("min", 0);
  def.max = value.GetDoubleOr("max", 0);
  def.step = value.GetDoubleOr("step", 1);
  return def;
}

json::Json ParameterSetting::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("name", name);
  out.Set("fixed", fixed);
  json::Json sweep_json = json::Json::MakeArray();
  for (const json::Json& v : sweep) sweep_json.Append(v);
  out.Set("sweep", std::move(sweep_json));
  return out;
}

StatusOr<ParameterSetting> ParameterSetting::FromJson(
    const json::Json& value) {
  ParameterSetting setting;
  CHRONOS_ASSIGN_OR_RETURN(setting.name, value.GetString("name"));
  setting.fixed = value.at("fixed");
  for (const json::Json& v : value.at("sweep").as_array()) {
    setting.sweep.push_back(v);
  }
  return setting;
}

namespace {

Status CheckValueAgainstType(const ParameterDef& def, const json::Json& v) {
  switch (def.type) {
    case ParameterType::kBoolean:
      if (!v.is_bool()) {
        return Status::InvalidArgument("parameter '" + def.name +
                                       "' expects a boolean");
      }
      return Status::Ok();
    case ParameterType::kInterval: {
      if (!v.is_number()) {
        return Status::InvalidArgument("parameter '" + def.name +
                                       "' expects a number");
      }
      double d = v.as_double();
      if (d < def.min || d > def.max) {
        return Status::InvalidArgument(
            "parameter '" + def.name + "' out of interval [" +
            std::to_string(def.min) + ", " + std::to_string(def.max) + "]");
      }
      return Status::Ok();
    }
    case ParameterType::kCheckbox:
    case ParameterType::kRatio: {
      if (def.options.empty()) return Status::Ok();
      for (const json::Json& option : def.options) {
        if (option == v) return Status::Ok();
      }
      return Status::InvalidArgument("parameter '" + def.name +
                                     "' value not among declared options");
    }
    case ParameterType::kValue:
      return Status::Ok();
  }
  return Status::Ok();
}

}  // namespace

Status ValidateSetting(const ParameterDef& def, const ParameterSetting& s) {
  if (def.name != s.name) {
    return Status::InvalidArgument("setting/definition name mismatch: " +
                                   def.name + " vs " + s.name);
  }
  if (s.IsSwept()) {
    for (const json::Json& v : s.sweep) {
      CHRONOS_RETURN_IF_ERROR(CheckValueAgainstType(def, v));
    }
    return Status::Ok();
  }
  return CheckValueAgainstType(def, s.fixed);
}

std::vector<json::Json> ExpandInterval(double min, double max, double step) {
  std::vector<json::Json> values;
  if (step <= 0 || max < min) return values;
  // Integral intervals stay integral so job parameters print cleanly.
  bool integral = std::floor(min) == min && std::floor(step) == step;
  for (double v = min; v <= max + 1e-9; v += step) {
    if (integral) {
      values.emplace_back(static_cast<int64_t>(std::llround(v)));
    } else {
      values.emplace_back(v);
    }
  }
  return values;
}

StatusOr<std::vector<ParameterAssignment>> ExpandParameterSpace(
    const std::vector<ParameterSetting>& settings) {
  // Guard against combinatorial explosion before allocating.
  uint64_t total = ParameterSpaceSize(settings);
  constexpr uint64_t kMaxJobs = 1000000;
  if (total > kMaxJobs) {
    return Status::ResourceExhausted(
        "parameter space expands to " + std::to_string(total) +
        " jobs (limit " + std::to_string(kMaxJobs) + ")");
  }

  std::vector<ParameterAssignment> assignments;
  assignments.emplace_back();  // Start with one empty assignment.
  for (const ParameterSetting& setting : settings) {
    if (!setting.IsSwept()) {
      for (ParameterAssignment& assignment : assignments) {
        assignment[setting.name] = setting.fixed;
      }
      continue;
    }
    std::vector<ParameterAssignment> expanded;
    expanded.reserve(assignments.size() * setting.sweep.size());
    for (const ParameterAssignment& assignment : assignments) {
      for (const json::Json& v : setting.sweep) {
        ParameterAssignment next = assignment;
        next[setting.name] = v;
        expanded.push_back(std::move(next));
      }
    }
    assignments = std::move(expanded);
  }
  return assignments;
}

uint64_t ParameterSpaceSize(const std::vector<ParameterSetting>& settings) {
  uint64_t total = 1;
  for (const ParameterSetting& setting : settings) {
    if (setting.IsSwept()) {
      total *= static_cast<uint64_t>(setting.sweep.size());
      if (total > (1ull << 40)) return total;  // Saturating enough.
    }
  }
  return total;
}

json::Json AssignmentToJson(const ParameterAssignment& assignment) {
  json::Json out = json::Json::MakeObject();
  for (const auto& [name, value] : assignment) out.Set(name, value);
  return out;
}

StatusOr<ParameterAssignment> AssignmentFromJson(const json::Json& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("assignment must be an object");
  }
  ParameterAssignment assignment;
  for (const auto& [name, v] : value.as_object()) assignment[name] = v;
  return assignment;
}

}  // namespace chronos::model
