#include "model/entities.h"

namespace chronos::model {

namespace {

json::Json StringsToJson(const std::vector<std::string>& values) {
  json::Json out = json::Json::MakeArray();
  for (const std::string& v : values) out.Append(v);
  return out;
}

std::vector<std::string> StringsFromJson(const json::Json& value) {
  std::vector<std::string> out;
  for (const json::Json& v : value.as_array()) out.push_back(v.as_string());
  return out;
}

}  // namespace

std::string_view UserRoleName(UserRole role) {
  return role == UserRole::kAdmin ? "admin" : "member";
}

StatusOr<UserRole> ParseUserRole(std::string_view name) {
  if (name == "admin") return UserRole::kAdmin;
  if (name == "member") return UserRole::kMember;
  return Status::InvalidArgument("unknown role: " + std::string(name));
}

json::Json User::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("id", id);
  out.Set("username", username);
  out.Set("password_hash", password_hash);
  out.Set("salt", salt);
  out.Set("role", std::string(UserRoleName(role)));
  out.Set("created_at", created_at);
  return out;
}

StatusOr<User> User::FromJson(const json::Json& value) {
  User user;
  CHRONOS_ASSIGN_OR_RETURN(user.id, value.GetString("id"));
  CHRONOS_ASSIGN_OR_RETURN(user.username, value.GetString("username"));
  user.password_hash = value.GetStringOr("password_hash", "");
  user.salt = value.GetStringOr("salt", "");
  CHRONOS_ASSIGN_OR_RETURN(std::string role_name, value.GetString("role"));
  CHRONOS_ASSIGN_OR_RETURN(user.role, ParseUserRole(role_name));
  user.created_at = value.GetIntOr("created_at", 0);
  return user;
}

bool Project::HasMember(const std::string& user_id) const {
  if (user_id == owner_id) return true;
  for (const std::string& member : member_ids) {
    if (member == user_id) return true;
  }
  return false;
}

json::Json Project::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("id", id);
  out.Set("name", name);
  out.Set("description", description);
  out.Set("owner_id", owner_id);
  out.Set("member_ids", StringsToJson(member_ids));
  out.Set("archived", archived);
  out.Set("created_at", created_at);
  return out;
}

StatusOr<Project> Project::FromJson(const json::Json& value) {
  Project project;
  CHRONOS_ASSIGN_OR_RETURN(project.id, value.GetString("id"));
  CHRONOS_ASSIGN_OR_RETURN(project.name, value.GetString("name"));
  project.description = value.GetStringOr("description", "");
  project.owner_id = value.GetStringOr("owner_id", "");
  project.member_ids = StringsFromJson(value.at("member_ids"));
  project.archived = value.GetBoolOr("archived", false);
  project.created_at = value.GetIntOr("created_at", 0);
  return project;
}

std::string_view DiagramTypeName(DiagramType type) {
  switch (type) {
    case DiagramType::kBar:
      return "bar";
    case DiagramType::kLine:
      return "line";
    case DiagramType::kPie:
      return "pie";
  }
  return "?";
}

StatusOr<DiagramType> ParseDiagramType(std::string_view name) {
  if (name == "bar") return DiagramType::kBar;
  if (name == "line") return DiagramType::kLine;
  if (name == "pie") return DiagramType::kPie;
  return Status::InvalidArgument("unknown diagram type: " + std::string(name));
}

json::Json DiagramDef::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("name", name);
  out.Set("type", std::string(DiagramTypeName(type)));
  out.Set("x_field", x_field);
  out.Set("y_field", y_field);
  out.Set("group_by", group_by);
  return out;
}

StatusOr<DiagramDef> DiagramDef::FromJson(const json::Json& value) {
  DiagramDef def;
  CHRONOS_ASSIGN_OR_RETURN(def.name, value.GetString("name"));
  CHRONOS_ASSIGN_OR_RETURN(std::string type_name, value.GetString("type"));
  CHRONOS_ASSIGN_OR_RETURN(def.type, ParseDiagramType(type_name));
  def.x_field = value.GetStringOr("x_field", "");
  def.y_field = value.GetStringOr("y_field", "");
  def.group_by = value.GetStringOr("group_by", "");
  return def;
}

const ParameterDef* System::FindParameter(const std::string& name) const {
  for (const ParameterDef& parameter : parameters) {
    if (parameter.name == name) return &parameter;
  }
  return nullptr;
}

json::Json System::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("id", id);
  out.Set("name", name);
  out.Set("description", description);
  json::Json params = json::Json::MakeArray();
  for (const ParameterDef& parameter : parameters) {
    params.Append(parameter.ToJson());
  }
  out.Set("parameters", std::move(params));
  json::Json diags = json::Json::MakeArray();
  for (const DiagramDef& diagram : diagrams) diags.Append(diagram.ToJson());
  out.Set("diagrams", std::move(diags));
  return out;
}

StatusOr<System> System::FromJson(const json::Json& value) {
  System system;
  CHRONOS_ASSIGN_OR_RETURN(system.id, value.GetString("id"));
  CHRONOS_ASSIGN_OR_RETURN(system.name, value.GetString("name"));
  system.description = value.GetStringOr("description", "");
  for (const json::Json& p : value.at("parameters").as_array()) {
    CHRONOS_ASSIGN_OR_RETURN(ParameterDef def, ParameterDef::FromJson(p));
    system.parameters.push_back(std::move(def));
  }
  for (const json::Json& d : value.at("diagrams").as_array()) {
    CHRONOS_ASSIGN_OR_RETURN(DiagramDef def, DiagramDef::FromJson(d));
    system.diagrams.push_back(std::move(def));
  }
  return system;
}

json::Json Deployment::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("id", id);
  out.Set("system_id", system_id);
  out.Set("name", name);
  out.Set("environment", environment);
  out.Set("version", version);
  out.Set("endpoint", endpoint);
  out.Set("active", active);
  return out;
}

StatusOr<Deployment> Deployment::FromJson(const json::Json& value) {
  Deployment deployment;
  CHRONOS_ASSIGN_OR_RETURN(deployment.id, value.GetString("id"));
  CHRONOS_ASSIGN_OR_RETURN(deployment.system_id, value.GetString("system_id"));
  deployment.name = value.GetStringOr("name", "");
  deployment.environment = value.GetStringOr("environment", "");
  deployment.version = value.GetStringOr("version", "");
  deployment.endpoint = value.GetStringOr("endpoint", "");
  deployment.active = value.GetBoolOr("active", true);
  return deployment;
}

json::Json Experiment::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("id", id);
  out.Set("project_id", project_id);
  out.Set("system_id", system_id);
  out.Set("name", name);
  out.Set("description", description);
  json::Json settings_json = json::Json::MakeArray();
  for (const ParameterSetting& setting : settings) {
    settings_json.Append(setting.ToJson());
  }
  out.Set("settings", std::move(settings_json));
  out.Set("archived", archived);
  out.Set("created_at", created_at);
  return out;
}

StatusOr<Experiment> Experiment::FromJson(const json::Json& value) {
  Experiment experiment;
  CHRONOS_ASSIGN_OR_RETURN(experiment.id, value.GetString("id"));
  CHRONOS_ASSIGN_OR_RETURN(experiment.project_id,
                           value.GetString("project_id"));
  CHRONOS_ASSIGN_OR_RETURN(experiment.system_id, value.GetString("system_id"));
  CHRONOS_ASSIGN_OR_RETURN(experiment.name, value.GetString("name"));
  experiment.description = value.GetStringOr("description", "");
  for (const json::Json& s : value.at("settings").as_array()) {
    CHRONOS_ASSIGN_OR_RETURN(ParameterSetting setting,
                             ParameterSetting::FromJson(s));
    experiment.settings.push_back(std::move(setting));
  }
  experiment.archived = value.GetBoolOr("archived", false);
  experiment.created_at = value.GetIntOr("created_at", 0);
  return experiment;
}

json::Json Evaluation::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("id", id);
  out.Set("experiment_id", experiment_id);
  out.Set("name", name);
  out.Set("created_at", created_at);
  return out;
}

StatusOr<Evaluation> Evaluation::FromJson(const json::Json& value) {
  Evaluation evaluation;
  CHRONOS_ASSIGN_OR_RETURN(evaluation.id, value.GetString("id"));
  CHRONOS_ASSIGN_OR_RETURN(evaluation.experiment_id,
                           value.GetString("experiment_id"));
  evaluation.name = value.GetStringOr("name", "");
  evaluation.created_at = value.GetIntOr("created_at", 0);
  return evaluation;
}

json::Json Job::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("id", id);
  out.Set("evaluation_id", evaluation_id);
  out.Set("experiment_id", experiment_id);
  out.Set("system_id", system_id);
  out.Set("deployment_id", deployment_id);
  out.Set("state", std::string(JobStateName(state)));
  out.Set("parameters", AssignmentToJson(parameters));
  out.Set("progress_percent", static_cast<int64_t>(progress_percent));
  out.Set("attempt", static_cast<int64_t>(attempt));
  out.Set("failure_reason", failure_reason);
  out.Set("terminal_key", terminal_key);
  out.Set("trace_id", trace_id);
  out.Set("created_at", created_at);
  out.Set("started_at", started_at);
  out.Set("finished_at", finished_at);
  out.Set("last_heartbeat_at", last_heartbeat_at);
  return out;
}

StatusOr<Job> Job::FromJson(const json::Json& value) {
  Job job;
  CHRONOS_ASSIGN_OR_RETURN(job.id, value.GetString("id"));
  CHRONOS_ASSIGN_OR_RETURN(job.evaluation_id, value.GetString("evaluation_id"));
  job.experiment_id = value.GetStringOr("experiment_id", "");
  job.system_id = value.GetStringOr("system_id", "");
  job.deployment_id = value.GetStringOr("deployment_id", "");
  CHRONOS_ASSIGN_OR_RETURN(std::string state_name, value.GetString("state"));
  CHRONOS_ASSIGN_OR_RETURN(job.state, ParseJobState(state_name));
  CHRONOS_ASSIGN_OR_RETURN(job.parameters,
                           AssignmentFromJson(value.at("parameters")));
  job.progress_percent = static_cast<int>(value.GetIntOr("progress_percent", 0));
  job.attempt = static_cast<int>(value.GetIntOr("attempt", 1));
  job.failure_reason = value.GetStringOr("failure_reason", "");
  job.terminal_key = value.GetStringOr("terminal_key", "");
  job.trace_id = value.GetStringOr("trace_id", "");
  job.created_at = value.GetIntOr("created_at", 0);
  job.started_at = value.GetIntOr("started_at", 0);
  job.finished_at = value.GetIntOr("finished_at", 0);
  job.last_heartbeat_at = value.GetIntOr("last_heartbeat_at", 0);
  return job;
}

json::Json Result::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("id", id);
  out.Set("job_id", job_id);
  out.Set("data", data);
  out.Set("zip_base64", zip_base64);
  out.Set("idempotency_key", idempotency_key);
  out.Set("uploaded_at", uploaded_at);
  return out;
}

StatusOr<Result> Result::FromJson(const json::Json& value) {
  Result result;
  CHRONOS_ASSIGN_OR_RETURN(result.id, value.GetString("id"));
  CHRONOS_ASSIGN_OR_RETURN(result.job_id, value.GetString("job_id"));
  result.data = value.at("data");
  result.zip_base64 = value.GetStringOr("zip_base64", "");
  result.idempotency_key = value.GetStringOr("idempotency_key", "");
  result.uploaded_at = value.GetIntOr("uploaded_at", 0);
  return result;
}

json::Json JobEvent::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("id", id);
  out.Set("job_id", job_id);
  out.Set("seq", seq);
  out.Set("timestamp_ms", timestamp_ms);
  out.Set("kind", kind);
  out.Set("message", message);
  return out;
}

StatusOr<JobEvent> JobEvent::FromJson(const json::Json& value) {
  JobEvent event;
  CHRONOS_ASSIGN_OR_RETURN(event.id, value.GetString("id"));
  CHRONOS_ASSIGN_OR_RETURN(event.job_id, value.GetString("job_id"));
  event.seq = value.GetIntOr("seq", 0);
  event.timestamp_ms = value.GetIntOr("timestamp_ms", 0);
  event.kind = value.GetStringOr("kind", "");
  event.message = value.GetStringOr("message", "");
  return event;
}

}  // namespace chronos::model
