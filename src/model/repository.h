#ifndef CHRONOS_MODEL_REPOSITORY_H_
#define CHRONOS_MODEL_REPOSITORY_H_

#include <memory>
#include <string>
#include <vector>

#include "model/entities.h"
#include "store/table_store.h"

namespace chronos::model {

// Typed CRUD access to one entity table backed by the TableStore. T must
// provide `std::string id`, `json::Json ToJson() const` and
// `static StatusOr<T> FromJson(const json::Json&)`.
template <typename T>
class Repository {
 public:
  Repository(store::TableStore* table_store, std::string table)
      : store_(table_store), table_(std::move(table)) {}

  Status Insert(const T& entity) {
    return store_->Insert(table_, entity.id, entity.ToJson());
  }

  Status Update(const T& entity) {
    return store_->Update(table_, entity.id, entity.ToJson());
  }

  // Optimistic update: read-modify-write with the row version captured by
  // GetWithVersion.
  Status UpdateIfVersion(const T& entity, int64_t expected_version) {
    return store_->Update(table_, entity.id, entity.ToJson(),
                          expected_version);
  }

  Status Delete(const std::string& id) { return store_->Delete(table_, id); }

  StatusOr<T> Get(const std::string& id) const {
    CHRONOS_ASSIGN_OR_RETURN(json::Json row, store_->Get(table_, id));
    return T::FromJson(row);
  }

  StatusOr<std::pair<T, int64_t>> GetWithVersion(const std::string& id) const {
    CHRONOS_ASSIGN_OR_RETURN(json::Json row, store_->Get(table_, id));
    CHRONOS_ASSIGN_OR_RETURN(T entity, T::FromJson(row));
    return std::make_pair(std::move(entity), row.GetIntOr("_version", 0));
  }

  bool Exists(const std::string& id) const {
    return store_->Exists(table_, id);
  }

  std::vector<T> All() const {
    std::vector<T> out;
    for (const json::Json& row : store_->Scan(table_)) {
      auto entity = T::FromJson(row);
      if (entity.ok()) out.push_back(std::move(entity).value());
    }
    return out;
  }

  std::vector<T> FindBy(const std::string& field,
                        const json::Json& value) const {
    std::vector<T> out;
    for (const json::Json& row : store_->FindBy(table_, field, value)) {
      auto entity = T::FromJson(row);
      if (entity.ok()) out.push_back(std::move(entity).value());
    }
    return out;
  }

  // Entities whose raw row satisfies `pred`.
  std::vector<T> FindIf(
      const std::function<bool(const json::Json&)>& pred) const {
    std::vector<T> out;
    for (const json::Json& row : store_->FindIf(table_, pred)) {
      auto entity = T::FromJson(row);
      if (entity.ok()) out.push_back(std::move(entity).value());
    }
    return out;
  }

  size_t Count() const { return store_->Count(table_); }

  const std::string& table() const { return table_; }

 private:
  store::TableStore* store_;
  std::string table_;
};

// All Chronos Control metadata repositories over one durable store — the
// MySQL-schema equivalent of the paper's Chronos Control database.
class MetaDb {
 public:
  // Opens (creating if needed) the metadata database in `dir`.
  static StatusOr<std::unique_ptr<MetaDb>> Open(
      const std::string& dir, store::TableStoreOptions options = {});

  Repository<User>& users() { return users_; }
  Repository<Project>& projects() { return projects_; }
  Repository<System>& systems() { return systems_; }
  Repository<Deployment>& deployments() { return deployments_; }
  Repository<Experiment>& experiments() { return experiments_; }
  Repository<Evaluation>& evaluations() { return evaluations_; }
  Repository<Job>& jobs() { return jobs_; }
  Repository<Result>& results() { return results_; }
  Repository<JobEvent>& job_events() { return job_events_; }

  store::TableStore* table_store() { return store_.get(); }

 private:
  explicit MetaDb(std::unique_ptr<store::TableStore> table_store);

  std::unique_ptr<store::TableStore> store_;
  Repository<User> users_;
  Repository<Project> projects_;
  Repository<System> systems_;
  Repository<Deployment> deployments_;
  Repository<Experiment> experiments_;
  Repository<Evaluation> evaluations_;
  Repository<Job> jobs_;
  Repository<Result> results_;
  Repository<JobEvent> job_events_;
};

}  // namespace chronos::model

#endif  // CHRONOS_MODEL_REPOSITORY_H_
