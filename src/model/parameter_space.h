#ifndef CHRONOS_MODEL_PARAMETER_SPACE_H_
#define CHRONOS_MODEL_PARAMETER_SPACE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "json/json.h"

namespace chronos::model {

// Parameter types supported by the Chronos web UI (§2.2): "Parameter types
// include Boolean, check box, and value types as well intervals and ratios."
enum class ParameterType {
  kBoolean,   // true/false; a sweep covers both.
  kValue,     // Free-form scalar with an optional list of candidate values.
  kCheckbox,  // Subset selection over declared options; sweep = one job per
              // selected option.
  kInterval,  // Numeric range [min, max] with step; sweep = each point.
  kRatio,     // e.g. read/update mixes; values like "95:5".
};

std::string_view ParameterTypeName(ParameterType type);
StatusOr<ParameterType> ParseParameterType(std::string_view name);

// How a system declares one of its parameters (stored with the System).
struct ParameterDef {
  std::string name;
  ParameterType type = ParameterType::kValue;
  std::string description;
  json::Json default_value;
  // Candidate options for kValue/kCheckbox/kRatio.
  std::vector<json::Json> options;
  // Bounds for kInterval.
  double min = 0;
  double max = 0;
  double step = 1;

  json::Json ToJson() const;
  static StatusOr<ParameterDef> FromJson(const json::Json& value);
};

// How an experiment pins or sweeps one parameter.
struct ParameterSetting {
  std::string name;
  // If `sweep` is empty the parameter is fixed to `fixed`; otherwise one job
  // is generated per sweep element (cartesian with the other swept params).
  json::Json fixed;
  std::vector<json::Json> sweep;

  bool IsSwept() const { return !sweep.empty(); }

  json::Json ToJson() const;
  static StatusOr<ParameterSetting> FromJson(const json::Json& value);
};

// One concrete assignment of every parameter (the job's configuration).
using ParameterAssignment = std::map<std::string, json::Json>;

// Validates a setting against its declaration (type conformance, interval
// bounds, checkbox options membership).
Status ValidateSetting(const ParameterDef& def, const ParameterSetting& s);

// Builds the sweep values for an interval definition: min, min+step, ... max.
std::vector<json::Json> ExpandInterval(double min, double max, double step);

// Expands experiment settings into the full cartesian product of concrete
// assignments — "the thorough evaluation of a complete evaluation space".
// Unswept parameters contribute their fixed value to every assignment.
// Order is deterministic: settings in the given order, sweep values in the
// given order, last setting varying fastest.
StatusOr<std::vector<ParameterAssignment>> ExpandParameterSpace(
    const std::vector<ParameterSetting>& settings);

// Total number of jobs ExpandParameterSpace would produce.
uint64_t ParameterSpaceSize(const std::vector<ParameterSetting>& settings);

json::Json AssignmentToJson(const ParameterAssignment& assignment);
StatusOr<ParameterAssignment> AssignmentFromJson(const json::Json& value);

}  // namespace chronos::model

#endif  // CHRONOS_MODEL_PARAMETER_SPACE_H_
