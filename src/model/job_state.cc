#include "model/job_state.h"

namespace chronos::model {

std::string_view JobStateName(JobState state) {
  switch (state) {
    case JobState::kScheduled:
      return "scheduled";
    case JobState::kRunning:
      return "running";
    case JobState::kFinished:
      return "finished";
    case JobState::kAborted:
      return "aborted";
    case JobState::kFailed:
      return "failed";
  }
  return "?";
}

StatusOr<JobState> ParseJobState(std::string_view name) {
  if (name == "scheduled") return JobState::kScheduled;
  if (name == "running") return JobState::kRunning;
  if (name == "finished") return JobState::kFinished;
  if (name == "aborted") return JobState::kAborted;
  if (name == "failed") return JobState::kFailed;
  return Status::InvalidArgument("unknown job state: " + std::string(name));
}

bool IsValidTransition(JobState from, JobState to) {
  switch (from) {
    case JobState::kScheduled:
      return to == JobState::kRunning || to == JobState::kAborted;
    case JobState::kRunning:
      return to == JobState::kFinished || to == JobState::kFailed ||
             to == JobState::kAborted;
    case JobState::kFailed:
      return to == JobState::kScheduled;  // Reschedule.
    case JobState::kFinished:
    case JobState::kAborted:
      return false;
  }
  return false;
}

Status CheckTransition(JobState from, JobState to) {
  if (IsValidTransition(from, to)) return Status::Ok();
  return Status::FailedPrecondition(
      "illegal job transition " + std::string(JobStateName(from)) + " -> " +
      std::string(JobStateName(to)));
}

bool IsTerminal(JobState state) {
  return state == JobState::kFinished || state == JobState::kAborted ||
         state == JobState::kFailed;
}

}  // namespace chronos::model
