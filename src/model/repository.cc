#include "model/repository.h"

namespace chronos::model {

MetaDb::MetaDb(std::unique_ptr<store::TableStore> table_store)
    : store_(std::move(table_store)),
      users_(store_.get(), "users"),
      projects_(store_.get(), "projects"),
      systems_(store_.get(), "systems"),
      deployments_(store_.get(), "deployments"),
      experiments_(store_.get(), "experiments"),
      evaluations_(store_.get(), "evaluations"),
      jobs_(store_.get(), "jobs"),
      results_(store_.get(), "results"),
      job_events_(store_.get(), "job_events") {}

StatusOr<std::unique_ptr<MetaDb>> MetaDb::Open(
    const std::string& dir, store::TableStoreOptions options) {
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<store::TableStore> table_store,
                           store::TableStore::Open(dir, options));
  return std::unique_ptr<MetaDb>(new MetaDb(std::move(table_store)));
}

}  // namespace chronos::model
