#include "workload/workload.h"

#include "common/strings.h"

namespace chronos::workload {

StatusOr<WorkloadSpec> WorkloadSpec::Preset(const std::string& name) {
  WorkloadSpec spec;
  if (name == "a") {
    spec.read_proportion = 0.5;
    spec.update_proportion = 0.5;
  } else if (name == "b") {
    spec.read_proportion = 0.95;
    spec.update_proportion = 0.05;
  } else if (name == "c") {
    spec.read_proportion = 1.0;
    spec.update_proportion = 0.0;
  } else if (name == "d") {
    spec.read_proportion = 0.95;
    spec.update_proportion = 0.0;
    spec.insert_proportion = 0.05;
    spec.distribution = DistributionKind::kLatest;
  } else if (name == "e") {
    spec.read_proportion = 0.0;
    spec.update_proportion = 0.0;
    spec.insert_proportion = 0.05;
    spec.scan_proportion = 0.95;
  } else if (name == "f") {
    // YCSB-F: half reads, half read-modify-write transactions.
    spec.read_proportion = 0.5;
    spec.update_proportion = 0.0;
    spec.rmw_proportion = 0.5;
  } else {
    return Status::InvalidArgument("unknown workload preset: " + name);
  }
  return spec;
}

Status WorkloadSpec::ApplyRatio(const std::string& ratio) {
  double read = 0, update = 0, insert = 0, scan = 0, rmw = 0;
  for (const std::string& part : strings::Split(ratio, ',', true)) {
    size_t colon = part.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("bad ratio component: " + part);
    }
    std::string op(strings::Trim(part.substr(0, colon)));
    double weight = 0;
    if (!strings::ParseDouble(strings::Trim(part.substr(colon + 1)),
                              &weight) ||
        weight < 0) {
      return Status::InvalidArgument("bad ratio weight in: " + part);
    }
    if (op == "read") {
      read = weight;
    } else if (op == "update") {
      update = weight;
    } else if (op == "insert") {
      insert = weight;
    } else if (op == "scan") {
      scan = weight;
    } else if (op == "rmw") {
      rmw = weight;
    } else {
      return Status::InvalidArgument("unknown ratio op: " + op);
    }
  }
  double total = read + update + insert + scan + rmw;
  if (total <= 0) return Status::InvalidArgument("ratio sums to zero");
  read_proportion = read / total;
  update_proportion = update / total;
  insert_proportion = insert / total;
  scan_proportion = scan / total;
  rmw_proportion = rmw / total;
  return Status::Ok();
}

json::Json WorkloadSpec::ToJson() const {
  json::Json out = json::Json::MakeObject();
  out.Set("record_count", record_count);
  out.Set("operation_count", operation_count);
  out.Set("read_proportion", read_proportion);
  out.Set("update_proportion", update_proportion);
  out.Set("insert_proportion", insert_proportion);
  out.Set("scan_proportion", scan_proportion);
  out.Set("rmw_proportion", rmw_proportion);
  out.Set("max_scan_length", max_scan_length);
  out.Set("field_count", static_cast<int64_t>(field_count));
  out.Set("field_length", static_cast<int64_t>(field_length));
  out.Set("distribution", std::string(DistributionKindName(distribution)));
  out.Set("seed", seed);
  return out;
}

StatusOr<WorkloadSpec> WorkloadSpec::FromJson(const json::Json& value) {
  WorkloadSpec spec;
  spec.record_count =
      static_cast<uint64_t>(value.GetIntOr("record_count", 1000));
  spec.operation_count =
      static_cast<uint64_t>(value.GetIntOr("operation_count", 10000));
  spec.read_proportion = value.GetDoubleOr("read_proportion", 0.95);
  spec.update_proportion = value.GetDoubleOr("update_proportion", 0.05);
  spec.insert_proportion = value.GetDoubleOr("insert_proportion", 0.0);
  spec.scan_proportion = value.GetDoubleOr("scan_proportion", 0.0);
  spec.rmw_proportion = value.GetDoubleOr("rmw_proportion", 0.0);
  spec.max_scan_length =
      static_cast<uint64_t>(value.GetIntOr("max_scan_length", 100));
  spec.field_count = static_cast<int>(value.GetIntOr("field_count", 10));
  spec.field_length = static_cast<int>(value.GetIntOr("field_length", 100));
  std::string dist = value.GetStringOr("distribution", "zipfian");
  CHRONOS_ASSIGN_OR_RETURN(spec.distribution, ParseDistributionKind(dist));
  spec.seed = static_cast<uint64_t>(value.GetIntOr("seed", 42));
  return spec;
}

std::string_view OpTypeName(OpType type) {
  switch (type) {
    case OpType::kRead:
      return "read";
    case OpType::kUpdate:
      return "update";
    case OpType::kInsert:
      return "insert";
    case OpType::kScan:
      return "scan";
    case OpType::kReadModifyWrite:
      return "rmw";
  }
  return "?";
}

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec,
                                     int thread_index)
    : spec_(spec),
      rng_(spec.seed * 7919 + static_cast<uint64_t>(thread_index) * 104729 +
           1),
      chooser_(MakeChooser(spec.distribution, spec.record_count)),
      insert_cursor_(spec.record_count) {
  double total = spec_.read_proportion + spec_.update_proportion +
                 spec_.insert_proportion + spec_.scan_proportion +
                 spec_.rmw_proportion;
  if (total <= 0) total = 1;
  read_cut_ = spec_.read_proportion / total;
  update_cut_ = read_cut_ + spec_.update_proportion / total;
  insert_cut_ = update_cut_ + spec_.insert_proportion / total;
  scan_cut_ = insert_cut_ + spec_.scan_proportion / total;
}

std::string WorkloadGenerator::KeyForIndex(uint64_t index) {
  return "user" + strings::PadNumber(index, 12);
}

std::vector<std::string> WorkloadGenerator::LoadKeys() const {
  std::vector<std::string> keys;
  keys.reserve(spec_.record_count);
  for (uint64_t i = 0; i < spec_.record_count; ++i) {
    keys.push_back(KeyForIndex(i));
  }
  return keys;
}

json::Json WorkloadGenerator::MakeDocument(const std::string& key) {
  json::Json doc = json::Json::MakeObject();
  doc.Set("_id", key);
  for (int f = 0; f < spec_.field_count; ++f) {
    std::string value;
    value.reserve(spec_.field_length);
    for (int i = 0; i < spec_.field_length; ++i) {
      value.push_back(static_cast<char>(' ' + rng_.NextUint64(95)));
    }
    doc.Set("field" + std::to_string(f), std::move(value));
  }
  return doc;
}

Operation WorkloadGenerator::NextOperation() {
  Operation op;
  double roll = rng_.NextDouble();
  if (roll < read_cut_) {
    op.type = OpType::kRead;
    op.key = KeyForIndex(chooser_->Next(&rng_));
  } else if (roll < update_cut_) {
    op.type = OpType::kUpdate;
    op.key = KeyForIndex(chooser_->Next(&rng_));
    op.document = MakeDocument(op.key);
  } else if (roll < insert_cut_) {
    op.type = OpType::kInsert;
    op.key = KeyForIndex(insert_cursor_++);
    chooser_->GrowTo(insert_cursor_);
    op.document = MakeDocument(op.key);
  } else if (roll < scan_cut_) {
    op.type = OpType::kScan;
    op.key = KeyForIndex(chooser_->Next(&rng_));
    op.scan_length = 1 + rng_.NextUint64(spec_.max_scan_length);
  } else {
    op.type = OpType::kReadModifyWrite;
    op.key = KeyForIndex(chooser_->Next(&rng_));
    op.document = MakeDocument(op.key);
  }
  return op;
}

}  // namespace chronos::workload
