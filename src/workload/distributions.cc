#include "workload/distributions.h"

#include <cmath>

namespace chronos::workload {

namespace {

// FNV-64 hash used to scatter scrambled-zipfian keys.
uint64_t FnvHash64(uint64_t value) {
  uint64_t hash = 0xCBF29CE484222325ull;
  for (int i = 0; i < 8; ++i) {
    hash ^= value & 0xFF;
    hash *= 0x100000001B3ull;
    value >>= 8;
  }
  return hash;
}

}  // namespace

ZipfianChooser::ZipfianChooser(uint64_t item_count, double theta)
    : item_count_(item_count), theta_(theta) {
  if (item_count_ == 0) item_count_ = 1;
  zeta2_ = ZetaStatic(2, theta_, 0, 0);
  zeta_n_ = ZetaStatic(item_count_, theta_, 0, 0);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1 - std::pow(2.0 / static_cast<double>(item_count_), 1 - theta_)) /
         (1 - zeta2_ / zeta_n_);
}

double ZipfianChooser::ZetaStatic(uint64_t n, double theta,
                                  double initial_sum, uint64_t from) {
  double sum = initial_sum;
  for (uint64_t i = from; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return sum;
}

uint64_t ZipfianChooser::Next(Rng* rng) {
  double u = rng->NextDouble();
  double uz = u * zeta_n_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t value = static_cast<uint64_t>(
      static_cast<double>(item_count_) *
      std::pow(eta_ * u - eta_ + 1, alpha_));
  return value >= item_count_ ? item_count_ - 1 : value;
}

void ZipfianChooser::GrowTo(uint64_t item_count) {
  if (item_count <= item_count_) return;
  zeta_n_ = ZetaStatic(item_count, theta_, zeta_n_, item_count_);
  item_count_ = item_count;
  eta_ = (1 - std::pow(2.0 / static_cast<double>(item_count_), 1 - theta_)) /
         (1 - zeta2_ / zeta_n_);
}

ScrambledZipfianChooser::ScrambledZipfianChooser(uint64_t item_count,
                                                 double theta)
    : item_count_(item_count == 0 ? 1 : item_count),
      zipfian_(item_count, theta) {}

uint64_t ScrambledZipfianChooser::Next(Rng* rng) {
  return FnvHash64(zipfian_.Next(rng)) % item_count_;
}

void ScrambledZipfianChooser::GrowTo(uint64_t item_count) {
  if (item_count <= item_count_) return;
  item_count_ = item_count;
  zipfian_.GrowTo(item_count);
}

LatestChooser::LatestChooser(uint64_t item_count, double theta)
    : item_count_(item_count == 0 ? 1 : item_count),
      zipfian_(item_count, theta) {}

uint64_t LatestChooser::Next(Rng* rng) {
  uint64_t offset = zipfian_.Next(rng);
  // Rank 0 = most recent insert.
  return offset >= item_count_ ? 0 : item_count_ - 1 - offset;
}

void LatestChooser::GrowTo(uint64_t item_count) {
  if (item_count <= item_count_) return;
  item_count_ = item_count;
  zipfian_.GrowTo(item_count);
}

HotSpotChooser::HotSpotChooser(uint64_t item_count, double hot_fraction,
                               double hot_op_fraction)
    : item_count_(item_count == 0 ? 1 : item_count),
      hot_fraction_(hot_fraction),
      hot_op_fraction_(hot_op_fraction) {}

uint64_t HotSpotChooser::Next(Rng* rng) {
  uint64_t hot_count = static_cast<uint64_t>(
      static_cast<double>(item_count_) * hot_fraction_);
  if (hot_count == 0) hot_count = 1;
  if (rng->NextDouble() < hot_op_fraction_) {
    return rng->NextUint64(hot_count);
  }
  if (hot_count >= item_count_) return rng->NextUint64(item_count_);
  return hot_count + rng->NextUint64(item_count_ - hot_count);
}

void HotSpotChooser::GrowTo(uint64_t item_count) {
  if (item_count > item_count_) item_count_ = item_count;
}

std::string_view DistributionKindName(DistributionKind kind) {
  switch (kind) {
    case DistributionKind::kUniform:
      return "uniform";
    case DistributionKind::kZipfian:
      return "zipfian";
    case DistributionKind::kScrambledZipfian:
      return "scrambled_zipfian";
    case DistributionKind::kLatest:
      return "latest";
    case DistributionKind::kHotSpot:
      return "hotspot";
  }
  return "?";
}

StatusOr<DistributionKind> ParseDistributionKind(std::string_view name) {
  if (name == "uniform") return DistributionKind::kUniform;
  if (name == "zipfian") return DistributionKind::kZipfian;
  if (name == "scrambled_zipfian") return DistributionKind::kScrambledZipfian;
  if (name == "latest") return DistributionKind::kLatest;
  if (name == "hotspot") return DistributionKind::kHotSpot;
  return Status::InvalidArgument("unknown distribution: " + std::string(name));
}

std::unique_ptr<KeyChooser> MakeChooser(DistributionKind kind,
                                        uint64_t item_count) {
  switch (kind) {
    case DistributionKind::kUniform:
      return std::make_unique<UniformChooser>(item_count);
    case DistributionKind::kZipfian:
      return std::make_unique<ZipfianChooser>(item_count);
    case DistributionKind::kScrambledZipfian:
      return std::make_unique<ScrambledZipfianChooser>(item_count);
    case DistributionKind::kLatest:
      return std::make_unique<LatestChooser>(item_count);
    case DistributionKind::kHotSpot:
      return std::make_unique<HotSpotChooser>(item_count, 0.2, 0.8);
  }
  return nullptr;
}

}  // namespace chronos::workload
