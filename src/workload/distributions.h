#ifndef CHRONOS_WORKLOAD_DISTRIBUTIONS_H_
#define CHRONOS_WORKLOAD_DISTRIBUTIONS_H_

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/random.h"
#include "common/statusor.h"

namespace chronos::workload {

// Key-choosing distributions in the YCSB tradition (Cooper et al., SoCC'10 —
// reference [4] of the paper). All generators return values in
// [0, item_count).
class KeyChooser {
 public:
  virtual ~KeyChooser() = default;
  virtual uint64_t Next(Rng* rng) = 0;
  // Informs the chooser that the key space grew (inserts).
  virtual void GrowTo(uint64_t item_count) = 0;
};

// Every key equally likely.
class UniformChooser : public KeyChooser {
 public:
  explicit UniformChooser(uint64_t item_count) : item_count_(item_count) {}
  uint64_t Next(Rng* rng) override { return rng->NextUint64(item_count_); }
  void GrowTo(uint64_t item_count) override { item_count_ = item_count; }

 private:
  uint64_t item_count_;
};

// Zipfian-distributed popularity (Gray et al.'s rejection-inversion-free
// algorithm, as used by YCSB). theta defaults to YCSB's 0.99.
class ZipfianChooser : public KeyChooser {
 public:
  explicit ZipfianChooser(uint64_t item_count, double theta = 0.99);
  uint64_t Next(Rng* rng) override;
  void GrowTo(uint64_t item_count) override;

 private:
  static double ZetaStatic(uint64_t n, double theta, double initial_sum,
                           uint64_t from);

  uint64_t item_count_;
  double theta_;
  double zeta_n_;
  double zeta2_;
  double alpha_;
  double eta_;
};

// Zipfian popularity but scattered over the key space (YCSB's
// "scrambled zipfian"): hot keys are spread instead of clustered at 0.
class ScrambledZipfianChooser : public KeyChooser {
 public:
  explicit ScrambledZipfianChooser(uint64_t item_count, double theta = 0.99);
  uint64_t Next(Rng* rng) override;
  void GrowTo(uint64_t item_count) override;

 private:
  uint64_t item_count_;
  ZipfianChooser zipfian_;
};

// Favors recently inserted keys (YCSB's "latest"): key = newest - zipf().
class LatestChooser : public KeyChooser {
 public:
  explicit LatestChooser(uint64_t item_count, double theta = 0.99);
  uint64_t Next(Rng* rng) override;
  void GrowTo(uint64_t item_count) override;

 private:
  uint64_t item_count_;
  ZipfianChooser zipfian_;
};

// A hot set of `hot_fraction` of the keys receives `hot_op_fraction` of the
// operations.
class HotSpotChooser : public KeyChooser {
 public:
  HotSpotChooser(uint64_t item_count, double hot_fraction,
                 double hot_op_fraction);
  uint64_t Next(Rng* rng) override;
  void GrowTo(uint64_t item_count) override;

 private:
  uint64_t item_count_;
  double hot_fraction_;
  double hot_op_fraction_;
};

enum class DistributionKind {
  kUniform,
  kZipfian,
  kScrambledZipfian,
  kLatest,
  kHotSpot,
};

std::string_view DistributionKindName(DistributionKind kind);
StatusOr<DistributionKind> ParseDistributionKind(std::string_view name);

std::unique_ptr<KeyChooser> MakeChooser(DistributionKind kind,
                                        uint64_t item_count);

}  // namespace chronos::workload

#endif  // CHRONOS_WORKLOAD_DISTRIBUTIONS_H_
