#ifndef CHRONOS_WORKLOAD_WORKLOAD_H_
#define CHRONOS_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "json/json.h"
#include "workload/distributions.h"

namespace chronos::workload {

// YCSB-style workload description: a keyed record population and a weighted
// operation mix over it. The MongoDB demo client (clients/mokka_client)
// executes these specs against a deployment.
struct WorkloadSpec {
  uint64_t record_count = 1000;     // Initial population.
  uint64_t operation_count = 10000; // Ops per run (per thread).
  // Operation mix; proportions are normalized (need not sum to 1).
  double read_proportion = 0.95;
  double update_proportion = 0.05;
  double insert_proportion = 0.0;
  double scan_proportion = 0.0;
  // Read-modify-write: read the document, then write it back modified
  // (YCSB workload F's defining operation).
  double rmw_proportion = 0.0;
  uint64_t max_scan_length = 100;
  // Document shape.
  int field_count = 10;
  int field_length = 100;
  DistributionKind distribution = DistributionKind::kZipfian;
  uint64_t seed = 42;

  // Named presets mirroring the YCSB core workloads:
  //   a: 50/50 read/update, zipfian     b: 95/5 read/update, zipfian
  //   c: read-only, zipfian             d: 95/5 read/insert, latest
  //   e: 95/5 scan/insert, zipfian      f: read-modify-write ~ 50/50
  static StatusOr<WorkloadSpec> Preset(const std::string& name);

  // Parses "read:95,update:5"-style ratio strings (the kRatio parameter
  // type), scaling the four proportions.
  Status ApplyRatio(const std::string& ratio);

  json::Json ToJson() const;
  static StatusOr<WorkloadSpec> FromJson(const json::Json& value);
};

enum class OpType { kRead, kUpdate, kInsert, kScan, kReadModifyWrite };
std::string_view OpTypeName(OpType type);

struct Operation {
  OpType type = OpType::kRead;
  std::string key;
  json::Json document;     // For insert/update.
  uint64_t scan_length = 0;  // For scan.
};

// Streams the operations of a WorkloadSpec. Deterministic for a given
// (spec.seed, thread_index) pair so runs are reproducible — a Chronos design
// goal ("archiving of all parameter settings which have led to the results").
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadSpec& spec, int thread_index = 0);

  // Keys for the load phase, "user000000000042"-style, hashed order.
  std::vector<std::string> LoadKeys() const;

  // A fresh random document per call.
  json::Json MakeDocument(const std::string& key);

  // The next transaction-phase operation.
  Operation NextOperation();

  static std::string KeyForIndex(uint64_t index);

 private:
  WorkloadSpec spec_;
  Rng rng_;
  std::unique_ptr<KeyChooser> chooser_;
  uint64_t insert_cursor_;  // Next unused key index for inserts.
  double read_cut_, update_cut_, insert_cut_, scan_cut_;
};

}  // namespace chronos::workload

#endif  // CHRONOS_WORKLOAD_WORKLOAD_H_
