#include "net/ftp.h"

#include "common/strings.h"

namespace chronos::net {

namespace {

// Formats a PASV reply "227 Entering Passive Mode (h1,h2,h3,h4,p1,p2)".
std::string PasvReply(int port) {
  return "227 Entering Passive Mode (127,0,0,1," + std::to_string(port / 256) +
         "," + std::to_string(port % 256) + ")\r\n";
}

// Extracts the data port from a PASV reply.
StatusOr<int> ParsePasvReply(const std::string& text) {
  size_t open = text.find('(');
  size_t close = text.find(')', open);
  if (open == std::string::npos || close == std::string::npos) {
    return Status::InvalidArgument("malformed PASV reply: " + text);
  }
  std::vector<std::string> parts = strings::Split(
      text.substr(open + 1, close - open - 1), ',', /*skip_empty=*/true);
  if (parts.size() != 6) {
    return Status::InvalidArgument("malformed PASV tuple: " + text);
  }
  uint64_t hi = 0, lo = 0;
  if (!strings::ParseUint64(strings::Trim(parts[4]), &hi) ||
      !strings::ParseUint64(strings::Trim(parts[5]), &lo)) {
    return Status::InvalidArgument("bad PASV port: " + text);
  }
  return static_cast<int>(hi * 256 + lo);
}

}  // namespace

FtpServer::FtpServer(std::unique_ptr<TcpListener> listener,
                     std::string username, std::string password)
    : listener_(std::move(listener)),
      username_(std::move(username)),
      password_(std::move(password)) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

FtpServer::~FtpServer() { Stop(); }

StatusOr<std::unique_ptr<FtpServer>> FtpServer::Start(int port,
                                                      std::string username,
                                                      std::string password) {
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<TcpListener> listener,
                           TcpListener::Listen(port));
  return std::unique_ptr<FtpServer>(new FtpServer(
      std::move(listener), std::move(username), std::move(password)));
}

void FtpServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& session : sessions_) {
    if (session.joinable()) session.join();
  }
}

std::map<std::string, std::string> FtpServer::Files() const {
  MutexLock lock(mu_);
  return files_;
}

StatusOr<std::string> FtpServer::GetFile(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return it->second;
}

size_t FtpServer::file_count() const {
  MutexLock lock(mu_);
  return files_.size();
}

void FtpServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_->Accept();
    if (!conn.ok()) break;
    std::shared_ptr<TcpConnection> shared(conn.value().release());
    sessions_.emplace_back([this, shared]() mutable {
      std::unique_ptr<TcpConnection> owned(
          new TcpConnection(std::move(*shared)));
      ServeControl(std::move(owned));
    });
  }
}

void FtpServer::ServeControl(std::unique_ptr<TcpConnection> conn) {
  conn->SetReadTimeoutMs(30000).IgnoreError();
  if (!conn->WriteAll("220 chronos-ftp ready\r\n").ok()) return;

  bool have_user = false;
  bool authenticated = false;
  std::unique_ptr<TcpListener> data_listener;

  while (!stopping_.load()) {
    auto line_or = conn->ReadLine(8192);
    if (!line_or.ok() || line_or->empty()) return;
    std::string line(strings::Trim(*line_or));
    size_t space = line.find(' ');
    std::string command = strings::ToUpper(
        space == std::string::npos ? line : line.substr(0, space));
    std::string argument =
        space == std::string::npos
            ? std::string()
            : std::string(strings::Trim(line.substr(space + 1)));

    if (command == "USER") {
      have_user = argument == username_;
      conn->WriteAll("331 password required\r\n").IgnoreError();
    } else if (command == "PASS") {
      authenticated = have_user && argument == password_;
      conn->WriteAll(authenticated ? "230 logged in\r\n"
                                   : "530 login incorrect\r\n")
          .IgnoreError();
    } else if (command == "QUIT") {
      conn->WriteAll("221 bye\r\n").IgnoreError();
      return;
    } else if (!authenticated) {
      conn->WriteAll("530 not logged in\r\n").IgnoreError();
    } else if (command == "TYPE") {
      conn->WriteAll("200 type set\r\n").IgnoreError();
    } else if (command == "PASV") {
      auto listener = TcpListener::Listen(0);
      if (!listener.ok()) {
        conn->WriteAll("425 cannot open data port\r\n").IgnoreError();
        continue;
      }
      data_listener = std::move(listener).value();
      conn->WriteAll(PasvReply(data_listener->port())).IgnoreError();
    } else if (command == "STOR" || command == "RETR" || command == "LIST") {
      if (data_listener == nullptr) {
        conn->WriteAll("425 use PASV first\r\n").IgnoreError();
        continue;
      }
      if (command == "RETR") {
        // Reject before opening the data channel so the client sees 550 as
        // the direct reply to RETR.
        MutexLock lock(mu_);
        if (files_.count(argument) == 0) {
          conn->WriteAll("550 no such file\r\n").IgnoreError();
          data_listener.reset();
          continue;
        }
      }
      conn->WriteAll("150 opening data connection\r\n").IgnoreError();
      auto data = data_listener->Accept();
      data_listener.reset();
      if (!data.ok()) {
        conn->WriteAll("425 data connection failed\r\n").IgnoreError();
        continue;
      }
      if (command == "STOR") {
        std::string contents;
        while (true) {
          auto chunk = (*data)->ReadSome();
          if (!chunk.ok() || chunk->empty()) break;
          contents += *chunk;
        }
        {
          MutexLock lock(mu_);
          files_[argument] = std::move(contents);
        }
        conn->WriteAll("226 transfer complete\r\n").IgnoreError();
      } else if (command == "RETR") {
        std::string contents;
        {
          MutexLock lock(mu_);
          auto it = files_.find(argument);
          if (it != files_.end()) contents = it->second;
        }
        (*data)->WriteAll(contents).IgnoreError();
        (*data)->Close();
        conn->WriteAll("226 transfer complete\r\n").IgnoreError();
      } else {  // LIST
        std::string listing;
        {
          MutexLock lock(mu_);
          for (const auto& [name, contents] : files_) {
            listing += name + "\r\n";
          }
        }
        (*data)->WriteAll(listing).IgnoreError();
        (*data)->Close();
        conn->WriteAll("226 transfer complete\r\n").IgnoreError();
      }
    } else if (command == "DELE") {
      MutexLock lock(mu_);
      if (files_.erase(argument) > 0) {
        conn->WriteAll("250 deleted\r\n").IgnoreError();
      } else {
        conn->WriteAll("550 no such file\r\n").IgnoreError();
      }
    } else {
      conn->WriteAll("502 command not implemented\r\n").IgnoreError();
    }
  }
}

FtpClient::~FtpClient() = default;

StatusOr<std::unique_ptr<FtpClient>> FtpClient::Connect(
    const std::string& host, int port, const std::string& username,
    const std::string& password) {
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<TcpConnection> conn,
                           TcpConnection::Connect(host, port));
  CHRONOS_RETURN_IF_ERROR(conn->SetReadTimeoutMs(10000));
  std::unique_ptr<FtpClient> client(new FtpClient(std::move(conn)));
  CHRONOS_ASSIGN_OR_RETURN(int code, client->ReadReply());
  if (code != 220) return Status::Unavailable("ftp: unexpected greeting");
  CHRONOS_RETURN_IF_ERROR(client->SendCommand("USER " + username));
  CHRONOS_ASSIGN_OR_RETURN(code, client->ReadReply());
  if (code != 331 && code != 230) {
    return Status::Unauthenticated("ftp: USER rejected");
  }
  CHRONOS_RETURN_IF_ERROR(client->SendCommand("PASS " + password));
  CHRONOS_ASSIGN_OR_RETURN(code, client->ReadReply());
  if (code != 230) return Status::Unauthenticated("ftp: login failed");
  return client;
}

StatusOr<int> FtpClient::ReadReply(std::string* text) {
  CHRONOS_ASSIGN_OR_RETURN(std::string line, control_->ReadLine(8192));
  if (line.size() < 3) return Status::IoError("ftp: short reply");
  uint64_t code = 0;
  if (!strings::ParseUint64(line.substr(0, 3), &code)) {
    return Status::IoError("ftp: malformed reply: " + line);
  }
  if (text != nullptr) *text = std::string(strings::Trim(line));
  return static_cast<int>(code);
}

Status FtpClient::SendCommand(const std::string& command) {
  return control_->WriteAll(command + "\r\n");
}

StatusOr<std::unique_ptr<TcpConnection>> FtpClient::OpenDataConnection() {
  CHRONOS_RETURN_IF_ERROR(SendCommand("PASV"));
  std::string text;
  CHRONOS_ASSIGN_OR_RETURN(int code, ReadReply(&text));
  if (code != 227) return Status::Unavailable("ftp: PASV failed: " + text);
  CHRONOS_ASSIGN_OR_RETURN(int port, ParsePasvReply(text));
  return TcpConnection::Connect("127.0.0.1", port);
}

Status FtpClient::Store(const std::string& name, std::string_view contents) {
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<TcpConnection> data,
                           OpenDataConnection());
  CHRONOS_RETURN_IF_ERROR(SendCommand("STOR " + name));
  CHRONOS_ASSIGN_OR_RETURN(int code, ReadReply());
  if (code != 150) return Status::Unavailable("ftp: STOR rejected");
  CHRONOS_RETURN_IF_ERROR(data->WriteAll(contents));
  data->Close();
  CHRONOS_ASSIGN_OR_RETURN(code, ReadReply());
  if (code != 226) return Status::IoError("ftp: transfer failed");
  return Status::Ok();
}

StatusOr<std::string> FtpClient::Retrieve(const std::string& name) {
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<TcpConnection> data,
                           OpenDataConnection());
  CHRONOS_RETURN_IF_ERROR(SendCommand("RETR " + name));
  CHRONOS_ASSIGN_OR_RETURN(int code, ReadReply());
  if (code == 550) return Status::NotFound("ftp: no such file: " + name);
  if (code != 150) return Status::Unavailable("ftp: RETR rejected");
  std::string contents;
  while (true) {
    auto chunk = data->ReadSome();
    if (!chunk.ok() || chunk->empty()) break;
    contents += *chunk;
  }
  CHRONOS_ASSIGN_OR_RETURN(code, ReadReply());
  if (code != 226) return Status::IoError("ftp: transfer failed");
  return contents;
}

StatusOr<std::vector<std::string>> FtpClient::List() {
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<TcpConnection> data,
                           OpenDataConnection());
  CHRONOS_RETURN_IF_ERROR(SendCommand("LIST"));
  CHRONOS_ASSIGN_OR_RETURN(int code, ReadReply());
  if (code != 150) return Status::Unavailable("ftp: LIST rejected");
  std::string listing;
  while (true) {
    auto chunk = data->ReadSome();
    if (!chunk.ok() || chunk->empty()) break;
    listing += *chunk;
  }
  CHRONOS_ASSIGN_OR_RETURN(code, ReadReply());
  if (code != 226) return Status::IoError("ftp: transfer failed");
  std::vector<std::string> names;
  for (const std::string& line : strings::Split(listing, '\n', true)) {
    std::string trimmed(strings::Trim(line));
    if (!trimmed.empty()) names.push_back(trimmed);
  }
  return names;
}

Status FtpClient::Delete(const std::string& name) {
  CHRONOS_RETURN_IF_ERROR(SendCommand("DELE " + name));
  CHRONOS_ASSIGN_OR_RETURN(int code, ReadReply());
  if (code == 550) return Status::NotFound("ftp: no such file: " + name);
  if (code != 250) return Status::IoError("ftp: DELE failed");
  return Status::Ok();
}

Status FtpClient::Quit() {
  CHRONOS_RETURN_IF_ERROR(SendCommand("QUIT"));
  ReadReply().IgnoreError();
  return Status::Ok();
}

}  // namespace chronos::net
