#ifndef CHRONOS_NET_TCP_H_
#define CHRONOS_NET_TCP_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/statusor.h"

namespace chronos::net {

// Owning wrapper around a connected TCP socket (POSIX fd). Move-only.
class TcpConnection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;
  TcpConnection(TcpConnection&& other) noexcept;
  TcpConnection& operator=(TcpConnection&& other) noexcept;

  // Connects to host:port ("127.0.0.1" or a hostname).
  static StatusOr<std::unique_ptr<TcpConnection>> Connect(
      const std::string& host, int port, int timeout_ms = 5000);

  // Writes the whole buffer or fails.
  Status WriteAll(std::string_view data);

  // Reads up to `max_bytes`; returns empty string on orderly EOF.
  StatusOr<std::string> ReadSome(size_t max_bytes = 64 * 1024);

  // Reads exactly `n` bytes; fails on premature EOF.
  StatusOr<std::string> ReadExactly(size_t n);

  // Reads until (and including) the delimiter or EOF/limit.
  StatusOr<std::string> ReadLine(size_t max_len = 64 * 1024);

  // Sets SO_RCVTIMEO so reads fail with DeadlineExceeded instead of hanging.
  Status SetReadTimeoutMs(int timeout_ms);

  void Close();
  bool closed() const { return fd_ < 0; }
  int fd() const { return fd_; }

 private:
  int fd_;
  std::string buffer_;  // Read-ahead buffer for ReadLine/ReadExactly.
};

// Listening socket bound to 127.0.0.1. Port 0 picks a free port.
class TcpListener {
 public:
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  static StatusOr<std::unique_ptr<TcpListener>> Listen(int port);

  // Blocks until a client connects or the listener is closed (Unavailable).
  StatusOr<std::unique_ptr<TcpConnection>> Accept();

  // Unblocks pending Accept calls.
  void Close();

  int port() const { return port_; }

 private:
  TcpListener(int fd, int port) : fd_(fd), port_(port) {}

  // Atomic: Close() is called from a different thread than the one blocked
  // in Accept(), precisely to unblock it.
  std::atomic<int> fd_;
  int port_;
};

}  // namespace chronos::net

#endif  // CHRONOS_NET_TCP_H_
