#include "net/http.h"

#include "common/logging.h"
#include "common/strings.h"
#include "fault/failpoint.h"

namespace chronos::net {

namespace {

constexpr size_t kMaxHeaderBytes = 64 * 1024;

// Reads the "METHOD /path HTTP/1.1" or "HTTP/1.1 200 OK" start line plus
// headers; leaves the body unread.
Status ReadHeaderBlock(TcpConnection* conn, std::string* start_line,
                       HeaderMap* headers) {
  CHRONOS_ASSIGN_OR_RETURN(std::string line, conn->ReadLine(kMaxHeaderBytes));
  if (line.empty()) return Status::Unavailable("connection closed");
  *start_line = std::string(strings::Trim(line));
  if (start_line->empty()) return Status::InvalidArgument("empty start line");

  size_t total = line.size();
  while (true) {
    CHRONOS_ASSIGN_OR_RETURN(line, conn->ReadLine(kMaxHeaderBytes));
    total += line.size();
    if (total > kMaxHeaderBytes) {
      return Status::InvalidArgument("header block too large");
    }
    std::string_view trimmed = strings::Trim(line);
    if (trimmed.empty()) {
      if (line.empty()) return Status::IoError("connection closed in headers");
      return Status::Ok();  // Blank line terminates headers.
    }
    size_t colon = trimmed.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed header line");
    }
    headers->Set(strings::Trim(trimmed.substr(0, colon)),
                 strings::Trim(trimmed.substr(colon + 1)));
  }
}

StatusOr<std::string> ReadBody(TcpConnection* conn, const HeaderMap& headers,
                               size_t max_body) {
  std::string length_str = headers.Get("Content-Length");
  if (length_str.empty()) return std::string();
  uint64_t length = 0;
  if (!strings::ParseUint64(length_str, &length)) {
    return Status::InvalidArgument("bad Content-Length");
  }
  if (length > max_body) {
    return Status::ResourceExhausted("body exceeds limit");
  }
  return conn->ReadExactly(length);
}

}  // namespace

void HeaderMap::Set(std::string_view name, std::string_view value) {
  entries_[strings::ToLower(name)] = std::string(value);
}

std::string HeaderMap::Get(std::string_view name) const {
  auto it = entries_.find(strings::ToLower(name));
  return it == entries_.end() ? std::string() : it->second;
}

bool HeaderMap::Has(std::string_view name) const {
  return entries_.count(strings::ToLower(name)) > 0;
}

std::map<std::string, std::string> HttpRequest::QueryParams() const {
  std::map<std::string, std::string> params;
  for (const std::string& pair : strings::Split(query, '&', true)) {
    size_t eq = pair.find('=');
    std::string key, value;
    if (eq == std::string::npos) {
      strings::UrlDecode(pair, &key);
    } else {
      strings::UrlDecode(pair.substr(0, eq), &key);
      strings::UrlDecode(pair.substr(eq + 1), &value);
    }
    if (!key.empty()) params[key] = value;
  }
  return params;
}

StatusOr<json::Json> HttpRequest::JsonBody() const {
  if (body.empty()) return Status::InvalidArgument("empty request body");
  return json::Parse(body);
}

std::string_view HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpResponse HttpResponse::Ok(std::string body, std::string content_type) {
  HttpResponse response;
  response.status_code = 200;
  response.headers.Set("Content-Type", content_type);
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Json(const json::Json& value, int status_code) {
  HttpResponse response;
  response.status_code = status_code;
  response.headers.Set("Content-Type", "application/json");
  response.body = value.Dump();
  return response;
}

HttpResponse HttpResponse::Error(int status_code, const std::string& message) {
  json::Json body = json::Json::MakeObject();
  body.Set("error", message);
  body.Set("status", status_code);
  return Json(body, status_code);
}

HttpResponse HttpResponse::FromStatus(const Status& status) {
  int code = 500;
  switch (status.code()) {
    case StatusCode::kInvalidArgument: code = 400; break;
    case StatusCode::kUnauthenticated: code = 401; break;
    case StatusCode::kPermissionDenied: code = 403; break;
    case StatusCode::kNotFound: code = 404; break;
    case StatusCode::kAlreadyExists: code = 409; break;
    case StatusCode::kFailedPrecondition: code = 412; break;
    case StatusCode::kResourceExhausted: code = 429; break;
    case StatusCode::kUnavailable: code = 503; break;
    case StatusCode::kUnimplemented: code = 501; break;
    default: code = 500; break;
  }
  return Error(code, status.ToString());
}

std::string SerializeRequest(const HttpRequest& request) {
  std::string out = request.method + " " + request.path;
  if (!request.query.empty()) out += "?" + request.query;
  out += " HTTP/1.1\r\n";
  bool has_length = false;
  for (const auto& [name, value] : request.headers.entries()) {
    out += name + ": " + value + "\r\n";
    if (strings::EqualsIgnoreCase(name, "content-length")) has_length = true;
  }
  if (!has_length) {
    out += "content-length: " + std::to_string(request.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += request.body;
  return out;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status_code) + " " +
                    std::string(HttpStatusText(response.status_code)) +
                    "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : response.headers.entries()) {
    out += name + ": " + value + "\r\n";
    if (strings::EqualsIgnoreCase(name, "content-length")) has_length = true;
  }
  if (!has_length) {
    out += "content-length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

StatusOr<HttpRequest> ReadRequest(TcpConnection* conn, size_t max_body) {
  std::string start_line;
  HttpRequest request;
  CHRONOS_RETURN_IF_ERROR(ReadHeaderBlock(conn, &start_line, &request.headers));

  std::vector<std::string> parts = strings::Split(start_line, ' ', true);
  if (parts.size() != 3 || !strings::StartsWith(parts[2], "HTTP/")) {
    return Status::InvalidArgument("malformed request line: " + start_line);
  }
  request.method = strings::ToUpper(parts[0]);
  for (char c : request.method) {
    if (c < 'A' || c > 'Z') {
      return Status::InvalidArgument("malformed method: " + parts[0]);
    }
  }
  std::string target = parts[1];
  size_t qmark = target.find('?');
  std::string raw_path =
      qmark == std::string::npos ? target : target.substr(0, qmark);
  if (qmark != std::string::npos) request.query = target.substr(qmark + 1);
  if (!strings::UrlDecode(raw_path, &request.path)) {
    return Status::InvalidArgument("malformed path encoding");
  }
  CHRONOS_ASSIGN_OR_RETURN(request.body,
                           ReadBody(conn, request.headers, max_body));
  return request;
}

StatusOr<HttpResponse> ReadResponse(TcpConnection* conn, size_t max_body) {
  std::string start_line;
  HttpResponse response;
  CHRONOS_RETURN_IF_ERROR(
      ReadHeaderBlock(conn, &start_line, &response.headers));

  std::vector<std::string> parts = strings::Split(start_line, ' ', true);
  if (parts.size() < 2 || !strings::StartsWith(parts[0], "HTTP/")) {
    return Status::InvalidArgument("malformed status line: " + start_line);
  }
  uint64_t code = 0;
  if (!strings::ParseUint64(parts[1], &code) || code < 100 || code > 599) {
    return Status::InvalidArgument("bad status code");
  }
  response.status_code = static_cast<int>(code);
  CHRONOS_ASSIGN_OR_RETURN(response.body,
                           ReadBody(conn, response.headers, max_body));
  return response;
}

HttpServer::HttpServer(std::unique_ptr<TcpListener> listener,
                       HttpHandler handler, int num_workers)
    : listener_(std::move(listener)),
      handler_(std::move(handler)),
      workers_(std::make_unique<ThreadPool>(num_workers)) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

HttpServer::~HttpServer() { Stop(); }

StatusOr<std::unique_ptr<HttpServer>> HttpServer::Start(int port,
                                                        HttpHandler handler,
                                                        int num_workers) {
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<TcpListener> listener,
                           TcpListener::Listen(port));
  return std::unique_ptr<HttpServer>(
      new HttpServer(std::move(listener), std::move(handler), num_workers));
}

void HttpServer::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  workers_->Shutdown();
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    auto conn = listener_->Accept();
    if (!conn.ok()) break;  // Listener closed or fatal error.
    // Hand the connection to the pool; keep-alive is served inline there.
    std::shared_ptr<TcpConnection> shared(conn.value().release());
    workers_->Submit([this, shared]() mutable {
      std::unique_ptr<TcpConnection> owned(
          new TcpConnection(std::move(*shared)));
      ServeConnection(std::move(owned));
    });
  }
}

void HttpServer::ServeConnection(std::unique_ptr<TcpConnection> conn) {
  conn->SetReadTimeoutMs(30000).IgnoreError();
  while (!stopping_.load()) {
    auto request = ReadRequest(conn.get());
    if (!request.ok()) {
      // Send a 400 for parse errors on a live connection; just close on EOF.
      if (request.status().IsInvalidArgument()) {
        HttpResponse response =
            HttpResponse::Error(400, request.status().ToString());
        response.headers.Set("Connection", "close");
        conn->WriteAll(SerializeResponse(response)).IgnoreError();
      }
      return;
    }
    HttpResponse response = handler_(*request);
    bool close = strings::EqualsIgnoreCase(
        request->headers.Get("Connection"), "close");
    response.headers.Set("Connection", close ? "close" : "keep-alive");
    if (!conn->WriteAll(SerializeResponse(response)).ok()) return;
    if (close) return;
  }
}

StatusOr<HttpResponse> HttpClient::Get(const std::string& path) {
  HttpRequest request;
  request.method = "GET";
  request.path = path;
  return Send(std::move(request));
}

StatusOr<HttpResponse> HttpClient::Post(const std::string& path,
                                        std::string body,
                                        std::string content_type) {
  HttpRequest request;
  request.method = "POST";
  request.path = path;
  request.body = std::move(body);
  request.headers.Set("Content-Type", content_type);
  return Send(std::move(request));
}

StatusOr<HttpResponse> HttpClient::Put(const std::string& path,
                                       std::string body,
                                       std::string content_type) {
  HttpRequest request;
  request.method = "PUT";
  request.path = path;
  request.body = std::move(body);
  request.headers.Set("Content-Type", content_type);
  return Send(std::move(request));
}

StatusOr<HttpResponse> HttpClient::Delete(const std::string& path) {
  HttpRequest request;
  request.method = "DELETE";
  request.path = path;
  return Send(std::move(request));
}

StatusOr<HttpResponse> HttpClient::Send(HttpRequest request) {
  if (!failpoint_.empty()) {
    fault::Action fault =
        fault::FailPointRegistry::Get()->Evaluate(failpoint_);
    if (fault.kind != fault::Action::Kind::kNone) {
      // No connection exists yet at request granularity; kClose and kError
      // both surface as a failed request.
      return fault.status;
    }
  }
  // Split path?query if the caller passed a combined target.
  size_t qmark = request.path.find('?');
  if (qmark != std::string::npos && request.query.empty()) {
    request.query = request.path.substr(qmark + 1);
    request.path = request.path.substr(0, qmark);
  }
  request.headers.Set("Host", host_ + ":" + std::to_string(port_));
  request.headers.Set("Connection", "close");
  for (const auto& [name, value] : default_headers_) {
    request.headers.Set(name, value);
  }
  CHRONOS_ASSIGN_OR_RETURN(std::unique_ptr<TcpConnection> conn,
                           TcpConnection::Connect(host_, port_));
  CHRONOS_RETURN_IF_ERROR(conn->SetReadTimeoutMs(30000));
  CHRONOS_RETURN_IF_ERROR(conn->WriteAll(SerializeRequest(request)));
  return ReadResponse(conn.get());
}

void HttpClient::SetDefaultHeader(const std::string& name,
                                  const std::string& value) {
  for (auto& [existing_name, existing_value] : default_headers_) {
    if (strings::EqualsIgnoreCase(existing_name, name)) {
      existing_value = value;
      return;
    }
  }
  default_headers_.emplace_back(name, value);
}

}  // namespace chronos::net
