#include "net/router.h"

#include <optional>

#include "common/clock.h"
#include "common/strings.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace chronos::net {

namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  return strings::Split(path, '/', /*skip_empty=*/true);
}

bool IsCapture(const std::string& segment) {
  return segment.size() >= 2 && segment.front() == '{' &&
         segment.back() == '}';
}

// Metric labels must stay bounded; arbitrary client methods would otherwise
// mint unbounded series.
const std::string& MethodLabel(const std::string& method) {
  static const std::string kKnown[] = {"GET", "POST", "PUT", "DELETE",
                                       "HEAD", "PATCH", "OPTIONS"};
  for (const std::string& known : kKnown) {
    if (method == known) return known;
  }
  static const std::string kOther = "OTHER";
  return kOther;
}

std::string StatusClass(int code) {
  return std::to_string(code / 100) + "xx";
}

}  // namespace

void Router::Handle(const std::string& method, const std::string& pattern,
                    HttpHandler handler) {
  Route route;
  route.method = strings::ToUpper(method);
  route.pattern = pattern;
  route.segments = SplitPath(pattern);
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

bool Router::Match(const Route& route,
                   const std::vector<std::string>& path_segments,
                   std::map<std::string, std::string>* params) {
  if (route.segments.size() != path_segments.size()) return false;
  std::map<std::string, std::string> captured;
  for (size_t i = 0; i < route.segments.size(); ++i) {
    const std::string& pattern_segment = route.segments[i];
    if (IsCapture(pattern_segment)) {
      captured[pattern_segment.substr(1, pattern_segment.size() - 2)] =
          path_segments[i];
    } else if (pattern_segment != path_segments[i]) {
      return false;
    }
  }
  *params = std::move(captured);
  return true;
}

int Router::Specificity(const Route& route) {
  int literals = 0;
  for (const std::string& segment : route.segments) {
    if (!IsCapture(segment)) ++literals;
  }
  return literals;
}

HttpResponse Router::Dispatch(const HttpRequest& request) const {
  uint64_t start_nanos = SystemClock::Get()->MonotonicNanos();

  // Server span per request. The caller's propagated context is installed
  // first so the span parents directly under the REMOTE span id — that exact
  // edge is what stitches a shipped agent trace to the Control half. With
  // span collection disabled the fallback scope keeps plain id propagation
  // (log stamping, header echo) alive.
  std::optional<obs::TraceScope> remote_scope;
  if (std::optional<obs::TraceContext> remote = obs::TraceContext::FromHeader(
          request.headers.Get(obs::kTraceHeader))) {
    remote_scope.emplace(*remote);
  }
  obs::Span span("http " + MethodLabel(request.method));
  std::optional<obs::TraceScope> fallback_scope;
  if (!span.context().valid() && !remote_scope.has_value()) {
    fallback_scope.emplace(obs::TraceContext::Generate());
  }

  std::vector<std::string> path_segments = SplitPath(request.path);
  const Route* best = nullptr;
  std::map<std::string, std::string> best_params;
  bool path_matched_any_method = false;

  for (const Route& route : routes_) {
    std::map<std::string, std::string> params;
    if (!Match(route, path_segments, &params)) continue;
    path_matched_any_method = true;
    if (route.method != request.method) continue;
    if (best == nullptr || Specificity(route) > Specificity(*best)) {
      best = &route;
      best_params = std::move(params);
    }
  }

  HttpResponse response;
  std::string route_label = "(unmatched)";
  if (best == nullptr) {
    response = path_matched_any_method
                   ? HttpResponse::Error(405, "method not allowed: " +
                                                  request.method + " " +
                                                  request.path)
                   : HttpResponse::Error(404, "no route for " + request.path);
  } else {
    route_label = best->pattern;
    HttpRequest enriched = request;
    enriched.path_params = std::move(best_params);
    response = best->handler(enriched);
  }

  // Name the span after the matched route (bounded label for the slow-span
  // counter), record the outcome, and end it before the response leaves.
  span.SetName("http " + MethodLabel(request.method) + " " + route_label);
  span.SetAttribute("path", request.path);
  span.SetAttribute("status_code", std::to_string(response.status_code));
  if (response.status_code >= 500) {
    span.SetError("HTTP " + std::to_string(response.status_code));
  }
  // Echo the context so clients can correlate without sniffing their own
  // header (captured before End() restores the previous scope).
  const obs::TraceContext echo = obs::CurrentTrace();
  span.End();

  uint64_t elapsed_us =
      (SystemClock::Get()->MonotonicNanos() - start_nanos) / 1000;
  auto* registry = obs::MetricsRegistry::Get();
  registry
      ->GetCounter("chronos_http_requests_total",
                   "HTTP requests dispatched, by method and route",
                   {{"method", MethodLabel(request.method)},
                    {"route", route_label}})
      ->Increment();
  registry
      ->GetCounter("chronos_http_responses_total",
                   "HTTP responses, by status class",
                   {{"class", StatusClass(response.status_code)}})
      ->Increment();
  registry
      ->GetHistogram("chronos_http_request_latency_us",
                     "Request dispatch latency in microseconds, by route",
                     {{"route", route_label}})
      ->Observe(elapsed_us);

  if (echo.valid()) response.headers.Set(obs::kTraceHeader, echo.ToHeader());
  return response;
}

HttpHandler Router::AsHandler() const {
  return [this](const HttpRequest& request) { return Dispatch(request); };
}

}  // namespace chronos::net
