#include "net/router.h"

#include "common/strings.h"

namespace chronos::net {

namespace {

std::vector<std::string> SplitPath(const std::string& path) {
  return strings::Split(path, '/', /*skip_empty=*/true);
}

bool IsCapture(const std::string& segment) {
  return segment.size() >= 2 && segment.front() == '{' &&
         segment.back() == '}';
}

}  // namespace

void Router::Handle(const std::string& method, const std::string& pattern,
                    HttpHandler handler) {
  Route route;
  route.method = strings::ToUpper(method);
  route.segments = SplitPath(pattern);
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

bool Router::Match(const Route& route,
                   const std::vector<std::string>& path_segments,
                   std::map<std::string, std::string>* params) {
  if (route.segments.size() != path_segments.size()) return false;
  std::map<std::string, std::string> captured;
  for (size_t i = 0; i < route.segments.size(); ++i) {
    const std::string& pattern_segment = route.segments[i];
    if (IsCapture(pattern_segment)) {
      captured[pattern_segment.substr(1, pattern_segment.size() - 2)] =
          path_segments[i];
    } else if (pattern_segment != path_segments[i]) {
      return false;
    }
  }
  *params = std::move(captured);
  return true;
}

int Router::Specificity(const Route& route) {
  int literals = 0;
  for (const std::string& segment : route.segments) {
    if (!IsCapture(segment)) ++literals;
  }
  return literals;
}

HttpResponse Router::Dispatch(const HttpRequest& request) const {
  std::vector<std::string> path_segments = SplitPath(request.path);
  const Route* best = nullptr;
  std::map<std::string, std::string> best_params;
  bool path_matched_any_method = false;

  for (const Route& route : routes_) {
    std::map<std::string, std::string> params;
    if (!Match(route, path_segments, &params)) continue;
    path_matched_any_method = true;
    if (route.method != request.method) continue;
    if (best == nullptr || Specificity(route) > Specificity(*best)) {
      best = &route;
      best_params = std::move(params);
    }
  }

  if (best == nullptr) {
    if (path_matched_any_method) {
      return HttpResponse::Error(405, "method not allowed: " + request.method +
                                          " " + request.path);
    }
    return HttpResponse::Error(404, "no route for " + request.path);
  }
  HttpRequest enriched = request;
  enriched.path_params = std::move(best_params);
  return best->handler(enriched);
}

HttpHandler Router::AsHandler() const {
  return [this](const HttpRequest& request) { return Dispatch(request); };
}

}  // namespace chronos::net
