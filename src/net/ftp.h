#ifndef CHRONOS_NET_FTP_H_
#define CHRONOS_NET_FTP_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "net/tcp.h"

namespace chronos::net {

// Minimal RFC 959 subset: USER/PASS authentication, passive mode (PASV),
// STOR (upload), RETR (download), LIST, DELE, QUIT. This is the "different
// server or NAS for storing the results" upload path from the paper; result
// bundles can be shipped here instead of to Chronos Control over HTTP.

// In-memory FTP server for result storage. Each worker thread owns one
// control connection.
class FtpServer {
 public:
  ~FtpServer();

  FtpServer(const FtpServer&) = delete;
  FtpServer& operator=(const FtpServer&) = delete;

  // Starts on 127.0.0.1:port (0 = ephemeral). Accepts only the given
  // credentials.
  static StatusOr<std::unique_ptr<FtpServer>> Start(int port,
                                                    std::string username,
                                                    std::string password);

  int port() const { return listener_->port(); }

  // Files stored so far (name -> contents).
  std::map<std::string, std::string> Files() const;
  StatusOr<std::string> GetFile(const std::string& name) const;
  size_t file_count() const;

  void Stop();

 private:
  FtpServer(std::unique_ptr<TcpListener> listener, std::string username,
            std::string password);

  void AcceptLoop();
  void ServeControl(std::unique_ptr<TcpConnection> conn);

  std::unique_ptr<TcpListener> listener_;
  std::string username_;
  std::string password_;

  mutable Mutex mu_;
  std::map<std::string, std::string> files_ CHRONOS_GUARDED_BY(mu_);
  // Written only by the accept thread; Stop() reads it after joining that
  // thread, so no lock is needed.
  std::vector<std::thread> sessions_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
};

// Blocking FTP client (passive mode only).
class FtpClient {
 public:
  ~FtpClient();

  FtpClient(const FtpClient&) = delete;
  FtpClient& operator=(const FtpClient&) = delete;

  // Connects and logs in.
  static StatusOr<std::unique_ptr<FtpClient>> Connect(
      const std::string& host, int port, const std::string& username,
      const std::string& password);

  Status Store(const std::string& name, std::string_view contents);
  StatusOr<std::string> Retrieve(const std::string& name);
  StatusOr<std::vector<std::string>> List();
  Status Delete(const std::string& name);
  Status Quit();

 private:
  explicit FtpClient(std::unique_ptr<TcpConnection> control)
      : control_(std::move(control)) {}

  // Reads one reply line "NNN text"; returns the 3-digit code.
  StatusOr<int> ReadReply(std::string* text = nullptr);
  Status SendCommand(const std::string& command);
  // Issues PASV and opens the data connection it advertises.
  StatusOr<std::unique_ptr<TcpConnection>> OpenDataConnection();

  std::unique_ptr<TcpConnection> control_;
};

}  // namespace chronos::net

#endif  // CHRONOS_NET_FTP_H_
