#include "net/tcp.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "fault/failpoint.h"

namespace chronos::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

TcpConnection::~TcpConnection() { Close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::unique_ptr<TcpConnection>> TcpConnection::Connect(
    const std::string& host, int port, int timeout_ms) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  std::string port_str = std::to_string(port);
  int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host + ": " + gai_strerror(rc));
  }

  int fd = -1;
  Status last_error = Status::Unavailable("no addresses for " + host);
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = Errno("socket");
      continue;
    }
    // Non-blocking connect with poll-based timeout.
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      rc = ::poll(&pfd, 1, timeout_ms);
      if (rc == 1) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        rc = err == 0 ? 0 : -1;
        errno = err;
      } else {
        rc = -1;
        errno = ETIMEDOUT;
      }
    }
    if (rc == 0) {
      ::fcntl(fd, F_SETFL, flags);  // Back to blocking mode.
      break;
    }
    last_error = Errno("connect " + host + ":" + port_str);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) return last_error;

  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpConnection>(fd);
}

Status TcpConnection::WriteAll(std::string_view data) {
  fault::Action fault = fault::FailPointRegistry::Get()->Evaluate(
      "net.tcp.write");
  if (fault.kind != fault::Action::Kind::kNone) {
    if (fault.kind == fault::Action::Kind::kClose) Close();
    return fault.status;
  }
  if (fd_ < 0) return Status::FailedPrecondition("socket closed");
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::send(fd_, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<std::string> TcpConnection::ReadSome(size_t max_bytes) {
  // Before the userspace buffer too: a dropped connection loses buffered
  // bytes just as surely as unread socket ones.
  fault::Action fault = fault::FailPointRegistry::Get()->Evaluate(
      "net.tcp.read");
  if (fault.kind != fault::Action::Kind::kNone) {
    if (fault.kind == fault::Action::Kind::kClose) Close();
    return fault.status;
  }
  if (!buffer_.empty()) {
    std::string out = std::move(buffer_);
    buffer_.clear();
    if (out.size() > max_bytes) {
      buffer_ = out.substr(max_bytes);
      out.resize(max_bytes);
    }
    return out;
  }
  if (fd_ < 0) return Status::FailedPrecondition("socket closed");
  std::string out;
  out.resize(max_bytes);
  while (true) {
    ssize_t n = ::recv(fd_, out.data(), max_bytes, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("read timeout");
      }
      return Errno("recv");
    }
    out.resize(static_cast<size_t>(n));
    return out;
  }
}

StatusOr<std::string> TcpConnection::ReadExactly(size_t n) {
  std::string out;
  out.reserve(n);
  if (!buffer_.empty()) {
    size_t take = std::min(n, buffer_.size());
    out.append(buffer_, 0, take);
    buffer_.erase(0, take);
  }
  while (out.size() < n) {
    CHRONOS_ASSIGN_OR_RETURN(std::string chunk, ReadSome(n - out.size()));
    if (chunk.empty()) {
      return Status::IoError("connection closed mid-read");
    }
    out += chunk;
  }
  return out;
}

StatusOr<std::string> TcpConnection::ReadLine(size_t max_len) {
  std::string line;
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line += buffer_.substr(0, newline + 1);
      buffer_.erase(0, newline + 1);
      return line;
    }
    line += buffer_;
    buffer_.clear();
    if (line.size() > max_len) {
      return Status::InvalidArgument("line too long");
    }
    CHRONOS_ASSIGN_OR_RETURN(std::string chunk, ReadSome());
    if (chunk.empty()) {
      return line;  // EOF: return whatever was accumulated (maybe empty).
    }
    buffer_ = std::move(chunk);
  }
}

Status TcpConnection::SetReadTimeoutMs(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("socket closed");
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::Ok();
}

TcpListener::~TcpListener() { Close(); }

StatusOr<std::unique_ptr<TcpListener>> TcpListener::Listen(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Errno("bind port " + std::to_string(port));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len);
  int bound_port = ntohs(addr.sin_port);
  return std::unique_ptr<TcpListener>(new TcpListener(fd, bound_port));
}

StatusOr<std::unique_ptr<TcpConnection>> TcpListener::Accept() {
  while (true) {
    int fd = fd_;
    if (fd < 0) return Status::Unavailable("listener closed");
    int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      if (fd_ < 0) return Status::Unavailable("listener closed");
      return Errno("accept");
    }
    fault::Action fault = fault::FailPointRegistry::Get()->Evaluate(
        "net.tcp.accept");
    if (fault.kind == fault::Action::Kind::kClose) {
      // Drop the accepted client silently and keep listening — the shape of
      // a connection reset between SYN and the server thread picking it up.
      ::close(client);
      continue;
    }
    if (fault.kind == fault::Action::Kind::kError) {
      ::close(client);
      return fault.status;
    }
    int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::make_unique<TcpConnection>(client);
  }
}

void TcpListener::Close() {
  // exchange() makes concurrent Close calls close the fd exactly once.
  int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace chronos::net
