#ifndef CHRONOS_NET_HTTP_H_
#define CHRONOS_NET_HTTP_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "common/threading.h"
#include "json/json.h"
#include "net/tcp.h"

namespace chronos::net {

// Case-insensitive header map (HTTP header names are case-insensitive).
class HeaderMap {
 public:
  void Set(std::string_view name, std::string_view value);
  // Returns empty string if absent.
  std::string Get(std::string_view name) const;
  bool Has(std::string_view name) const;
  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;  // Keys stored lowercase.
};

struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string path;     // Decoded path, no query string.
  std::string query;    // Raw query string (without '?').
  HeaderMap headers;
  std::string body;

  // Path parameters extracted by the router, e.g. {id} -> "42".
  std::map<std::string, std::string> path_params;

  // Parsed query parameters (URL-decoded).
  std::map<std::string, std::string> QueryParams() const;

  // Parses the body as JSON.
  StatusOr<json::Json> JsonBody() const;
};

struct HttpResponse {
  int status_code = 200;
  HeaderMap headers;
  std::string body;

  static HttpResponse Ok(std::string body, std::string content_type = "text/plain");
  static HttpResponse Json(const json::Json& value, int status_code = 200);
  static HttpResponse Error(int status_code, const std::string& message);
  // Maps a Status to an HTTP error response with a JSON error body.
  static HttpResponse FromStatus(const Status& status);
};

std::string_view HttpStatusText(int code);

// --- Wire-level serialization (exposed for tests) ---

// Serializes a request/response as HTTP/1.1 with Content-Length framing.
std::string SerializeRequest(const HttpRequest& request);
std::string SerializeResponse(const HttpResponse& response);

// Reads one message from a connection. Enforces size limits.
StatusOr<HttpRequest> ReadRequest(TcpConnection* conn,
                                  size_t max_body = 64 * 1024 * 1024);
StatusOr<HttpResponse> ReadResponse(TcpConnection* conn,
                                    size_t max_body = 64 * 1024 * 1024);

// --- Server ---

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

// Multi-threaded HTTP/1.1 server with keep-alive. One dispatcher thread
// accepts; a worker pool serves connections.
class HttpServer {
 public:
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Starts listening on 127.0.0.1:port (0 = ephemeral) and serving via
  // `handler`.
  static StatusOr<std::unique_ptr<HttpServer>> Start(int port,
                                                     HttpHandler handler,
                                                     int num_workers = 8);

  int port() const { return listener_->port(); }

  // Stops accepting, drains workers. Idempotent; called by the destructor.
  void Stop();

 private:
  HttpServer(std::unique_ptr<TcpListener> listener, HttpHandler handler,
             int num_workers);

  void AcceptLoop();
  void ServeConnection(std::unique_ptr<TcpConnection> conn);

  std::unique_ptr<TcpListener> listener_;
  HttpHandler handler_;
  std::unique_ptr<ThreadPool> workers_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
};

// --- Client ---

// Simple HTTP/1.1 client; one connection per request (Connection: close).
class HttpClient {
 public:
  HttpClient(std::string host, int port) : host_(std::move(host)), port_(port) {}

  StatusOr<HttpResponse> Get(const std::string& path);
  StatusOr<HttpResponse> Post(const std::string& path, std::string body,
                              std::string content_type = "application/json");
  StatusOr<HttpResponse> Put(const std::string& path, std::string body,
                             std::string content_type = "application/json");
  StatusOr<HttpResponse> Delete(const std::string& path);

  StatusOr<HttpResponse> Send(HttpRequest request);

  // Extra header applied to every request (e.g. the session token).
  void SetDefaultHeader(const std::string& name, const std::string& value);

  // Names a failpoint evaluated at the top of every Send() — fault
  // injection per *client* rather than per socket, so chaos tests can fail
  // one agent's transport without touching other traffic in the process
  // (the agent arms "agent.http.send" here). Empty disables the hook.
  void SetFailPoint(std::string point) { failpoint_ = std::move(point); }

  const std::string& host() const { return host_; }
  int port() const { return port_; }

 private:
  std::string host_;
  int port_;
  std::string failpoint_;
  std::vector<std::pair<std::string, std::string>> default_headers_;
};

}  // namespace chronos::net

#endif  // CHRONOS_NET_HTTP_H_
