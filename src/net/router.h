#ifndef CHRONOS_NET_ROUTER_H_
#define CHRONOS_NET_ROUTER_H_

#include <string>
#include <vector>

#include "net/http.h"

namespace chronos::net {

// Path-pattern router. Patterns are '/'-separated; a segment "{name}"
// captures the corresponding request segment into request.path_params.
//
//   Router router;
//   router.Get("/api/v1/jobs/{id}", handler);
//   HttpResponse response = router.Dispatch(request);
//
// Literal segments take precedence over captures when both match. Unknown
// paths yield 404, known paths with a wrong method yield 405.
class Router {
 public:
  void Handle(const std::string& method, const std::string& pattern,
              HttpHandler handler);

  void Get(const std::string& pattern, HttpHandler handler) {
    Handle("GET", pattern, std::move(handler));
  }
  void Post(const std::string& pattern, HttpHandler handler) {
    Handle("POST", pattern, std::move(handler));
  }
  void Put(const std::string& pattern, HttpHandler handler) {
    Handle("PUT", pattern, std::move(handler));
  }
  void Delete(const std::string& pattern, HttpHandler handler) {
    Handle("DELETE", pattern, std::move(handler));
  }

  HttpResponse Dispatch(const HttpRequest& request) const;

  // Adapts the router into a server handler.
  HttpHandler AsHandler() const;

  size_t route_count() const { return routes_.size(); }

 private:
  struct Route {
    std::string method;
    std::string pattern;                // As registered; the metrics label.
    std::vector<std::string> segments;  // "{x}" marks a capture.
    HttpHandler handler;
  };

  // Returns true and fills `params` iff the path matches the pattern.
  static bool Match(const Route& route,
                    const std::vector<std::string>& path_segments,
                    std::map<std::string, std::string>* params);
  // Number of literal (non-capture) segments, used to prefer specific routes.
  static int Specificity(const Route& route);

  std::vector<Route> routes_;
};

}  // namespace chronos::net

#endif  // CHRONOS_NET_ROUTER_H_
