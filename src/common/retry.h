#ifndef CHRONOS_COMMON_RETRY_H_
#define CHRONOS_COMMON_RETRY_H_

#include <algorithm>
#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"

namespace chronos {

// True for the status codes that typically heal on retry: transport trouble
// (kUnavailable), timeouts (kDeadlineExceeded), flaky I/O (kIoError), and
// lost optimistic-concurrency races (kAborted). Logic errors (kNotFound,
// kInvalidArgument, kUnauthenticated, ...) stay non-retriable.
inline bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kIoError ||
         status.code() == StatusCode::kAborted;
}

// Capped exponential backoff with optional seeded jitter. All sleeps go
// through the injected Clock, so a SimulatedClock makes retry schedules —
// and therefore every test built on them — deterministic and free of
// wall-clock time.
struct RetryPolicy {
  int max_attempts = 5;
  int64_t initial_backoff_ms = 100;
  int64_t max_backoff_ms = 5000;
  double multiplier = 2.0;
  // Jitter fraction in [0, 1): each delay is scaled by a factor drawn
  // uniformly from [1 - jitter, 1 + jitter]. The draw comes from an RNG
  // seeded with `jitter_seed`, so jittered schedules still replay exactly.
  double jitter = 0.0;
  uint64_t jitter_seed = 0;
  Clock* clock = nullptr;  // nullptr -> SystemClock::Get().

  Clock* EffectiveClock() const {
    return clock != nullptr ? clock : SystemClock::Get();
  }

  // Delay before retry number `attempt` (1 = after the first failure):
  // initial * multiplier^(attempt-1), capped at max_backoff_ms, then
  // jittered. `rng` may be null when jitter == 0.
  int64_t BackoffMs(int attempt, Rng* rng) const {
    double delay = static_cast<double>(initial_backoff_ms);
    for (int i = 1; i < attempt && delay < static_cast<double>(max_backoff_ms);
         ++i) {
      delay *= multiplier;
    }
    delay = std::min(delay, static_cast<double>(max_backoff_ms));
    if (jitter > 0.0 && rng != nullptr) {
      delay *= 1.0 - jitter + 2.0 * jitter * rng->NextDouble();
    }
    return std::max<int64_t>(0, static_cast<int64_t>(delay));
  }

  // Runs `op` until it succeeds, returns a non-retriable status, or
  // max_attempts is exhausted; sleeps BackoffMs between attempts. Returns
  // the last status from `op`.
  Status Run(const std::function<Status()>& op,
             const std::function<bool(const Status&)>& retriable =
                 IsTransient) const {
    Rng rng(jitter_seed);
    Status status = Status::Ok();
    for (int attempt = 1;; ++attempt) {
      status = op();
      if (status.ok() || attempt >= max_attempts || !retriable(status)) {
        return status;
      }
      EffectiveClock()->SleepMs(BackoffMs(attempt, &rng));
    }
  }
};

// Stateful backoff for open-ended loops (poll loops, reconnect loops) where
// there is no fixed attempt budget: each SleepNext() backs off further,
// Reset() on success snaps back to the initial delay.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy)
      : policy_(policy), rng_(policy.jitter_seed) {}

  int64_t NextDelayMs() { return policy_.BackoffMs(++attempt_, &rng_); }

  void SleepNext() { policy_.EffectiveClock()->SleepMs(NextDelayMs()); }

  void Reset() { attempt_ = 0; }

  int attempt() const { return attempt_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  int attempt_ = 0;
};

}  // namespace chronos

#endif  // CHRONOS_COMMON_RETRY_H_
