#ifndef CHRONOS_COMMON_FILE_UTIL_H_
#define CHRONOS_COMMON_FILE_UTIL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"

namespace chronos::file {

StatusOr<std::string> ReadFile(const std::string& path);
Status WriteFile(const std::string& path, std::string_view contents);
Status AppendFile(const std::string& path, std::string_view contents);

// Flushes a file's contents and metadata to stable storage.
Status SyncFile(const std::string& path);

// fsyncs a directory so renames/creates/removes inside it survive a crash.
// A renamed file is only durable once its containing directory is synced.
Status SyncDir(const std::string& path);

// WriteFile followed by an fsync of the file itself. Callers that rename the
// result into place must still SyncDir the destination directory.
Status WriteFileDurable(const std::string& path, std::string_view contents);

bool Exists(const std::string& path);
Status MakeDirs(const std::string& path);
Status RemoveAll(const std::string& path);

// Lexicographically sorted file names (not paths) directly inside `dir`.
StatusOr<std::vector<std::string>> ListDir(const std::string& dir);

// Creates a unique empty directory under the system temp dir; the returned
// path has `prefix` in its final component.
StatusOr<std::string> MakeTempDir(const std::string& prefix);

// RAII wrapper removing a directory tree on destruction. Used by tests.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "chronos");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace chronos::file

#endif  // CHRONOS_COMMON_FILE_UTIL_H_
