#include "common/logging.h"

#include <cstdio>

namespace chronos {

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace {

thread_local TraceIds g_current_trace;

}  // namespace

const TraceIds& CurrentTraceIds() { return g_current_trace; }

TraceIds SwapCurrentTraceIds(TraceIds ids) {
  TraceIds previous = std::move(g_current_trace);
  g_current_trace = std::move(ids);
  return previous;
}

std::string LogRecord::Format() const {
  std::string out = FormatTimestamp(timestamp_ms);
  out += " [";
  out += LogLevelName(level);
  out += "] ";
  out += component;
  out += ": ";
  out += message;
  if (!trace_id.empty()) {
    out += " trace=";
    out += trace_id;
    out += " span=";
    out += span_id;
  }
  return out;
}

Logger* Logger::Get() {
  static Logger* logger = new Logger();
  return logger;
}

void Logger::Log(LogLevel level, std::string component, std::string message) {
  if (level < min_level_.load(std::memory_order_relaxed)) return;
  LogRecord record;
  record.timestamp_ms = SystemClock::Get()->NowMs();
  record.level = level;
  record.component = std::move(component);
  record.message = std::move(message);
  record.trace_id = g_current_trace.trace_id;
  record.span_id = g_current_trace.span_id;

  std::vector<std::pair<int, LogSink>> sinks_copy;
  {
    MutexLock lock(mu_);
    sinks_copy = sinks_;
    if (stderr_enabled_.load(std::memory_order_relaxed)) {
      std::fprintf(stderr, "%s\n", record.Format().c_str());
    }
  }
  // Sinks run outside the lock, each behind its own catch: one misbehaving
  // sink must not poison the mutex or starve the others.
  for (auto& [id, sink] : sinks_copy) {
    try {
      sink(record);
    } catch (...) {
      dropped_records_.fetch_add(1);
    }
  }
}

int Logger::AddSink(LogSink sink) {
  MutexLock lock(mu_);
  int id = next_sink_id_++;
  sinks_.emplace_back(id, std::move(sink));
  return id;
}

void Logger::RemoveSink(int id) {
  MutexLock lock(mu_);
  for (auto it = sinks_.begin(); it != sinks_.end(); ++it) {
    if (it->first == id) {
      sinks_.erase(it);
      return;
    }
  }
}

CaptureLogSink::CaptureLogSink() {
  sink_id_ = Logger::Get()->AddSink([this](const LogRecord& record) {
    MutexLock lock(mu_);
    records_.push_back(record);
  });
}

CaptureLogSink::~CaptureLogSink() { Logger::Get()->RemoveSink(sink_id_); }

std::vector<LogRecord> CaptureLogSink::Drain() {
  MutexLock lock(mu_);
  std::vector<LogRecord> out;
  out.swap(records_);
  return out;
}

size_t CaptureLogSink::size() const {
  MutexLock lock(mu_);
  return records_.size();
}

}  // namespace chronos
