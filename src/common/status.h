#ifndef CHRONOS_COMMON_STATUS_H_
#define CHRONOS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace chronos {

// Canonical error space used across the whole toolkit. Library code never
// throws; every fallible operation returns a Status or a StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kPermissionDenied = 5,
  kUnauthenticated = 6,
  kAborted = 7,
  kDeadlineExceeded = 8,
  kUnavailable = 9,
  kIoError = 10,
  kCorruption = 11,
  kInternal = 12,
  kUnimplemented = 13,
  kResourceExhausted = 14,
};

// Human-readable name of a code, e.g. "NOT_FOUND".
std::string_view StatusCodeToString(StatusCode code);

// Value-type status: a code plus an optional message. The OK status carries
// no message and is cheap to copy.
//
// [[nodiscard]]: silently dropping a Status hides failures; callers must
// check it, propagate it (CHRONOS_RETURN_IF_ERROR), or explicitly discard it
// with IgnoreError().
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(StatusCode::kUnauthenticated, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Explicitly discards this status. Use at call sites where failure is
  // genuinely acceptable (best-effort cleanup, shutdown paths) — it
  // documents intent and satisfies both [[nodiscard]] and the lint's
  // dropped-status rule.
  void IgnoreError() const {}

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Evaluates an expression returning Status; returns it from the enclosing
// function if not OK.
#define CHRONOS_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::chronos::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace chronos

#endif  // CHRONOS_COMMON_STATUS_H_
