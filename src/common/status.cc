#include "common/status.h"

namespace chronos {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kUnauthenticated:
      return "UNAUTHENTICATED";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace chronos
