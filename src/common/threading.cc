#include "common/threading.h"

#include "common/logging.h"

namespace chronos {

std::function<void()> WrapWithCurrentTrace(std::function<void()> task) {
  TraceIds ids = CurrentTraceIds();
  return [ids = std::move(ids), task = std::move(task)] {
    TraceIds previous = SwapCurrentTraceIds(ids);
    task();
    SwapCurrentTraceIds(std::move(previous));
  };
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] {
      while (auto task = queue_.Pop()) {
        (*task)();
      }
    });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  // The submitter's trace context rides along, so spans/logs from pooled
  // work parent under the submitting operation instead of starting orphan
  // traces.
  return queue_.Push(WrapWithCurrentTrace(std::move(task)));
}

void ThreadPool::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.Close();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  });
}

}  // namespace chronos
