#include "common/threading.h"

namespace chronos {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] {
      while (auto task = queue_.Pop()) {
        (*task)();
      }
    });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  return queue_.Push(std::move(task));
}

void ThreadPool::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    queue_.Close();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  });
}

}  // namespace chronos
