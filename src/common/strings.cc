#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace chronos::strings {

namespace {

constexpr char kBase64Chars[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int Base64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

bool IsUnreserved(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' ||
         c == '.' || c == '~';
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::vector<std::string> Split(std::string_view input, char sep,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    std::string_view token = pos == std::string_view::npos
                                 ? input.substr(start)
                                 : input.substr(start, pos - start);
    if (!skip_empty || !token.empty()) out.emplace_back(token);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = std::tolower(static_cast<unsigned char>(c));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = std::toupper(static_cast<unsigned char>(c));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string HexEncode(std::string_view bytes) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xF]);
  }
  return out;
}

std::string Base64Encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  size_t i = 0;
  while (i + 3 <= bytes.size()) {
    uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                 (static_cast<unsigned char>(bytes[i + 1]) << 8) |
                 static_cast<unsigned char>(bytes[i + 2]);
    out.push_back(kBase64Chars[(v >> 18) & 0x3F]);
    out.push_back(kBase64Chars[(v >> 12) & 0x3F]);
    out.push_back(kBase64Chars[(v >> 6) & 0x3F]);
    out.push_back(kBase64Chars[v & 0x3F]);
    i += 3;
  }
  size_t rest = bytes.size() - i;
  if (rest == 1) {
    uint32_t v = static_cast<unsigned char>(bytes[i]) << 16;
    out.push_back(kBase64Chars[(v >> 18) & 0x3F]);
    out.push_back(kBase64Chars[(v >> 12) & 0x3F]);
    out.push_back('=');
    out.push_back('=');
  } else if (rest == 2) {
    uint32_t v = (static_cast<unsigned char>(bytes[i]) << 16) |
                 (static_cast<unsigned char>(bytes[i + 1]) << 8);
    out.push_back(kBase64Chars[(v >> 18) & 0x3F]);
    out.push_back(kBase64Chars[(v >> 12) & 0x3F]);
    out.push_back(kBase64Chars[(v >> 6) & 0x3F]);
    out.push_back('=');
  }
  return out;
}

bool Base64Decode(std::string_view encoded, std::string* out) {
  out->clear();
  if (encoded.size() % 4 != 0) return false;
  out->reserve(encoded.size() / 4 * 3);
  for (size_t i = 0; i < encoded.size(); i += 4) {
    int vals[4];
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      char c = encoded[i + j];
      if (c == '=') {
        // Padding is only valid in the last group's final positions.
        if (i + 4 != encoded.size() || j < 2) return false;
        vals[j] = 0;
        ++pad;
      } else {
        if (pad > 0) return false;  // Data after padding.
        vals[j] = Base64Value(c);
        if (vals[j] < 0) return false;
      }
    }
    uint32_t v = (vals[0] << 18) | (vals[1] << 12) | (vals[2] << 6) | vals[3];
    out->push_back(static_cast<char>((v >> 16) & 0xFF));
    if (pad < 2) out->push_back(static_cast<char>((v >> 8) & 0xFF));
    if (pad < 1) out->push_back(static_cast<char>(v & 0xFF));
  }
  return true;
}

std::string UrlEncode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (IsUnreserved(c)) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[static_cast<unsigned char>(c) >> 4]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
    }
  }
  return out;
}

bool UrlDecode(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '%') {
      if (i + 2 >= s.size()) return false;
      int hi = HexDigit(s[i + 1]);
      int lo = HexDigit(s[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out->push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (c == '+') {
      out->push_back(' ');
    } else {
      out->push_back(c);
    }
  }
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  // std::from_chars for double is not reliably available pre-gcc11 for all
  // formats; strtod on a NUL-terminated copy is portable and strict enough.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string PadNumber(uint64_t value, int width) {
  std::string digits = std::to_string(value);
  if (static_cast<int>(digits.size()) >= width) return digits;
  return std::string(width - digits.size(), '0') + digits;
}

}  // namespace chronos::strings
