#include "common/clock.h"

#include <chrono>
#include <ctime>
#include <thread>

namespace chronos {

TimestampMs SystemClock::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

uint64_t SystemClock::MonotonicNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SystemClock::SleepMs(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

SystemClock* SystemClock::Get() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

std::string FormatTimestamp(TimestampMs ts_ms) {
  std::time_t secs = static_cast<std::time_t>(ts_ms / 1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_utc);
  return buf;
}

}  // namespace chronos
