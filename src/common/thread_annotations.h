#ifndef CHRONOS_COMMON_THREAD_ANNOTATIONS_H_
#define CHRONOS_COMMON_THREAD_ANNOTATIONS_H_

// Portable wrappers around Clang's -Wthread-safety capability analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under Clang the
// macros expand to the corresponding attributes and lock discipline becomes
// a compile error (the build adds -Werror=thread-safety); under GCC and
// other compilers they expand to nothing, so annotated code stays portable.
//
// Conventions used across the repo:
//   * every field protected by a mutex is declared
//       T field_ CHRONOS_GUARDED_BY(mu_);
//   * private helpers that expect the caller to hold a lock are suffixed
//     "Locked" and annotated CHRONOS_REQUIRES(mu_);
//   * public entry points that must NOT be called with the lock held (they
//     acquire it themselves) may add CHRONOS_EXCLUDES(mu_) when mistaken
//     reentry is plausible.

#if defined(__clang__) && !defined(SWIG)
#define CHRONOS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define CHRONOS_THREAD_ANNOTATION_(x)  // no-op
#endif

// Declares a type to be a capability ("mutex"); used on lock wrapper classes.
#define CHRONOS_CAPABILITY(x) CHRONOS_THREAD_ANNOTATION_(capability(x))

// Declares an RAII class that acquires a capability in its constructor and
// releases it in its destructor.
#define CHRONOS_SCOPED_CAPABILITY CHRONOS_THREAD_ANNOTATION_(scoped_lockable)

// Field/variable is protected by the given capability; reads require the
// capability held (shared or exclusive), writes require it exclusively.
#define CHRONOS_GUARDED_BY(x) CHRONOS_THREAD_ANNOTATION_(guarded_by(x))

// Pointer field whose *pointee* is protected by the given capability.
#define CHRONOS_PT_GUARDED_BY(x) CHRONOS_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations: this capability must be acquired before/after
// the listed ones. Violations surface as -Wthread-safety-analysis errors.
#define CHRONOS_ACQUIRED_BEFORE(...) \
  CHRONOS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define CHRONOS_ACQUIRED_AFTER(...) \
  CHRONOS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function requires the capability held (exclusively / at least shared) on
// entry, and does not release it.
#define CHRONOS_REQUIRES(...) \
  CHRONOS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define CHRONOS_REQUIRES_SHARED(...) \
  CHRONOS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Function acquires the capability (exclusively / shared) and holds it on
// return.
#define CHRONOS_ACQUIRE(...) \
  CHRONOS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define CHRONOS_ACQUIRE_SHARED(...) \
  CHRONOS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

// Function releases the capability (which must be held on entry).
// CHRONOS_RELEASE releases an exclusive hold, _SHARED a shared hold, and
// _GENERIC either kind (used by RAII guards that serve both).
#define CHRONOS_RELEASE(...) \
  CHRONOS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define CHRONOS_RELEASE_SHARED(...) \
  CHRONOS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define CHRONOS_RELEASE_GENERIC(...) \
  CHRONOS_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// Function tries to acquire the capability and returns `success` on success.
#define CHRONOS_TRY_ACQUIRE(...) \
  CHRONOS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define CHRONOS_TRY_ACQUIRE_SHARED(...) \
  CHRONOS_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

// Function must NOT be called with the capability held (it acquires the
// lock itself; reentry would deadlock).
#define CHRONOS_EXCLUDES(...) \
  CHRONOS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Runtime assertion that the calling thread holds the capability; informs
// the analysis without acquiring anything.
#define CHRONOS_ASSERT_CAPABILITY(x) \
  CHRONOS_THREAD_ANNOTATION_(assert_capability(x))
#define CHRONOS_ASSERT_SHARED_CAPABILITY(x) \
  CHRONOS_THREAD_ANNOTATION_(assert_shared_capability(x))

// Function returns a reference to the given capability (accessor pattern).
#define CHRONOS_RETURN_CAPABILITY(x) \
  CHRONOS_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use must carry
// a comment justifying why the analysis cannot see the invariant.
#define CHRONOS_NO_THREAD_SAFETY_ANALYSIS \
  CHRONOS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // CHRONOS_COMMON_THREAD_ANNOTATIONS_H_
