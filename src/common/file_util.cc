#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/uuid.h"

namespace chronos::file {

namespace fs = std::filesystem;

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  return contents;
}

Status WriteFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status AppendFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out) return Status::IoError("cannot open for append: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) return Status::IoError("append failed: " + path);
  return Status::Ok();
}

namespace {

Status FsyncPath(const std::string& path, int open_flags) {
  int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) return Status::IoError("cannot open for fsync: " + path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::IoError("fsync failed: " + path);
  return Status::Ok();
}

}  // namespace

Status SyncFile(const std::string& path) {
  return FsyncPath(path, O_RDONLY);
}

Status SyncDir(const std::string& path) {
  return FsyncPath(path, O_RDONLY | O_DIRECTORY);
}

Status WriteFileDurable(const std::string& path, std::string_view contents) {
  CHRONOS_RETURN_IF_ERROR(WriteFile(path, contents));
  return SyncFile(path);
}

bool Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir failed: " + path + ": " + ec.message());
  return Status::Ok();
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) {
    return Status::IoError("remove failed: " + path + ": " + ec.message());
  }
  return Status::Ok();
}

StatusOr<std::vector<std::string>> ListDir(const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IoError("opendir failed: " + dir + ": " + ec.message());
  std::vector<std::string> names;
  for (const auto& entry : it) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

StatusOr<std::string> MakeTempDir(const std::string& prefix) {
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) return Status::IoError("no temp dir: " + ec.message());
  fs::path dir = base / (prefix + "-" + GenerateUuid());
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("mkdir failed: " + ec.message());
  return dir.string();
}

TempDir::TempDir(const std::string& prefix) {
  auto dir = MakeTempDir(prefix);
  path_ = dir.ok() ? *dir : std::string();
}

TempDir::~TempDir() {
  if (!path_.empty()) RemoveAll(path_).IgnoreError();
}

}  // namespace chronos::file
