#ifndef CHRONOS_COMMON_LOGGING_H_
#define CHRONOS_COMMON_LOGGING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace chronos {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

std::string_view LogLevelName(LogLevel level);

// Thread-local trace identity stamped into every LogRecord. The slot lives
// here (not in obs/) so the logger can read it without a layering cycle;
// obs::TraceScope is the intended writer.
struct TraceIds {
  std::string trace_id;
  std::string span_id;
};

// The calling thread's current trace ids (empty outside any trace scope).
const TraceIds& CurrentTraceIds();

// Installs `ids` as the calling thread's current trace and returns the
// previous value (for RAII restore).
TraceIds SwapCurrentTraceIds(TraceIds ids);

struct LogRecord {
  TimestampMs timestamp_ms = 0;
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  // Trace correlation ids (empty when logged outside a trace scope).
  std::string trace_id;
  std::string span_id;

  // "2020-03-30 10:00:00 [INFO] component: message", plus
  // " trace=<trace_id> span=<span_id>" when a trace is attached.
  std::string Format() const;
};

// A sink consumes formatted log records. The agent library registers a
// capture sink so log output can be shipped to Chronos Control periodically,
// mirroring the paper's "agent periodically sends the output of the logger".
using LogSink = std::function<void(const LogRecord&)>;

// Process-wide logger with pluggable sinks. Thread-safe.
class Logger {
 public:
  static Logger* Get();

  void Log(LogLevel level, std::string component, std::string message);

  // Returns an id that can be passed to RemoveSink.
  int AddSink(LogSink sink);
  void RemoveSink(int id);

  // Level/stderr switches are atomics: they are read on every Log call,
  // including concurrently with set_* from test setup threads.
  void set_min_level(LogLevel level) {
    min_level_.store(level, std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return min_level_.load(std::memory_order_relaxed);
  }

  // When false (default in tests), records are not written to stderr but
  // still reach registered sinks.
  void set_stderr_enabled(bool enabled) {
    stderr_enabled_.store(enabled, std::memory_order_relaxed);
  }

  // Records dropped because a sink threw. A throwing sink never poisons the
  // logger or starves the other sinks; the loss is just counted (exposed as
  // a gauge by the obs metrics registry).
  uint64_t dropped_records() const { return dropped_records_.load(); }

 private:
  Logger() = default;

  Mutex mu_;
  std::vector<std::pair<int, LogSink>> sinks_ CHRONOS_GUARDED_BY(mu_);
  int next_sink_id_ CHRONOS_GUARDED_BY(mu_) = 1;
  std::atomic<LogLevel> min_level_{LogLevel::kInfo};
  std::atomic<bool> stderr_enabled_{true};
  std::atomic<uint64_t> dropped_records_{0};
};

// In-memory sink that buffers records; Drain() hands them off and clears the
// buffer. Used by the agent's log shipping loop and by tests.
class CaptureLogSink {
 public:
  // Registers with the global logger on construction, unregisters on
  // destruction.
  CaptureLogSink();
  ~CaptureLogSink();

  CaptureLogSink(const CaptureLogSink&) = delete;
  CaptureLogSink& operator=(const CaptureLogSink&) = delete;

  std::vector<LogRecord> Drain();
  size_t size() const;

 private:
  mutable Mutex mu_;
  std::vector<LogRecord> records_ CHRONOS_GUARDED_BY(mu_);
  int sink_id_;
};

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogMessage() { Logger::Get()->Log(level_, component_, stream_.str()); }

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define CHRONOS_LOG(level, component)                                       \
  ::chronos::log_internal::LogMessage(::chronos::LogLevel::level, component) \
      .stream()

}  // namespace chronos

#endif  // CHRONOS_COMMON_LOGGING_H_
