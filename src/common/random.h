#ifndef CHRONOS_COMMON_RANDOM_H_
#define CHRONOS_COMMON_RANDOM_H_

#include <cstdint>

namespace chronos {

// Small, fast, seedable PRNG (xoshiro256**). Deterministic across platforms,
// which the workload generator and property tests rely on.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the full state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      state_[i] = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound) { return NextUint64() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextUint64(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return (NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace chronos

#endif  // CHRONOS_COMMON_RANDOM_H_
