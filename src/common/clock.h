#ifndef CHRONOS_COMMON_CLOCK_H_
#define CHRONOS_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace chronos {

// Milliseconds since the Unix epoch.
using TimestampMs = int64_t;

// Abstract time source. Production code uses SystemClock; scheduler and
// reliability tests use SimulatedClock to drive heartbeat timeouts
// deterministically.
class Clock {
 public:
  virtual ~Clock() = default;

  virtual TimestampMs NowMs() const = 0;

  // Monotonic nanoseconds, for measuring durations.
  virtual uint64_t MonotonicNanos() const = 0;

  // Blocks the calling thread for ~`ms` (no-op advance for simulated clocks).
  virtual void SleepMs(int64_t ms) = 0;
};

// Wall-clock implementation backed by std::chrono.
class SystemClock : public Clock {
 public:
  TimestampMs NowMs() const override;
  uint64_t MonotonicNanos() const override;
  void SleepMs(int64_t ms) override;

  // Shared process-wide instance.
  static SystemClock* Get();
};

// Manually advanced clock for deterministic tests.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(TimestampMs start_ms = 0) : now_ms_(start_ms) {}

  TimestampMs NowMs() const override { return now_ms_.load(); }
  uint64_t MonotonicNanos() const override {
    return static_cast<uint64_t>(now_ms_.load()) * 1000000ull;
  }
  void SleepMs(int64_t ms) override { AdvanceMs(ms); }

  void AdvanceMs(int64_t ms) { now_ms_.fetch_add(ms); }
  void SetMs(TimestampMs ms) { now_ms_.store(ms); }

 private:
  std::atomic<TimestampMs> now_ms_;
};

// Formats a timestamp as "YYYY-MM-DD HH:MM:SS" (UTC).
std::string FormatTimestamp(TimestampMs ts_ms);

}  // namespace chronos

#endif  // CHRONOS_COMMON_CLOCK_H_
