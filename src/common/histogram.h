#ifndef CHRONOS_COMMON_HISTOGRAM_H_
#define CHRONOS_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace chronos {

// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets with
// linear sub-buckets). Records values in arbitrary units (the toolkit uses
// microseconds). Thread-safe.
class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void RecordMany(uint64_t value, uint64_t count);

  // Merges `other` into this histogram.
  void Merge(const Histogram& other);

  uint64_t count() const;
  uint64_t min() const;
  uint64_t max() const;
  double mean() const;
  double stddev() const;

  // q in [0, 1]; returns an upper bound of the bucket containing the
  // quantile. Percentile(0.5) is the median.
  uint64_t Percentile(double q) const;

  void Reset();

  // "count=... mean=... p50=... p95=... p99=... max=..."
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets/decade.
  static constexpr int kNumBuckets = 64 * (1 << kSubBucketBits);

  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

  mutable Mutex mu_;
  std::vector<uint64_t> buckets_ CHRONOS_GUARDED_BY(mu_);
  uint64_t count_ CHRONOS_GUARDED_BY(mu_) = 0;
  uint64_t min_ CHRONOS_GUARDED_BY(mu_) = 0;
  uint64_t max_ CHRONOS_GUARDED_BY(mu_) = 0;
  double sum_ CHRONOS_GUARDED_BY(mu_) = 0;
  double sum_sq_ CHRONOS_GUARDED_BY(mu_) = 0;
};

}  // namespace chronos

#endif  // CHRONOS_COMMON_HISTOGRAM_H_
