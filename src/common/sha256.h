#ifndef CHRONOS_COMMON_SHA256_H_
#define CHRONOS_COMMON_SHA256_H_

#include <string>
#include <string_view>

namespace chronos {

// FIPS 180-4 SHA-256. Returns the 32-byte digest as raw bytes.
std::string Sha256(std::string_view data);

// Lowercase hex digest.
std::string Sha256Hex(std::string_view data);

}  // namespace chronos

#endif  // CHRONOS_COMMON_SHA256_H_
