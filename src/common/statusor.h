#ifndef CHRONOS_COMMON_STATUSOR_H_
#define CHRONOS_COMMON_STATUSOR_H_

#include <cassert>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace chronos {

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Mirrors absl::StatusOr. Accessing the value of a non-OK
// StatusOr aborts the process (library code must check ok() first).
//
// [[nodiscard]] for the same reason as Status: a dropped StatusOr means a
// dropped error AND a dropped value.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // Implicit construction from a value or an error status keeps call sites
  // terse: `return value;` / `return Status::NotFound(...);`.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
    // Invariant violation, not process lifecycle.
    if (status_.ok()) std::abort();  // chronos-lint: allow
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Explicitly discards result and error alike (see Status::IgnoreError).
  void IgnoreError() const {}

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  void CheckHasValue() const {
    // Invariant violation, not process lifecycle.
    if (!value_.has_value()) std::abort();  // chronos-lint: allow
  }

  Status status_;
  std::optional<T> value_;
};

// Assigns the value of a StatusOr expression to `lhs`, or returns its status.
#define CHRONOS_ASSIGN_OR_RETURN(lhs, expr)           \
  auto CHRONOS_CONCAT_(_sor_, __LINE__) = (expr);     \
  if (!CHRONOS_CONCAT_(_sor_, __LINE__).ok())         \
    return CHRONOS_CONCAT_(_sor_, __LINE__).status(); \
  lhs = std::move(CHRONOS_CONCAT_(_sor_, __LINE__)).value()

#define CHRONOS_CONCAT_IMPL_(a, b) a##b
#define CHRONOS_CONCAT_(a, b) CHRONOS_CONCAT_IMPL_(a, b)

}  // namespace chronos

#endif  // CHRONOS_COMMON_STATUSOR_H_
