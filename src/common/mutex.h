#ifndef CHRONOS_COMMON_MUTEX_H_
#define CHRONOS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace chronos {

// Annotated locking primitives. All mutex-guarded state in the repo uses
// these wrappers instead of raw <mutex> types (enforced by
// scripts/chronos_lint.py); under Clang, -Wthread-safety then proves lock
// discipline at compile time.
//
// Lock-ordering rule of the repo: a thread holds at most one chronos::Mutex
// at a time unless an CHRONOS_ACQUIRED_BEFORE/AFTER edge documents the pair.
// Never call out to user callbacks, logging, HTTP, or other components'
// public APIs while holding a lock — copy what you need, unlock, then call.

class CHRONOS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CHRONOS_ACQUIRE() { mu_.lock(); }
  void Unlock() CHRONOS_RELEASE() { mu_.unlock(); }
  bool TryLock() CHRONOS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII exclusive lock over a Mutex, scoped to a block.
class CHRONOS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CHRONOS_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() CHRONOS_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Reader/writer lock. Readers use ReaderMutexLock / LockShared, writers
// WriterMutexLock / Lock.
class CHRONOS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() CHRONOS_ACQUIRE() { mu_.lock(); }
  void Unlock() CHRONOS_RELEASE() { mu_.unlock(); }
  void LockShared() CHRONOS_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() CHRONOS_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

class CHRONOS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) CHRONOS_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() CHRONOS_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

class CHRONOS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) CHRONOS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  // Scoped capabilities use the generic release form: the guard releases
  // whatever mode it acquired.
  ~ReaderMutexLock() CHRONOS_RELEASE_GENERIC() { mu_.UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to chronos::Mutex. Waits atomically release the
// mutex and re-acquire it before returning, so from the analysis' point of
// view the capability is held continuously across the call. Callers loop on
// their predicate in the annotated caller body (not a lambda, which the
// analysis cannot see into):
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) CHRONOS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller's guard still owns the re-acquired mutex.
  }

  // Returns false on timeout (the mutex is re-held either way).
  bool WaitForMs(Mutex& mu, int64_t timeout_ms) CHRONOS_REQUIRES(mu) {
    return WaitUntil(
        mu, std::chrono::steady_clock::now() +
                std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms));
  }

  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      CHRONOS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    bool signaled = cv_.wait_until(lock, deadline) == std::cv_status::no_timeout;
    lock.release();
    return signaled;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace chronos

#endif  // CHRONOS_COMMON_MUTEX_H_
