#ifndef CHRONOS_COMMON_THREADING_H_
#define CHRONOS_COMMON_THREADING_H_

#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace chronos {

// Unbounded MPMC queue. Pop blocks until an element arrives or the queue is
// closed; after Close, Pop drains remaining elements then returns nullopt.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is already closed.
  bool Push(T item) {
    {
      MutexLock lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    // Notify after unlocking so the woken consumer never blocks on mu_
    // still held by this producer.
    cv_.NotifyOne();
    return true;
  }

  std::optional<T> Pop() {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) cv_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    cv_.NotifyAll();
  }

  size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<T> items_ CHRONOS_GUARDED_BY(mu_);
  bool closed_ CHRONOS_GUARDED_BY(mu_) = false;
};

// Wraps `task` so it runs under the caller's trace context (captured now,
// installed around the call, previous context restored after). ThreadPool
// applies this to every submission; use it directly when handing closures
// across threads via a bare BlockingQueue or std::thread.
std::function<void()> WrapWithCurrentTrace(std::function<void()> task);

// Fixed-size worker pool executing submitted closures FIFO. Shutdown waits
// for queued work to drain. Tasks run under the submitter's trace context
// (see WrapWithCurrentTrace).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Returns false after Shutdown.
  bool Submit(std::function<void()> task);

  // Stops accepting work, runs everything already queued, joins workers.
  // Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;  // Written only in ctor; joined once.
  std::once_flag shutdown_once_;
};

// One-shot synchronization barrier: Wait blocks until the count reaches zero.
class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {}

  void CountDown() {
    bool released;
    {
      MutexLock lock(mu_);
      released = count_ > 0 && --count_ == 0;
    }
    // Notify after unlocking: notifying with mu_ held wakes waiters straight
    // into a blocked Lock() (wake-and-block), doubling the wakeup cost.
    if (released) cv_.NotifyAll();
  }

  void Wait() {
    MutexLock lock(mu_);
    while (count_ > 0) cv_.Wait(mu_);
  }

  // Returns false on timeout.
  bool WaitForMs(int64_t timeout_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
    MutexLock lock(mu_);
    while (count_ > 0) {
      if (!cv_.WaitUntil(mu_, deadline)) return count_ == 0;
    }
    return true;
  }

  int count() const {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable Mutex mu_;
  CondVar cv_;
  int count_ CHRONOS_GUARDED_BY(mu_);
};

}  // namespace chronos

#endif  // CHRONOS_COMMON_THREADING_H_
