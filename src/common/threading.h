#ifndef CHRONOS_COMMON_THREADING_H_
#define CHRONOS_COMMON_THREADING_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace chronos {

// Unbounded MPMC queue. Pop blocks until an element arrives or the queue is
// closed; after Close, Pop drains remaining elements then returns nullopt.
template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Returns false if the queue is already closed.
  bool Push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

// Fixed-size worker pool executing submitted closures FIFO. Shutdown waits
// for queued work to drain.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Returns false after Shutdown.
  bool Submit(std::function<void()> task);

  // Stops accepting work, runs everything already queued, joins workers.
  // Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  BlockingQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::once_flag shutdown_once_;
};

// One-shot synchronization barrier: Wait blocks until the count reaches zero.
class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {}

  void CountDown() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

  // Returns false on timeout.
  bool WaitForMs(int64_t timeout_ms) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [this] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

}  // namespace chronos

#endif  // CHRONOS_COMMON_THREADING_H_
