#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace chronos {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < (1u << kSubBucketBits)) return static_cast<int>(value);
  // Position of the highest set bit determines the power-of-two "decade";
  // the next kSubBucketBits bits select the linear sub-bucket.
  int msb = 63 - __builtin_clzll(value);
  int shift = msb - kSubBucketBits;
  int sub = static_cast<int>((value >> shift) & ((1 << kSubBucketBits) - 1));
  int bucket = (shift + 1) * (1 << kSubBucketBits) + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < (1 << kSubBucketBits)) return static_cast<uint64_t>(bucket);
  int shift = bucket / (1 << kSubBucketBits) - 1;
  int sub = bucket % (1 << kSubBucketBits);
  uint64_t base = (1ull << (shift + kSubBucketBits));
  uint64_t width = 1ull << shift;
  return base + width * (sub + 1) - 1;
}

void Histogram::Record(uint64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(uint64_t value, uint64_t count) {
  if (count == 0) return;
  MutexLock lock(mu_);
  buckets_[BucketFor(value)] += count;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_ += count;
  sum_ += static_cast<double>(value) * count;
  sum_sq_ += static_cast<double>(value) * value * count;
}

void Histogram::Merge(const Histogram& other) {
  std::vector<uint64_t> other_buckets;
  uint64_t o_count, o_min, o_max;
  double o_sum, o_sum_sq;
  {
    MutexLock lock(other.mu_);
    other_buckets = other.buckets_;
    o_count = other.count_;
    o_min = other.min_;
    o_max = other.max_;
    o_sum = other.sum_;
    o_sum_sq = other.sum_sq_;
  }
  if (o_count == 0) return;
  MutexLock lock(mu_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other_buckets[i];
  if (count_ == 0 || o_min < min_) min_ = o_min;
  if (count_ == 0 || o_max > max_) max_ = o_max;
  count_ += o_count;
  sum_ += o_sum;
  sum_sq_ += o_sum_sq;
}

uint64_t Histogram::count() const {
  MutexLock lock(mu_);
  return count_;
}

uint64_t Histogram::min() const {
  MutexLock lock(mu_);
  return min_;
}

uint64_t Histogram::max() const {
  MutexLock lock(mu_);
  return max_;
}

double Histogram::mean() const {
  MutexLock lock(mu_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::stddev() const {
  MutexLock lock(mu_);
  if (count_ == 0) return 0.0;
  double mean = sum_ / static_cast<double>(count_);
  double var = sum_sq_ / static_cast<double>(count_) - mean * mean;
  return var > 0 ? std::sqrt(var) : 0.0;
}

uint64_t Histogram::Percentile(double q) const {
  MutexLock lock(mu_);
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count_));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

void Histogram::Reset() {
  MutexLock lock(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0;
  sum_sq_ = 0;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count()), mean(),
                static_cast<unsigned long long>(Percentile(0.5)),
                static_cast<unsigned long long>(Percentile(0.95)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace chronos
