#ifndef CHRONOS_COMMON_UUID_H_
#define CHRONOS_COMMON_UUID_H_

#include <string>
#include <string_view>

namespace chronos {

// Returns a random (version 4) UUID as a lowercase hyphenated string,
// e.g. "de305d54-75b4-431b-adb2-eb6b9e546014". Thread-safe.
std::string GenerateUuid();

// True iff `s` has the canonical 8-4-4-4-12 hex layout.
bool IsValidUuid(std::string_view s);

}  // namespace chronos

#endif  // CHRONOS_COMMON_UUID_H_
