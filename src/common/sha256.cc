#include "common/sha256.h"

#include <cstdint>
#include <cstring>

#include "common/strings.h"

namespace chronos {

namespace {

constexpr uint32_t kRoundConstants[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

std::string Sha256(std::string_view data) {
  uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                   0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

  // Padded message: data || 0x80 || zeros || 64-bit big-endian bit length.
  std::string padded(data);
  uint64_t bit_length = static_cast<uint64_t>(data.size()) * 8;
  padded.push_back(static_cast<char>(0x80));
  while (padded.size() % 64 != 56) padded.push_back('\0');
  for (int i = 7; i >= 0; --i) {
    padded.push_back(static_cast<char>((bit_length >> (i * 8)) & 0xFF));
  }

  for (size_t block = 0; block < padded.size(); block += 64) {
    uint32_t w[64];
    for (int t = 0; t < 16; ++t) {
      w[t] = static_cast<uint32_t>(
                 static_cast<unsigned char>(padded[block + t * 4]))
                 << 24 |
             static_cast<uint32_t>(
                 static_cast<unsigned char>(padded[block + t * 4 + 1]))
                 << 16 |
             static_cast<uint32_t>(
                 static_cast<unsigned char>(padded[block + t * 4 + 2]))
                 << 8 |
             static_cast<uint32_t>(
                 static_cast<unsigned char>(padded[block + t * 4 + 3]));
    }
    for (int t = 16; t < 64; ++t) {
      uint32_t s0 = Rotr(w[t - 15], 7) ^ Rotr(w[t - 15], 18) ^ (w[t - 15] >> 3);
      uint32_t s1 = Rotr(w[t - 2], 17) ^ Rotr(w[t - 2], 19) ^ (w[t - 2] >> 10);
      w[t] = w[t - 16] + s0 + w[t - 7] + s1;
    }

    uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int t = 0; t < 64; ++t) {
      uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t temp1 = hh + s1 + ch + kRoundConstants[t] + w[t];
      uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t temp2 = s0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }

  std::string digest;
  digest.reserve(32);
  for (uint32_t word : h) {
    digest.push_back(static_cast<char>((word >> 24) & 0xFF));
    digest.push_back(static_cast<char>((word >> 16) & 0xFF));
    digest.push_back(static_cast<char>((word >> 8) & 0xFF));
    digest.push_back(static_cast<char>(word & 0xFF));
  }
  return digest;
}

std::string Sha256Hex(std::string_view data) {
  return strings::HexEncode(Sha256(data));
}

}  // namespace chronos
