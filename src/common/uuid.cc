#include "common/uuid.h"

#include <atomic>
#include <cctype>
#include <chrono>

#include "common/mutex.h"
#include "common/random.h"

namespace chronos {

namespace {

uint64_t MixedSeed() {
  static std::atomic<uint64_t> counter{0};
  uint64_t t = static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return t ^ (counter.fetch_add(1) * 0x2545F4914F6CDD1Dull);
}

}  // namespace

std::string GenerateUuid() {
  static Mutex mu;
  static Rng rng(MixedSeed());
  uint64_t hi, lo;
  {
    MutexLock lock(mu);
    hi = rng.NextUint64();
    lo = rng.NextUint64();
  }
  // Set version (4) and variant (10xx) bits.
  hi = (hi & 0xFFFFFFFFFFFF0FFFull) | 0x0000000000004000ull;
  lo = (lo & 0x3FFFFFFFFFFFFFFFull) | 0x8000000000000000ull;

  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(36);
  auto append_hex = [&out](uint64_t v, int nibbles) {
    for (int i = nibbles - 1; i >= 0; --i) {
      out.push_back(kHex[(v >> (i * 4)) & 0xF]);
    }
  };
  append_hex(hi >> 32, 8);
  out.push_back('-');
  append_hex((hi >> 16) & 0xFFFF, 4);
  out.push_back('-');
  append_hex(hi & 0xFFFF, 4);
  out.push_back('-');
  append_hex(lo >> 48, 4);
  out.push_back('-');
  append_hex(lo & 0xFFFFFFFFFFFFull, 12);
  return out;
}

bool IsValidUuid(std::string_view s) {
  if (s.size() != 36) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (s[i] != '-') return false;
    } else if (!std::isxdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace chronos
