#ifndef CHRONOS_COMMON_STRINGS_H_
#define CHRONOS_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace chronos::strings {

// Splits `input` on `sep`. An empty input yields a single empty token unless
// `skip_empty` is set. Never merges adjacent separators unless `skip_empty`.
std::vector<std::string> Split(std::string_view input, char sep,
                               bool skip_empty = false);

// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Case-insensitive ASCII equality (header names etc.).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Lowercase hex encoding of arbitrary bytes.
std::string HexEncode(std::string_view bytes);

// RFC 4648 base64 (with padding). Decode returns false on malformed input.
std::string Base64Encode(std::string_view bytes);
bool Base64Decode(std::string_view encoded, std::string* out);

// Percent-encoding for URL path/query components.
std::string UrlEncode(std::string_view s);
// Decodes %XX sequences and '+' as space; returns false on truncated escapes.
bool UrlDecode(std::string_view s, std::string* out);

// Parses a non-negative decimal integer; rejects trailing garbage.
bool ParseUint64(std::string_view s, uint64_t* out);
bool ParseInt64(std::string_view s, int64_t* out);
bool ParseDouble(std::string_view s, double* out);

// Fixed-width zero-padded decimal, e.g. PadNumber(7, 3) == "007".
std::string PadNumber(uint64_t value, int width);

}  // namespace chronos::strings

#endif  // CHRONOS_COMMON_STRINGS_H_
