#ifndef CHRONOS_OBS_TRACE_H_
#define CHRONOS_OBS_TRACE_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/logging.h"
#include "common/statusor.h"

namespace chronos::obs {

// Header carrying the trace context across the Control <-> Agent wire.
// Value format: "<32 hex trace_id>-<16 hex span_id>", e.g.
//   X-Chronos-Trace: 9f86d081884c7d659a2feaa0c55ad015-4355a46b19d348dc
inline constexpr char kTraceHeader[] = "X-Chronos-Trace";

// One hop of a distributed trace. The trace_id is shared by every request
// belonging to one logical operation (e.g. an agent's job execution); each
// hop gets its own span_id.
struct TraceContext {
  static constexpr size_t kTraceIdLength = 32;
  static constexpr size_t kSpanIdLength = 16;

  std::string trace_id;  // 32 lowercase hex chars.
  std::string span_id;   // 16 lowercase hex chars.

  bool valid() const { return !trace_id.empty(); }

  // Fresh trace with a root span.
  static TraceContext Generate();

  // Same trace, new span (the receiving side of a propagated context).
  TraceContext Child() const;

  // "<trace_id>-<span_id>".
  std::string ToHeader() const;

  // Strict parse of a header value; rejects malformed ids.
  static StatusOr<TraceContext> Parse(std::string_view header);

  // The REMOTE context a non-empty header carries, verbatim (the caller's
  // own span id — its Child()/a server Span parents under it). nullopt for
  // an absent header; a present-but-garbage header is also nullopt AND
  // counted in chronos_trace_header_malformed_total.
  static std::optional<TraceContext> FromHeader(std::string_view header);

  // Adopts a propagated context (as a child span) or starts a fresh trace
  // when the header is absent/garbage — the HTTP-ingress policy. Malformed
  // headers are counted via FromHeader.
  static TraceContext FromHeaderOrNew(std::string_view header);
};

// Random lowercase-hex id of the given length (span/trace id alphabet).
std::string RandomHexId(size_t length);

// RAII: installs `context` as the calling thread's current trace so every
// LogRecord emitted on this thread carries its ids; restores the previous
// context on destruction. Scopes nest.
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& context);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceIds previous_;
};

// The calling thread's current trace context (empty ids when no scope is
// active).
TraceContext CurrentTrace();

}  // namespace chronos::obs

#endif  // CHRONOS_OBS_TRACE_H_
