#ifndef CHRONOS_OBS_METRICS_REGISTRY_H_
#define CHRONOS_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace chronos::obs {

// Label set identifying one time series within a metric family,
// e.g. {{"method", "GET"}, {"route", "/api/v1/status"}}. Order is
// irrelevant; the registry sorts by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing count. Lock-free; handles are shared across
// threads freely.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value that can go up and down (queue depths, pool sizes).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Distribution metric backed by the shared log-bucketed Histogram; exposed
// in the Prometheus text format as a summary whose quantiles are derived at
// scrape time.
class HistogramMetric {
 public:
  void Observe(uint64_t value) {
    histogram_.Record(value);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return histogram_.count(); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Percentile(double q) const { return histogram_.Percentile(q); }
  const Histogram& histogram() const { return histogram_; }

 private:
  Histogram histogram_;
  std::atomic<uint64_t> sum_{0};
};

// Thread-safe registry of named + labelled metrics with a Prometheus text
// exposition writer. Get* registers on first use and returns the existing
// handle afterwards; handles are stable for the registry's lifetime, so hot
// paths may cache them in function-local statics.
//
// The process-wide instance (MetricsRegistry::Get()) is what the toolkit's
// instrumentation writes to and what GET /metrics renders; tests that need
// isolation construct their own registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide instance (never destroyed).
  static MetricsRegistry* Get();

  // Registering the same name with a different metric kind is a programming
  // error; the misfit caller gets a detached dummy handle so the process
  // keeps running and the original family keeps its type.
  Counter* GetCounter(const std::string& name, const std::string& help = "",
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help = "",
                  const Labels& labels = {});
  HistogramMetric* GetHistogram(const std::string& name,
                                const std::string& help = "",
                                const Labels& labels = {});

  // Hooks run at the start of every Render — the place to refresh gauges
  // that mirror external state (e.g. logger drop counts). Hooks may call
  // Get*/Set but must not call AddCollectionHook or Render.
  void AddCollectionHook(std::function<void()> hook);

  // Prometheus text exposition format 0.0.4: "# HELP"/"# TYPE" per family,
  // one sample line per series. Families sort by name, series by label set,
  // so output is deterministic.
  std::string RenderPrometheus();

  // Number of registered families (for tests).
  size_t family_count();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    // Keyed by the serialized label set ('k1="v1",k2="v2"', escaped), which
    // doubles as the rendered label body. Only the map matching `kind` is
    // populated.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<HistogramMetric>> histograms;
  };

  Family* FamilyFor(const std::string& name, const std::string& help,
                    Kind kind) CHRONOS_REQUIRES(mu_);

  Mutex mu_;
  std::map<std::string, Family> families_ CHRONOS_GUARDED_BY(mu_);
  std::vector<std::function<void()>> hooks_ CHRONOS_GUARDED_BY(mu_);
};

}  // namespace chronos::obs

#endif  // CHRONOS_OBS_METRICS_REGISTRY_H_
