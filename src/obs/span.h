#ifndef CHRONOS_OBS_SPAN_H_
#define CHRONOS_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "json/json.h"
#include "obs/trace.h"

namespace chronos::obs {

// A finished timed operation: one node of a Dapper-style trace tree. All
// timestamps are steady-clock nanoseconds from the collector's Clock, so
// durations are immune to wall-clock steps and — both processes sharing one
// CLOCK_MONOTONIC epoch on a host — Agent and Control spans of the same
// machine line up on one timeline.
struct SpanRecord {
  std::string trace_id;        // 32 lowercase hex (see trace.h).
  std::string span_id;         // 16 lowercase hex.
  std::string parent_span_id;  // Empty for a root span.
  std::string name;            // e.g. "control.claim", "wal.append".
  uint64_t start_nanos = 0;
  uint64_t end_nanos = 0;
  std::string status = "ok";   // "ok" or an error summary.
  std::vector<std::pair<std::string, std::string>> attributes;
  // Collector-local record sequence, assigned at Record() time. Strictly
  // increasing per process; the agent's shipping cursor rides on it.
  uint64_t seq = 0;

  uint64_t duration_nanos() const {
    return end_nanos >= start_nanos ? end_nanos - start_nanos : 0;
  }
};

// Process-wide sink for finished spans: a fixed-capacity ring buffer sharded
// BY TRACE ID, so every span of a trace lands in the same shard and
// per-trace lookup touches exactly one mutex. When a shard is full the
// oldest span is evicted and counted in chronos_spans_dropped_total — heavy
// traffic degrades trace completeness, never memory.
class SpanCollector {
 public:
  // `capacity` is the total span budget, split evenly across `shards`.
  explicit SpanCollector(size_t capacity = kDefaultCapacity,
                         size_t shards = kDefaultShards,
                         Clock* clock = nullptr);

  // The process-wide collector every Span records into by default.
  static SpanCollector* Get();

  // Collection switch. Disarmed, Span construction is a couple of relaxed
  // atomic loads and nothing is recorded; ships enabled in release.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Spans at least this long are logged at WARN and counted in
  // chronos_slow_spans_total{span=<name>}. 0 disables the policy.
  void set_slow_span_threshold_ms(int64_t ms) {
    slow_span_threshold_ms_.store(ms, std::memory_order_relaxed);
  }
  int64_t slow_span_threshold_ms() const {
    return slow_span_threshold_ms_.load(std::memory_order_relaxed);
  }

  Clock* clock() const { return clock_; }

  // Stores a finished span (evicting the shard's oldest if full) and returns
  // its assigned sequence number.
  uint64_t Record(SpanRecord record);

  // All retained spans of a trace, sorted by (start_nanos, seq).
  std::vector<SpanRecord> ForTrace(const std::string& trace_id) const;

  // All retained spans with seq > after_seq, sorted by seq. The agent's
  // piggyback shipping drains through this cursor.
  std::vector<SpanRecord> SnapshotSince(uint64_t after_seq) const;
  std::vector<SpanRecord> Snapshot() const { return SnapshotSince(0); }

  // True if the span is currently retained — the import-side dedupe for
  // at-least-once shipping.
  bool Contains(const std::string& trace_id, const std::string& span_id) const;

  // Lifetime counters (survive eviction) and current distinct-trace count.
  uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t last_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  size_t active_traces() const;

  // Drops every retained span (counters keep their lifetime values); tests
  // sharing the process-wide collector isolate themselves with this.
  void Clear();

  static constexpr size_t kDefaultCapacity = 8192;
  static constexpr size_t kDefaultShards = 8;

 private:
  struct Shard {
    mutable Mutex mu;
    std::deque<SpanRecord> ring CHRONOS_GUARDED_BY(mu);
    // trace_id -> number of retained spans; keys vanish at zero, so
    // size() == distinct traces currently in the shard.
    std::unordered_map<std::string, uint32_t> live CHRONOS_GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& trace_id) const;

  const size_t per_shard_capacity_;
  Clock* const clock_;
  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> slow_span_threshold_ms_{0};
  std::atomic<uint64_t> next_seq_{0};
  std::atomic<uint64_t> recorded_{0};
  std::atomic<uint64_t> dropped_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
};

// RAII timed span. Construction adopts the thread's current trace context as
// parent (starting a fresh trace if none is active) and installs its own ids
// as current, so nested Spans and CHRONOS_LOG lines parent/stamp correctly;
// End() (or destruction) restores the previous context and records into the
// collector. When the collector is disabled the constructor does no id
// generation and End() records nothing.
//
// Spans must nest like scopes on one thread — end the innermost first. To
// cross threads, capture CurrentTraceIds() / use WrapWithCurrentTrace (the
// ThreadPool does this automatically).
class Span {
 public:
  explicit Span(std::string name, SpanCollector* collector = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Renaming is allowed until End() — the router names its server span after
  // route matching so the slow-span metric gets a bounded label.
  void SetName(std::string name);
  void SetAttribute(const std::string& key, std::string value);
  // Any non-ok status marks the span failed with the message as status.
  void SetStatus(const Status& status);
  void SetError(std::string message);

  // Ends and records the span (idempotent; destructor calls it).
  void End();

  // This span's ids; !valid() when the collector was disabled at
  // construction.
  const TraceContext& context() const { return context_; }

  // 0 until End().
  uint64_t duration_nanos() const {
    return record_.end_nanos >= record_.start_nanos
               ? record_.end_nanos - record_.start_nanos
               : 0;
  }

 private:
  SpanCollector* collector_;
  bool armed_ = false;
  bool ended_ = false;
  TraceContext context_;
  TraceIds previous_;
  SpanRecord record_;
};

// --- Serialization & rendering --------------------------------------------

json::Json SpanToJson(const SpanRecord& span);
StatusOr<SpanRecord> SpanFromJson(const json::Json& value);
json::Json SpansToJson(const std::vector<SpanRecord>& spans);

// Chrome trace_event JSON (chrome://tracing, Perfetto): one complete ("X")
// event per span, ts/dur in microseconds, pid 1, agent spans on tid 2 and
// everything else on tid 1, ids and attributes under "args".
std::string RenderChromeTrace(const std::vector<SpanRecord>& spans);

// Indented duration tree for terminals (chronosctl trace). Spans whose
// parent is not in the set render as roots — shipping is eventually
// consistent, so orphans must degrade gracefully rather than vanish.
std::string RenderSpanTree(const std::vector<SpanRecord>& spans);

}  // namespace chronos::obs

#endif  // CHRONOS_OBS_SPAN_H_
