#include "obs/span.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "obs/metrics_registry.h"

namespace chronos::obs {

namespace {

// Lifetime counters for the process-wide collector's health; shared by test
// instances too (their exact accounting is asserted via the per-collector
// atomics instead).
Counter* RecordedTotal() {
  static Counter* counter = MetricsRegistry::Get()->GetCounter(
      "chronos_spans_recorded_total", "Finished spans recorded");
  return counter;
}

Counter* DroppedTotal() {
  static Counter* counter = MetricsRegistry::Get()->GetCounter(
      "chronos_spans_dropped_total",
      "Spans evicted from the collector ring before being read");
  return counter;
}

bool StartSeqLess(const SpanRecord& a, const SpanRecord& b) {
  if (a.start_nanos != b.start_nanos) return a.start_nanos < b.start_nanos;
  return a.seq < b.seq;
}

std::string FormatMillis(uint64_t nanos) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3fms",
                static_cast<double>(nanos) / 1e6);
  return buffer;
}

}  // namespace

SpanCollector::SpanCollector(size_t capacity, size_t shards, Clock* clock)
    : per_shard_capacity_(std::max<size_t>(1, capacity / std::max<size_t>(
                                                            1, shards))),
      clock_(clock ? clock : SystemClock::Get()) {
  shards_.reserve(std::max<size_t>(1, shards));
  for (size_t i = 0; i < std::max<size_t>(1, shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SpanCollector* SpanCollector::Get() {
  static SpanCollector* collector = new SpanCollector();  // Leaked singleton.
  return collector;
}

SpanCollector::Shard& SpanCollector::ShardFor(
    const std::string& trace_id) const {
  return *shards_[std::hash<std::string>{}(trace_id) % shards_.size()];
}

uint64_t SpanCollector::Record(SpanRecord record) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  record.seq = seq;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  RecordedTotal()->Increment();
  Shard& shard = ShardFor(record.trace_id);
  uint64_t evicted = 0;
  {
    MutexLock lock(shard.mu);
    shard.live[record.trace_id]++;
    shard.ring.push_back(std::move(record));
    while (shard.ring.size() > per_shard_capacity_) {
      auto it = shard.live.find(shard.ring.front().trace_id);
      if (it != shard.live.end() && --it->second == 0) shard.live.erase(it);
      shard.ring.pop_front();
      ++evicted;
    }
  }
  if (evicted > 0) {
    dropped_.fetch_add(evicted, std::memory_order_relaxed);
    DroppedTotal()->Increment(evicted);
  }
  return seq;
}

std::vector<SpanRecord> SpanCollector::ForTrace(
    const std::string& trace_id) const {
  std::vector<SpanRecord> spans;
  const Shard& shard = ShardFor(trace_id);
  {
    MutexLock lock(shard.mu);
    if (shard.live.count(trace_id) == 0) return spans;
    for (const SpanRecord& span : shard.ring) {
      if (span.trace_id == trace_id) spans.push_back(span);
    }
  }
  std::sort(spans.begin(), spans.end(), StartSeqLess);
  return spans;
}

std::vector<SpanRecord> SpanCollector::SnapshotSince(uint64_t after_seq) const {
  std::vector<SpanRecord> spans;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    for (const SpanRecord& span : shard->ring) {
      if (span.seq > after_seq) spans.push_back(span);
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.seq < b.seq;
            });
  return spans;
}

bool SpanCollector::Contains(const std::string& trace_id,
                             const std::string& span_id) const {
  const Shard& shard = ShardFor(trace_id);
  MutexLock lock(shard.mu);
  if (shard.live.count(trace_id) == 0) return false;
  for (const SpanRecord& span : shard.ring) {
    if (span.span_id == span_id && span.trace_id == trace_id) return true;
  }
  return false;
}

size_t SpanCollector::active_traces() const {
  size_t traces = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    traces += shard->live.size();
  }
  return traces;
}

void SpanCollector::Clear() {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->ring.clear();
    shard->live.clear();
  }
}

Span::Span(std::string name, SpanCollector* collector)
    : collector_(collector ? collector : SpanCollector::Get()) {
  if (!collector_->enabled()) return;  // Disarmed: two relaxed loads, done.
  armed_ = true;
  const TraceIds& current = CurrentTraceIds();
  if (!current.trace_id.empty()) {
    context_.trace_id = current.trace_id;
    context_.span_id = RandomHexId(TraceContext::kSpanIdLength);
    record_.parent_span_id = current.span_id;
  } else {
    context_ = TraceContext::Generate();
  }
  record_.trace_id = context_.trace_id;
  record_.span_id = context_.span_id;
  record_.name = std::move(name);
  previous_ = SwapCurrentTraceIds({context_.trace_id, context_.span_id});
  record_.start_nanos = collector_->clock()->MonotonicNanos();
}

Span::~Span() { End(); }

void Span::SetName(std::string name) {
  if (armed_ && !ended_) record_.name = std::move(name);
}

void Span::SetAttribute(const std::string& key, std::string value) {
  if (armed_ && !ended_) record_.attributes.emplace_back(key,
                                                         std::move(value));
}

void Span::SetStatus(const Status& status) {
  if (armed_ && !ended_ && !status.ok()) record_.status = status.ToString();
}

void Span::SetError(std::string message) {
  if (armed_ && !ended_) record_.status = std::move(message);
}

void Span::End() {
  if (!armed_ || ended_) return;
  ended_ = true;
  record_.end_nanos = collector_->clock()->MonotonicNanos();
  SwapCurrentTraceIds(std::move(previous_));
  collector_->Record(record_);
  const int64_t threshold_ms = collector_->slow_span_threshold_ms();
  if (threshold_ms > 0 &&
      record_.duration_nanos() >= static_cast<uint64_t>(threshold_ms) *
                                      1000000ull) {
    MetricsRegistry::Get()
        ->GetCounter("chronos_slow_spans_total",
                     "Spans exceeding the slow-span threshold, by span name",
                     {{"span", record_.name}})
        ->Increment();
    std::string attributes;
    for (const auto& [key, value] : record_.attributes) {
      attributes += " " + key + "=" + value;
    }
    // Logged here — after the collector released its shard lock — so the
    // WARN path never does I/O inside the collector.
    CHRONOS_LOG(kWarning, "obs.span")
        << "slow span " << record_.name << " took "
        << FormatMillis(record_.duration_nanos()) << " (threshold "
        << threshold_ms << "ms) trace=" << record_.trace_id
        << " span=" << record_.span_id << attributes;
  }
}

json::Json SpanToJson(const SpanRecord& span) {
  json::Json out = json::Json::MakeObject();
  out.Set("trace_id", span.trace_id);
  out.Set("span_id", span.span_id);
  out.Set("parent_span_id", span.parent_span_id);
  out.Set("name", span.name);
  out.Set("start_nanos", static_cast<int64_t>(span.start_nanos));
  out.Set("end_nanos", static_cast<int64_t>(span.end_nanos));
  out.Set("status", span.status);
  json::Json attributes = json::Json::MakeObject();
  for (const auto& [key, value] : span.attributes) {
    attributes.Set(key, value);
  }
  out.Set("attributes", std::move(attributes));
  return out;
}

StatusOr<SpanRecord> SpanFromJson(const json::Json& value) {
  if (!value.is_object()) {
    return Status::InvalidArgument("span must be an object");
  }
  SpanRecord span;
  span.trace_id = value.GetStringOr("trace_id", "");
  span.span_id = value.GetStringOr("span_id", "");
  span.parent_span_id = value.GetStringOr("parent_span_id", "");
  span.name = value.GetStringOr("name", "");
  span.start_nanos = static_cast<uint64_t>(value.GetIntOr("start_nanos", 0));
  span.end_nanos = static_cast<uint64_t>(value.GetIntOr("end_nanos", 0));
  span.status = value.GetStringOr("status", "ok");
  if (span.trace_id.empty() || span.span_id.empty() || span.name.empty()) {
    return Status::InvalidArgument("span missing trace_id/span_id/name");
  }
  if (value.Has("attributes") && value.at("attributes").is_object()) {
    for (const auto& [key, attr] : value.at("attributes").as_object()) {
      span.attributes.emplace_back(
          key, attr.is_string() ? attr.as_string() : attr.Dump());
    }
  }
  return span;
}

json::Json SpansToJson(const std::vector<SpanRecord>& spans) {
  json::Json out = json::Json::MakeArray();
  for (const SpanRecord& span : spans) out.Append(SpanToJson(span));
  return out;
}

std::string RenderChromeTrace(const std::vector<SpanRecord>& spans) {
  json::Json events = json::Json::MakeArray();
  // Named lanes: Control-process spans on tid 1, agent-side spans (shipped
  // over the wire) on tid 2, so the two halves of a stitched trace sit in
  // separate rows of the same timeline.
  const std::pair<int64_t, const char*> lanes[] = {{1, "control"},
                                                   {2, "agent"}};
  for (const auto& [tid, lane] : lanes) {
    json::Json meta = json::Json::MakeObject();
    meta.Set("name", "thread_name");
    meta.Set("ph", "M");
    meta.Set("pid", static_cast<int64_t>(1));
    meta.Set("tid", tid);
    json::Json args = json::Json::MakeObject();
    args.Set("name", lane);
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }
  for (const SpanRecord& span : spans) {
    json::Json event = json::Json::MakeObject();
    event.Set("name", span.name);
    event.Set("cat", "chronos");
    event.Set("ph", "X");
    event.Set("ts", static_cast<int64_t>(span.start_nanos / 1000));
    event.Set("dur", static_cast<int64_t>(span.duration_nanos() / 1000));
    event.Set("pid", static_cast<int64_t>(1));
    event.Set("tid", static_cast<int64_t>(
                         span.name.rfind("agent.", 0) == 0 ? 2 : 1));
    json::Json args = json::Json::MakeObject();
    args.Set("trace_id", span.trace_id);
    args.Set("span_id", span.span_id);
    args.Set("parent_span_id", span.parent_span_id);
    args.Set("status", span.status);
    for (const auto& [key, value] : span.attributes) args.Set(key, value);
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }
  json::Json out = json::Json::MakeObject();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", "ms");
  return out.Dump();
}

std::string RenderSpanTree(const std::vector<SpanRecord>& spans) {
  std::vector<SpanRecord> ordered = spans;
  std::sort(ordered.begin(), ordered.end(), StartSeqLess);
  std::unordered_map<std::string, std::vector<size_t>> children;
  std::unordered_map<std::string, size_t> by_id;
  for (size_t i = 0; i < ordered.size(); ++i) {
    by_id[ordered[i].span_id] = i;
  }
  std::vector<size_t> roots;
  for (size_t i = 0; i < ordered.size(); ++i) {
    const std::string& parent = ordered[i].parent_span_id;
    if (!parent.empty() && by_id.count(parent) > 0) {
      children[parent].push_back(i);
    } else {
      // Unknown parent: shipping is at-least-once and eventually consistent,
      // so render what we have as a root instead of hiding it.
      roots.push_back(i);
    }
  }
  std::string out;
  std::function<void(size_t, int)> render = [&](size_t index, int depth) {
    const SpanRecord& span = ordered[index];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += span.name;
    out += "  ";
    out += FormatMillis(span.duration_nanos());
    if (span.status != "ok") {
      out += "  status=";
      out += span.status;
    }
    for (const auto& [key, value] : span.attributes) {
      out += "  ";
      out += key;
      out += "=";
      out += value;
    }
    out += "\n";
    for (size_t child : children[span.span_id]) render(child, depth + 1);
  };
  for (size_t root : roots) render(root, 0);
  return out;
}

}  // namespace chronos::obs
