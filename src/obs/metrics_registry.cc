#include "obs/metrics_registry.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace chronos::obs {

namespace {

// Prometheus label values escape backslash, double quote and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// 'k1="v1",k2="v2"' with keys sorted — the canonical series key and the
// rendered label body in one.
std::string SerializeLabels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [key, value] : sorted) {
    if (!out.empty()) out += ',';
    out += key;
    out += "=\"";
    out += EscapeLabelValue(value);
    out += '"';
  }
  return out;
}

void AppendSample(std::string* out, const std::string& name,
                  const std::string& labels, const std::string& extra_label,
                  uint64_t value) {
  *out += name;
  if (!labels.empty() || !extra_label.empty()) {
    *out += '{';
    *out += labels;
    if (!labels.empty() && !extra_label.empty()) *out += ',';
    *out += extra_label;
    *out += '}';
  }
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

}  // namespace

MetricsRegistry* MetricsRegistry::Get() {
  static MetricsRegistry* registry = [] {
    auto* created = new MetricsRegistry();
    // Default hook: surface the logger's dropped-record count (sinks that
    // threw) without making the common layer depend on obs.
    Gauge* dropped =
        created->GetGauge("chronos_logger_dropped_records",
                          "Log records dropped because a sink threw");
    created->AddCollectionHook([dropped] {
      dropped->Set(
          static_cast<int64_t>(Logger::Get()->dropped_records()));
    });
    return created;
  }();
  return registry;
}

MetricsRegistry::Family* MetricsRegistry::FamilyFor(const std::string& name,
                                                    const std::string& help,
                                                    Kind kind) {
  // Caller holds mu_.
  auto it = families_.find(name);
  if (it == families_.end()) {
    Family family;
    family.kind = kind;
    family.help = help;
    it = families_.emplace(name, std::move(family)).first;
  } else if (it->second.kind != kind) {
    return nullptr;  // Kind conflict; caller hands out a dummy.
  }
  if (it->second.help.empty() && !help.empty()) it->second.help = help;
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const Labels& labels) {
  std::string key = SerializeLabels(labels);
  MutexLock lock(mu_);
  Family* family = FamilyFor(name, help, Kind::kCounter);
  if (family == nullptr) {
    static Counter* mismatch = new Counter();
    return mismatch;
  }
  auto& slot = family->counters[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const Labels& labels) {
  std::string key = SerializeLabels(labels);
  MutexLock lock(mu_);
  Family* family = FamilyFor(name, help, Kind::kGauge);
  if (family == nullptr) {
    static Gauge* mismatch = new Gauge();
    return mismatch;
  }
  auto& slot = family->gauges[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const std::string& help,
                                               const Labels& labels) {
  std::string key = SerializeLabels(labels);
  MutexLock lock(mu_);
  Family* family = FamilyFor(name, help, Kind::kHistogram);
  if (family == nullptr) {
    static HistogramMetric* mismatch = new HistogramMetric();
    return mismatch;
  }
  auto& slot = family->histograms[key];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>();
  return slot.get();
}

void MetricsRegistry::AddCollectionHook(std::function<void()> hook) {
  MutexLock lock(mu_);
  hooks_.push_back(std::move(hook));
}

std::string MetricsRegistry::RenderPrometheus() {
  // Hooks run outside the lock: they are allowed to register/update metrics.
  std::vector<std::function<void()>> hooks;
  {
    MutexLock lock(mu_);
    hooks = hooks_;
  }
  for (const auto& hook : hooks) hook();

  static constexpr double kQuantiles[] = {0.5, 0.9, 0.99};

  std::string out;
  MutexLock lock(mu_);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter:
        out += "counter\n";
        for (const auto& [labels, counter] : family.counters) {
          AppendSample(&out, name, labels, "", counter->value());
        }
        break;
      case Kind::kGauge:
        out += "gauge\n";
        for (const auto& [labels, gauge] : family.gauges) {
          out += name;
          if (!labels.empty()) out += "{" + labels + "}";
          out += ' ';
          out += std::to_string(gauge->value());
          out += '\n';
        }
        break;
      case Kind::kHistogram:
        out += "summary\n";
        for (const auto& [labels, histogram] : family.histograms) {
          for (double q : kQuantiles) {
            char quantile_label[32];
            std::snprintf(quantile_label, sizeof(quantile_label),
                          "quantile=\"%g\"", q);
            AppendSample(&out, name, labels, quantile_label,
                         histogram->Percentile(q));
          }
          AppendSample(&out, name + "_sum", labels, "", histogram->sum());
          AppendSample(&out, name + "_count", labels, "",
                       histogram->count());
        }
        break;
    }
  }
  return out;
}

size_t MetricsRegistry::family_count() {
  MutexLock lock(mu_);
  return families_.size();
}

}  // namespace chronos::obs
