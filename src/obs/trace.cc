#include "obs/trace.h"

#include <algorithm>

#include "common/uuid.h"
#include "obs/metrics_registry.h"

namespace chronos::obs {

namespace {

constexpr size_t kTraceIdLen = TraceContext::kTraceIdLength;
constexpr size_t kSpanIdLen = TraceContext::kSpanIdLength;

bool IsLowerHex(std::string_view s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

}  // namespace

// GenerateUuid gives 32 hex chars once the hyphens are stripped.
std::string RandomHexId(size_t length) {
  std::string hex;
  while (hex.size() < length) {
    for (char c : GenerateUuid()) {
      if (c != '-') hex += c;
    }
  }
  hex.resize(length);
  return hex;
}

TraceContext TraceContext::Generate() {
  TraceContext context;
  context.trace_id = RandomHexId(kTraceIdLen);
  context.span_id = RandomHexId(kSpanIdLen);
  return context;
}

TraceContext TraceContext::Child() const {
  TraceContext child;
  child.trace_id = trace_id;
  child.span_id = RandomHexId(kSpanIdLen);
  return child;
}

std::string TraceContext::ToHeader() const { return trace_id + "-" + span_id; }

StatusOr<TraceContext> TraceContext::Parse(std::string_view header) {
  if (header.size() != kTraceIdLen + 1 + kSpanIdLen ||
      header[kTraceIdLen] != '-') {
    return Status::InvalidArgument("bad trace header layout");
  }
  TraceContext context;
  context.trace_id = std::string(header.substr(0, kTraceIdLen));
  context.span_id = std::string(header.substr(kTraceIdLen + 1));
  if (!IsLowerHex(context.trace_id) || !IsLowerHex(context.span_id)) {
    return Status::InvalidArgument("trace ids must be lowercase hex");
  }
  return context;
}

std::optional<TraceContext> TraceContext::FromHeader(std::string_view header) {
  if (header.empty()) return std::nullopt;
  auto parsed = Parse(header);
  if (parsed.ok()) return *parsed;
  // A present-but-garbage header means a peer is mis-propagating; surface it
  // instead of silently starting fresh traces.
  static Counter* malformed = MetricsRegistry::Get()->GetCounter(
      "chronos_trace_header_malformed_total",
      "X-Chronos-Trace headers discarded as unparseable");
  malformed->Increment();
  return std::nullopt;
}

TraceContext TraceContext::FromHeaderOrNew(std::string_view header) {
  if (std::optional<TraceContext> remote = FromHeader(header)) {
    return remote->Child();
  }
  return Generate();
}

TraceScope::TraceScope(const TraceContext& context)
    : previous_(SwapCurrentTraceIds({context.trace_id, context.span_id})) {}

TraceScope::~TraceScope() { SwapCurrentTraceIds(std::move(previous_)); }

TraceContext CurrentTrace() {
  const TraceIds& ids = CurrentTraceIds();
  TraceContext context;
  context.trace_id = ids.trace_id;
  context.span_id = ids.span_id;
  return context;
}

}  // namespace chronos::obs
