#include "obs/trace.h"

#include <algorithm>

#include "common/uuid.h"

namespace chronos::obs {

namespace {

constexpr size_t kTraceIdLen = 32;
constexpr size_t kSpanIdLen = 16;

bool IsLowerHex(std::string_view s) {
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
  });
}

// GenerateUuid gives 32 hex chars once the hyphens are stripped.
std::string RandomHex(size_t length) {
  std::string hex;
  while (hex.size() < length) {
    for (char c : GenerateUuid()) {
      if (c != '-') hex += c;
    }
  }
  hex.resize(length);
  return hex;
}

}  // namespace

TraceContext TraceContext::Generate() {
  TraceContext context;
  context.trace_id = RandomHex(kTraceIdLen);
  context.span_id = RandomHex(kSpanIdLen);
  return context;
}

TraceContext TraceContext::Child() const {
  TraceContext child;
  child.trace_id = trace_id;
  child.span_id = RandomHex(kSpanIdLen);
  return child;
}

std::string TraceContext::ToHeader() const { return trace_id + "-" + span_id; }

StatusOr<TraceContext> TraceContext::Parse(std::string_view header) {
  if (header.size() != kTraceIdLen + 1 + kSpanIdLen ||
      header[kTraceIdLen] != '-') {
    return Status::InvalidArgument("bad trace header layout");
  }
  TraceContext context;
  context.trace_id = std::string(header.substr(0, kTraceIdLen));
  context.span_id = std::string(header.substr(kTraceIdLen + 1));
  if (!IsLowerHex(context.trace_id) || !IsLowerHex(context.span_id)) {
    return Status::InvalidArgument("trace ids must be lowercase hex");
  }
  return context;
}

TraceContext TraceContext::FromHeaderOrNew(std::string_view header) {
  if (!header.empty()) {
    auto parsed = Parse(header);
    if (parsed.ok()) return parsed->Child();
  }
  return Generate();
}

TraceScope::TraceScope(const TraceContext& context)
    : previous_(SwapCurrentTraceIds({context.trace_id, context.span_id})) {}

TraceScope::~TraceScope() { SwapCurrentTraceIds(std::move(previous_)); }

TraceContext CurrentTrace() {
  const TraceIds& ids = CurrentTraceIds();
  TraceContext context;
  context.trace_id = ids.trace_id;
  context.span_id = ids.span_id;
  return context;
}

}  // namespace chronos::obs
