# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/archive_test[1]_include.cmake")
include("/root/repo/build/tests/store_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/mokkadb_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/chronosctl_test[1]_include.cmake")
include("/root/repo/build/tests/adversarial_test[1]_include.cmake")
include("/root/repo/build/tests/agent_test[1]_include.cmake")
