# Empty dependencies file for mokkadb_test.
# This may be replaced when dependencies are built.
