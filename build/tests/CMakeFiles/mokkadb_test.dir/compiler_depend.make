# Empty compiler generated dependencies file for mokkadb_test.
# This may be replaced when dependencies are built.
