file(REMOVE_RECURSE
  "CMakeFiles/mokkadb_test.dir/mokkadb_test.cc.o"
  "CMakeFiles/mokkadb_test.dir/mokkadb_test.cc.o.d"
  "mokkadb_test"
  "mokkadb_test.pdb"
  "mokkadb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mokkadb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
