# Empty compiler generated dependencies file for chronosctl_test.
# This may be replaced when dependencies are built.
