file(REMOVE_RECURSE
  "CMakeFiles/chronosctl_test.dir/chronosctl_test.cc.o"
  "CMakeFiles/chronosctl_test.dir/chronosctl_test.cc.o.d"
  "chronosctl_test"
  "chronosctl_test.pdb"
  "chronosctl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronosctl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
