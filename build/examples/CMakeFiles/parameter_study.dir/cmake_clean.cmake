file(REMOVE_RECURSE
  "CMakeFiles/parameter_study.dir/parameter_study.cpp.o"
  "CMakeFiles/parameter_study.dir/parameter_study.cpp.o.d"
  "parameter_study"
  "parameter_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
