# Empty dependencies file for parameter_study.
# This may be replaced when dependencies are built.
