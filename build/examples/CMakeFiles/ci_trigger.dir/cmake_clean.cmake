file(REMOVE_RECURSE
  "CMakeFiles/ci_trigger.dir/ci_trigger.cpp.o"
  "CMakeFiles/ci_trigger.dir/ci_trigger.cpp.o.d"
  "ci_trigger"
  "ci_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ci_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
