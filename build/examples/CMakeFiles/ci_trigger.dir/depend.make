# Empty dependencies file for ci_trigger.
# This may be replaced when dependencies are built.
