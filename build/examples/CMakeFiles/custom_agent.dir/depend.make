# Empty dependencies file for custom_agent.
# This may be replaced when dependencies are built.
