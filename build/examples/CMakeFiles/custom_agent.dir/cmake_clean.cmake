file(REMOVE_RECURSE
  "CMakeFiles/custom_agent.dir/custom_agent.cpp.o"
  "CMakeFiles/custom_agent.dir/custom_agent.cpp.o.d"
  "custom_agent"
  "custom_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
