file(REMOVE_RECURSE
  "CMakeFiles/mongo_comparison.dir/mongo_comparison.cpp.o"
  "CMakeFiles/mongo_comparison.dir/mongo_comparison.cpp.o.d"
  "mongo_comparison"
  "mongo_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mongo_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
