# Empty compiler generated dependencies file for mongo_comparison.
# This may be replaced when dependencies are built.
