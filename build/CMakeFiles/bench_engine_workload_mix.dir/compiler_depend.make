# Empty compiler generated dependencies file for bench_engine_workload_mix.
# This may be replaced when dependencies are built.
