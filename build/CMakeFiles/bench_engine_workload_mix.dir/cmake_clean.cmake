file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_workload_mix.dir/bench/bench_engine_workload_mix.cc.o"
  "CMakeFiles/bench_engine_workload_mix.dir/bench/bench_engine_workload_mix.cc.o.d"
  "bench/bench_engine_workload_mix"
  "bench/bench_engine_workload_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_workload_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
