# Empty dependencies file for bench_fig3d_engine_threads.
# This may be replaced when dependencies are built.
