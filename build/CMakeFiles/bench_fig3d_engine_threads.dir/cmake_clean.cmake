file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3d_engine_threads.dir/bench/bench_fig3d_engine_threads.cc.o"
  "CMakeFiles/bench_fig3d_engine_threads.dir/bench/bench_fig3d_engine_threads.cc.o.d"
  "bench/bench_fig3d_engine_threads"
  "bench/bench_fig3d_engine_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3d_engine_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
