file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduler_throughput.dir/bench/bench_scheduler_throughput.cc.o"
  "CMakeFiles/bench_scheduler_throughput.dir/bench/bench_scheduler_throughput.cc.o.d"
  "bench/bench_scheduler_throughput"
  "bench/bench_scheduler_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
