# Empty compiler generated dependencies file for bench_scheduler_throughput.
# This may be replaced when dependencies are built.
