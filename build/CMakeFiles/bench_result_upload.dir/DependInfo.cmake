
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_result_upload.cc" "CMakeFiles/bench_result_upload.dir/bench/bench_result_upload.cc.o" "gcc" "CMakeFiles/bench_result_upload.dir/bench/bench_result_upload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chronos_control.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_clients.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_mokkadb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
