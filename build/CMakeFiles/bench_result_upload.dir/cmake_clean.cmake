file(REMOVE_RECURSE
  "CMakeFiles/bench_result_upload.dir/bench/bench_result_upload.cc.o"
  "CMakeFiles/bench_result_upload.dir/bench/bench_result_upload.cc.o.d"
  "bench/bench_result_upload"
  "bench/bench_result_upload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_result_upload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
