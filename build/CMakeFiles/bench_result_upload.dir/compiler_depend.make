# Empty compiler generated dependencies file for bench_result_upload.
# This may be replaced when dependencies are built.
