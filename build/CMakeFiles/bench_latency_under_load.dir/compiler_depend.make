# Empty compiler generated dependencies file for bench_latency_under_load.
# This may be replaced when dependencies are built.
