file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_under_load.dir/bench/bench_latency_under_load.cc.o"
  "CMakeFiles/bench_latency_under_load.dir/bench/bench_latency_under_load.cc.o.d"
  "bench/bench_latency_under_load"
  "bench/bench_latency_under_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_under_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
