# Empty compiler generated dependencies file for bench_analysis_pipeline.
# This may be replaced when dependencies are built.
