file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_pipeline.dir/bench/bench_analysis_pipeline.cc.o"
  "CMakeFiles/bench_analysis_pipeline.dir/bench/bench_analysis_pipeline.cc.o.d"
  "bench/bench_analysis_pipeline"
  "bench/bench_analysis_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
