file(REMOVE_RECURSE
  "CMakeFiles/bench_rest_api.dir/bench/bench_rest_api.cc.o"
  "CMakeFiles/bench_rest_api.dir/bench/bench_rest_api.cc.o.d"
  "bench/bench_rest_api"
  "bench/bench_rest_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rest_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
