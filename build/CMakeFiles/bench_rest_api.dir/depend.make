# Empty dependencies file for bench_rest_api.
# This may be replaced when dependencies are built.
