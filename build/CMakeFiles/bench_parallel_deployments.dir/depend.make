# Empty dependencies file for bench_parallel_deployments.
# This may be replaced when dependencies are built.
