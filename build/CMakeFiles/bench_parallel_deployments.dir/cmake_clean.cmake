file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_deployments.dir/bench/bench_parallel_deployments.cc.o"
  "CMakeFiles/bench_parallel_deployments.dir/bench/bench_parallel_deployments.cc.o.d"
  "bench/bench_parallel_deployments"
  "bench/bench_parallel_deployments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_deployments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
