file(REMOVE_RECURSE
  "libchronos_clients.a"
)
