# Empty dependencies file for chronos_clients.
# This may be replaced when dependencies are built.
