file(REMOVE_RECURSE
  "CMakeFiles/chronos_clients.dir/clients/mokka_client.cc.o"
  "CMakeFiles/chronos_clients.dir/clients/mokka_client.cc.o.d"
  "CMakeFiles/chronos_clients.dir/clients/mokka_provisioner.cc.o"
  "CMakeFiles/chronos_clients.dir/clients/mokka_provisioner.cc.o.d"
  "libchronos_clients.a"
  "libchronos_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
