# Empty compiler generated dependencies file for chronos_model.
# This may be replaced when dependencies are built.
