file(REMOVE_RECURSE
  "CMakeFiles/chronos_model.dir/model/entities.cc.o"
  "CMakeFiles/chronos_model.dir/model/entities.cc.o.d"
  "CMakeFiles/chronos_model.dir/model/job_state.cc.o"
  "CMakeFiles/chronos_model.dir/model/job_state.cc.o.d"
  "CMakeFiles/chronos_model.dir/model/parameter_space.cc.o"
  "CMakeFiles/chronos_model.dir/model/parameter_space.cc.o.d"
  "CMakeFiles/chronos_model.dir/model/repository.cc.o"
  "CMakeFiles/chronos_model.dir/model/repository.cc.o.d"
  "libchronos_model.a"
  "libchronos_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
