file(REMOVE_RECURSE
  "libchronos_model.a"
)
