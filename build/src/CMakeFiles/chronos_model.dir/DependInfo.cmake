
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/entities.cc" "src/CMakeFiles/chronos_model.dir/model/entities.cc.o" "gcc" "src/CMakeFiles/chronos_model.dir/model/entities.cc.o.d"
  "/root/repo/src/model/job_state.cc" "src/CMakeFiles/chronos_model.dir/model/job_state.cc.o" "gcc" "src/CMakeFiles/chronos_model.dir/model/job_state.cc.o.d"
  "/root/repo/src/model/parameter_space.cc" "src/CMakeFiles/chronos_model.dir/model/parameter_space.cc.o" "gcc" "src/CMakeFiles/chronos_model.dir/model/parameter_space.cc.o.d"
  "/root/repo/src/model/repository.cc" "src/CMakeFiles/chronos_model.dir/model/repository.cc.o" "gcc" "src/CMakeFiles/chronos_model.dir/model/repository.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chronos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_archive.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
