file(REMOVE_RECURSE
  "CMakeFiles/chronos_tools.dir/tools/chronosctl.cc.o"
  "CMakeFiles/chronos_tools.dir/tools/chronosctl.cc.o.d"
  "libchronos_tools.a"
  "libchronos_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
