file(REMOVE_RECURSE
  "libchronos_tools.a"
)
