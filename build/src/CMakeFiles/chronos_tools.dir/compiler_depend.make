# Empty compiler generated dependencies file for chronos_tools.
# This may be replaced when dependencies are built.
