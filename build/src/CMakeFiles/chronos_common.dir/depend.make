# Empty dependencies file for chronos_common.
# This may be replaced when dependencies are built.
