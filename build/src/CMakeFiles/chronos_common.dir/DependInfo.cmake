
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/chronos_common.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/chronos_common.dir/common/clock.cc.o.d"
  "/root/repo/src/common/file_util.cc" "src/CMakeFiles/chronos_common.dir/common/file_util.cc.o" "gcc" "src/CMakeFiles/chronos_common.dir/common/file_util.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/chronos_common.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/chronos_common.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/chronos_common.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/chronos_common.dir/common/logging.cc.o.d"
  "/root/repo/src/common/sha256.cc" "src/CMakeFiles/chronos_common.dir/common/sha256.cc.o" "gcc" "src/CMakeFiles/chronos_common.dir/common/sha256.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/chronos_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/chronos_common.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/chronos_common.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/chronos_common.dir/common/strings.cc.o.d"
  "/root/repo/src/common/threading.cc" "src/CMakeFiles/chronos_common.dir/common/threading.cc.o" "gcc" "src/CMakeFiles/chronos_common.dir/common/threading.cc.o.d"
  "/root/repo/src/common/uuid.cc" "src/CMakeFiles/chronos_common.dir/common/uuid.cc.o" "gcc" "src/CMakeFiles/chronos_common.dir/common/uuid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
