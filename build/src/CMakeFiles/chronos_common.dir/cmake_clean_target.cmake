file(REMOVE_RECURSE
  "libchronos_common.a"
)
