file(REMOVE_RECURSE
  "CMakeFiles/chronos_common.dir/common/clock.cc.o"
  "CMakeFiles/chronos_common.dir/common/clock.cc.o.d"
  "CMakeFiles/chronos_common.dir/common/file_util.cc.o"
  "CMakeFiles/chronos_common.dir/common/file_util.cc.o.d"
  "CMakeFiles/chronos_common.dir/common/histogram.cc.o"
  "CMakeFiles/chronos_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/chronos_common.dir/common/logging.cc.o"
  "CMakeFiles/chronos_common.dir/common/logging.cc.o.d"
  "CMakeFiles/chronos_common.dir/common/sha256.cc.o"
  "CMakeFiles/chronos_common.dir/common/sha256.cc.o.d"
  "CMakeFiles/chronos_common.dir/common/status.cc.o"
  "CMakeFiles/chronos_common.dir/common/status.cc.o.d"
  "CMakeFiles/chronos_common.dir/common/strings.cc.o"
  "CMakeFiles/chronos_common.dir/common/strings.cc.o.d"
  "CMakeFiles/chronos_common.dir/common/threading.cc.o"
  "CMakeFiles/chronos_common.dir/common/threading.cc.o.d"
  "CMakeFiles/chronos_common.dir/common/uuid.cc.o"
  "CMakeFiles/chronos_common.dir/common/uuid.cc.o.d"
  "libchronos_common.a"
  "libchronos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
