file(REMOVE_RECURSE
  "CMakeFiles/chronos_control.dir/control/archiver.cc.o"
  "CMakeFiles/chronos_control.dir/control/archiver.cc.o.d"
  "CMakeFiles/chronos_control.dir/control/auth.cc.o"
  "CMakeFiles/chronos_control.dir/control/auth.cc.o.d"
  "CMakeFiles/chronos_control.dir/control/control_service.cc.o"
  "CMakeFiles/chronos_control.dir/control/control_service.cc.o.d"
  "CMakeFiles/chronos_control.dir/control/heartbeat_monitor.cc.o"
  "CMakeFiles/chronos_control.dir/control/heartbeat_monitor.cc.o.d"
  "CMakeFiles/chronos_control.dir/control/provisioner.cc.o"
  "CMakeFiles/chronos_control.dir/control/provisioner.cc.o.d"
  "CMakeFiles/chronos_control.dir/control/rest_api.cc.o"
  "CMakeFiles/chronos_control.dir/control/rest_api.cc.o.d"
  "CMakeFiles/chronos_control.dir/control/web_ui.cc.o"
  "CMakeFiles/chronos_control.dir/control/web_ui.cc.o.d"
  "libchronos_control.a"
  "libchronos_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
