file(REMOVE_RECURSE
  "libchronos_control.a"
)
