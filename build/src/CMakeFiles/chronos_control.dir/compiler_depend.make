# Empty compiler generated dependencies file for chronos_control.
# This may be replaced when dependencies are built.
