file(REMOVE_RECURSE
  "libchronos_mokkadb.a"
)
