file(REMOVE_RECURSE
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/btree_engine.cc.o"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/btree_engine.cc.o.d"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/collection.cc.o"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/collection.cc.o.d"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/database.cc.o"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/database.cc.o.d"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/mmap_engine.cc.o"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/mmap_engine.cc.o.d"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/storage_engine.cc.o"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/storage_engine.cc.o.d"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/wire.cc.o"
  "CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/wire.cc.o.d"
  "libchronos_mokkadb.a"
  "libchronos_mokkadb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_mokkadb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
