
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sue/mokkadb/btree_engine.cc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/btree_engine.cc.o" "gcc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/btree_engine.cc.o.d"
  "/root/repo/src/sue/mokkadb/collection.cc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/collection.cc.o" "gcc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/collection.cc.o.d"
  "/root/repo/src/sue/mokkadb/database.cc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/database.cc.o" "gcc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/database.cc.o.d"
  "/root/repo/src/sue/mokkadb/mmap_engine.cc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/mmap_engine.cc.o" "gcc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/mmap_engine.cc.o.d"
  "/root/repo/src/sue/mokkadb/storage_engine.cc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/storage_engine.cc.o" "gcc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/storage_engine.cc.o.d"
  "/root/repo/src/sue/mokkadb/wire.cc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/wire.cc.o" "gcc" "src/CMakeFiles/chronos_mokkadb.dir/sue/mokkadb/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chronos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_archive.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chronos_store.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
