# Empty compiler generated dependencies file for chronos_mokkadb.
# This may be replaced when dependencies are built.
