file(REMOVE_RECURSE
  "CMakeFiles/chronos_analysis.dir/analysis/diagrams.cc.o"
  "CMakeFiles/chronos_analysis.dir/analysis/diagrams.cc.o.d"
  "CMakeFiles/chronos_analysis.dir/analysis/metrics.cc.o"
  "CMakeFiles/chronos_analysis.dir/analysis/metrics.cc.o.d"
  "libchronos_analysis.a"
  "libchronos_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
