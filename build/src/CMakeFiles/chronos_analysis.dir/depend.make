# Empty dependencies file for chronos_analysis.
# This may be replaced when dependencies are built.
