file(REMOVE_RECURSE
  "libchronos_analysis.a"
)
