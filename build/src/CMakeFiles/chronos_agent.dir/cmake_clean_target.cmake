file(REMOVE_RECURSE
  "libchronos_agent.a"
)
