# Empty compiler generated dependencies file for chronos_agent.
# This may be replaced when dependencies are built.
