file(REMOVE_RECURSE
  "CMakeFiles/chronos_agent.dir/agent/agent.cc.o"
  "CMakeFiles/chronos_agent.dir/agent/agent.cc.o.d"
  "libchronos_agent.a"
  "libchronos_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
