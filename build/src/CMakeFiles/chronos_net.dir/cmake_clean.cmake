file(REMOVE_RECURSE
  "CMakeFiles/chronos_net.dir/net/ftp.cc.o"
  "CMakeFiles/chronos_net.dir/net/ftp.cc.o.d"
  "CMakeFiles/chronos_net.dir/net/http.cc.o"
  "CMakeFiles/chronos_net.dir/net/http.cc.o.d"
  "CMakeFiles/chronos_net.dir/net/router.cc.o"
  "CMakeFiles/chronos_net.dir/net/router.cc.o.d"
  "CMakeFiles/chronos_net.dir/net/tcp.cc.o"
  "CMakeFiles/chronos_net.dir/net/tcp.cc.o.d"
  "libchronos_net.a"
  "libchronos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
