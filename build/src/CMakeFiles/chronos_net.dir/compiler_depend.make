# Empty compiler generated dependencies file for chronos_net.
# This may be replaced when dependencies are built.
