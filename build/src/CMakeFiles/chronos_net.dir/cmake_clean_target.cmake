file(REMOVE_RECURSE
  "libchronos_net.a"
)
