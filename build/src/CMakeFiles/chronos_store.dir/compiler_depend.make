# Empty compiler generated dependencies file for chronos_store.
# This may be replaced when dependencies are built.
