file(REMOVE_RECURSE
  "CMakeFiles/chronos_store.dir/store/table_store.cc.o"
  "CMakeFiles/chronos_store.dir/store/table_store.cc.o.d"
  "CMakeFiles/chronos_store.dir/store/wal.cc.o"
  "CMakeFiles/chronos_store.dir/store/wal.cc.o.d"
  "libchronos_store.a"
  "libchronos_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
