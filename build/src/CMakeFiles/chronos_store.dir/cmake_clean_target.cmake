file(REMOVE_RECURSE
  "libchronos_store.a"
)
