file(REMOVE_RECURSE
  "CMakeFiles/chronos_json.dir/json/json.cc.o"
  "CMakeFiles/chronos_json.dir/json/json.cc.o.d"
  "libchronos_json.a"
  "libchronos_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
