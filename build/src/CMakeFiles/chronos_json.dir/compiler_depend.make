# Empty compiler generated dependencies file for chronos_json.
# This may be replaced when dependencies are built.
