file(REMOVE_RECURSE
  "libchronos_json.a"
)
