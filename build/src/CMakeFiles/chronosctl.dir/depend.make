# Empty dependencies file for chronosctl.
# This may be replaced when dependencies are built.
