file(REMOVE_RECURSE
  "CMakeFiles/chronosctl.dir/tools/chronosctl_main.cc.o"
  "CMakeFiles/chronosctl.dir/tools/chronosctl_main.cc.o.d"
  "chronosctl"
  "chronosctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronosctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
