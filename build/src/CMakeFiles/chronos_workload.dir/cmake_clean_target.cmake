file(REMOVE_RECURSE
  "libchronos_workload.a"
)
