# Empty compiler generated dependencies file for chronos_workload.
# This may be replaced when dependencies are built.
