file(REMOVE_RECURSE
  "CMakeFiles/chronos_workload.dir/workload/distributions.cc.o"
  "CMakeFiles/chronos_workload.dir/workload/distributions.cc.o.d"
  "CMakeFiles/chronos_workload.dir/workload/workload.cc.o"
  "CMakeFiles/chronos_workload.dir/workload/workload.cc.o.d"
  "libchronos_workload.a"
  "libchronos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
