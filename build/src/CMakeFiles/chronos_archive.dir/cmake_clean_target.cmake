file(REMOVE_RECURSE
  "libchronos_archive.a"
)
