
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/archive/compress.cc" "src/CMakeFiles/chronos_archive.dir/archive/compress.cc.o" "gcc" "src/CMakeFiles/chronos_archive.dir/archive/compress.cc.o.d"
  "/root/repo/src/archive/crc32.cc" "src/CMakeFiles/chronos_archive.dir/archive/crc32.cc.o" "gcc" "src/CMakeFiles/chronos_archive.dir/archive/crc32.cc.o.d"
  "/root/repo/src/archive/zip.cc" "src/CMakeFiles/chronos_archive.dir/archive/zip.cc.o" "gcc" "src/CMakeFiles/chronos_archive.dir/archive/zip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chronos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
