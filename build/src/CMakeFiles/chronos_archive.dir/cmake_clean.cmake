file(REMOVE_RECURSE
  "CMakeFiles/chronos_archive.dir/archive/compress.cc.o"
  "CMakeFiles/chronos_archive.dir/archive/compress.cc.o.d"
  "CMakeFiles/chronos_archive.dir/archive/crc32.cc.o"
  "CMakeFiles/chronos_archive.dir/archive/crc32.cc.o.d"
  "CMakeFiles/chronos_archive.dir/archive/zip.cc.o"
  "CMakeFiles/chronos_archive.dir/archive/zip.cc.o.d"
  "libchronos_archive.a"
  "libchronos_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronos_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
