# Empty dependencies file for chronos_archive.
# This may be replaced when dependencies are built.
