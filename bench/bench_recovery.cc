// E5 — requirement (iii): reliability. Two measurements:
//   (a) crash-recovery time of the WAL-backed metadata store as a function
//       of the unsnapshotted WAL length;
//   (b) failure-handling latency: N running jobs lose their agents; one
//       heartbeat sweep fails and auto-reschedules all of them.
//
// Expectation: (a) recovery is linear in WAL records and stays in the
// tens-of-milliseconds range for realistic backlogs; (b) a sweep over
// hundreds of dead jobs completes in milliseconds, so the paper's
// "automated failure handling and recovery of failed evaluation runs" adds
// no observable delay.

#include "bench/bench_util.h"
#include "store/table_store.h"

using namespace chronos;

namespace {

void BenchStoreRecovery() {
  std::printf("(a) metadata-store crash recovery\n");
  std::printf("%14s  %12s  %14s  %14s\n", "wal_records", "wal_mb",
              "recover_ms", "rows");
  for (int records : {2000, 10000, 40000}) {
    file::TempDir dir("recover");
    {
      store::TableStoreOptions options;
      options.sync_writes = false;       // Populate fast...
      options.checkpoint_wal_bytes = 0;  // ...and never checkpoint.
      auto table_store = store::TableStore::Open(dir.path(), options);
      json::Json row = json::Json::MakeObject();
      row.Set("state", "running");
      row.Set("payload", std::string(64, 'x'));
      for (int i = 0; i < records; ++i) {
        (*table_store)->Upsert("jobs", std::to_string(i % (records / 2)), row)
            .IgnoreError();
      }
      // No Checkpoint(): simulate a crash with a full WAL.
    }
    double wal_mb = 0;
    {
      auto contents = file::ReadFile(dir.path() + "/wal.log");
      if (contents.ok()) {
        wal_mb = static_cast<double>(contents->size()) / (1024 * 1024);
      }
    }
    uint64_t start = SystemClock::Get()->MonotonicNanos();
    auto recovered = store::TableStore::Open(dir.path());
    double recover_ms =
        static_cast<double>(SystemClock::Get()->MonotonicNanos() - start) /
        1e6;
    std::printf("%14d  %12.2f  %14.1f  %14zu\n", records, wal_mb, recover_ms,
                (*recovered)->Count("jobs"));
  }
}

void BenchFailureHandling() {
  std::printf("\n(b) dead-agent detection and auto-reschedule\n");
  std::printf("%14s  %14s  %16s\n", "running_jobs", "sweep_ms",
              "rescheduled");
  for (int jobs : {16, 64, 256}) {
    file::TempDir dir("hb");
    store::TableStoreOptions store_options;
    store_options.sync_writes = false;
    auto db = model::MetaDb::Open(dir.path(), store_options);
    SimulatedClock clock(1000000);
    control::ControlServiceOptions options;
    options.heartbeat_timeout_ms = 1000;
    control::ControlService service(db->get(), &clock, options);
    auto admin = service.CreateUser("a", "pass", model::UserRole::kAdmin);

    model::System system;
    system.name = "S";
    model::ParameterDef def;
    def.name = "index";
    def.type = model::ParameterType::kValue;
    system.parameters.push_back(def);
    auto registered = service.RegisterSystem(system);
    auto project = service.CreateProject("p", "", admin->id);
    std::vector<json::Json> sweep;
    for (int i = 0; i < jobs; ++i) sweep.emplace_back(i);
    model::ParameterSetting setting;
    setting.name = "index";
    setting.sweep = std::move(sweep);
    auto experiment = service.CreateExperiment(
        project->id, admin->id, registered->id, "x", "", {setting});
    auto evaluation = service.CreateEvaluation(experiment->id, "run");

    // One deployment per job so every job can be running at once.
    std::vector<std::string> deployment_ids;
    for (int i = 0; i < jobs; ++i) {
      model::Deployment deployment;
      deployment.system_id = registered->id;
      deployment.name = "d" + std::to_string(i);
      deployment_ids.push_back(*&service.CreateDeployment(deployment)->id);
    }
    for (const std::string& deployment_id : deployment_ids) {
      service.PollJob(deployment_id).IgnoreError();
    }

    // All agents "die": advance past the heartbeat timeout and sweep.
    clock.AdvanceMs(5000);
    uint64_t start = SystemClock::Get()->MonotonicNanos();
    int failed = service.CheckHeartbeats();
    double sweep_ms =
        static_cast<double>(SystemClock::Get()->MonotonicNanos() - start) /
        1e6;
    auto summary = service.Summarize(evaluation->id);
    std::printf("%14d  %14.1f  %16d\n", jobs, sweep_ms,
                summary->state_counts[model::JobState::kScheduled]);
    if (failed != jobs) {
      std::fprintf(stderr, "expected %d failures, saw %d\n", jobs, failed);
    }
  }
}

}  // namespace

int main() {
  bench::PrintHeader("E5", "reliability: crash recovery + failure handling");
  BenchStoreRecovery();
  BenchFailureHandling();
  return 0;
}
