// E10 — substrate ablation: the primitive costs that bound the end-to-end
// numbers of E6 (REST) and E8 (uploads): JSON parse/serialize, WAL append,
// chlz compression, ZIP packing, SHA-256, base64.

#include <benchmark/benchmark.h>

#include "archive/compress.h"
#include "archive/crc32.h"
#include "archive/zip.h"
#include "common/file_util.h"
#include "common/random.h"
#include "common/sha256.h"
#include "common/strings.h"
#include "json/json.h"
#include "store/wal.h"

namespace chronos {
namespace {

std::string MakeJsonText(int fields) {
  json::Json doc = json::Json::MakeObject();
  Rng rng(1);
  for (int i = 0; i < fields; ++i) {
    switch (i % 4) {
      case 0:
        doc.Set("int" + std::to_string(i),
                static_cast<int64_t>(rng.NextUint64(1000000)));
        break;
      case 1:
        doc.Set("dbl" + std::to_string(i), rng.NextDouble() * 1e6);
        break;
      case 2: {
        std::string s;
        for (int c = 0; c < 40; ++c) {
          s.push_back(static_cast<char>('a' + rng.NextUint64(26)));
        }
        doc.Set("str" + std::to_string(i), std::move(s));
        break;
      }
      default: {
        json::Json arr = json::Json::MakeArray();
        for (int v = 0; v < 8; ++v) {
          arr.Append(static_cast<int64_t>(rng.NextUint64(100)));
        }
        doc.Set("arr" + std::to_string(i), std::move(arr));
        break;
      }
    }
  }
  return doc.Dump();
}

std::string MakeTextPayload(size_t size) {
  std::string payload;
  payload.reserve(size);
  while (payload.size() < size) {
    payload += "{\"ts\":1585526400,\"op\":\"read\",\"latency_us\":";
    payload += std::to_string(payload.size() % 9973);
    payload += "}\n";
  }
  payload.resize(size);
  return payload;
}

void BM_JsonParse(benchmark::State& state) {
  std::string text = MakeJsonText(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto parsed = json::Parse(text);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_JsonParse)->Arg(10)->Arg(100);

void BM_JsonDump(benchmark::State& state) {
  auto doc = json::Parse(MakeJsonText(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    std::string out = doc->Dump();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_JsonDump)->Arg(10)->Arg(100);

void BM_WalAppend(benchmark::State& state) {
  bool sync = state.range(0) == 1;
  file::TempDir dir("walbench");
  auto wal = store::Wal::Open(dir.path() + "/wal.log");
  std::string record = MakeJsonText(10);
  for (auto _ : state) {
    Status status = (*wal)->Append(record, sync);
    benchmark::DoNotOptimize(status);
  }
  state.SetLabel(sync ? "fsync-per-commit" : "buffered");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(1);

void BM_LzCompress(benchmark::State& state) {
  std::string payload = MakeTextPayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::string compressed = archive::LzCompress(payload);
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
  state.counters["ratio"] =
      static_cast<double>(payload.size()) /
      static_cast<double>(archive::LzCompress(payload).size());
}
BENCHMARK(BM_LzCompress)->Arg(1024)->Arg(65536);

void BM_LzDecompress(benchmark::State& state) {
  std::string compressed =
      archive::LzCompress(MakeTextPayload(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    auto out = archive::LzDecompress(compressed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LzDecompress)->Arg(65536);

void BM_ZipPack(benchmark::State& state) {
  std::map<std::string, std::string> files;
  for (int i = 0; i < 10; ++i) {
    files["file" + std::to_string(i) + ".jsonl"] = MakeTextPayload(16384);
  }
  for (auto _ : state) {
    std::string zipped = archive::ZipFiles(files);
    benchmark::DoNotOptimize(zipped);
  }
  state.SetBytesProcessed(state.iterations() * 10 * 16384);
}
BENCHMARK(BM_ZipPack);

void BM_Crc32(benchmark::State& state) {
  std::string payload = MakeTextPayload(65536);
  for (auto _ : state) {
    uint32_t crc = archive::Crc32(payload);
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_Crc32);

void BM_Sha256(benchmark::State& state) {
  std::string payload = MakeTextPayload(4096);
  for (auto _ : state) {
    std::string digest = Sha256(payload);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_Sha256);

void BM_Base64Encode(benchmark::State& state) {
  std::string payload = MakeTextPayload(65536);
  for (auto _ : state) {
    std::string encoded = strings::Base64Encode(payload);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_Base64Encode);

}  // namespace
}  // namespace chronos

BENCHMARK_MAIN();
