// E11 (extension ablation) — latency under controlled offered load: the
// throughput/latency curve behind E1's closed-loop numbers. Four client
// threads pace operations at a fixed aggregate rate (YCSB's -target) and
// the p95 update latency is recorded per engine.
//
// Expectation: at low load both engines serve near their intrinsic latency;
// as offered load approaches the mmapv1 write ceiling (~1/write_io_us under
// a collection-exclusive lock) its update tail latency explodes while the
// document-level engine stays flat far longer — the queueing-theory view of
// the paper demo.

#include "bench/bench_util.h"

using namespace chronos;

int main() {
  bench::PrintHeader(
      "E11", "p95 update latency (us) vs offered load (50/50 mix, 4 threads)");

  mokka::Database database;
  auto wire = mokka::WireServer::Start(&database, 0);
  if (!wire.ok()) return 1;

  const double kLoads[] = {200, 600, 1200, 2400};  // Aggregate ops/s.
  analysis::DiagramData diagram;
  diagram.name = "p95 update latency by offered load";
  diagram.type = model::DiagramType::kLine;
  diagram.x_label = "offered_ops_per_s";
  diagram.y_label = "p95_update_us";
  for (double load : kLoads) {
    diagram.x_values.push_back(std::to_string(static_cast<int>(load)));
  }

  for (const char* engine : {"wiredtiger", "mmapv1"}) {
    analysis::Series latency_series;
    latency_series.name = engine;
    analysis::Series achieved_series;
    achieved_series.name = std::string(engine) + " achieved ops/s";
    for (double load : kLoads) {
      clients::MokkaBenchConfig config;
      config.endpoint = (*wire)->endpoint();
      config.collection = std::string("load_") + engine;
      config.engine = engine;
      config.engine_options.Set("read_io_us", bench::kReadIoUs);
      config.engine_options.Set("write_io_us", bench::kWriteIoUs);
      config.threads = 4;
      config.target_ops_per_sec_per_thread = load / config.threads;
      config.spec.record_count = 300;
      // ~2 seconds of offered load per cell.
      config.spec.operation_count =
          static_cast<uint64_t>(load / config.threads * 2);
      if (!config.spec.ApplyRatio("read:50,update:50").ok()) return 1;

      analysis::MetricsCollector metrics;
      auto summary = clients::RunMokkaBenchmark(config, &metrics);
      if (!summary.ok()) {
        std::fprintf(stderr, "%s@%.0f failed: %s\n", engine, load,
                     summary.status().ToString().c_str());
        return 1;
      }
      json::Json stats = metrics.ToJson();
      latency_series.values.push_back(
          stats.at("latency_us").at("update").GetDoubleOr("p95", 0));
      achieved_series.values.push_back(
          summary->at("throughput").as_double());
    }
    diagram.series.push_back(std::move(latency_series));
    diagram.series.push_back(std::move(achieved_series));
  }

  std::printf("\n%s\n", diagram.ToTable().c_str());

  // Shape verdict: at the top offered load the collection-level engine can
  // no longer achieve the offered rate (its write lock is saturated) while
  // the document-level engine still does, and its update tail sits above.
  double wt_tail = diagram.series[0].values.back();
  double wt_achieved = diagram.series[1].values.back();
  double mm_tail = diagram.series[2].values.back();
  double mm_achieved = diagram.series[3].values.back();
  std::printf("at %.0f offered ops/s: wiredtiger achieved %.0f (p95 %.0fus), "
              "mmapv1 achieved %.0f (p95 %.0fus)\n",
              kLoads[3], wt_achieved, wt_tail, mm_achieved, mm_tail);
  bool holds = mm_achieved < kLoads[3] * 0.9 &&
               wt_achieved > kLoads[3] * 0.9 && mm_tail > wt_tail;
  std::printf("shape %s: collection-level locking saturates first\n",
              holds ? "HOLDS" : "DIVERGES");
  return 0;
}
