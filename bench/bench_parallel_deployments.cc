// E4 — requirement (ii): "parallel executions of benchmarks" on multiple
// identical deployments. A fixed 24-job evaluation runs against 1, 2, 4 and
// 8 identical deployments; each job is a synthetic 100 ms evaluation.
//
// Expectation: makespan shrinks near-linearly with deployments until the
// per-job overhead floor: with D deployments and J jobs of length t,
// makespan -> ceil(J/D) * t.

#include "bench/bench_util.h"

using namespace chronos;

int main() {
  bench::PrintHeader(
      "E4", "evaluation makespan vs number of identical deployments");

  constexpr int kJobs = 24;
  constexpr int kJobMs = 100;

  std::printf("%12s  %12s  %10s  %12s\n", "deployments", "makespan_ms",
              "speedup", "ideal_ms");
  double baseline_ms = 0;
  for (int deployments : {1, 2, 4, 8}) {
    bench::Toolkit toolkit;
    toolkit.RegisterNullSystem("SyntheticSuE");
    toolkit.AddBareDeployments(deployments);

    auto project =
        toolkit.service()->CreateProject("par", "", toolkit.admin_id());
    std::vector<json::Json> sweep;
    for (int i = 0; i < kJobs; ++i) sweep.emplace_back(i);
    auto experiment = toolkit.service()->CreateExperiment(
        project->id, toolkit.admin_id(), toolkit.system_id(), "jobs", "",
        {bench::SweepSetting("index", std::move(sweep))});
    auto evaluation =
        toolkit.service()->CreateEvaluation(experiment->id, "run");

    toolkit.StartAgents([](agent::JobContext* context) {
      SystemClock::Get()->SleepMs(kJobMs);  // The "benchmark".
      context->SetResultField("ok", true);
      return Status::Ok();
    });
    double makespan_ms = toolkit.AwaitEvaluation(evaluation->id);
    toolkit.StopAgents();

    auto summary = toolkit.service()->Summarize(evaluation->id);
    if (summary->state_counts[model::JobState::kFinished] != kJobs) {
      std::fprintf(stderr, "incomplete evaluation\n");
      return 1;
    }
    if (deployments == 1) baseline_ms = makespan_ms;
    double ideal_ms =
        static_cast<double>((kJobs + deployments - 1) / deployments) * kJobMs;
    std::printf("%12d  %12.0f  %9.2fx  %12.0f\n", deployments, makespan_ms,
                baseline_ms / makespan_ms, ideal_ms);
  }
  std::printf("\nshape expectation: near-linear speedup (the paper's "
              "rationale for multiple identical deployments).\n");
  return 0;
}
