// E9 — ablation for E1/E2: raw per-operation cost of the two storage
// engines, single-threaded, no simulated I/O, no network. Separates the
// engines' CPU cost (compression, tree descent, slot copy) from the
// concurrency behaviour measured end-to-end.
//
// Expectation: mmap wins slightly on raw reads/in-place updates (memcpy
// into a padded slot); btree pays compression on writes but stores fewer
// bytes; scans are comparable.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "sue/mokkadb/btree_engine.h"
#include "sue/mokkadb/mmap_engine.h"
#include "workload/workload.h"

namespace chronos::mokka {
namespace {

constexpr int kPopulation = 10000;

std::unique_ptr<StorageEngine> MakeEngine(int kind, bool compression = true) {
  if (kind == 0) {
    BTreeEngineOptions options;
    options.compression = compression;
    return std::make_unique<BTreeEngine>(options);
  }
  MmapEngineOptions options;
  return std::make_unique<MmapEngine>(options);
}

std::string MakeDoc(size_t size, Rng* rng) {
  std::string doc = "{\"_id\":\"x\",\"payload\":\"";
  while (doc.size() + 2 < size) {
    doc.push_back(static_cast<char>('a' + rng->NextUint64(26)));
  }
  doc += "\"}";
  return doc;
}

void Populate(StorageEngine* engine, size_t doc_size) {
  Rng rng(7);
  for (int i = 0; i < kPopulation; ++i) {
    engine->Insert(workload::WorkloadGenerator::KeyForIndex(i),
                   MakeDoc(doc_size, &rng))
        .IgnoreError();
  }
}

// Arg0: engine (0=btree, 1=mmap); Arg1: document bytes.
void BM_EngineInsert(benchmark::State& state) {
  Rng rng(1);
  auto engine = MakeEngine(static_cast<int>(state.range(0)));
  std::string doc = MakeDoc(static_cast<size_t>(state.range(1)), &rng);
  uint64_t key = 0;
  for (auto _ : state) {
    Status status = engine->Insert(
        workload::WorkloadGenerator::KeyForIndex(key++), doc);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 0 ? "btree" : "mmap");
}
BENCHMARK(BM_EngineInsert)
    ->Args({0, 128})->Args({1, 128})->Args({0, 1024})->Args({1, 1024});

void BM_EngineGet(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<int>(state.range(0)));
  Populate(engine.get(), static_cast<size_t>(state.range(1)));
  Rng rng(2);
  for (auto _ : state) {
    auto doc = engine->Get(workload::WorkloadGenerator::KeyForIndex(
        rng.NextUint64(kPopulation)));
    benchmark::DoNotOptimize(doc);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 0 ? "btree" : "mmap");
}
BENCHMARK(BM_EngineGet)
    ->Args({0, 128})->Args({1, 128})->Args({0, 1024})->Args({1, 1024});

void BM_EngineUpdate(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<int>(state.range(0)));
  Populate(engine.get(), static_cast<size_t>(state.range(1)));
  Rng rng(3);
  std::string doc = MakeDoc(static_cast<size_t>(state.range(1)), &rng);
  for (auto _ : state) {
    Status status = engine->Update(
        workload::WorkloadGenerator::KeyForIndex(rng.NextUint64(kPopulation)),
        doc);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 0 ? "btree" : "mmap");
}
BENCHMARK(BM_EngineUpdate)
    ->Args({0, 128})->Args({1, 128})->Args({0, 1024})->Args({1, 1024});

void BM_EngineScan100(benchmark::State& state) {
  auto engine = MakeEngine(static_cast<int>(state.range(0)));
  Populate(engine.get(), 256);
  Rng rng(4);
  for (auto _ : state) {
    int count = 0;
    engine->Scan(workload::WorkloadGenerator::KeyForIndex(
                     rng.NextUint64(kPopulation - 100)),
                 [&count](const std::string&, const std::string&) {
                   return ++count < 100;
                 });
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.SetLabel(state.range(0) == 0 ? "btree" : "mmap");
}
BENCHMARK(BM_EngineScan100)->Arg(0)->Arg(1);

// Compression ablation: btree insert with compression on/off, compressible
// vs incompressible payloads.
void BM_BTreeCompressionAblation(benchmark::State& state) {
  bool compression = state.range(0) == 1;
  bool compressible = state.range(1) == 1;
  auto engine = MakeEngine(0, compression);
  Rng rng(5);
  std::string doc;
  if (compressible) {
    doc = "{\"_id\":\"x\",\"payload\":\"";
    while (doc.size() < 1022) doc += "abcabcab";
    doc += "\"}";
  } else {
    doc = MakeDoc(1024, &rng);
  }
  uint64_t key = 0;
  for (auto _ : state) {
    Status status = engine->Insert(
        workload::WorkloadGenerator::KeyForIndex(key++), doc);
    benchmark::DoNotOptimize(status);
  }
  EngineStats stats = engine->Stats();
  state.counters["stored_per_doc"] =
      key > 0 ? static_cast<double>(stats.stored_bytes) /
                    static_cast<double>(key)
              : 0;
  state.SetLabel(std::string(compression ? "compress" : "raw") + "/" +
                 (compressible ? "repetitive" : "random"));
}
BENCHMARK(BM_BTreeCompressionAblation)
    ->Args({1, 1})->Args({0, 1})->Args({1, 0})->Args({0, 0});

// The document-move cost in the mmap engine (update beyond slot capacity).
void BM_MmapUpdateGrowth(benchmark::State& state) {
  bool grow = state.range(0) == 1;
  auto engine = MakeEngine(1);
  Rng rng(6);
  Populate(engine.get(), 128);
  std::string same_size = MakeDoc(128, &rng);
  std::string bigger = MakeDoc(4096, &rng);
  uint64_t i = 0;
  for (auto _ : state) {
    // Alternate grow/shrink so every "grow" iteration is a real move.
    const std::string& doc =
        grow ? (i % 2 == 0 ? bigger : same_size) : same_size;
    Status status = engine->Update(
        workload::WorkloadGenerator::KeyForIndex(i % kPopulation), doc);
    ++i;
    benchmark::DoNotOptimize(status);
  }
  state.SetLabel(grow ? "with-moves" : "in-place");
}
BENCHMARK(BM_MmapUpdateGrowth)->Arg(0)->Arg(1);

}  // namespace
}  // namespace chronos::mokka

BENCHMARK_MAIN();
