// E3 — "the thorough evaluation of a complete evaluation space can be fully
// automated": cost of the automation itself. Measures (a) parameter-space
// expansion (experiment -> jobs) and (b) the dispatch cycle (poll ->
// running -> result -> finished) through Chronos Control, in jobs/second.
//
// Expectation: the control plane sustains hundreds-plus jobs/second —
// orders of magnitude above any real benchmark job duration, i.e. the
// toolkit's overhead is negligible against the workloads it automates.

#include "bench/bench_util.h"

using namespace chronos;

namespace {

// One full dispatch cycle per job via direct service calls (the REST layer
// is measured separately in E6).
double RunDispatchCycle(control::ControlService* service,
                        const std::vector<std::string>& deployment_ids,
                        const std::string& /*evaluation_id*/) {
  json::Json data = json::Json::MakeObject();
  data.Set("throughput", 1.0);
  uint64_t start = SystemClock::Get()->MonotonicNanos();
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const std::string& deployment_id : deployment_ids) {
      auto job = service->PollJob(deployment_id);
      if (!job.ok() || !job->has_value()) continue;
      service->UploadResult((*job)->id, data, "").IgnoreError();
      progressed = true;
    }
  }
  return static_cast<double>(SystemClock::Get()->MonotonicNanos() - start) /
         1e9;
}

}  // namespace

int main() {
  bench::PrintHeader("E3",
                     "scheduler: parameter-space expansion and dispatch "
                     "throughput (jobs/second)");

  std::printf("%10s  %12s  %14s  %12s  %14s\n", "jobs", "deployments",
              "expand_ms", "dispatch_s", "jobs_per_s");
  for (int jobs : {64, 256, 1024}) {
    for (int deployments : {1, 4}) {
      bench::Toolkit toolkit;
      toolkit.RegisterNullSystem("NullSuE");
      toolkit.AddBareDeployments(deployments);
      auto project = toolkit.service()->CreateProject(
          "sched", "", toolkit.admin_id());

      // Sweep of `jobs` values expands into `jobs` jobs.
      std::vector<json::Json> sweep;
      for (int i = 0; i < jobs; ++i) sweep.emplace_back(i);
      auto experiment = toolkit.service()->CreateExperiment(
          project->id, toolkit.admin_id(), toolkit.system_id(), "expand", "",
          {bench::SweepSetting("index", std::move(sweep))});

      uint64_t expand_start = SystemClock::Get()->MonotonicNanos();
      auto evaluation =
          toolkit.service()->CreateEvaluation(experiment->id, "run");
      double expand_ms = static_cast<double>(
                             SystemClock::Get()->MonotonicNanos() -
                             expand_start) /
                         1e6;
      if (!evaluation.ok()) return 1;

      double dispatch_s = RunDispatchCycle(
          toolkit.service(), toolkit.deployment_ids(), evaluation->id);
      auto summary = toolkit.service()->Summarize(evaluation->id);
      int finished = summary->state_counts[model::JobState::kFinished];
      std::printf("%10d  %12d  %14.1f  %12.3f  %14.0f\n", jobs, deployments,
                  expand_ms, dispatch_s,
                  static_cast<double>(finished) / dispatch_s);
      if (finished != jobs) {
        std::fprintf(stderr, "only %d/%d jobs completed!\n", finished, jobs);
        return 1;
      }
    }
  }
  std::printf("\nnote: every job above persists 2 state transitions + a "
              "result row through the WAL-backed metadata store.\n");
  return 0;
}
