#ifndef CHRONOS_BENCH_BENCH_UTIL_H_
#define CHRONOS_BENCH_BENCH_UTIL_H_

// Shared harness for the experiment-reproduction benches (EXPERIMENTS.md):
// an in-process Chronos Control plus N live MokkaDB deployments, the same
// topology the paper demos, minus the browser.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "agent/agent.h"
#include "clients/mokka_client.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "control/rest_api.h"
#include "sue/mokkadb/wire.h"

namespace chronos::bench {

// Simulated storage latency used by the SuE-facing experiments (see
// DESIGN.md "Substitutions": stands in for mongod's disk work so locking
// granularity, not host core count, decides the concurrency shape).
constexpr int64_t kReadIoUs = 200;
constexpr int64_t kWriteIoUs = 800;

class Toolkit {
 public:
  Toolkit() : workdir_("chronos-bench") {
    Logger::Get()->set_min_level(LogLevel::kError);
    Logger::Get()->set_stderr_enabled(false);
    store::TableStoreOptions store_options;
    store_options.sync_writes = false;  // Benchmarks measure the SuE.
    auto db = model::MetaDb::Open(workdir_.path() + "/meta", store_options);
    db_ = std::move(db).value();
    service_ = std::make_unique<control::ControlService>(db_.get());
    auto admin =
        service_->CreateUser("admin", "secret", model::UserRole::kAdmin);
    admin_id_ = admin->id;
    auto server = control::ControlServer::Start(service_.get(), 0);
    server_ = std::move(server).value();
  }

  ~Toolkit() {
    for (auto& chronos_agent : agents_) chronos_agent->Stop();
    server_->Stop();
  }

  control::ControlService* service() { return service_.get(); }
  int port() const { return server_->port(); }
  const std::string& admin_id() const { return admin_id_; }

  // Registers the MokkaDB system with the demo parameter/diagram set.
  std::string RegisterMokkaSystem() {
    model::System system;
    system.name = "MokkaDB";
    for (const char* name : {"engine", "ratio", "distribution", "workload"}) {
      model::ParameterDef def;
      def.name = name;
      def.type = model::ParameterType::kValue;
      system.parameters.push_back(def);
    }
    for (const char* name :
         {"threads", "records", "operations", "warmup_ops", "io_read_us",
          "io_write_us", "field_count", "field_length"}) {
      model::ParameterDef def;
      def.name = name;
      def.type = model::ParameterType::kInterval;
      def.min = 0;
      def.max = 100000000;
      system.parameters.push_back(def);
    }
    model::DiagramDef line;
    line.name = "Throughput by client threads";
    line.type = model::DiagramType::kLine;
    line.x_field = "threads";
    line.y_field = "throughput";
    line.group_by = "engine";
    system.diagrams.push_back(line);
    auto registered = service_->RegisterSystem(system);
    system_id_ = registered->id;
    return system_id_;
  }

  // Registers a system with no parameters (for synthetic-work benches).
  std::string RegisterNullSystem(const std::string& name) {
    model::System system;
    system.name = name;
    model::ParameterDef def;
    def.name = "index";
    def.type = model::ParameterType::kValue;
    system.parameters.push_back(def);
    auto registered = service_->RegisterSystem(system);
    system_id_ = registered->id;
    return system_id_;
  }

  // Starts `n` MokkaDB wire servers and registers them as deployments.
  void StartMokkaDeployments(int n) {
    for (int i = 0; i < n; ++i) {
      databases_.push_back(std::make_unique<mokka::Database>());
      auto wire = mokka::WireServer::Start(databases_.back().get(), 0);
      model::Deployment deployment;
      deployment.system_id = system_id_;
      deployment.name = "mokka-" + std::to_string(i);
      deployment.endpoint = (*wire)->endpoint();
      auto created = service_->CreateDeployment(deployment);
      deployment_ids_.push_back(created->id);
      endpoints_.push_back((*wire)->endpoint());
      wires_.push_back(std::move(wire).value());
    }
  }

  // Registers `n` deployments with no backing server (synthetic handlers).
  void AddBareDeployments(int n) {
    for (int i = 0; i < n; ++i) {
      model::Deployment deployment;
      deployment.system_id = system_id_;
      deployment.name = "slot-" + std::to_string(i);
      auto created = service_->CreateDeployment(deployment);
      deployment_ids_.push_back(created->id);
      endpoints_.push_back("");
    }
  }

  // Starts one agent per deployment with the given handler (async).
  void StartAgents(const agent::EvaluationHandler& handler,
                   bool mokka_handler = false) {
    for (size_t i = 0; i < deployment_ids_.size(); ++i) {
      agent::AgentOptions options;
      options.control_port = port();
      options.username = "admin";
      options.password = "secret";
      options.deployment_id = deployment_ids_[i];
      options.poll_interval_ms = 20;
      auto chronos_agent = std::make_unique<agent::ChronosAgent>(options);
      chronos_agent->SetHandler(
          mokka_handler ? clients::MakeMokkaEvaluationHandler(endpoints_[i])
                        : handler);
      if (!chronos_agent->Connect().ok()) std::abort();
      chronos_agent->StartAsync();
      agents_.push_back(std::move(chronos_agent));
    }
  }

  void StopAgents() {
    for (auto& chronos_agent : agents_) chronos_agent->Stop();
    agents_.clear();
  }

  // Blocks until every job of the evaluation is terminal; returns the
  // makespan in milliseconds.
  double AwaitEvaluation(const std::string& evaluation_id,
                         int64_t timeout_ms = 600000) {
    uint64_t start = SystemClock::Get()->MonotonicNanos();
    while (true) {
      auto summary = service_->Summarize(evaluation_id);
      int terminal = summary->state_counts[model::JobState::kFinished] +
                     summary->state_counts[model::JobState::kFailed] +
                     summary->state_counts[model::JobState::kAborted];
      if (terminal == summary->total_jobs) break;
      if (static_cast<int64_t>(
              (SystemClock::Get()->MonotonicNanos() - start) / 1000000) >
          timeout_ms) {
        std::fprintf(stderr, "evaluation timed out\n");
        break;
      }
      SystemClock::Get()->SleepMs(20);
    }
    return static_cast<double>(SystemClock::Get()->MonotonicNanos() - start) /
           1e6;
  }

  const std::vector<std::string>& deployment_ids() const {
    return deployment_ids_;
  }
  const std::vector<std::string>& endpoints() const { return endpoints_; }
  const std::string& system_id() const { return system_id_; }

 private:
  file::TempDir workdir_;
  std::unique_ptr<model::MetaDb> db_;
  std::unique_ptr<control::ControlService> service_;
  std::unique_ptr<control::ControlServer> server_;
  std::string admin_id_, system_id_;
  std::vector<std::unique_ptr<mokka::Database>> databases_;
  std::vector<std::unique_ptr<mokka::WireServer>> wires_;
  std::vector<std::unique_ptr<agent::ChronosAgent>> agents_;
  std::vector<std::string> deployment_ids_;
  std::vector<std::string> endpoints_;
};

inline model::ParameterSetting FixedSetting(const std::string& name,
                                            json::Json value) {
  model::ParameterSetting setting;
  setting.name = name;
  setting.fixed = std::move(value);
  return setting;
}

inline model::ParameterSetting SweepSetting(const std::string& name,
                                            std::vector<json::Json> values) {
  model::ParameterSetting setting;
  setting.name = name;
  setting.sweep = std::move(values);
  return setting;
}

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("==============================================================\n");
}

}  // namespace chronos::bench

#endif  // CHRONOS_BENCH_BENCH_UTIL_H_
