// E7 — requirement (vi): built-in analysis functions. Cost of turning N job
// results into diagrams, tables and reports (google-benchmark).
//
// Expectation: linear in result count; thousands of results analyze in
// milliseconds, so interactive result exploration is compute-trivial.

#include <benchmark/benchmark.h>

#include "analysis/diagrams.h"
#include "analysis/metrics.h"
#include "common/random.h"

namespace chronos::analysis {
namespace {

std::vector<JobResult> MakeResults(int n) {
  Rng rng(42);
  std::vector<JobResult> results;
  results.reserve(n);
  const char* engines[] = {"wiredtiger", "mmapv1"};
  for (int i = 0; i < n; ++i) {
    JobResult result;
    result.parameters["engine"] = json::Json(engines[i % 2]);
    result.parameters["threads"] = json::Json(1 << (i % 5));
    result.data = json::Json::MakeObject();
    result.data.Set("throughput", 1000.0 + rng.NextDouble() * 5000);
    json::Json latency = json::Json::MakeObject();
    for (const char* op : {"read", "update"}) {
      json::Json stats = json::Json::MakeObject();
      stats.Set("p95", rng.NextDouble() * 10000);
      stats.Set("mean", rng.NextDouble() * 5000);
      latency.Set(op, std::move(stats));
    }
    result.data.Set("latency_us", std::move(latency));
    results.push_back(std::move(result));
  }
  return results;
}

model::DiagramDef Def() {
  model::DiagramDef def;
  def.name = "Throughput";
  def.type = model::DiagramType::kLine;
  def.x_field = "threads";
  def.y_field = "throughput";
  def.group_by = "engine";
  return def;
}

void BM_BuildDiagram(benchmark::State& state) {
  auto results = MakeResults(static_cast<int>(state.range(0)));
  model::DiagramDef def = Def();
  for (auto _ : state) {
    auto diagram = BuildDiagram(def, results);
    benchmark::DoNotOptimize(diagram);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildDiagram)->Arg(100)->Arg(1000)->Arg(5000);

void BM_BuildDiagramDottedPath(benchmark::State& state) {
  auto results = MakeResults(static_cast<int>(state.range(0)));
  model::DiagramDef def = Def();
  def.y_field = "latency_us.read.p95";
  for (auto _ : state) {
    auto diagram = BuildDiagram(def, results);
    benchmark::DoNotOptimize(diagram);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildDiagramDottedPath)->Arg(1000);

void BM_RenderHtmlReport(benchmark::State& state) {
  auto results = MakeResults(1000);
  auto diagram = BuildDiagram(Def(), results);
  std::vector<DiagramData> diagrams = {*diagram, *diagram, *diagram};
  for (auto _ : state) {
    std::string html = RenderHtmlReport("report", diagrams);
    benchmark::DoNotOptimize(html);
  }
}
BENCHMARK(BM_RenderHtmlReport);

void BM_DiagramToCsv(benchmark::State& state) {
  auto diagram = BuildDiagram(Def(), MakeResults(1000));
  for (auto _ : state) {
    std::string csv = diagram->ToCsv();
    benchmark::DoNotOptimize(csv);
  }
}
BENCHMARK(BM_DiagramToCsv);

void BM_MetricsRecordLatency(benchmark::State& state) {
  MetricsCollector metrics;
  metrics.StartRun();
  uint64_t i = 0;
  for (auto _ : state) {
    metrics.RecordLatency("read", 100 + (i++ % 1000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsRecordLatency);

void BM_MetricsToJson(benchmark::State& state) {
  MetricsCollector metrics;
  metrics.StartRun();
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    metrics.RecordLatency(i % 2 == 0 ? "read" : "update",
                          rng.NextUint64(100000));
  }
  metrics.EndRun();
  for (auto _ : state) {
    json::Json out = metrics.ToJson();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MetricsToJson);

}  // namespace
}  // namespace chronos::analysis

BENCHMARK_MAIN();
