// E8 — §2.2: result bundles upload "via HTTP or FTP. The latter allows to
// use a different server or a NAS for storing the results which also
// reduces the load and storage requirements on the Chronos Control server."
// Measures bundle upload throughput for both paths across bundle sizes.
//
// Expectation: FTP streams raw bytes and wins on large bundles; HTTP
// carries base64 (+33% bytes) through the control server's JSON path, so
// its relative cost grows with bundle size — quantifying the paper's
// offloading rationale.

#include "archive/zip.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "net/ftp.h"

using namespace chronos;

int main() {
  bench::PrintHeader("E8", "result-bundle upload: HTTP vs FTP");

  bench::Toolkit toolkit;
  toolkit.RegisterNullSystem("S");
  toolkit.AddBareDeployments(1);
  auto ftp = net::FtpServer::Start(0, "results", "store");
  if (!ftp.ok()) return 1;

  auto token = toolkit.service()->Login("admin", "secret");

  // A pool of running jobs to upload results against.
  auto project = toolkit.service()->CreateProject("p", "",
                                                  toolkit.admin_id());
  std::vector<json::Json> sweep;
  constexpr int kUploadsPerCell = 8;
  constexpr int kCells = 8;  // 4 sizes x 2 protocols.
  for (int i = 0; i < kUploadsPerCell * kCells; ++i) sweep.emplace_back(i);
  auto experiment = toolkit.service()->CreateExperiment(
      project->id, toolkit.admin_id(), toolkit.system_id(), "x", "",
      {bench::SweepSetting("index", std::move(sweep))});
  auto evaluation = toolkit.service()->CreateEvaluation(experiment->id, "r");
  auto jobs = toolkit.service()->ListJobs(evaluation->id);
  size_t next_job = 0;

  // Takes the next scheduled job into running state and returns its id.
  auto take_job = [&]() {
    // Jobs dispatch one-at-a-time per deployment; finish by upload below
    // frees the slot, so PollJob always succeeds here.
    auto job = toolkit.service()->PollJob(toolkit.deployment_ids()[0]);
    if (!job.ok() || !job->has_value()) return std::string();
    return (*job)->id;
  };
  (void)next_job;

  net::HttpClient http("127.0.0.1", toolkit.port());
  http.SetDefaultHeader("X-Session", *token);

  std::printf("%10s  %8s  %12s  %12s\n", "bundle_kb", "path", "ms_per_up",
              "mb_per_s");
  for (size_t size_kb : {16, 64, 256, 1024}) {
    // A realistically compressible payload (JSON-ish text).
    std::string payload;
    payload.reserve(size_kb * 1024);
    while (payload.size() < size_kb * 1024) {
      payload += "{\"ts\":1585526400,\"op\":\"read\",\"latency_us\":";
      payload += std::to_string(payload.size() % 9973);
      payload += "}\n";
    }
    std::string bundle = archive::ZipFiles({{"trace.jsonl", payload}});
    double bundle_mb = static_cast<double>(bundle.size()) / (1024 * 1024);

    // --- HTTP path: base64 bundle inline in the result upload ---
    {
      std::string encoded = strings::Base64Encode(bundle);
      uint64_t start = SystemClock::Get()->MonotonicNanos();
      for (int i = 0; i < kUploadsPerCell; ++i) {
        std::string job_id = take_job();
        json::Json body = json::Json::MakeObject();
        json::Json data = json::Json::MakeObject();
        data.Set("ok", true);
        body.Set("data", data);
        body.Set("zip_base64", encoded);
        auto response = http.Post("/api/v1/agent/jobs/" + job_id + "/result",
                                  body.Dump());
        if (!response.ok() || response->status_code >= 300) {
          std::fprintf(stderr, "http upload failed\n");
          return 1;
        }
      }
      double seconds = static_cast<double>(
                           SystemClock::Get()->MonotonicNanos() - start) /
                       1e9;
      std::printf("%10zu  %8s  %12.1f  %12.1f\n", size_kb, "http",
                  seconds * 1000 / kUploadsPerCell,
                  bundle_mb * kUploadsPerCell / seconds);
    }

    // --- FTP path: raw bundle to the result store, tiny JSON to control ---
    {
      uint64_t start = SystemClock::Get()->MonotonicNanos();
      for (int i = 0; i < kUploadsPerCell; ++i) {
        std::string job_id = take_job();
        auto client = net::FtpClient::Connect("127.0.0.1", (*ftp)->port(),
                                              "results", "store");
        if (!client.ok() ||
            !(*client)->Store("job-" + job_id + ".zip", bundle).ok()) {
          std::fprintf(stderr, "ftp upload failed\n");
          return 1;
        }
        (*client)->Quit().IgnoreError();
        json::Json body = json::Json::MakeObject();
        json::Json data = json::Json::MakeObject();
        data.Set("bundle_ftp_ref", "job-" + job_id + ".zip");
        body.Set("data", data);
        body.Set("zip_base64", std::string());
        auto response = http.Post("/api/v1/agent/jobs/" + job_id + "/result",
                                  body.Dump());
        if (!response.ok() || response->status_code >= 300) {
          std::fprintf(stderr, "ftp result registration failed\n");
          return 1;
        }
      }
      double seconds = static_cast<double>(
                           SystemClock::Get()->MonotonicNanos() - start) /
                       1e9;
      std::printf("%10zu  %8s  %12.1f  %12.1f\n", size_kb, "ftp",
                  seconds * 1000 / kUploadsPerCell,
                  bundle_mb * kUploadsPerCell / seconds);
    }
  }
  std::printf("\nnote: ftp path includes a fresh login per upload plus the "
              "result-JSON registration against Chronos Control.\n");
  return 0;
}
