// E2 — second axis of the §3 demo: engine throughput across operation
// mixes at fixed concurrency. Runs the evaluation client directly against
// MokkaDB deployments (the SuE under measurement, no control plane in the
// timed path).
//
// Paper expectation: the engines are comparable on read-only traffic (both
// allow concurrent readers); as the write share grows, the
// collection-level write lock of mmapv1 caps throughput and the
// document-level engine pulls ahead — the crossover the demo highlights.

#include "bench/bench_util.h"

using namespace chronos;

int main() {
  bench::PrintHeader(
      "E2", "throughput by engine and workload mix (4 client threads)");

  struct Mix {
    const char* label;
    const char* ratio;
  };
  const Mix mixes[] = {{"read-only", "read:100,update:0"},
                       {"read-mostly-95/5", "read:95,update:5"},
                       {"balanced-50/50", "read:50,update:50"},
                       {"write-heavy-5/95", "read:5,update:95"}};
  const char* engines[] = {"wiredtiger", "mmapv1"};

  mokka::Database database;
  auto wire = mokka::WireServer::Start(&database, 0);
  if (!wire.ok()) return 1;

  analysis::DiagramData diagram;
  diagram.name = "Throughput (ops/s) by workload mix";
  diagram.type = model::DiagramType::kBar;
  diagram.x_label = "mix";
  diagram.y_label = "throughput";
  for (const Mix& mix : mixes) diagram.x_values.push_back(mix.label);

  for (const char* engine : engines) {
    analysis::Series series;
    series.name = engine;
    for (const Mix& mix : mixes) {
      clients::MokkaBenchConfig config;
      config.endpoint = (*wire)->endpoint();
      config.collection = std::string("bench_") + engine;
      config.engine = engine;
      config.engine_options.Set("read_io_us", bench::kReadIoUs);
      config.engine_options.Set("write_io_us", bench::kWriteIoUs);
      config.threads = 4;
      config.spec.record_count = 400;
      config.spec.operation_count = 500;  // Per thread.
      if (!config.spec.ApplyRatio(mix.ratio).ok()) return 1;

      analysis::MetricsCollector metrics;
      auto summary = clients::RunMokkaBenchmark(config, &metrics);
      if (!summary.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", engine, mix.label,
                     summary.status().ToString().c_str());
        return 1;
      }
      series.values.push_back(summary->at("throughput").as_double());
    }
    diagram.series.push_back(std::move(series));
  }

  std::printf("\n%s\n", diagram.ToTable().c_str());
  std::printf("CSV:\n%s\n", diagram.ToCsv().c_str());

  // Shape verdict.
  const analysis::Series& wt = diagram.series[0];
  const analysis::Series& mm = diagram.series[1];
  double read_only_gap = wt.values[0] / mm.values[0];
  double write_heavy_gap = wt.values[3] / mm.values[3];
  std::printf("read-only  wiredtiger/mmapv1 ratio: %.2f (expect ~1)\n",
              read_only_gap);
  std::printf("write-heavy wiredtiger/mmapv1 ratio: %.2f (expect >> 1)\n",
              write_heavy_gap);
  std::printf("shape %s: engines comparable read-only, document-level "
              "locking wins as writes grow\n",
              read_only_gap < 1.5 && write_heavy_gap > 1.5 ? "HOLDS"
                                                           : "DIVERGES");
  return 0;
}
