// E6 — Fig. 1: the REST API is the narrow waist between agents and Chronos
// Control. Measures request throughput and latency of the hot agent
// endpoints under 1 and 4 concurrent clients.
//
// Expectation: thousands of requests/second for the cheap endpoints; the
// agent-side traffic of even large evaluation fleets (one progress ping per
// second per job) is far below this ceiling.

#include <thread>

#include "bench/bench_util.h"

using namespace chronos;

namespace {

struct Endpoint {
  const char* label;
  std::function<bool(net::HttpClient*)> call;
};

double MeasureRps(int port, const std::string& token,
                  const Endpoint& endpoint, int clients, int requests_each,
                  double* mean_latency_us) {
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  uint64_t start = SystemClock::Get()->MonotonicNanos();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      net::HttpClient client("127.0.0.1", port);
      client.SetDefaultHeader("X-Session", token);
      for (int i = 0; i < requests_each; ++i) {
        if (!endpoint.call(&client)) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  double seconds =
      static_cast<double>(SystemClock::Get()->MonotonicNanos() - start) / 1e9;
  int total = clients * requests_each;
  *mean_latency_us = seconds * 1e6 * clients / total;
  if (failures.load() > 0) {
    std::fprintf(stderr, "%d failed requests on %s\n", failures.load(),
                 endpoint.label);
  }
  return static_cast<double>(total) / seconds;
}

}  // namespace

int main() {
  bench::PrintHeader("E6", "REST API throughput (hot agent endpoints)");

  bench::Toolkit toolkit;
  toolkit.RegisterNullSystem("S");
  toolkit.AddBareDeployments(1);

  // A running job for the progress endpoint.
  auto project = toolkit.service()->CreateProject("p", "",
                                                  toolkit.admin_id());
  auto experiment = toolkit.service()->CreateExperiment(
      project->id, toolkit.admin_id(), toolkit.system_id(), "x", "",
      {bench::FixedSetting("index", json::Json(1))});
  auto evaluation = toolkit.service()->CreateEvaluation(experiment->id, "r");
  auto job = toolkit.service()->PollJob(toolkit.deployment_ids()[0]);
  std::string job_id = (*job)->id;

  auto token = toolkit.service()->Login("admin", "secret");
  std::string session = *token;

  std::string poll_body =
      "{\"deployment_id\":\"" + toolkit.deployment_ids()[0] + "\"}";
  const Endpoint endpoints[] = {
      {"GET /status (public)",
       [](net::HttpClient* client) {
         auto response = client->Get("/api/v1/status");
         return response.ok() && response->status_code == 200;
       }},
      {"GET /jobs/{id} (authd read)",
       [&job_id](net::HttpClient* client) {
         auto response = client->Get("/api/v1/jobs/" + job_id);
         return response.ok() && response->status_code == 200;
       }},
      {"POST /agent/poll (empty queue)",
       [&poll_body](net::HttpClient* client) {
         auto response = client->Post("/api/v1/agent/poll", poll_body);
         return response.ok() && response->status_code == 200;
       }},
      {"POST /agent/jobs/{id}/progress",
       [&job_id](net::HttpClient* client) {
         auto response = client->Post(
             "/api/v1/agent/jobs/" + job_id + "/progress",
             "{\"percent\":50}");
         return response.ok() && response->status_code == 200;
       }},
      {"POST /agent/jobs/{id}/log (1 line)",
       [&job_id](net::HttpClient* client) {
         auto response =
             client->Post("/api/v1/agent/jobs/" + job_id + "/log",
                          "{\"lines\":[\"benchmark log line\"]}");
         return response.ok() && response->status_code == 200;
       }},
  };

  std::printf("%-36s  %8s  %12s  %14s\n", "endpoint", "clients", "req_per_s",
              "mean_lat_us");
  for (const Endpoint& endpoint : endpoints) {
    for (int clients : {1, 4}) {
      double latency_us = 0;
      double rps = MeasureRps(toolkit.port(), session, endpoint, clients,
                              /*requests_each=*/400, &latency_us);
      std::printf("%-36s  %8d  %12.0f  %14.1f\n", endpoint.label, clients,
                  rps, latency_us);
    }
  }
  std::printf("\nnote: every request opens a fresh TCP connection "
              "(Connection: close), matching one-shot agent calls.\n");
  return 0;
}
