// E1 — Fig. 3d / §3 demo: comparative evaluation of the two storage engines
// across client thread counts, executed through the full Chronos toolkit
// (experiment -> evaluation -> jobs -> agents -> result analysis).
//
// Paper expectation: the document-level-locking engine (wiredtiger/btree)
// scales with client threads under a mixed workload; the
// collection-level-locking engine (mmapv1/mmap) plateaus once the single
// writer lock saturates. Crossover at/above 2 threads.

#include "bench/bench_util.h"

using namespace chronos;

int main() {
  bench::PrintHeader("E1",
                     "MongoDB-demo reproduction: throughput by engine and "
                     "client threads (YCSB-A, 50/50 read/update)");

  bench::Toolkit toolkit;
  toolkit.RegisterMokkaSystem();
  toolkit.StartMokkaDeployments(2);

  auto project = toolkit.service()->CreateProject("fig3d", "",
                                                  toolkit.admin_id());
  auto experiment = toolkit.service()->CreateExperiment(
      project->id, toolkit.admin_id(), toolkit.system_id(),
      "engine x threads", "",
      {bench::SweepSetting("engine", {json::Json("wiredtiger"),
                                      json::Json("mmapv1")}),
       bench::SweepSetting("threads", {json::Json(1), json::Json(2),
                                       json::Json(4), json::Json(8)}),
       bench::FixedSetting("records", json::Json(400)),
       bench::FixedSetting("operations", json::Json(700)),
       bench::FixedSetting("ratio", json::Json("read:50,update:50")),
       bench::FixedSetting("warmup_ops", json::Json(50)),
       bench::FixedSetting("io_read_us", json::Json(bench::kReadIoUs)),
       bench::FixedSetting("io_write_us", json::Json(bench::kWriteIoUs))});
  auto evaluation =
      toolkit.service()->CreateEvaluation(experiment->id, "fig3d run");
  std::printf("jobs: %zu (2 engines x 4 thread counts), 2 deployments\n",
              toolkit.service()->ListJobs(evaluation->id).size());

  toolkit.StartAgents({}, /*mokka_handler=*/true);
  double makespan_ms = toolkit.AwaitEvaluation(evaluation->id);
  toolkit.StopAgents();

  auto diagrams = toolkit.service()->EvaluationDiagrams(evaluation->id);
  for (const analysis::DiagramData& diagram : *diagrams) {
    std::printf("\n%s\n", diagram.ToTable().c_str());
  }

  // Shape verdict, as the paper's demo narrative states it.
  for (const analysis::DiagramData& diagram : *diagrams) {
    const analysis::Series* btree = nullptr;
    const analysis::Series* mmap = nullptr;
    for (const analysis::Series& series : diagram.series) {
      if (series.name == "wiredtiger") btree = &series;
      if (series.name == "mmapv1") mmap = &series;
    }
    if (btree == nullptr || mmap == nullptr || btree->values.size() < 4) {
      continue;
    }
    double btree_scaling = btree->values.back() / btree->values.front();
    double mmap_scaling = mmap->values.back() / mmap->values.front();
    std::printf("wiredtiger 8-thread speedup over 1 thread: %.2fx\n",
                btree_scaling);
    std::printf("mmapv1     8-thread speedup over 1 thread: %.2fx\n",
                mmap_scaling);
    std::printf("shape %s: document-level locking scales, collection-level "
                "locking plateaus\n",
                btree_scaling > 2.0 && mmap_scaling < 2.0 ? "HOLDS"
                                                          : "DIVERGES");
  }
  std::printf("evaluation makespan: %.0f ms\n", makespan_ms);
  return 0;
}
