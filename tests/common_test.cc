#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <thread>

#include "common/clock.h"
#include "common/file_util.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/strings.h"
#include "common/threading.h"
#include "common/uuid.h"

namespace chronos {
namespace {

// --- Status / StatusOr ---

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int i = 0; i <= 14; ++i) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(i)), "UNKNOWN");
  }
}

Status FailingHelper() { return Status::Internal("boom"); }

Status UsesReturnIfError() {
  CHRONOS_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kInternal);
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(-1), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(-1);
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument());
  EXPECT_EQ(v.value_or(-1), -1);
}

StatusOr<int> UsesAssignOrReturn(int v) {
  CHRONOS_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed + 1;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*UsesAssignOrReturn(1), 2);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

// --- strings ---

TEST(StringsTest, SplitBasic) {
  auto parts = strings::Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyTokens) {
  auto parts = strings::Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, SplitSkipEmpty) {
  auto parts = strings::Split("/a//b/", '/', true);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(strings::Join(parts, "-"), "x-y-z");
  EXPECT_EQ(strings::Join({}, "-"), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(strings::Trim("  hi \t\r\n"), "hi");
  EXPECT_EQ(strings::Trim(""), "");
  EXPECT_EQ(strings::Trim("   "), "");
  EXPECT_EQ(strings::Trim("a"), "a");
}

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(strings::ToLower("AbC"), "abc");
  EXPECT_EQ(strings::ToUpper("AbC"), "ABC");
  EXPECT_TRUE(strings::EqualsIgnoreCase("Content-Type", "content-type"));
  EXPECT_FALSE(strings::EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(strings::StartsWith("/api/v1/jobs", "/api/v1"));
  EXPECT_FALSE(strings::StartsWith("/api", "/api/v1"));
  EXPECT_TRUE(strings::EndsWith("result.zip", ".zip"));
  EXPECT_FALSE(strings::EndsWith("zip", "result.zip"));
}

TEST(StringsTest, HexEncode) {
  EXPECT_EQ(strings::HexEncode(std::string("\x00\xff\x10", 3)), "00ff10");
}

TEST(StringsTest, Base64RoundTrip) {
  const std::string cases[] = {"", "f", "fo", "foo", "foob", "fooba",
                               "foobar", std::string("\x00\x01\xfe", 3)};
  for (const std::string& input : cases) {
    std::string decoded;
    ASSERT_TRUE(strings::Base64Decode(strings::Base64Encode(input), &decoded));
    EXPECT_EQ(decoded, input);
  }
}

TEST(StringsTest, Base64KnownVectors) {
  EXPECT_EQ(strings::Base64Encode("foobar"), "Zm9vYmFy");
  EXPECT_EQ(strings::Base64Encode("fo"), "Zm8=");
}

TEST(StringsTest, Base64RejectsMalformed) {
  std::string out;
  EXPECT_FALSE(strings::Base64Decode("abc", &out));     // Bad length.
  EXPECT_FALSE(strings::Base64Decode("a=bc", &out));    // Data after pad.
  EXPECT_FALSE(strings::Base64Decode("ab!d", &out));    // Bad char.
  EXPECT_FALSE(strings::Base64Decode("=abc", &out));    // Pad too early.
}

TEST(StringsTest, UrlEncodeDecodeRoundTrip) {
  std::string input = "a b/c?d=e&f%g";
  std::string encoded = strings::UrlEncode(input);
  std::string decoded;
  ASSERT_TRUE(strings::UrlDecode(encoded, &decoded));
  EXPECT_EQ(decoded, input);
}

TEST(StringsTest, UrlDecodeRejectsTruncatedEscape) {
  std::string out;
  EXPECT_FALSE(strings::UrlDecode("abc%2", &out));
  EXPECT_FALSE(strings::UrlDecode("abc%zz", &out));
}

TEST(StringsTest, ParseNumbers) {
  uint64_t u;
  EXPECT_TRUE(strings::ParseUint64("123", &u));
  EXPECT_EQ(u, 123u);
  EXPECT_FALSE(strings::ParseUint64("", &u));
  EXPECT_FALSE(strings::ParseUint64("12x", &u));
  EXPECT_FALSE(strings::ParseUint64("-1", &u));

  int64_t i;
  EXPECT_TRUE(strings::ParseInt64("-42", &i));
  EXPECT_EQ(i, -42);

  double d;
  EXPECT_TRUE(strings::ParseDouble("3.5e2", &d));
  EXPECT_DOUBLE_EQ(d, 350.0);
  EXPECT_FALSE(strings::ParseDouble("3.5x", &d));
}

TEST(StringsTest, PadNumber) {
  EXPECT_EQ(strings::PadNumber(7, 3), "007");
  EXPECT_EQ(strings::PadNumber(1234, 3), "1234");
}

// --- uuid ---

TEST(UuidTest, FormatIsValid) {
  std::string id = GenerateUuid();
  EXPECT_TRUE(IsValidUuid(id));
  EXPECT_EQ(id[14], '4');  // Version nibble.
}

TEST(UuidTest, UniqueAcrossMany) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(GenerateUuid());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(UuidTest, RejectsMalformed) {
  EXPECT_FALSE(IsValidUuid(""));
  EXPECT_FALSE(IsValidUuid("de305d54-75b4-431b-adb2-eb6b9e54601"));   // Short.
  EXPECT_FALSE(IsValidUuid("de305d54x75b4-431b-adb2-eb6b9e546014"));  // Sep.
  EXPECT_FALSE(IsValidUuid("ge305d54-75b4-431b-adb2-eb6b9e546014"));  // Hex.
}

// --- clock ---

TEST(ClockTest, SystemClockAdvances) {
  SystemClock* clock = SystemClock::Get();
  uint64_t a = clock->MonotonicNanos();
  uint64_t b = clock->MonotonicNanos();
  EXPECT_GE(b, a);
  EXPECT_GT(clock->NowMs(), 1500000000000ll);  // Later than 2017.
}

TEST(ClockTest, SimulatedClockIsManual) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.NowMs(), 1000);
  clock.AdvanceMs(500);
  EXPECT_EQ(clock.NowMs(), 1500);
  clock.SleepMs(250);  // Sleep advances, never blocks.
  EXPECT_EQ(clock.NowMs(), 1750);
  clock.SetMs(42);
  EXPECT_EQ(clock.NowMs(), 42);
}

TEST(ClockTest, FormatTimestamp) {
  // 2020-03-30 00:00:00 UTC (the EDBT 2020 start date).
  EXPECT_EQ(FormatTimestamp(1585526400000ll), "2020-03-30 00:00:00");
}

// --- rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundsRespected) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t v = rng.NextInt64(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

// --- threading ---

TEST(BlockingQueueTest, FifoOrder) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Push(2);
  queue.Push(3);
  EXPECT_EQ(*queue.Pop(), 1);
  EXPECT_EQ(*queue.Pop(), 2);
  EXPECT_EQ(*queue.Pop(), 3);
}

TEST(BlockingQueueTest, CloseDrainsThenEnds) {
  BlockingQueue<int> queue;
  queue.Push(1);
  queue.Close();
  EXPECT_FALSE(queue.Push(2));
  EXPECT_EQ(*queue.Pop(), 1);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BlockingQueueTest, TryPopNonBlocking) {
  BlockingQueue<int> queue;
  EXPECT_FALSE(queue.TryPop().has_value());
  queue.Push(9);
  EXPECT_EQ(*queue.TryPop(), 9);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(CountDownLatchTest, WaitsForZero) {
  CountDownLatch latch(3);
  std::thread t([&latch] {
    latch.CountDown();
    latch.CountDown();
    latch.CountDown();
  });
  latch.Wait();
  t.join();
  SUCCEED();
}

TEST(CountDownLatchTest, TimedWaitExpires) {
  CountDownLatch latch(1);
  EXPECT_FALSE(latch.WaitForMs(20));
  latch.CountDown();
  EXPECT_TRUE(latch.WaitForMs(20));
}

// --- logging ---

TEST(LoggingTest, SinkReceivesRecords) {
  Logger::Get()->set_stderr_enabled(false);
  CaptureLogSink sink;
  CHRONOS_LOG(kInfo, "test") << "hello " << 42;
  auto records = sink.Drain();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].component, "test");
  EXPECT_EQ(records[0].message, "hello 42");
  EXPECT_EQ(records[0].level, LogLevel::kInfo);
}

TEST(LoggingTest, MinLevelFilters) {
  Logger::Get()->set_stderr_enabled(false);
  Logger::Get()->set_min_level(LogLevel::kWarning);
  CaptureLogSink sink;
  CHRONOS_LOG(kInfo, "test") << "dropped";
  CHRONOS_LOG(kError, "test") << "kept";
  auto records = sink.Drain();
  Logger::Get()->set_min_level(LogLevel::kDebug);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].message, "kept");
}

TEST(LoggingTest, ThrowingSinkDoesNotStarveOthers) {
  Logger::Get()->set_stderr_enabled(false);
  uint64_t dropped_before = Logger::Get()->dropped_records();
  int throwing_id = Logger::Get()->AddSink(
      [](const LogRecord&) { throw std::runtime_error("bad sink"); });
  CaptureLogSink sink;
  CHRONOS_LOG(kInfo, "test") << "survives";
  CHRONOS_LOG(kInfo, "test") << "still survives";
  Logger::Get()->RemoveSink(throwing_id);

  // The well-behaved sink saw every record and the losses were counted.
  auto records = sink.Drain();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].message, "survives");
  EXPECT_EQ(Logger::Get()->dropped_records(), dropped_before + 2);

  // The logger itself is unharmed (mutex not poisoned, sinks still fire).
  CHRONOS_LOG(kInfo, "test") << "after removal";
  EXPECT_EQ(sink.Drain().size(), 1u);
}

TEST(LoggingTest, FormatContainsLevelAndComponent) {
  LogRecord record;
  record.timestamp_ms = 1585526400000ll;
  record.level = LogLevel::kWarning;
  record.component = "scheduler";
  record.message = "job timed out";
  EXPECT_EQ(record.Format(),
            "2020-03-30 00:00:00 [WARN] scheduler: job timed out");
}

// --- file util ---

TEST(FileUtilTest, WriteReadRoundTrip) {
  file::TempDir dir;
  std::string path = dir.path() + "/f.txt";
  ASSERT_TRUE(file::WriteFile(path, "contents\n").ok());
  auto read = file::ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "contents\n");
}

TEST(FileUtilTest, AppendAccumulates) {
  file::TempDir dir;
  std::string path = dir.path() + "/f.txt";
  ASSERT_TRUE(file::AppendFile(path, "a").ok());
  ASSERT_TRUE(file::AppendFile(path, "b").ok());
  EXPECT_EQ(*file::ReadFile(path), "ab");
}

TEST(FileUtilTest, ReadMissingFails) {
  EXPECT_FALSE(file::ReadFile("/nonexistent/nope").ok());
}

TEST(FileUtilTest, ListDirSorted) {
  file::TempDir dir;
  ASSERT_TRUE(file::WriteFile(dir.path() + "/b", "").ok());
  ASSERT_TRUE(file::WriteFile(dir.path() + "/a", "").ok());
  auto names = file::ListDir(dir.path());
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "a");
  EXPECT_EQ((*names)[1], "b");
}

TEST(FileUtilTest, TempDirRemovedOnDestruction) {
  std::string path;
  {
    file::TempDir dir;
    path = dir.path();
    EXPECT_TRUE(file::Exists(path));
  }
  EXPECT_FALSE(file::Exists(path));
}

// --- histogram ---

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  // Bucketed percentile has bounded relative error (~3% here).
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 50, 4);
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.99)), 99, 4);
}

TEST(HistogramTest, PercentileNeverExceedsMax) {
  Histogram h;
  h.Record(7);
  h.Record(1000000);
  EXPECT_LE(h.Percentile(1.0), 1000000u);
  EXPECT_EQ(h.max(), 1000000u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_NEAR(a.mean(), 20.0, 0.01);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.Record(42);
  EXPECT_NEAR(h.stddev(), 0.0, 1e-9);
}

TEST(HistogramTest, EmptyPercentileIsZeroForAllQuantiles) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0.0), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(1.0), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(HistogramTest, MergeDisjointRanges) {
  Histogram low, high;
  for (uint64_t v = 1; v <= 10; ++v) low.Record(v);
  for (uint64_t v = 1000000; v <= 1000009; ++v) high.Record(v);
  low.Merge(high);
  EXPECT_EQ(low.count(), 20u);
  EXPECT_EQ(low.min(), 1u);
  EXPECT_EQ(low.max(), 1000009u);
  // Median sits at the top of the low cluster; p99 lands in the high one.
  EXPECT_LE(low.Percentile(0.5), 11u);
  EXPECT_GE(low.Percentile(0.99), 1000000u);
  // Merging into an empty histogram adopts the source's extrema.
  Histogram empty;
  empty.Merge(low);
  EXPECT_EQ(empty.count(), 20u);
  EXPECT_EQ(empty.min(), 1u);
  EXPECT_EQ(empty.max(), 1000009u);
}

TEST(HistogramTest, RecordManyExtremeValuesAndCounts) {
  Histogram h;
  h.RecordMany(UINT64_MAX, 3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  // The top bucket's upper bound saturates instead of overflowing.
  EXPECT_EQ(h.Percentile(1.0), UINT64_MAX);

  // Huge counts don't overflow the total.
  Histogram many;
  many.RecordMany(5, 1ull << 40);
  EXPECT_EQ(many.count(), 1ull << 40);
  EXPECT_EQ(many.Percentile(0.5), many.Percentile(1.0));
  EXPECT_NEAR(many.mean(), 5.0, 1e-6);

  // count = 0 is a no-op.
  Histogram none;
  none.RecordMany(7, 0);
  EXPECT_EQ(none.count(), 0u);
  EXPECT_EQ(none.max(), 0u);
}

TEST(HistogramTest, ConcurrentRecordIsSafe) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 1000; ++i) h.Record(i % 100);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 8000u);
}

}  // namespace
}  // namespace chronos
