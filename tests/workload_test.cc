#include <gtest/gtest.h>

#include <map>

#include "workload/distributions.h"
#include "workload/workload.h"

namespace chronos::workload {
namespace {

// --- Distributions ---

TEST(DistributionTest, UniformCoversRange) {
  Rng rng(1);
  UniformChooser chooser(100);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[chooser.Next(&rng)]++;
  EXPECT_EQ(counts.size(), 100u);  // Every key hit at 100x expected samples.
  for (const auto& [key, count] : counts) {
    EXPECT_LT(key, 100u);
    EXPECT_GT(count, 30);  // ~100 expected; very loose bound.
    EXPECT_LT(count, 300);
  }
}

TEST(DistributionTest, ZipfianIsSkewed) {
  Rng rng(2);
  ZipfianChooser chooser(1000);
  std::map<uint64_t, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) counts[chooser.Next(&rng)]++;
  // Key 0 must be by far the most popular (~theta=0.99 zipf: >5%).
  EXPECT_GT(counts[0], kSamples / 20);
  // And the top-10 keys should dwarf a uniform share.
  int top10 = 0;
  for (uint64_t k = 0; k < 10; ++k) top10 += counts[k];
  EXPECT_GT(top10, kSamples / 5);
}

TEST(DistributionTest, ZipfianStaysInRange) {
  Rng rng(3);
  ZipfianChooser chooser(50);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(chooser.Next(&rng), 50u);
  }
}

TEST(DistributionTest, ScrambledZipfianSpreadsHotKeys) {
  Rng rng(4);
  ScrambledZipfianChooser chooser(1000);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[chooser.Next(&rng)]++;
  // The hottest key should NOT be key 0 systematically (it is hashed).
  uint64_t hottest = 0;
  int hottest_count = 0;
  for (const auto& [key, count] : counts) {
    if (count > hottest_count) {
      hottest = key;
      hottest_count = count;
    }
  }
  EXPECT_GT(hottest_count, 1000);  // Still skewed...
  EXPECT_NE(hottest, 0u);          // ...but scattered (hash of rank 0 != 0).
}

TEST(DistributionTest, LatestFavorsRecentKeys) {
  Rng rng(5);
  LatestChooser chooser(1000);
  int recent = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (chooser.Next(&rng) >= 900) ++recent;  // Top decile of recency.
  }
  EXPECT_GT(recent, kSamples / 2);  // Most traffic on newest 10%.
}

TEST(DistributionTest, LatestGrowTracksInserts) {
  Rng rng(6);
  LatestChooser chooser(10);
  chooser.GrowTo(1000);
  bool saw_beyond_initial = false;
  for (int i = 0; i < 1000; ++i) {
    uint64_t key = chooser.Next(&rng);
    EXPECT_LT(key, 1000u);
    if (key >= 10) saw_beyond_initial = true;
  }
  EXPECT_TRUE(saw_beyond_initial);
}

TEST(DistributionTest, HotSpotProportions) {
  Rng rng(7);
  HotSpotChooser chooser(1000, 0.2, 0.8);
  int hot = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (chooser.Next(&rng) < 200) ++hot;
  }
  // 80% of ops should land in the hot 20% (±3%).
  EXPECT_NEAR(static_cast<double>(hot) / kSamples, 0.8, 0.03);
}

TEST(DistributionTest, KindNamesRoundTrip) {
  for (DistributionKind kind :
       {DistributionKind::kUniform, DistributionKind::kZipfian,
        DistributionKind::kScrambledZipfian, DistributionKind::kLatest,
        DistributionKind::kHotSpot}) {
    auto parsed = ParseDistributionKind(DistributionKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
    EXPECT_NE(MakeChooser(kind, 10), nullptr);
  }
  EXPECT_FALSE(ParseDistributionKind("normal").ok());
}

// --- WorkloadSpec ---

TEST(WorkloadSpecTest, PresetsMatchYcsb) {
  auto a = WorkloadSpec::Preset("a");
  ASSERT_TRUE(a.ok());
  EXPECT_DOUBLE_EQ(a->read_proportion, 0.5);
  EXPECT_DOUBLE_EQ(a->update_proportion, 0.5);

  auto c = WorkloadSpec::Preset("c");
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->read_proportion, 1.0);

  auto d = WorkloadSpec::Preset("d");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->distribution, DistributionKind::kLatest);
  EXPECT_DOUBLE_EQ(d->insert_proportion, 0.05);

  auto e = WorkloadSpec::Preset("e");
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(e->scan_proportion, 0.95);

  auto f = WorkloadSpec::Preset("f");
  ASSERT_TRUE(f.ok());
  EXPECT_DOUBLE_EQ(f->read_proportion, 0.5);
  EXPECT_DOUBLE_EQ(f->rmw_proportion, 0.5);
  EXPECT_DOUBLE_EQ(f->update_proportion, 0.0);

  EXPECT_FALSE(WorkloadSpec::Preset("z").ok());
}

TEST(WorkloadGeneratorTest, ReadModifyWriteOperations) {
  WorkloadSpec spec;
  spec.read_proportion = 0;
  spec.update_proportion = 0;
  spec.insert_proportion = 0;
  spec.scan_proportion = 0;
  spec.rmw_proportion = 1;
  WorkloadGenerator generator(spec);
  for (int i = 0; i < 50; ++i) {
    Operation op = generator.NextOperation();
    ASSERT_EQ(op.type, OpType::kReadModifyWrite);
    EXPECT_FALSE(op.key.empty());
    EXPECT_TRUE(op.document.Has("_id"));  // Carries the new image.
  }
  EXPECT_EQ(OpTypeName(OpType::kReadModifyWrite), "rmw");
}

TEST(WorkloadSpecTest, RatioWithRmw) {
  WorkloadSpec spec;
  ASSERT_TRUE(spec.ApplyRatio("read:50,rmw:50").ok());
  EXPECT_DOUBLE_EQ(spec.read_proportion, 0.5);
  EXPECT_DOUBLE_EQ(spec.rmw_proportion, 0.5);
  EXPECT_DOUBLE_EQ(spec.update_proportion, 0.0);
}

TEST(WorkloadSpecTest, RmwSurvivesJsonRoundTrip) {
  WorkloadSpec spec;
  spec.rmw_proportion = 0.25;
  auto parsed = WorkloadSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->rmw_proportion, 0.25);
}

TEST(WorkloadSpecTest, ApplyRatioNormalizes) {
  WorkloadSpec spec;
  ASSERT_TRUE(spec.ApplyRatio("read:95,update:5").ok());
  EXPECT_DOUBLE_EQ(spec.read_proportion, 0.95);
  EXPECT_DOUBLE_EQ(spec.update_proportion, 0.05);
  ASSERT_TRUE(spec.ApplyRatio("read:1,update:1,insert:1,scan:1").ok());
  EXPECT_DOUBLE_EQ(spec.read_proportion, 0.25);
  EXPECT_DOUBLE_EQ(spec.scan_proportion, 0.25);
}

TEST(WorkloadSpecTest, ApplyRatioRejectsMalformed) {
  WorkloadSpec spec;
  EXPECT_FALSE(spec.ApplyRatio("read").ok());
  EXPECT_FALSE(spec.ApplyRatio("read:abc").ok());
  EXPECT_FALSE(spec.ApplyRatio("fly:10").ok());
  EXPECT_FALSE(spec.ApplyRatio("read:0,update:0").ok());
  EXPECT_FALSE(spec.ApplyRatio("read:-5,update:5").ok());
}

TEST(WorkloadSpecTest, JsonRoundTrip) {
  WorkloadSpec spec;
  spec.record_count = 555;
  spec.operation_count = 777;
  spec.distribution = DistributionKind::kLatest;
  spec.field_count = 3;
  spec.seed = 99;
  auto parsed = WorkloadSpec::FromJson(spec.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->record_count, 555u);
  EXPECT_EQ(parsed->operation_count, 777u);
  EXPECT_EQ(parsed->distribution, DistributionKind::kLatest);
  EXPECT_EQ(parsed->field_count, 3);
  EXPECT_EQ(parsed->seed, 99u);
}

// --- Generator ---

TEST(WorkloadGeneratorTest, KeyFormat) {
  EXPECT_EQ(WorkloadGenerator::KeyForIndex(0), "user000000000000");
  EXPECT_EQ(WorkloadGenerator::KeyForIndex(42), "user000000000042");
}

TEST(WorkloadGeneratorTest, LoadKeysCoverRecordCount) {
  WorkloadSpec spec;
  spec.record_count = 25;
  WorkloadGenerator generator(spec);
  auto keys = generator.LoadKeys();
  ASSERT_EQ(keys.size(), 25u);
  EXPECT_EQ(keys[0], "user000000000000");
  EXPECT_EQ(keys[24], "user000000000024");
}

TEST(WorkloadGeneratorTest, DocumentShapeMatchesSpec) {
  WorkloadSpec spec;
  spec.field_count = 4;
  spec.field_length = 16;
  WorkloadGenerator generator(spec);
  json::Json doc = generator.MakeDocument("user000000000001");
  EXPECT_EQ(doc.at("_id").as_string(), "user000000000001");
  EXPECT_EQ(doc.size(), 5u);  // _id + 4 fields.
  EXPECT_EQ(doc.at("field0").as_string().size(), 16u);
  EXPECT_EQ(doc.at("field3").as_string().size(), 16u);
}

TEST(WorkloadGeneratorTest, MixProportionsApproximatelyHonored) {
  WorkloadSpec spec;
  spec.record_count = 1000;
  spec.read_proportion = 0.7;
  spec.update_proportion = 0.2;
  spec.insert_proportion = 0.1;
  spec.scan_proportion = 0;
  WorkloadGenerator generator(spec);
  std::map<OpType, int> counts;
  constexpr int kOps = 20000;
  for (int i = 0; i < kOps; ++i) counts[generator.NextOperation().type]++;
  EXPECT_NEAR(static_cast<double>(counts[OpType::kRead]) / kOps, 0.7, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[OpType::kUpdate]) / kOps, 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[OpType::kInsert]) / kOps, 0.1, 0.02);
  EXPECT_EQ(counts[OpType::kScan], 0);
}

TEST(WorkloadGeneratorTest, InsertsUseFreshMonotonicKeys) {
  WorkloadSpec spec;
  spec.record_count = 10;
  spec.read_proportion = 0;
  spec.update_proportion = 0;
  spec.insert_proportion = 1;
  WorkloadGenerator generator(spec);
  std::string previous;
  for (int i = 0; i < 20; ++i) {
    Operation op = generator.NextOperation();
    ASSERT_EQ(op.type, OpType::kInsert);
    EXPECT_GT(op.key, previous);
    EXPECT_TRUE(op.document.Has("_id"));
    previous = op.key;
  }
  // First fresh key continues after the loaded population.
  WorkloadGenerator generator2(spec);
  EXPECT_EQ(generator2.NextOperation().key, "user000000000010");
}

TEST(WorkloadGeneratorTest, ScansCarryBoundedLength) {
  WorkloadSpec spec;
  spec.read_proportion = 0;
  spec.update_proportion = 0;
  spec.insert_proportion = 0;
  spec.scan_proportion = 1;
  spec.max_scan_length = 10;
  WorkloadGenerator generator(spec);
  for (int i = 0; i < 100; ++i) {
    Operation op = generator.NextOperation();
    ASSERT_EQ(op.type, OpType::kScan);
    EXPECT_GE(op.scan_length, 1u);
    EXPECT_LE(op.scan_length, 10u);
  }
}

TEST(WorkloadGeneratorTest, DeterministicPerSeedAndThread) {
  WorkloadSpec spec;
  spec.seed = 7;
  WorkloadGenerator a(spec, 0), b(spec, 0), c(spec, 1);
  bool any_difference_to_c = false;
  for (int i = 0; i < 100; ++i) {
    Operation op_a = a.NextOperation();
    Operation op_b = b.NextOperation();
    Operation op_c = c.NextOperation();
    EXPECT_EQ(op_a.type, op_b.type);
    EXPECT_EQ(op_a.key, op_b.key);
    if (op_a.key != op_c.key || op_a.type != op_c.type) {
      any_difference_to_c = true;
    }
  }
  EXPECT_TRUE(any_difference_to_c);  // Threads get distinct streams.
}

// Property: operation keys always within the (growing) key space.
class GeneratorPropertyTest
    : public ::testing::TestWithParam<DistributionKind> {};

TEST_P(GeneratorPropertyTest, KeysAlwaysValid) {
  WorkloadSpec spec;
  spec.record_count = 100;
  spec.read_proportion = 0.5;
  spec.update_proportion = 0.3;
  spec.insert_proportion = 0.2;
  spec.distribution = GetParam();
  WorkloadGenerator generator(spec);
  uint64_t key_space = 100;
  for (int i = 0; i < 2000; ++i) {
    Operation op = generator.NextOperation();
    if (op.type == OpType::kInsert) {
      ++key_space;
    }
    // Key must parse back to an index within the current space.
    uint64_t index = std::stoull(op.key.substr(4));
    EXPECT_LT(index, key_space);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, GeneratorPropertyTest,
    ::testing::Values(DistributionKind::kUniform, DistributionKind::kZipfian,
                      DistributionKind::kScrambledZipfian,
                      DistributionKind::kLatest,
                      DistributionKind::kHotSpot));

}  // namespace
}  // namespace chronos::workload
