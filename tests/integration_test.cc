// End-to-end tests across real sockets: Chronos Control REST server +
// Chronos Agent(s) + MokkaDB deployments — the paper's full toolkit loop.
#include <gtest/gtest.h>

#include "agent/agent.h"
#include "archive/zip.h"
#include "clients/mokka_client.h"
#include "clients/mokka_provisioner.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/strings.h"
#include "control/rest_api.h"
#include "net/ftp.h"
#include "sue/mokkadb/wire.h"

namespace chronos {
namespace {

using chronos::file::TempDir;
using model::JobState;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Get()->set_stderr_enabled(false);
    auto db = model::MetaDb::Open(dir_.path());
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    control::ControlServiceOptions options;
    options.heartbeat_timeout_ms = 3000;
    service_ = std::make_unique<control::ControlService>(
        db_.get(), SystemClock::Get(), options);
    auto admin = service_->CreateUser("admin", "secret",
                                      model::UserRole::kAdmin);
    ASSERT_TRUE(admin.ok());
    admin_id_ = admin->id;
    auto server = control::ControlServer::Start(service_.get(), 0,
                                                /*monitor_interval_ms=*/500);
    ASSERT_TRUE(server.ok()) << server.status();
    server_ = std::move(server).value();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  // Registers the MokkaDB system and spins up `n` live deployments, each a
  // wire server over its own Database.
  void StartMokkaDeployments(int n) {
    model::System system;
    system.name = "MokkaDB";
    for (const char* name : {"engine", "ratio", "distribution"}) {
      model::ParameterDef def;
      def.name = name;
      def.type = model::ParameterType::kValue;
      system.parameters.push_back(def);
    }
    for (const char* name : {"threads", "records", "operations"}) {
      model::ParameterDef def;
      def.name = name;
      def.type = model::ParameterType::kInterval;
      def.min = 1;
      def.max = 1000000;
      system.parameters.push_back(def);
    }
    model::DiagramDef diagram;
    diagram.name = "Throughput by threads";
    diagram.type = model::DiagramType::kLine;
    diagram.x_field = "threads";
    diagram.y_field = "throughput";
    diagram.group_by = "engine";
    system.diagrams.push_back(diagram);
    auto registered = service_->RegisterSystem(system);
    ASSERT_TRUE(registered.ok());
    system_id_ = registered->id;

    for (int i = 0; i < n; ++i) {
      auto database = std::make_unique<mokka::Database>();
      auto wire = mokka::WireServer::Start(database.get(), 0);
      ASSERT_TRUE(wire.ok());
      model::Deployment deployment;
      deployment.system_id = system_id_;
      deployment.name = "mokka-" + std::to_string(i);
      deployment.endpoint = (*wire)->endpoint();
      auto created = service_->CreateDeployment(deployment);
      ASSERT_TRUE(created.ok());
      deployment_ids_.push_back(created->id);
      endpoints_.push_back((*wire)->endpoint());
      databases_.push_back(std::move(database));
      wire_servers_.push_back(std::move(wire).value());
    }
  }

  // Creates project + experiment + evaluation over the engine x threads
  // space with a tiny workload.
  std::string MakeEvaluation(std::vector<json::Json> engines,
                             std::vector<json::Json> threads) {
    auto project = service_->CreateProject("demo", "", admin_id_);
    EXPECT_TRUE(project.ok());
    project_id_ = project->id;
    model::ParameterSetting engine_setting;
    engine_setting.name = "engine";
    engine_setting.sweep = std::move(engines);
    model::ParameterSetting thread_setting;
    thread_setting.name = "threads";
    thread_setting.sweep = std::move(threads);
    model::ParameterSetting records;
    records.name = "records";
    records.fixed = json::Json(100);
    model::ParameterSetting operations;
    operations.name = "operations";
    operations.fixed = json::Json(150);
    auto experiment = service_->CreateExperiment(
        project_id_, admin_id_, system_id_, "engines", "",
        {engine_setting, thread_setting, records, operations});
    EXPECT_TRUE(experiment.ok()) << experiment.status();
    auto evaluation = service_->CreateEvaluation(experiment->id, "run");
    EXPECT_TRUE(evaluation.ok());
    return evaluation->id;
  }

  agent::AgentOptions AgentOptionsFor(size_t deployment_index) {
    agent::AgentOptions options;
    options.control_port = server_->port();
    options.username = "admin";
    options.password = "secret";
    options.deployment_id = deployment_ids_[deployment_index];
    options.poll_interval_ms = 20;
    options.heartbeat_interval_ms = 200;
    options.log_flush_interval_ms = 100;
    return options;
  }

  TempDir dir_;
  std::unique_ptr<model::MetaDb> db_;
  std::unique_ptr<control::ControlService> service_;
  std::unique_ptr<control::ControlServer> server_;
  std::string admin_id_, system_id_, project_id_;
  std::vector<std::unique_ptr<mokka::Database>> databases_;
  std::vector<std::unique_ptr<mokka::WireServer>> wire_servers_;
  std::vector<std::string> deployment_ids_;
  std::vector<std::string> endpoints_;
};

// --- REST surface ---

TEST_F(IntegrationTest, StatusEndpointIsPublic) {
  net::HttpClient client("127.0.0.1", server_->port());
  auto response = client.Get("/api/v1/status");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);
  auto body = json::Parse(response->body);
  EXPECT_EQ(body->at("service").as_string(), "chronos-control");
  // v2 mounted simultaneously.
  response = client.Get("/api/v2/status");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(json::Parse(response->body)->at("api_version").as_int(), 2);
}

TEST_F(IntegrationTest, AuthRequiredEverywhereElse) {
  net::HttpClient client("127.0.0.1", server_->port());
  auto response = client.Get("/api/v1/projects");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 401);
  response = client.Post("/api/v1/projects", R"({"name":"x"})");
  EXPECT_EQ(response->status_code, 401);
}

TEST_F(IntegrationTest, LoginAndCrudOverRest) {
  net::HttpClient client("127.0.0.1", server_->port());
  auto login = client.Post("/api/v1/auth/login",
                           R"({"username":"admin","password":"secret"})");
  ASSERT_TRUE(login.ok());
  ASSERT_EQ(login->status_code, 200);
  std::string token = json::Parse(login->body)->at("token").as_string();
  client.SetDefaultHeader("X-Session", token);

  // whoami does not leak password material.
  auto whoami = client.Get("/api/v1/whoami");
  ASSERT_EQ(whoami->status_code, 200);
  auto who = json::Parse(whoami->body);
  EXPECT_EQ(who->at("username").as_string(), "admin");
  EXPECT_FALSE(who->Has("password_hash"));

  // Create a project, read it back.
  auto created = client.Post("/api/v1/projects",
                             R"({"name":"rest-project","description":"d"})");
  ASSERT_EQ(created->status_code, 201);
  std::string project_id =
      json::Parse(created->body)->at("id").as_string();
  auto fetched = client.Get("/api/v1/projects/" + project_id);
  ASSERT_EQ(fetched->status_code, 200);
  EXPECT_EQ(json::Parse(fetched->body)->at("name").as_string(),
            "rest-project");

  // Wrong login.
  auto bad = client.Post("/api/v1/auth/login",
                         R"({"username":"admin","password":"nope"})");
  EXPECT_EQ(bad->status_code, 401);
}

TEST_F(IntegrationTest, UsersListIsAdminOnlyAndSanitized) {
  service_->CreateUser("bob", "pass", model::UserRole::kMember).IgnoreError();
  net::HttpClient client("127.0.0.1", server_->port());
  auto login = client.Post("/api/v1/auth/login",
                           R"({"username":"admin","password":"secret"})");
  client.SetDefaultHeader(
      "X-Session", json::Parse(login->body)->at("token").as_string());
  auto listed = client.Get("/api/v1/users");
  ASSERT_EQ(listed->status_code, 200);
  auto users = json::Parse(listed->body);
  ASSERT_EQ(users->size(), 2u);
  for (const json::Json& user : users->as_array()) {
    EXPECT_FALSE(user.Has("password_hash"));
    EXPECT_FALSE(user.Has("salt"));
  }
  // Member is rejected.
  net::HttpClient member_client("127.0.0.1", server_->port());
  auto member_login = member_client.Post(
      "/api/v1/auth/login", R"({"username":"bob","password":"pass"})");
  member_client.SetDefaultHeader(
      "X-Session",
      json::Parse(member_login->body)->at("token").as_string());
  EXPECT_EQ(member_client.Get("/api/v1/users")->status_code, 403);
}

TEST_F(IntegrationTest, NonAdminCannotCreateUsers) {
  net::HttpClient client("127.0.0.1", server_->port());
  auto member = service_->CreateUser("bob", "pass", model::UserRole::kMember);
  ASSERT_TRUE(member.ok());
  auto login = client.Post("/api/v1/auth/login",
                           R"({"username":"bob","password":"pass"})");
  std::string token = json::Parse(login->body)->at("token").as_string();
  client.SetDefaultHeader("X-Session", token);
  auto response = client.Post(
      "/api/v1/users", R"({"username":"eve","password":"pass"})");
  EXPECT_EQ(response->status_code, 403);
}

// --- Observability: /metrics exposition + trace propagation ---

// Value of the first sample whose line starts with `prefix`, or -1.
double MetricValue(const std::string& exposition, const std::string& prefix) {
  size_t position = 0;
  while (position < exposition.size()) {
    size_t end = exposition.find('\n', position);
    if (end == std::string::npos) end = exposition.size();
    std::string line = exposition.substr(position, end - position);
    if (line.rfind(prefix, 0) == 0) {
      size_t space = line.rfind(' ');
      if (space != std::string::npos) {
        return std::stod(line.substr(space + 1));
      }
    }
    position = end + 1;
  }
  return -1;
}

TEST_F(IntegrationTest, MetricsEndpointExposesToolkitActivity) {
  StartMokkaDeployments(1);
  std::string evaluation_id =
      MakeEvaluation({json::Json("wiredtiger")}, {json::Json(1)});
  agent::ChronosAgent chronos_agent(AgentOptionsFor(0));
  chronos_agent.SetHandler(
      clients::MakeMokkaEvaluationHandler(endpoints_[0]));
  ASSERT_TRUE(chronos_agent.Connect().ok());
  ASSERT_TRUE(chronos_agent.Run(/*max_jobs=*/1).ok());

  // Unauthenticated, like /status; also served under the versioned API.
  net::HttpClient client("127.0.0.1", server_->port());
  auto alias = client.Get("/api/v1/metrics");
  ASSERT_TRUE(alias.ok());
  EXPECT_EQ(alias->status_code, 200);

  // The monitor (500ms interval) has certainly swept at least once within
  // a few seconds; poll until its counter shows up non-zero.
  std::string text;
  for (int i = 0; i < 100; ++i) {
    auto response = client.Get("/metrics");
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->status_code, 200);
    EXPECT_NE(response->headers.Get("Content-Type").find("text/plain"),
              std::string::npos);
    text = response->body;
    if (MetricValue(text, "chronos_heartbeat_sweeps_total") > 0) break;
    SystemClock::Get()->SleepMs(50);
  }

  // A full quickstart run leaves every instrumented layer non-zero. (The
  // registry is process-wide, so values only grow across tests.)
  EXPECT_GT(MetricValue(text, "chronos_http_requests_total"), 0);
  EXPECT_GT(MetricValue(text, "chronos_jobs_scheduled_total"), 0);
  EXPECT_GT(MetricValue(text, "chronos_jobs_claimed_total"), 0);
  EXPECT_GT(MetricValue(text, "chronos_jobs_finished_total"), 0);
  EXPECT_GT(MetricValue(text, "chronos_heartbeat_sweeps_total"), 0);
  EXPECT_GT(MetricValue(text, "chronos_agent_polls_total"), 0);
  EXPECT_GT(MetricValue(text, "chronos_agent_uploads_total"), 0);
  EXPECT_GT(MetricValue(text, "chronos_wal_appends_total"), 0);
  // Latency renders as a summary with derived quantiles.
  EXPECT_NE(text.find("chronos_http_request_latency_us"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_GT(MetricValue(text, "chronos_http_request_latency_us_count"), 0);

  // Every response carries the trace header assigned at ingress.
  auto traced = client.Get("/api/v1/status");
  ASSERT_TRUE(traced.ok());
  EXPECT_TRUE(traced->headers.Has("X-Chronos-Trace"));
}

TEST_F(IntegrationTest, StatusReportsHeartbeatActivity) {
  net::HttpClient client("127.0.0.1", server_->port());
  json::Json body;
  for (int i = 0; i < 100; ++i) {
    auto response = client.Get("/api/v1/status");
    ASSERT_TRUE(response.ok());
    auto parsed = json::Parse(response->body);
    ASSERT_TRUE(parsed.ok());
    body = std::move(parsed).value();
    if (body.GetIntOr("heartbeat_sweeps", 0) > 0) break;
    SystemClock::Get()->SleepMs(50);
  }
  EXPECT_GT(body.GetIntOr("heartbeat_sweeps", 0), 0);
  ASSERT_TRUE(body.Has("heartbeat_jobs_failed"));
  EXPECT_EQ(body.GetIntOr("heartbeat_jobs_failed", -1), 0);
}

TEST_F(IntegrationTest, AgentTraceIdReachesControlLogs) {
  StartMokkaDeployments(1);
  MakeEvaluation({json::Json("wiredtiger")}, {json::Json(1)});

  CaptureLogSink capture;
  agent::ChronosAgent chronos_agent(AgentOptionsFor(0));
  chronos_agent.SetHandler(
      clients::MakeMokkaEvaluationHandler(endpoints_[0]));
  ASSERT_TRUE(chronos_agent.Connect().ok());
  ASSERT_TRUE(chronos_agent.Run(/*max_jobs=*/1).ok());

  // The agent logs "starting job <id>" inside its per-poll trace scope;
  // Chronos Control adopts the propagated trace at HTTP ingress, so its own
  // job-transition records for the same job must carry the agent's trace id.
  std::vector<LogRecord> records = capture.Drain();
  std::string job_id, agent_trace;
  for (const LogRecord& record : records) {
    if (record.component == "agent" &&
        record.message.rfind("starting job ", 0) == 0) {
      job_id = record.message.substr(std::string("starting job ").size());
      agent_trace = record.trace_id;
    }
  }
  ASSERT_FALSE(job_id.empty());
  ASSERT_EQ(agent_trace.size(), 32u);

  int control_records = 0;
  for (const LogRecord& record : records) {
    if (record.component == "control.job" &&
        record.message.rfind(job_id + ":", 0) == 0) {
      ++control_records;
      EXPECT_EQ(record.trace_id, agent_trace) << record.message;
      // Control is a separate hop: same trace, its own span.
      EXPECT_EQ(record.span_id.size(), 16u);
    }
  }
  // At least claim (scheduled -> running) and finish (running -> finished).
  EXPECT_GE(control_records, 2);
}

// --- The full demo: agent + MokkaDB through Chronos ---

TEST_F(IntegrationTest, FullDemoWorkflowSingleDeployment) {
  StartMokkaDeployments(1);
  std::string evaluation_id = MakeEvaluation(
      {json::Json("wiredtiger"), json::Json("mmapv1")}, {json::Json(1)});

  agent::ChronosAgent chronos_agent(AgentOptionsFor(0));
  chronos_agent.SetHandler(
      clients::MakeMokkaEvaluationHandler(endpoints_[0]));
  ASSERT_TRUE(chronos_agent.Connect().ok());
  ASSERT_TRUE(chronos_agent.Run(/*max_jobs=*/2).ok());

  // Both jobs finished with results.
  auto jobs = service_->ListJobs(evaluation_id);
  ASSERT_EQ(jobs.size(), 2u);
  for (const model::Job& job : jobs) {
    EXPECT_EQ(job.state, JobState::kFinished) << job.failure_reason;
    auto result = service_->GetResult(job.id);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->data.at("throughput").as_double(), 0);
    EXPECT_TRUE(result->data.Has("metrics"));
    // The zip bundle round-trips.
    std::string bundle;
    ASSERT_TRUE(strings::Base64Decode(result->zip_base64, &bundle));
    auto reader = archive::ZipReader::Open(bundle);
    ASSERT_TRUE(reader.ok());
    EXPECT_TRUE(reader->Has("result.json"));
    EXPECT_TRUE(reader->Has("summary.json"));
    // Log lines were shipped.
    EXPECT_FALSE(service_->JobLog(job.id).empty());
  }

  // Diagrams materialize (Fig. 3d analogue).
  auto diagrams = service_->EvaluationDiagrams(evaluation_id);
  ASSERT_TRUE(diagrams.ok());
  ASSERT_EQ(diagrams->size(), 1u);
  EXPECT_EQ((*diagrams)[0].series.size(), 2u);
}

TEST_F(IntegrationTest, ParallelDeploymentsShareEvaluation) {
  StartMokkaDeployments(2);
  std::string evaluation_id =
      MakeEvaluation({json::Json("wiredtiger"), json::Json("mmapv1")},
                     {json::Json(1), json::Json(2)});  // 4 jobs.

  agent::ChronosAgent agent_a(AgentOptionsFor(0));
  agent_a.SetHandler(clients::MakeMokkaEvaluationHandler(endpoints_[0]));
  ASSERT_TRUE(agent_a.Connect().ok());
  agent::ChronosAgent agent_b(AgentOptionsFor(1));
  agent_b.SetHandler(clients::MakeMokkaEvaluationHandler(endpoints_[1]));
  ASSERT_TRUE(agent_b.Connect().ok());

  agent_a.StartAsync();
  agent_b.StartAsync();
  // Wait until all 4 jobs are terminal (max ~20s).
  for (int i = 0; i < 400; ++i) {
    auto summary = service_->Summarize(evaluation_id);
    if (summary.ok() &&
        summary->state_counts[JobState::kFinished] == 4) {
      break;
    }
    SystemClock::Get()->SleepMs(50);
  }
  agent_a.Stop();
  agent_b.Stop();

  auto summary = service_->Summarize(evaluation_id);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->state_counts[JobState::kFinished], 4);
  // Both agents did real work.
  EXPECT_GT(agent_a.jobs_executed(), 0);
  EXPECT_GT(agent_b.jobs_executed(), 0);
  EXPECT_EQ(agent_a.jobs_executed() + agent_b.jobs_executed(), 4);
}

TEST_F(IntegrationTest, AgentCrashIsDetectedAndJobRecovered) {
  StartMokkaDeployments(1);
  std::string evaluation_id =
      MakeEvaluation({json::Json("wiredtiger")}, {json::Json(1)});

  // An "agent" that takes the job and dies without ever heartbeating.
  auto job = service_->PollJob(deployment_ids_[0]);
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(job->has_value());
  std::string job_id = (*job)->id;

  // The heartbeat monitor (500ms interval, 3000ms timeout) must fail and
  // auto-reschedule it.
  bool recovered = false;
  for (int i = 0; i < 200; ++i) {
    auto current = service_->GetJob(job_id);
    if (current.ok() && current->state == JobState::kScheduled &&
        current->attempt == 2) {
      recovered = true;
      break;
    }
    SystemClock::Get()->SleepMs(100);
  }
  EXPECT_TRUE(recovered);

  // A healthy agent now completes the recovered job.
  agent::ChronosAgent chronos_agent(AgentOptionsFor(0));
  chronos_agent.SetHandler(
      clients::MakeMokkaEvaluationHandler(endpoints_[0]));
  ASSERT_TRUE(chronos_agent.Connect().ok());
  ASSERT_TRUE(chronos_agent.Run(/*max_jobs=*/1).ok());
  EXPECT_EQ(service_->GetJob(job_id)->state, JobState::kFinished);
}

TEST_F(IntegrationTest, FailingHandlerMarksJobFailed) {
  StartMokkaDeployments(1);
  control::ControlServiceOptions no_retry;
  no_retry.auto_reschedule = false;
  // Rebuild service options via a fresh service is complex; instead use an
  // evaluation with a handler that fails and check failed+auto-reschedule.
  std::string evaluation_id =
      MakeEvaluation({json::Json("wiredtiger")}, {json::Json(1)});

  agent::ChronosAgent chronos_agent(AgentOptionsFor(0));
  chronos_agent.SetHandler([](agent::JobContext*) {
    return Status::Internal("synthetic client failure");
  });
  ASSERT_TRUE(chronos_agent.Connect().ok());
  // max_attempts(3) runs: job fails, auto-reschedules twice, stays failed.
  ASSERT_TRUE(chronos_agent.Run(/*max_jobs=*/3).ok());

  auto jobs = service_->ListJobs(evaluation_id);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, JobState::kFailed);
  EXPECT_EQ(jobs[0].attempt, 3);
  EXPECT_NE(jobs[0].failure_reason.find("synthetic"), std::string::npos);
}

TEST_F(IntegrationTest, AbortObservedByRunningAgent) {
  StartMokkaDeployments(1);
  std::string evaluation_id =
      MakeEvaluation({json::Json("wiredtiger")}, {json::Json(1)});
  auto jobs = service_->ListJobs(evaluation_id);
  ASSERT_EQ(jobs.size(), 1u);
  std::string job_id = jobs[0].id;

  agent::ChronosAgent chronos_agent(AgentOptionsFor(0));
  std::atomic<bool> saw_abort{false};
  chronos_agent.SetHandler([&](agent::JobContext* context) {
    // Long-running handler that polls for the abort.
    for (int i = 0; i < 200; ++i) {
      if (!context->SetProgress(i % 100)) {
        saw_abort.store(true);
        return Status::Aborted("stopping per server request");
      }
      SystemClock::Get()->SleepMs(20);
    }
    return Status::Ok();
  });
  ASSERT_TRUE(chronos_agent.Connect().ok());
  chronos_agent.StartAsync(/*max_jobs=*/1);

  // Wait for it to start running, then abort.
  for (int i = 0; i < 100; ++i) {
    auto job = service_->GetJob(job_id);
    if (job.ok() && job->state == JobState::kRunning) break;
    SystemClock::Get()->SleepMs(20);
  }
  ASSERT_TRUE(service_->AbortJob(job_id).ok());
  for (int i = 0; i < 200 && !saw_abort.load(); ++i) {
    SystemClock::Get()->SleepMs(20);
  }
  chronos_agent.Stop();
  EXPECT_TRUE(saw_abort.load());
  EXPECT_EQ(service_->GetJob(job_id)->state, JobState::kAborted);
}

TEST_F(IntegrationTest, ResultBundleViaFtp) {
  StartMokkaDeployments(1);
  auto ftp = net::FtpServer::Start(0, "results", "store");
  ASSERT_TRUE(ftp.ok());

  std::string evaluation_id =
      MakeEvaluation({json::Json("mmapv1")}, {json::Json(1)});

  agent::AgentOptions options = AgentOptionsFor(0);
  options.ftp_host = "127.0.0.1";
  options.ftp_port = (*ftp)->port();
  options.ftp_username = "results";
  options.ftp_password = "store";
  agent::ChronosAgent chronos_agent(options);
  chronos_agent.SetHandler(
      clients::MakeMokkaEvaluationHandler(endpoints_[0]));
  ASSERT_TRUE(chronos_agent.Connect().ok());
  ASSERT_TRUE(chronos_agent.Run(/*max_jobs=*/1).ok());

  auto jobs = service_->ListJobs(evaluation_id);
  ASSERT_EQ(jobs.size(), 1u);
  ASSERT_EQ(jobs[0].state, JobState::kFinished);
  auto result = service_->GetResult(jobs[0].id);
  ASSERT_TRUE(result.ok());
  // Bundle went to FTP, not inline.
  EXPECT_TRUE(result->zip_base64.empty());
  std::string remote_name =
      result->data.GetStringOr("bundle_ftp_ref", "");
  ASSERT_FALSE(remote_name.empty());
  auto stored = (*ftp)->GetFile(remote_name);
  ASSERT_TRUE(stored.ok());
  auto reader = archive::ZipReader::Open(*stored);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->Has("result.json"));
}

TEST_F(IntegrationTest, V2PollBundlesExperimentAndSystem) {
  StartMokkaDeployments(1);
  MakeEvaluation({json::Json("wiredtiger")}, {json::Json(1)});

  net::HttpClient client("127.0.0.1", server_->port());
  auto login = client.Post("/api/v2/auth/login",
                           R"({"username":"admin","password":"secret"})");
  std::string token = json::Parse(login->body)->at("token").as_string();
  client.SetDefaultHeader("X-Session", token);

  json::Json poll = json::Json::MakeObject();
  poll.Set("deployment_id", deployment_ids_[0]);
  auto response = client.Post("/api/v2/agent/poll", poll.Dump());
  ASSERT_TRUE(response.ok());
  auto body = json::Parse(response->body);
  ASSERT_TRUE(body.ok());
  ASSERT_FALSE(body->at("job").is_null());
  // v2 extras absent from v1.
  EXPECT_TRUE(body->Has("experiment"));
  EXPECT_TRUE(body->Has("system"));
  EXPECT_EQ(body->at("system").at("name").as_string(), "MokkaDB");
}

TEST_F(IntegrationTest, HtmlReportServedOverRest) {
  StartMokkaDeployments(1);
  std::string evaluation_id =
      MakeEvaluation({json::Json("wiredtiger"), json::Json("mmapv1")},
                     {json::Json(1)});
  agent::ChronosAgent chronos_agent(AgentOptionsFor(0));
  chronos_agent.SetHandler(
      clients::MakeMokkaEvaluationHandler(endpoints_[0]));
  ASSERT_TRUE(chronos_agent.Connect().ok());
  ASSERT_TRUE(chronos_agent.Run(/*max_jobs=*/2).ok());

  net::HttpClient client("127.0.0.1", server_->port());
  auto login = client.Post("/api/v1/auth/login",
                           R"({"username":"admin","password":"secret"})");
  client.SetDefaultHeader(
      "X-Session", json::Parse(login->body)->at("token").as_string());
  auto report =
      client.Get("/api/v1/evaluations/" + evaluation_id + "/report");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->status_code, 200);
  EXPECT_NE(report->body.find("<svg"), std::string::npos);
  EXPECT_NE(report->body.find("wiredtiger"), std::string::npos);
}

// --- Web UI (server-rendered monitoring views) ---

TEST_F(IntegrationTest, WebUiRequiresToken) {
  net::HttpClient client("127.0.0.1", server_->port());
  auto response = client.Get("/ui");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status_code, 200);  // Friendly sign-in hint, no data.
  EXPECT_NE(response->body.find("Sign in"), std::string::npos);
  EXPECT_EQ(response->body.find("Projects</h1><table"), std::string::npos);
}

TEST_F(IntegrationTest, WebUiWalksTheHierarchy) {
  StartMokkaDeployments(1);
  std::string evaluation_id =
      MakeEvaluation({json::Json("wiredtiger")}, {json::Json(1)});
  agent::ChronosAgent chronos_agent(AgentOptionsFor(0));
  chronos_agent.SetHandler(
      clients::MakeMokkaEvaluationHandler(endpoints_[0]));
  ASSERT_TRUE(chronos_agent.Connect().ok());
  ASSERT_TRUE(chronos_agent.Run(/*max_jobs=*/1).ok());

  auto token = service_->Login("admin", "secret");
  ASSERT_TRUE(token.ok());
  std::string suffix = "?token=" + *token;
  net::HttpClient client("127.0.0.1", server_->port());

  // Projects overview links to the project.
  auto overview = client.Get("/ui" + suffix);
  ASSERT_EQ(overview->status_code, 200);
  EXPECT_NE(overview->body.find("demo"), std::string::npos);
  EXPECT_NE(overview->body.find("/ui/projects/" + project_id_),
            std::string::npos);

  // Project page shows the experiment and evaluation with progress.
  auto project_page = client.Get("/ui/projects/" + project_id_ + suffix);
  ASSERT_EQ(project_page->status_code, 200);
  EXPECT_NE(project_page->body.find("engines"), std::string::npos);
  EXPECT_NE(project_page->body.find("/ui/evaluations/" + evaluation_id),
            std::string::npos);

  // Evaluation page shows the finished job and the SVG diagram.
  auto evaluation_page =
      client.Get("/ui/evaluations/" + evaluation_id + suffix);
  ASSERT_EQ(evaluation_page->status_code, 200);
  EXPECT_NE(evaluation_page->body.find("state-finished"), std::string::npos);
  EXPECT_NE(evaluation_page->body.find("<svg"), std::string::npos);

  // Job page shows parameters, timeline and log.
  auto jobs = service_->ListJobs(evaluation_id);
  ASSERT_EQ(jobs.size(), 1u);
  auto job_page = client.Get("/ui/jobs/" + jobs[0].id + suffix);
  ASSERT_EQ(job_page->status_code, 200);
  EXPECT_NE(job_page->body.find("Timeline"), std::string::npos);
  EXPECT_NE(job_page->body.find("wiredtiger"), std::string::npos);
  EXPECT_NE(job_page->body.find("Log"), std::string::npos);
  EXPECT_NE(job_page->body.find("Result"), std::string::npos);
}

TEST_F(IntegrationTest, WebUiEscapesUserContent) {
  auto project = service_->CreateProject(
      "<script>alert('xss')</script>", "desc<img>", admin_id_);
  ASSERT_TRUE(project.ok());
  auto token = service_->Login("admin", "secret");
  net::HttpClient client("127.0.0.1", server_->port());
  auto overview = client.Get("/ui?token=" + *token);
  ASSERT_EQ(overview->status_code, 200);
  EXPECT_EQ(overview->body.find("<script>alert"), std::string::npos);
  EXPECT_NE(overview->body.find("&lt;script&gt;"), std::string::npos);
}

// --- Provisioning (§5 future work, v2 API) ---

TEST_F(IntegrationTest, ProvisionRunTeardownOverRest) {
  // Register the system but start NO deployments: the provisioner will.
  StartMokkaDeployments(0);
  clients::LocalMokkaProvisioner provisioner;
  control::ProvisioningManager manager(service_.get());
  ASSERT_TRUE(manager.RegisterProvisioner(&provisioner).ok());

  // Re-start the server with provisioning mounted.
  server_->Stop();
  auto server = control::ControlServer::Start(service_.get(), 0, 500,
                                              &manager);
  ASSERT_TRUE(server.ok());
  server_ = std::move(server).value();

  net::HttpClient client("127.0.0.1", server_->port());
  auto login = client.Post("/api/v2/auth/login",
                           R"({"username":"admin","password":"secret"})");
  client.SetDefaultHeader(
      "X-Session", json::Parse(login->body)->at("token").as_string());

  // Discover provisioners.
  auto listed = client.Get("/api/v2/provisioners");
  ASSERT_EQ(listed->status_code, 200);
  auto list_body = json::Parse(listed->body);
  EXPECT_EQ(list_body->at("provisioners").at(0).as_string(), "local-mokka");

  // Provision a deployment.
  json::Json request = json::Json::MakeObject();
  request.Set("provisioner", "local-mokka");
  request.Set("system_id", system_id_);
  request.Set("name", "auto-deployed");
  json::Json spec = json::Json::MakeObject();
  spec.Set("default_engine", "btree");
  request.Set("spec", spec);
  auto provisioned =
      client.Post("/api/v2/deployments/provision", request.Dump());
  ASSERT_EQ(provisioned->status_code, 201) << provisioned->body;
  auto deployment = json::Parse(provisioned->body);
  std::string deployment_id = deployment->at("id").as_string();
  std::string endpoint = deployment->at("endpoint").as_string();
  EXPECT_EQ(provisioner.running_count(), 1u);
  EXPECT_EQ(deployment->at("environment").as_string(), "local-mokka");

  // The provisioned instance is a live MokkaDB: run a real job on it.
  std::string evaluation_id =
      MakeEvaluation({json::Json("wiredtiger")}, {json::Json(1)});
  agent::AgentOptions options;
  options.control_port = server_->port();
  options.username = "admin";
  options.password = "secret";
  options.deployment_id = deployment_id;
  options.poll_interval_ms = 20;
  agent::ChronosAgent chronos_agent(options);
  chronos_agent.SetHandler(clients::MakeMokkaEvaluationHandler(endpoint));
  ASSERT_TRUE(chronos_agent.Connect().ok());
  ASSERT_TRUE(chronos_agent.Run(/*max_jobs=*/1).ok());
  auto jobs = service_->ListJobs(evaluation_id);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, JobState::kFinished) << jobs[0].failure_reason;

  // Teardown removes the deployment and stops the instance.
  auto torn = client.Post(
      "/api/v2/deployments/" + deployment_id + "/teardown", "{}");
  EXPECT_EQ(torn->status_code, 200) << torn->body;
  EXPECT_EQ(provisioner.running_count(), 0u);
  EXPECT_TRUE(service_->PollJob(deployment_id).status().IsNotFound());

  // v1 does not expose provisioning (versioned API).
  auto v1 = client.Get("/api/v1/provisioners");
  EXPECT_EQ(v1->status_code, 404);
}

TEST_F(IntegrationTest, ProvisioningRequiresAdmin) {
  StartMokkaDeployments(0);
  clients::LocalMokkaProvisioner provisioner;
  control::ProvisioningManager manager(service_.get());
  ASSERT_TRUE(manager.RegisterProvisioner(&provisioner).ok());
  server_->Stop();
  auto server = control::ControlServer::Start(service_.get(), 0, 500,
                                              &manager);
  server_ = std::move(server).value();

  service_->CreateUser("pleb", "pass", model::UserRole::kMember).IgnoreError();
  net::HttpClient client("127.0.0.1", server_->port());
  auto login = client.Post("/api/v2/auth/login",
                           R"({"username":"pleb","password":"pass"})");
  client.SetDefaultHeader(
      "X-Session", json::Parse(login->body)->at("token").as_string());
  auto response = client.Post("/api/v2/deployments/provision",
                              R"({"provisioner":"local-mokka"})");
  EXPECT_EQ(response->status_code, 403);
}

TEST_F(IntegrationTest, ProvisionerManagerDirectApi) {
  StartMokkaDeployments(0);
  clients::LocalMokkaProvisioner provisioner;
  control::ProvisioningManager manager(service_.get());
  ASSERT_TRUE(manager.RegisterProvisioner(&provisioner).ok());
  EXPECT_TRUE(manager.RegisterProvisioner(&provisioner).IsAlreadyExists());
  EXPECT_TRUE(manager
                  .ProvisionDeployment("nope", system_id_, "", json::Json())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(manager.TeardownDeployment("ghost").IsNotFound());

  // Unknown system rolls the launched instance back.
  auto bad = manager.ProvisionDeployment("local-mokka", "no-such-system",
                                         "", json::Json());
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(provisioner.running_count(), 0u);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(manager
                    .ProvisionDeployment("local-mokka", system_id_,
                                         "d" + std::to_string(i),
                                         json::Json())
                    .ok());
  }
  EXPECT_EQ(manager.active_count(), 3u);
  EXPECT_EQ(manager.TeardownAll(), 3);
  EXPECT_EQ(provisioner.running_count(), 0u);
  EXPECT_TRUE(service_->ListDeployments(system_id_).empty());
}

// --- Durable deployment restart ---

TEST_F(IntegrationTest, DurableDeploymentSurvivesRestart) {
  StartMokkaDeployments(0);
  file::TempDir data_dir("mokka-deploy");
  int port;
  {
    mokka::DatabaseOptions options;
    options.data_dir = data_dir.path();
    auto database = mokka::Database::Open(options);
    ASSERT_TRUE(database.ok());
    auto wire = mokka::WireServer::Start(database->get(), 0);
    ASSERT_TRUE(wire.ok());
    port = (*wire)->port();
    auto client = mokka::WireClient::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->CreateCollection("t", "wiredtiger").ok());
    json::Json doc = json::Json::MakeObject();
    doc.Set("_id", "persistent");
    doc.Set("value", 42);
    ASSERT_TRUE((*client)->Insert("t", std::move(doc)).ok());
    (*wire)->Stop();
  }
  // "Restart the deployment" — a fresh server over the same data dir.
  mokka::DatabaseOptions options;
  options.data_dir = data_dir.path();
  auto database = mokka::Database::Open(options);
  ASSERT_TRUE(database.ok());
  auto wire = mokka::WireServer::Start(database->get(), 0);
  ASSERT_TRUE(wire.ok());
  auto client = mokka::WireClient::Connect("127.0.0.1", (*wire)->port());
  ASSERT_TRUE(client.ok());
  auto doc = (*client)->Get("t", "persistent");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->at("value").as_int(), 42);
}

// --- Direct benchmark client sanity (no Chronos in the loop) ---

TEST_F(IntegrationTest, MokkaBenchmarkRunsStandalone) {
  StartMokkaDeployments(1);
  clients::MokkaBenchConfig config;
  config.endpoint = endpoints_[0];
  config.engine = "mmapv1";
  config.threads = 2;
  config.spec.record_count = 50;
  config.spec.operation_count = 100;
  analysis::MetricsCollector metrics;
  auto summary = clients::RunMokkaBenchmark(config, &metrics);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_GT(summary->at("throughput").as_double(), 0);
  EXPECT_EQ(summary->at("engine").as_string(), "mmapv1");
  EXPECT_EQ(metrics.TotalOperations(), 200u);  // 2 threads x 100 ops.
}

TEST_F(IntegrationTest, ConfigFromParametersMapsEverything) {
  model::ParameterAssignment parameters;
  parameters["engine"] = json::Json("mmapv1");
  parameters["threads"] = json::Json(4);
  parameters["records"] = json::Json(123);
  parameters["operations"] = json::Json(456);
  parameters["ratio"] = json::Json("read:50,update:50");
  parameters["distribution"] = json::Json("uniform");
  parameters["field_count"] = json::Json(3);
  parameters["field_length"] = json::Json(8);
  parameters["warmup_ops"] = json::Json(10);
  auto config = clients::ConfigFromParameters(parameters, "h:1");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->engine, "mmapv1");
  EXPECT_EQ(config->threads, 4);
  EXPECT_EQ(config->spec.record_count, 123u);
  EXPECT_EQ(config->spec.operation_count, 456u);
  EXPECT_DOUBLE_EQ(config->spec.read_proportion, 0.5);
  EXPECT_EQ(config->spec.distribution,
            workload::DistributionKind::kUniform);
  EXPECT_EQ(config->spec.field_count, 3);
  EXPECT_EQ(config->warmup_ops_per_thread, 10u);

  parameters["threads"] = json::Json(0);
  EXPECT_FALSE(clients::ConfigFromParameters(parameters, "h:1").ok());
}

}  // namespace
}  // namespace chronos
