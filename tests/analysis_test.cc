#include <gtest/gtest.h>

#include "analysis/diagrams.h"
#include "analysis/metrics.h"
#include "common/clock.h"
#include "common/sha256.h"

namespace chronos::analysis {
namespace {

// --- SHA-256 (auth substrate; tested here with the analysis batch) ---

TEST(Sha256Test, KnownVectors) {
  EXPECT_EQ(Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256Hex("The quick brown fox jumps over the lazy dog"),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592");
}

TEST(Sha256Test, MultiBlockMessage) {
  // 56 bytes forces the padding into a second block.
  std::string input(56, 'a');
  EXPECT_EQ(Sha256Hex(input).size(), 64u);
  // One-million 'a' classic vector.
  std::string million(1000000, 'a');
  EXPECT_EQ(Sha256Hex(million),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// --- MetricsCollector ---

TEST(MetricsTest, ThroughputFromSimulatedClock) {
  SimulatedClock clock;
  MetricsCollector metrics(&clock);
  metrics.StartRun();
  for (int i = 0; i < 500; ++i) metrics.RecordLatency("read", 100);
  clock.AdvanceMs(2000);
  metrics.EndRun();
  EXPECT_EQ(metrics.TotalOperations(), 500u);
  EXPECT_DOUBLE_EQ(metrics.RuntimeMs(), 2000.0);
  EXPECT_DOUBLE_EQ(metrics.Throughput(), 250.0);
}

TEST(MetricsTest, PerOpLatencyBlocks) {
  SimulatedClock clock;
  MetricsCollector metrics(&clock);
  metrics.StartRun();
  metrics.RecordLatency("read", 100);
  metrics.RecordLatency("read", 200);
  metrics.RecordLatency("update", 1000);
  clock.AdvanceMs(1000);
  metrics.EndRun();
  json::Json out = metrics.ToJson();
  EXPECT_EQ(out.at("operations").as_int(), 3);
  EXPECT_EQ(out.at("latency_us").at("read").at("count").as_int(), 2);
  EXPECT_NEAR(out.at("latency_us").at("read").at("mean").as_double(), 150, 1);
  EXPECT_EQ(out.at("latency_us").at("update").at("count").as_int(), 1);
}

TEST(MetricsTest, CountersAndGauges) {
  MetricsCollector metrics;
  metrics.Increment("errors");
  metrics.Increment("errors", 4);
  metrics.SetGauge("dataset_mb", 12.5);
  json::Json out = metrics.ToJson();
  EXPECT_EQ(out.at("counters").at("errors").as_int(), 5);
  EXPECT_DOUBLE_EQ(out.at("gauges").at("dataset_mb").as_double(), 12.5);
}

TEST(MetricsTest, ResetClearsEverything) {
  MetricsCollector metrics;
  metrics.RecordLatency("x", 1);
  metrics.Increment("c");
  metrics.Reset();
  EXPECT_EQ(metrics.TotalOperations(), 0u);
  EXPECT_EQ(metrics.ToJson().at("counters").size(), 0u);
}

TEST(MetricsTest, RuntimeWithoutEndUsesNow) {
  SimulatedClock clock;
  MetricsCollector metrics(&clock);
  metrics.StartRun();
  clock.AdvanceMs(500);
  EXPECT_DOUBLE_EQ(metrics.RuntimeMs(), 500.0);
}

// --- Diagram building ---

JobResult MakeResult(const std::string& engine, int threads,
                     double throughput) {
  JobResult result;
  result.parameters["engine"] = json::Json(engine);
  result.parameters["threads"] = json::Json(threads);
  result.data = json::Json::MakeObject();
  result.data.Set("throughput", throughput);
  json::Json latency = json::Json::MakeObject();
  json::Json read = json::Json::MakeObject();
  read.Set("p95", throughput / 10);
  latency.Set("read", read);
  result.data.Set("latency_us", latency);
  return result;
}

model::DiagramDef LineDef() {
  model::DiagramDef def;
  def.name = "Throughput by threads";
  def.type = model::DiagramType::kLine;
  def.x_field = "threads";
  def.y_field = "throughput";
  def.group_by = "engine";
  return def;
}

TEST(DiagramTest, GroupsAndBucketsLikeFig3d) {
  std::vector<JobResult> results = {
      MakeResult("wiredtiger", 1, 1000), MakeResult("wiredtiger", 2, 1800),
      MakeResult("wiredtiger", 4, 3200), MakeResult("mmapv1", 1, 1100),
      MakeResult("mmapv1", 2, 1300),     MakeResult("mmapv1", 4, 1350)};
  auto diagram = BuildDiagram(LineDef(), results);
  ASSERT_TRUE(diagram.ok());
  EXPECT_EQ(diagram->x_values, (std::vector<std::string>{"1", "2", "4"}));
  ASSERT_EQ(diagram->series.size(), 2u);
  // std::map ordering: mmapv1 before wiredtiger.
  EXPECT_EQ(diagram->series[0].name, "mmapv1");
  EXPECT_EQ(diagram->series[1].name, "wiredtiger");
  EXPECT_DOUBLE_EQ(diagram->series[1].values[2], 3200);
}

TEST(DiagramTest, NumericXOrderingNotLexicographic) {
  std::vector<JobResult> results = {MakeResult("e", 2, 1), MakeResult("e", 16, 1),
                                    MakeResult("e", 4, 1), MakeResult("e", 1, 1)};
  auto diagram = BuildDiagram(LineDef(), results);
  ASSERT_TRUE(diagram.ok());
  EXPECT_EQ(diagram->x_values,
            (std::vector<std::string>{"1", "2", "4", "16"}));
}

TEST(DiagramTest, RepetitionsAverage) {
  std::vector<JobResult> results = {MakeResult("e", 1, 100),
                                    MakeResult("e", 1, 300)};
  auto diagram = BuildDiagram(LineDef(), results);
  ASSERT_TRUE(diagram.ok());
  EXPECT_DOUBLE_EQ(diagram->series[0].values[0], 200);
}

TEST(DiagramTest, DottedPathIntoResultJson) {
  model::DiagramDef def = LineDef();
  def.y_field = "latency_us.read.p95";
  auto diagram = BuildDiagram(def, {MakeResult("e", 1, 1000)});
  ASSERT_TRUE(diagram.ok());
  EXPECT_DOUBLE_EQ(diagram->series[0].values[0], 100);
}

TEST(DiagramTest, MissingMetricIsNotFound) {
  model::DiagramDef def = LineDef();
  def.y_field = "nonexistent";
  EXPECT_TRUE(
      BuildDiagram(def, {MakeResult("e", 1, 1)}).status().IsNotFound());
}

TEST(DiagramTest, MissingYFieldIsInvalid) {
  model::DiagramDef def = LineDef();
  def.y_field = "";
  EXPECT_TRUE(BuildDiagram(def, {}).status().IsInvalidArgument());
}

TEST(DiagramTest, NoGroupByYieldsSingleSeries) {
  model::DiagramDef def = LineDef();
  def.group_by = "";
  auto diagram =
      BuildDiagram(def, {MakeResult("a", 1, 10), MakeResult("b", 2, 20)});
  ASSERT_TRUE(diagram.ok());
  ASSERT_EQ(diagram->series.size(), 1u);
  EXPECT_EQ(diagram->series[0].name, "throughput");
}

TEST(DiagramTest, CsvExport) {
  auto diagram = BuildDiagram(
      LineDef(), {MakeResult("wiredtiger", 1, 1000),
                  MakeResult("mmapv1", 1, 1100)});
  ASSERT_TRUE(diagram.ok());
  std::string csv = diagram->ToCsv();
  EXPECT_EQ(csv,
            "threads,mmapv1,wiredtiger\n"
            "1,1100,1000\n");
}

TEST(DiagramTest, TableContainsAllCells) {
  auto diagram = BuildDiagram(
      LineDef(), {MakeResult("wiredtiger", 1, 1000),
                  MakeResult("wiredtiger", 2, 1555.5)});
  ASSERT_TRUE(diagram.ok());
  std::string table = diagram->ToTable();
  EXPECT_NE(table.find("wiredtiger"), std::string::npos);
  EXPECT_NE(table.find("1000"), std::string::npos);
  EXPECT_NE(table.find("1555.50"), std::string::npos);
}

TEST(DiagramTest, JsonRoundTripShape) {
  auto diagram = BuildDiagram(LineDef(), {MakeResult("e", 1, 5)});
  ASSERT_TRUE(diagram.ok());
  json::Json out = diagram->ToJson();
  EXPECT_EQ(out.at("type").as_string(), "line");
  EXPECT_EQ(out.at("series").at(0).at("values").at(0).as_double(), 5.0);
}

TEST(DiagramTest, ExtractFieldPrefersParameters) {
  JobResult result = MakeResult("e", 8, 100);
  result.data.Set("threads", 999);  // Result also has a field named threads.
  EXPECT_EQ(ExtractField(result, "threads").as_int(), 8);
  EXPECT_EQ(ExtractField(result, "throughput").as_double(), 100);
  EXPECT_TRUE(ExtractField(result, "zzz").is_null());
}

// --- SVG / HTML rendering ---

TEST(RenderTest, LineSvgHasPolylines) {
  auto diagram = BuildDiagram(
      LineDef(), {MakeResult("wiredtiger", 1, 1000),
                  MakeResult("wiredtiger", 2, 2000),
                  MakeResult("mmapv1", 1, 900), MakeResult("mmapv1", 2, 950)});
  ASSERT_TRUE(diagram.ok());
  std::string svg = RenderSvg(*diagram);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_EQ(std::count(svg.begin(), svg.end(), '\n') > 4, true);
  // Two series -> two polylines.
  size_t first = svg.find("<polyline");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(svg.find("<polyline", first + 1), std::string::npos);
}

TEST(RenderTest, BarSvgHasRects) {
  model::DiagramDef def = LineDef();
  def.type = model::DiagramType::kBar;
  auto diagram = BuildDiagram(def, {MakeResult("a", 1, 10),
                                    MakeResult("b", 1, 20)});
  ASSERT_TRUE(diagram.ok());
  std::string svg = RenderSvg(*diagram);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
}

TEST(RenderTest, PieSvgHasPaths) {
  model::DiagramDef def = LineDef();
  def.type = model::DiagramType::kPie;
  def.x_field = "";
  auto diagram = BuildDiagram(def, {MakeResult("a", 1, 30),
                                    MakeResult("b", 1, 70)});
  ASSERT_TRUE(diagram.ok());
  std::string svg = RenderSvg(*diagram);
  EXPECT_NE(svg.find("<path"), std::string::npos);
}

TEST(RenderTest, HtmlReportContainsDiagramAndTable) {
  auto diagram = BuildDiagram(LineDef(), {MakeResult("wiredtiger", 1, 1234)});
  ASSERT_TRUE(diagram.ok());
  std::string html = RenderHtmlReport("MongoDB engines", {*diagram});
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("MongoDB engines"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("<table>"), std::string::npos);
  EXPECT_NE(html.find("1234"), std::string::npos);
}

TEST(RenderTest, HtmlEscapesUserContent) {
  DiagramData diagram;
  diagram.name = "<script>alert(1)</script>";
  diagram.type = model::DiagramType::kLine;
  diagram.x_values = {"1"};
  diagram.series = {{"s", {1.0}}};
  std::string html = RenderHtmlReport("t", {diagram});
  EXPECT_EQ(html.find("<script>alert"), std::string::npos);
}

}  // namespace
}  // namespace chronos::analysis
