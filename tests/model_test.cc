#include <gtest/gtest.h>

#include "common/file_util.h"
#include "common/uuid.h"
#include "model/entities.h"
#include "model/job_state.h"
#include "model/parameter_space.h"
#include "model/repository.h"

namespace chronos::model {
namespace {

using chronos::file::TempDir;

// --- Job state machine ---

TEST(JobStateTest, NamesRoundTrip) {
  for (JobState state :
       {JobState::kScheduled, JobState::kRunning, JobState::kFinished,
        JobState::kAborted, JobState::kFailed}) {
    auto parsed = ParseJobState(JobStateName(state));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, state);
  }
  EXPECT_FALSE(ParseJobState("bogus").ok());
}

TEST(JobStateTest, PaperTransitionTable) {
  // scheduled -> running | aborted
  EXPECT_TRUE(IsValidTransition(JobState::kScheduled, JobState::kRunning));
  EXPECT_TRUE(IsValidTransition(JobState::kScheduled, JobState::kAborted));
  EXPECT_FALSE(IsValidTransition(JobState::kScheduled, JobState::kFinished));
  EXPECT_FALSE(IsValidTransition(JobState::kScheduled, JobState::kFailed));
  // running -> finished | failed | aborted
  EXPECT_TRUE(IsValidTransition(JobState::kRunning, JobState::kFinished));
  EXPECT_TRUE(IsValidTransition(JobState::kRunning, JobState::kFailed));
  EXPECT_TRUE(IsValidTransition(JobState::kRunning, JobState::kAborted));
  EXPECT_FALSE(IsValidTransition(JobState::kRunning, JobState::kScheduled));
  // failed -> scheduled (the reschedule path from the paper)
  EXPECT_TRUE(IsValidTransition(JobState::kFailed, JobState::kScheduled));
  EXPECT_FALSE(IsValidTransition(JobState::kFailed, JobState::kRunning));
  // finished / aborted are terminal.
  for (JobState to : {JobState::kScheduled, JobState::kRunning,
                      JobState::kFinished, JobState::kAborted,
                      JobState::kFailed}) {
    EXPECT_FALSE(IsValidTransition(JobState::kFinished, to));
    EXPECT_FALSE(IsValidTransition(JobState::kAborted, to));
  }
}

TEST(JobStateTest, ExhaustiveTransitionMatrix) {
  // Every one of the 25 (from, to) edges, legal and illegal, against the
  // paper's lifecycle; CheckTransition must agree with IsValidTransition on
  // all of them.
  const std::vector<std::pair<JobState, JobState>> legal = {
      {JobState::kScheduled, JobState::kRunning},
      {JobState::kScheduled, JobState::kAborted},
      {JobState::kRunning, JobState::kFinished},
      {JobState::kRunning, JobState::kFailed},
      {JobState::kRunning, JobState::kAborted},
      {JobState::kFailed, JobState::kScheduled},
  };
  const JobState all[] = {JobState::kScheduled, JobState::kRunning,
                          JobState::kFinished, JobState::kAborted,
                          JobState::kFailed};
  for (JobState from : all) {
    for (JobState to : all) {
      bool expected = false;
      for (const auto& edge : legal) {
        if (edge.first == from && edge.second == to) expected = true;
      }
      EXPECT_EQ(IsValidTransition(from, to), expected)
          << JobStateName(from) << " -> " << JobStateName(to);
      Status checked = CheckTransition(from, to);
      EXPECT_EQ(checked.ok(), expected)
          << JobStateName(from) << " -> " << JobStateName(to);
      if (!expected) {
        // Illegal edges fail with a precondition error naming both states.
        EXPECT_TRUE(checked.IsFailedPrecondition());
        EXPECT_NE(checked.message().find(JobStateName(from)),
                  std::string::npos);
        EXPECT_NE(checked.message().find(JobStateName(to)),
                  std::string::npos);
      }
    }
  }
  // No state may transition to itself (retries must be explicit edges).
  for (JobState state : all) {
    EXPECT_FALSE(IsValidTransition(state, state)) << JobStateName(state);
  }
}

TEST(JobStateTest, TerminalStates) {
  EXPECT_FALSE(IsTerminal(JobState::kScheduled));
  EXPECT_FALSE(IsTerminal(JobState::kRunning));
  EXPECT_TRUE(IsTerminal(JobState::kFinished));
  EXPECT_TRUE(IsTerminal(JobState::kAborted));
  EXPECT_TRUE(IsTerminal(JobState::kFailed));
}

TEST(JobStateTest, CheckTransitionMessage) {
  Status status = CheckTransition(JobState::kFinished, JobState::kRunning);
  EXPECT_TRUE(status.IsFailedPrecondition());
  EXPECT_NE(status.message().find("finished"), std::string::npos);
}

// --- Parameter space ---

ParameterSetting Fixed(const std::string& name, json::Json value) {
  ParameterSetting setting;
  setting.name = name;
  setting.fixed = std::move(value);
  return setting;
}

ParameterSetting Swept(const std::string& name,
                       std::vector<json::Json> values) {
  ParameterSetting setting;
  setting.name = name;
  setting.sweep = std::move(values);
  return setting;
}

TEST(ParameterSpaceTest, EmptySettingsYieldOneJob) {
  auto assignments = ExpandParameterSpace({});
  ASSERT_TRUE(assignments.ok());
  EXPECT_EQ(assignments->size(), 1u);
  EXPECT_TRUE((*assignments)[0].empty());
}

TEST(ParameterSpaceTest, FixedOnlyYieldsOneJob) {
  auto assignments = ExpandParameterSpace(
      {Fixed("engine", json::Json("btree")), Fixed("threads", json::Json(8))});
  ASSERT_TRUE(assignments.ok());
  ASSERT_EQ(assignments->size(), 1u);
  EXPECT_EQ((*assignments)[0].at("engine").as_string(), "btree");
  EXPECT_EQ((*assignments)[0].at("threads").as_int(), 8);
}

TEST(ParameterSpaceTest, CartesianProduct) {
  // The paper's example: two storage engines x several thread counts.
  auto assignments = ExpandParameterSpace(
      {Swept("engine", {json::Json("wiredtiger"), json::Json("mmapv1")}),
       Swept("threads", {json::Json(1), json::Json(2), json::Json(4)})});
  ASSERT_TRUE(assignments.ok());
  ASSERT_EQ(assignments->size(), 6u);
  // Deterministic order: first setting is the slow axis.
  EXPECT_EQ((*assignments)[0].at("engine").as_string(), "wiredtiger");
  EXPECT_EQ((*assignments)[0].at("threads").as_int(), 1);
  EXPECT_EQ((*assignments)[2].at("engine").as_string(), "wiredtiger");
  EXPECT_EQ((*assignments)[2].at("threads").as_int(), 4);
  EXPECT_EQ((*assignments)[5].at("engine").as_string(), "mmapv1");
  EXPECT_EQ((*assignments)[5].at("threads").as_int(), 4);
}

TEST(ParameterSpaceTest, MixedFixedAndSwept) {
  auto assignments = ExpandParameterSpace(
      {Fixed("records", json::Json(1000)),
       Swept("threads", {json::Json(1), json::Json(2)})});
  ASSERT_TRUE(assignments.ok());
  ASSERT_EQ(assignments->size(), 2u);
  for (const auto& assignment : *assignments) {
    EXPECT_EQ(assignment.at("records").as_int(), 1000);
  }
}

TEST(ParameterSpaceTest, SizeMatchesExpansion) {
  std::vector<ParameterSetting> settings = {
      Swept("a", {json::Json(1), json::Json(2)}),
      Swept("b", {json::Json(1), json::Json(2), json::Json(3)}),
      Fixed("c", json::Json(0))};
  EXPECT_EQ(ParameterSpaceSize(settings), 6u);
  EXPECT_EQ(ExpandParameterSpace(settings)->size(), 6u);
}

TEST(ParameterSpaceTest, ExplosionGuard) {
  std::vector<ParameterSetting> settings;
  std::vector<json::Json> values;
  for (int i = 0; i < 101; ++i) values.emplace_back(i);
  for (int i = 0; i < 4; ++i) {
    settings.push_back(Swept("p" + std::to_string(i), values));
  }
  // 101^4 > 1e6.
  auto assignments = ExpandParameterSpace(settings);
  EXPECT_FALSE(assignments.ok());
  EXPECT_EQ(assignments.status().code(), StatusCode::kResourceExhausted);
}

TEST(ParameterSpaceTest, ExpandIntervalIntegral) {
  auto values = ExpandInterval(1, 9, 2);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_TRUE(values[0].is_int());
  EXPECT_EQ(values[4].as_int(), 9);
}

TEST(ParameterSpaceTest, ExpandIntervalFractional) {
  auto values = ExpandInterval(0.5, 1.5, 0.25);
  ASSERT_EQ(values.size(), 5u);
  EXPECT_TRUE(values[0].is_double());
  EXPECT_DOUBLE_EQ(values[4].as_double(), 1.5);
}

TEST(ParameterSpaceTest, ExpandIntervalDegenerate) {
  EXPECT_TRUE(ExpandInterval(5, 1, 1).empty());
  EXPECT_TRUE(ExpandInterval(1, 5, 0).empty());
  EXPECT_EQ(ExpandInterval(3, 3, 1).size(), 1u);
}

TEST(ParameterSpaceTest, ValidateBooleanType) {
  ParameterDef def;
  def.name = "sync";
  def.type = ParameterType::kBoolean;
  EXPECT_TRUE(ValidateSetting(def, Fixed("sync", json::Json(true))).ok());
  EXPECT_FALSE(ValidateSetting(def, Fixed("sync", json::Json(1))).ok());
  EXPECT_FALSE(ValidateSetting(def, Fixed("other", json::Json(true))).ok());
}

TEST(ParameterSpaceTest, ValidateIntervalBounds) {
  ParameterDef def;
  def.name = "threads";
  def.type = ParameterType::kInterval;
  def.min = 1;
  def.max = 32;
  EXPECT_TRUE(ValidateSetting(def, Fixed("threads", json::Json(8))).ok());
  EXPECT_FALSE(ValidateSetting(def, Fixed("threads", json::Json(64))).ok());
  EXPECT_FALSE(
      ValidateSetting(def, Fixed("threads", json::Json("eight"))).ok());
  EXPECT_TRUE(
      ValidateSetting(def, Swept("threads", {json::Json(1), json::Json(32)}))
          .ok());
  EXPECT_FALSE(
      ValidateSetting(def, Swept("threads", {json::Json(1), json::Json(33)}))
          .ok());
}

TEST(ParameterSpaceTest, ValidateCheckboxOptions) {
  ParameterDef def;
  def.name = "engine";
  def.type = ParameterType::kCheckbox;
  def.options = {json::Json("wiredtiger"), json::Json("mmapv1")};
  EXPECT_TRUE(
      ValidateSetting(def, Fixed("engine", json::Json("mmapv1"))).ok());
  EXPECT_FALSE(
      ValidateSetting(def, Fixed("engine", json::Json("rocksdb"))).ok());
}

TEST(ParameterSpaceTest, SettingJsonRoundTrip) {
  ParameterSetting setting = Swept("threads", {json::Json(1), json::Json(2)});
  auto parsed = ParameterSetting::FromJson(setting.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->name, "threads");
  ASSERT_EQ(parsed->sweep.size(), 2u);
  EXPECT_EQ(parsed->sweep[1].as_int(), 2);
}

TEST(ParameterSpaceTest, DefJsonRoundTrip) {
  ParameterDef def;
  def.name = "threads";
  def.type = ParameterType::kInterval;
  def.description = "client threads";
  def.default_value = json::Json(4);
  def.min = 1;
  def.max = 32;
  def.step = 1;
  auto parsed = ParameterDef::FromJson(def.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, ParameterType::kInterval);
  EXPECT_EQ(parsed->max, 32);
  EXPECT_EQ(parsed->default_value.as_int(), 4);
}

// Property: expansion size always equals the product of sweep sizes.
class ExpansionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExpansionPropertyTest, CardinalityMatches) {
  int seed = GetParam();
  std::vector<ParameterSetting> settings;
  uint64_t expected = 1;
  for (int i = 0; i < (seed % 4) + 1; ++i) {
    int n = (seed * (i + 3)) % 5 + 1;
    std::vector<json::Json> values;
    for (int v = 0; v < n; ++v) values.emplace_back(v);
    settings.push_back(Swept("p" + std::to_string(i), values));
    expected *= static_cast<uint64_t>(n);
  }
  auto assignments = ExpandParameterSpace(settings);
  ASSERT_TRUE(assignments.ok());
  EXPECT_EQ(assignments->size(), expected);
  // Every assignment must bind every parameter exactly once.
  for (const auto& assignment : *assignments) {
    EXPECT_EQ(assignment.size(), settings.size());
  }
  // All assignments distinct.
  std::set<std::string> seen;
  for (const auto& assignment : *assignments) {
    seen.insert(AssignmentToJson(assignment).Dump());
  }
  EXPECT_EQ(seen.size(), assignments->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpansionPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 7, 11, 13));

// --- Entity JSON codecs ---

TEST(EntitiesTest, UserRoundTrip) {
  User user;
  user.id = GenerateUuid();
  user.username = "marco";
  user.password_hash = "abc123";
  user.salt = "s";
  user.role = UserRole::kAdmin;
  user.created_at = 1234;
  auto parsed = User::FromJson(user.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->username, "marco");
  EXPECT_EQ(parsed->role, UserRole::kAdmin);
  EXPECT_EQ(parsed->created_at, 1234);
}

TEST(EntitiesTest, ProjectMembership) {
  Project project;
  project.id = "p1";
  project.name = "mongo-eval";
  project.owner_id = "u1";
  project.member_ids = {"u1", "u2"};
  EXPECT_TRUE(project.HasMember("u1"));
  EXPECT_TRUE(project.HasMember("u2"));
  EXPECT_FALSE(project.HasMember("u3"));
  auto parsed = Project::FromJson(project.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->member_ids.size(), 2u);
}

TEST(EntitiesTest, SystemWithParametersAndDiagrams) {
  System system;
  system.id = "s1";
  system.name = "MokkaDB";
  ParameterDef threads;
  threads.name = "threads";
  threads.type = ParameterType::kInterval;
  threads.min = 1;
  threads.max = 32;
  system.parameters.push_back(threads);
  DiagramDef diagram;
  diagram.name = "Throughput by threads";
  diagram.type = DiagramType::kLine;
  diagram.x_field = "threads";
  diagram.y_field = "throughput";
  diagram.group_by = "engine";
  system.diagrams.push_back(diagram);

  auto parsed = System::FromJson(system.ToJson());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->parameters.size(), 1u);
  EXPECT_EQ(parsed->parameters[0].type, ParameterType::kInterval);
  ASSERT_EQ(parsed->diagrams.size(), 1u);
  EXPECT_EQ(parsed->diagrams[0].group_by, "engine");
  EXPECT_NE(parsed->FindParameter("threads"), nullptr);
  EXPECT_EQ(parsed->FindParameter("zzz"), nullptr);
}

TEST(EntitiesTest, JobRoundTripWithParameters) {
  Job job;
  job.id = "j1";
  job.evaluation_id = "e1";
  job.experiment_id = "x1";
  job.system_id = "s1";
  job.state = JobState::kRunning;
  job.parameters["engine"] = json::Json("mmapv1");
  job.parameters["threads"] = json::Json(16);
  job.progress_percent = 55;
  job.attempt = 2;
  auto parsed = Job::FromJson(job.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->state, JobState::kRunning);
  EXPECT_EQ(parsed->parameters.at("threads").as_int(), 16);
  EXPECT_EQ(parsed->progress_percent, 55);
  EXPECT_EQ(parsed->attempt, 2);
}

TEST(EntitiesTest, ResultRoundTrip) {
  Result result;
  result.id = "r1";
  result.job_id = "j1";
  result.data = json::Json::MakeObject();
  result.data.Set("throughput", 1234.5);
  result.zip_base64 = "UEsDBA==";
  auto parsed = Result::FromJson(result.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->data.at("throughput").as_double(), 1234.5);
  EXPECT_EQ(parsed->zip_base64, "UEsDBA==");
}

TEST(EntitiesTest, ExperimentRoundTrip) {
  Experiment experiment;
  experiment.id = "x1";
  experiment.project_id = "p1";
  experiment.system_id = "s1";
  experiment.name = "engine comparison";
  ParameterSetting setting;
  setting.name = "threads";
  setting.sweep = {json::Json(1), json::Json(2)};
  experiment.settings.push_back(setting);
  auto parsed = Experiment::FromJson(experiment.ToJson());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->settings.size(), 1u);
  EXPECT_TRUE(parsed->settings[0].IsSwept());
}

TEST(EntitiesTest, FromJsonRejectsMissingFields) {
  json::Json incomplete = json::Json::MakeObject();
  incomplete.Set("name", "x");  // No id.
  EXPECT_FALSE(Project::FromJson(incomplete).ok());
  EXPECT_FALSE(User::FromJson(incomplete).ok());
  EXPECT_FALSE(Job::FromJson(incomplete).ok());
}

// --- Repositories / MetaDb ---

TEST(MetaDbTest, CrudThroughRepositories) {
  TempDir dir;
  auto db = MetaDb::Open(dir.path());
  ASSERT_TRUE(db.ok());

  Project project;
  project.id = GenerateUuid();
  project.name = "proj";
  project.owner_id = "u1";
  ASSERT_TRUE((*db)->projects().Insert(project).ok());
  EXPECT_TRUE((*db)->projects().Exists(project.id));
  EXPECT_EQ((*db)->projects().Count(), 1u);

  auto fetched = (*db)->projects().Get(project.id);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->name, "proj");

  fetched->name = "renamed";
  ASSERT_TRUE((*db)->projects().Update(*fetched).ok());
  EXPECT_EQ((*db)->projects().Get(project.id)->name, "renamed");

  ASSERT_TRUE((*db)->projects().Delete(project.id).ok());
  EXPECT_FALSE((*db)->projects().Exists(project.id));
}

TEST(MetaDbTest, FindByForeignKey) {
  TempDir dir;
  auto db = MetaDb::Open(dir.path());
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 3; ++i) {
    Job job;
    job.id = "job-" + std::to_string(i);
    job.evaluation_id = i < 2 ? "eval-a" : "eval-b";
    ASSERT_TRUE((*db)->jobs().Insert(job).ok());
  }
  auto jobs = (*db)->jobs().FindBy("evaluation_id", json::Json("eval-a"));
  EXPECT_EQ(jobs.size(), 2u);
}

TEST(MetaDbTest, PersistsAcrossReopen) {
  TempDir dir;
  std::string user_id = GenerateUuid();
  {
    auto db = MetaDb::Open(dir.path());
    ASSERT_TRUE(db.ok());
    User user;
    user.id = user_id;
    user.username = "heiko";
    ASSERT_TRUE((*db)->users().Insert(user).ok());
  }
  auto db = MetaDb::Open(dir.path());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->users().Get(user_id)->username, "heiko");
}

TEST(MetaDbTest, OptimisticUpdateDetectsRace) {
  TempDir dir;
  auto db = MetaDb::Open(dir.path());
  Job job;
  job.id = "j1";
  job.evaluation_id = "e1";
  ASSERT_TRUE((*db)->jobs().Insert(job).ok());

  auto snapshot = (*db)->jobs().GetWithVersion("j1");
  ASSERT_TRUE(snapshot.ok());
  auto [entity, version] = *snapshot;

  // Another writer slips in.
  entity.progress_percent = 10;
  ASSERT_TRUE((*db)->jobs().Update(entity).ok());

  // The stale write must be rejected.
  entity.progress_percent = 99;
  EXPECT_TRUE((*db)->jobs()
                  .UpdateIfVersion(entity, version)
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace chronos::model
