#include <gtest/gtest.h>

#include "archive/zip.h"
#include "common/file_util.h"
#include "common/strings.h"
#include "common/uuid.h"
#include "control/archiver.h"
#include "control/auth.h"
#include "control/control_service.h"
#include "control/heartbeat_monitor.h"

namespace chronos::control {
namespace {

using chronos::file::TempDir;
using model::JobState;

// --- Auth primitives ---

TEST(AuthTest, HashIsDeterministicAndSalted) {
  std::string salt_a = GenerateSalt();
  std::string salt_b = GenerateSalt();
  EXPECT_NE(salt_a, salt_b);
  EXPECT_EQ(HashPassword("pw", salt_a), HashPassword("pw", salt_a));
  EXPECT_NE(HashPassword("pw", salt_a), HashPassword("pw", salt_b));
  EXPECT_NE(HashPassword("pw", salt_a), HashPassword("pw2", salt_a));
  EXPECT_TRUE(VerifyPassword("pw", salt_a, HashPassword("pw", salt_a)));
  EXPECT_FALSE(VerifyPassword("nope", salt_a, HashPassword("pw", salt_a)));
}

TEST(SessionTest, LifecycleAndExpiry) {
  SimulatedClock clock(1000000);
  SessionManager sessions(&clock, /*ttl_ms=*/1000);
  std::string token = sessions.CreateSession("u1");
  EXPECT_EQ(*sessions.Resolve(token), "u1");
  clock.AdvanceMs(500);
  EXPECT_TRUE(sessions.Resolve(token).ok());
  clock.AdvanceMs(600);
  EXPECT_TRUE(sessions.Resolve(token).status().code() ==
              StatusCode::kUnauthenticated);
  EXPECT_FALSE(sessions.Resolve("bogus").ok());
}

TEST(SessionTest, InvalidateAndSweep) {
  SimulatedClock clock;
  SessionManager sessions(&clock, 100);
  std::string token_a = sessions.CreateSession("a");
  sessions.CreateSession("b");
  EXPECT_TRUE(sessions.Invalidate(token_a).ok());
  EXPECT_TRUE(sessions.Invalidate(token_a).IsNotFound());
  clock.AdvanceMs(200);
  EXPECT_EQ(sessions.Sweep(), 1);
  EXPECT_EQ(sessions.active_sessions(), 0u);
}

// --- Service fixture ---

class ControlServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = model::MetaDb::Open(dir_.path());
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    options_.heartbeat_timeout_ms = 1000;
    options_.max_attempts = 3;
    service_ = std::make_unique<ControlService>(db_.get(), &clock_, options_);

    auto admin = service_->CreateUser("admin", "secret", model::UserRole::kAdmin);
    ASSERT_TRUE(admin.ok()) << admin.status();
    admin_id_ = admin->id;
  }

  // Registers the MokkaDB system with the demo parameters and diagram.
  model::System RegisterDemoSystem() {
    model::System system;
    system.name = "MokkaDB";
    model::ParameterDef engine;
    engine.name = "engine";
    engine.type = model::ParameterType::kCheckbox;
    engine.options = {json::Json("wiredtiger"), json::Json("mmapv1")};
    system.parameters.push_back(engine);
    model::ParameterDef threads;
    threads.name = "threads";
    threads.type = model::ParameterType::kInterval;
    threads.min = 1;
    threads.max = 64;
    system.parameters.push_back(threads);
    model::DiagramDef diagram;
    diagram.name = "Throughput";
    diagram.type = model::DiagramType::kLine;
    diagram.x_field = "threads";
    diagram.y_field = "throughput";
    diagram.group_by = "engine";
    system.diagrams.push_back(diagram);
    auto registered = service_->RegisterSystem(system);
    EXPECT_TRUE(registered.ok());
    return *registered;
  }

  model::Deployment AddDeployment(const std::string& system_id,
                                  const std::string& name = "dep") {
    model::Deployment deployment;
    deployment.system_id = system_id;
    deployment.name = name;
    deployment.endpoint = "127.0.0.1:1";
    auto created = service_->CreateDeployment(deployment);
    EXPECT_TRUE(created.ok());
    return *created;
  }

  // Full path to a scheduled evaluation: project -> experiment (engine x
  // threads sweep) -> evaluation.
  model::Evaluation MakeDemoEvaluation(
      std::vector<json::Json> thread_sweep = {json::Json(1), json::Json(2)}) {
    model::System system = RegisterDemoSystem();
    system_id_ = system.id;
    auto project = service_->CreateProject("mongo-eval", "", admin_id_);
    EXPECT_TRUE(project.ok());
    project_id_ = project->id;
    model::ParameterSetting engines;
    engines.name = "engine";
    engines.sweep = {json::Json("wiredtiger"), json::Json("mmapv1")};
    model::ParameterSetting threads;
    threads.name = "threads";
    threads.sweep = std::move(thread_sweep);
    auto experiment = service_->CreateExperiment(
        project_id_, admin_id_, system.id, "engine comparison", "",
        {engines, threads});
    EXPECT_TRUE(experiment.ok()) << experiment.status();
    experiment_id_ = experiment->id;
    auto evaluation = service_->CreateEvaluation(experiment_id_, "run 1");
    EXPECT_TRUE(evaluation.ok());
    return *evaluation;
  }

  TempDir dir_;
  SimulatedClock clock_{1000000};
  ControlServiceOptions options_;
  std::unique_ptr<model::MetaDb> db_;
  std::unique_ptr<ControlService> service_;
  std::string admin_id_, project_id_, experiment_id_, system_id_;
};

// --- Users / login ---

TEST_F(ControlServiceTest, LoginRoundTrip) {
  auto token = service_->Login("admin", "secret");
  ASSERT_TRUE(token.ok());
  auto user = service_->Authenticate(*token);
  ASSERT_TRUE(user.ok());
  EXPECT_EQ(user->username, "admin");
  ASSERT_TRUE(service_->Logout(*token).ok());
  EXPECT_FALSE(service_->Authenticate(*token).ok());
}

TEST_F(ControlServiceTest, LoginRejectsBadCredentials) {
  EXPECT_FALSE(service_->Login("admin", "wrong").ok());
  EXPECT_FALSE(service_->Login("ghost", "secret").ok());
}

TEST_F(ControlServiceTest, DuplicateUsernameRejected) {
  EXPECT_TRUE(service_->CreateUser("admin", "xxxx", model::UserRole::kMember)
                  .status()
                  .IsAlreadyExists());
}

TEST_F(ControlServiceTest, WeakPasswordRejected) {
  EXPECT_FALSE(service_->CreateUser("u", "ab", model::UserRole::kMember).ok());
}

// --- Project access control ---

TEST_F(ControlServiceTest, ProjectMembershipGatesAccess) {
  auto outsider =
      service_->CreateUser("outsider", "pass", model::UserRole::kMember);
  auto member =
      service_->CreateUser("member", "pass", model::UserRole::kMember);
  auto project = service_->CreateProject("p", "", admin_id_);
  ASSERT_TRUE(project.ok());

  EXPECT_TRUE(service_->GetProject(project->id, outsider->id)
                  .status()
                  .code() == StatusCode::kPermissionDenied);
  ASSERT_TRUE(
      service_->AddProjectMember(project->id, admin_id_, member->id).ok());
  EXPECT_TRUE(service_->GetProject(project->id, member->id).ok());

  // Member (not outsider) sees it in the listing.
  EXPECT_EQ(service_->ListProjects(member->id).size(), 1u);
  EXPECT_EQ(service_->ListProjects(outsider->id).size(), 0u);
  EXPECT_EQ(service_->ListProjects(admin_id_).size(), 1u);  // Admin sees all.
}

TEST_F(ControlServiceTest, ArchivedProjectRefusesNewExperiments) {
  model::System system = RegisterDemoSystem();
  auto project = service_->CreateProject("p", "", admin_id_);
  ASSERT_TRUE(
      service_->SetProjectArchived(project->id, admin_id_, true).ok());
  EXPECT_TRUE(service_
                  ->CreateExperiment(project->id, admin_id_, system.id, "x",
                                     "", {})
                  .status()
                  .IsFailedPrecondition());
}

// --- Experiment validation ---

TEST_F(ControlServiceTest, ExperimentValidatesAgainstSystem) {
  model::System system = RegisterDemoSystem();
  auto project = service_->CreateProject("p", "", admin_id_);

  model::ParameterSetting unknown;
  unknown.name = "bogus";
  unknown.fixed = json::Json(1);
  EXPECT_TRUE(service_
                  ->CreateExperiment(project->id, admin_id_, system.id, "x",
                                     "", {unknown})
                  .status()
                  .IsInvalidArgument());

  model::ParameterSetting out_of_range;
  out_of_range.name = "threads";
  out_of_range.fixed = json::Json(1000);  // max is 64.
  EXPECT_FALSE(service_
                   ->CreateExperiment(project->id, admin_id_, system.id, "x",
                                      "", {out_of_range})
                   .ok());

  model::ParameterSetting bad_engine;
  bad_engine.name = "engine";
  bad_engine.fixed = json::Json("rocksdb");
  EXPECT_FALSE(service_
                   ->CreateExperiment(project->id, admin_id_, system.id, "x",
                                      "", {bad_engine})
                   .ok());
}

// --- Evaluation expansion ---

TEST_F(ControlServiceTest, EvaluationExpandsCartesianJobs) {
  model::Evaluation evaluation =
      MakeDemoEvaluation({json::Json(1), json::Json(2), json::Json(4)});
  auto jobs = service_->ListJobs(evaluation.id);
  EXPECT_EQ(jobs.size(), 6u);  // 2 engines x 3 thread counts.
  for (const model::Job& job : jobs) {
    EXPECT_EQ(job.state, JobState::kScheduled);
    EXPECT_TRUE(job.parameters.count("engine") > 0);
    EXPECT_TRUE(job.parameters.count("threads") > 0);
  }
  auto summary = service_->Summarize(evaluation.id);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->total_jobs, 6);
  EXPECT_EQ(summary->state_counts[JobState::kScheduled], 6);
  EXPECT_EQ(summary->overall_progress_percent, 0);
}

TEST_F(ControlServiceTest, EvaluationRepetitionsMultiplyJobs) {
  MakeDemoEvaluation();  // Registers everything; ignore its evaluation.
  auto evaluation =
      service_->CreateEvaluation(experiment_id_, "rep run", /*repetitions=*/3);
  ASSERT_TRUE(evaluation.ok());
  auto jobs = service_->ListJobs(evaluation->id);
  EXPECT_EQ(jobs.size(), 12u);  // 2 engines x 2 threads x 3 repetitions.
  // Repeated assignments are identical.
  int same_params = 0;
  for (size_t i = 1; i < jobs.size(); ++i) {
    if (model::AssignmentToJson(jobs[i].parameters) ==
        model::AssignmentToJson(jobs[i - 1].parameters)) {
      ++same_params;
    }
  }
  EXPECT_EQ(same_params, 8);  // 2 duplicates per 4 distinct assignments.

  EXPECT_FALSE(service_->CreateEvaluation(experiment_id_, "x", 0).ok());
  EXPECT_FALSE(service_->CreateEvaluation(experiment_id_, "x", 1001).ok());
}

TEST_F(ControlServiceTest, RepeatedResultsAverageInDiagrams) {
  MakeDemoEvaluation();
  auto evaluation = service_->CreateEvaluation(experiment_id_, "avg",
                                               /*repetitions=*/2);
  ASSERT_TRUE(evaluation.ok());
  model::Deployment deployment = AddDeployment(system_id_);
  // Finish the repetition jobs with different throughputs; diagram points
  // must be their mean. Abort the jobs of the fixture's first evaluation so
  // only ours complete... they belong to a different evaluation anyway.
  double values[] = {100, 300, 100, 300, 100, 300, 100, 300};
  int i = 0;
  while (true) {
    auto job = service_->PollJob(deployment.id);
    ASSERT_TRUE(job.ok());
    if (!job->has_value()) break;
    if ((*job)->evaluation_id != evaluation->id) {
      ASSERT_TRUE(service_->AbortJob((*job)->id).ok());
      continue;
    }
    json::Json data = json::Json::MakeObject();
    data.Set("throughput", values[i++ % 8]);
    ASSERT_TRUE(service_->UploadResult((*job)->id, data, "").ok());
  }
  auto diagrams = service_->EvaluationDiagrams(evaluation->id);
  ASSERT_TRUE(diagrams.ok());
  ASSERT_EQ(diagrams->size(), 1u);
  for (const analysis::Series& series : (*diagrams)[0].series) {
    for (double v : series.values) {
      EXPECT_DOUBLE_EQ(v, 200);  // Mean of 100 and 300.
    }
  }
}

// --- Dispatch / job lifecycle ---

TEST_F(ControlServiceTest, PollAssignsOldestScheduledJob) {
  model::Evaluation evaluation = MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);

  auto polled = service_->PollJob(deployment.id);
  ASSERT_TRUE(polled.ok()) << polled.status();
  ASSERT_TRUE(polled->has_value());
  EXPECT_EQ((*polled)->state, JobState::kRunning);
  EXPECT_EQ((*polled)->deployment_id, deployment.id);
  EXPECT_GT((*polled)->started_at, 0);

  // Deployment is busy: next poll gets nothing.
  auto second = service_->PollJob(deployment.id);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->has_value());
}

TEST_F(ControlServiceTest, PollRespectsSystemMatch) {
  MakeDemoEvaluation();
  // A deployment of a different system must not receive these jobs.
  model::System other;
  other.name = "OtherDB";
  auto registered = service_->RegisterSystem(other);
  model::Deployment deployment = AddDeployment(registered->id);
  auto polled = service_->PollJob(deployment.id);
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(polled->has_value());
}

TEST_F(ControlServiceTest, PollRejectsInactiveDeployment) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  ASSERT_TRUE(service_->SetDeploymentActive(deployment.id, false).ok());
  EXPECT_TRUE(service_->PollJob(deployment.id).status().IsFailedPrecondition());
}

TEST_F(ControlServiceTest, TwoDeploymentsGetDistinctJobs) {
  MakeDemoEvaluation();
  model::Deployment dep_a = AddDeployment(system_id_, "a");
  model::Deployment dep_b = AddDeployment(system_id_, "b");
  auto job_a = service_->PollJob(dep_a.id);
  auto job_b = service_->PollJob(dep_b.id);
  ASSERT_TRUE(job_a->has_value());
  ASSERT_TRUE(job_b->has_value());
  EXPECT_NE((*job_a)->id, (*job_b)->id);
}

TEST_F(ControlServiceTest, ResultUploadFinishesJob) {
  model::Evaluation evaluation = MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());

  json::Json data = json::Json::MakeObject();
  data.Set("throughput", 1234.5);
  ASSERT_TRUE(service_->UploadResult((*job)->id, data, "").ok());

  auto finished = service_->GetJob((*job)->id);
  EXPECT_EQ(finished->state, JobState::kFinished);
  EXPECT_EQ(finished->progress_percent, 100);
  EXPECT_GT(finished->finished_at, 0);
  auto result = service_->GetResult((*job)->id);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->data.at("throughput").as_double(), 1234.5);

  // A second upload must be rejected (job no longer running).
  EXPECT_TRUE(
      service_->UploadResult((*job)->id, data, "").IsFailedPrecondition());
}

TEST_F(ControlServiceTest, AbortScheduledAndRunning) {
  model::Evaluation evaluation = MakeDemoEvaluation();
  auto jobs = service_->ListJobs(evaluation.id);
  ASSERT_GE(jobs.size(), 2u);

  // Abort a scheduled job directly.
  ASSERT_TRUE(service_->AbortJob(jobs[0].id).ok());
  EXPECT_EQ(service_->GetJob(jobs[0].id)->state, JobState::kAborted);

  // Abort a running job; the agent sees it on the next progress ping.
  model::Deployment deployment = AddDeployment(system_id_);
  auto running = service_->PollJob(deployment.id);
  ASSERT_TRUE(running->has_value());
  ASSERT_TRUE(service_->AbortJob((*running)->id).ok());
  auto state = service_->ReportProgress((*running)->id, 50);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, JobState::kAborted);

  // Aborted jobs cannot be aborted again or rescheduled.
  EXPECT_FALSE(service_->AbortJob(jobs[0].id).ok());
  EXPECT_FALSE(service_->RescheduleJob(jobs[0].id).ok());
}

TEST_F(ControlServiceTest, FailAndManualReschedule) {
  options_.auto_reschedule = false;
  service_ = std::make_unique<ControlService>(db_.get(), &clock_, options_);
  model::Evaluation evaluation = MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());

  ASSERT_TRUE(service_->FailJob((*job)->id, "client exploded").ok());
  auto failed = service_->GetJob((*job)->id);
  EXPECT_EQ(failed->state, JobState::kFailed);
  EXPECT_EQ(failed->failure_reason, "client exploded");

  ASSERT_TRUE(service_->RescheduleJob((*job)->id).ok());
  auto rescheduled = service_->GetJob((*job)->id);
  EXPECT_EQ(rescheduled->state, JobState::kScheduled);
  EXPECT_EQ(rescheduled->attempt, 2);
  EXPECT_EQ(rescheduled->progress_percent, 0);
  EXPECT_TRUE(rescheduled->deployment_id.empty());
}

TEST_F(ControlServiceTest, ProgressAndLogAccumulate) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());

  ASSERT_TRUE(service_->ReportProgress((*job)->id, 42).ok());
  EXPECT_EQ(service_->GetJob((*job)->id)->progress_percent, 42);
  ASSERT_TRUE(
      service_->AppendLog((*job)->id, {"line one", "line two"}).ok());
  EXPECT_EQ(service_->JobLog((*job)->id), "line one\nline two\n");
  // Timeline captured state change + progress + logs.
  auto events = service_->JobEvents((*job)->id);
  EXPECT_GE(events.size(), 4u);
  EXPECT_FALSE(service_->AppendLog("missing", {"x"}).ok());
}

// --- Reliability: heartbeats + auto-reschedule (requirement iii) ---

TEST_F(ControlServiceTest, HeartbeatTimeoutFailsAndAutoReschedules) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  std::string job_id = (*job)->id;

  // Fresh heartbeat: nothing happens.
  EXPECT_EQ(service_->CheckHeartbeats(), 0);

  // Silence for > timeout: job fails, then auto-reschedules (attempt 2).
  clock_.AdvanceMs(1500);
  EXPECT_EQ(service_->CheckHeartbeats(), 1);
  auto rescheduled = service_->GetJob(job_id);
  EXPECT_EQ(rescheduled->state, JobState::kScheduled);
  EXPECT_EQ(rescheduled->attempt, 2);
}

TEST_F(ControlServiceTest, AutoRescheduleStopsAtMaxAttempts) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  std::string job_id;
  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    auto job = service_->PollJob(deployment.id);
    ASSERT_TRUE(job.ok() && job->has_value()) << "attempt " << attempt;
    if (job_id.empty()) job_id = (*job)->id;
    EXPECT_EQ((*job)->attempt, attempt);
    clock_.AdvanceMs(2000);
    EXPECT_GE(service_->CheckHeartbeats(), 1);
  }
  // After max_attempts the job stays failed.
  EXPECT_EQ(service_->GetJob(job_id)->state, JobState::kFailed);
  auto no_more = service_->PollJob(deployment.id);
  // All jobs of the 2x2 evaluation eventually fail this way, but the first
  // job must not come back.
  if (no_more.ok() && no_more->has_value()) {
    EXPECT_NE((*no_more)->id, job_id);
  }
}

TEST_F(ControlServiceTest, HeartbeatKeepsJobAlive) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  for (int i = 0; i < 5; ++i) {
    clock_.AdvanceMs(800);  // Under the 1000ms timeout each time.
    ASSERT_TRUE(service_->Heartbeat((*job)->id).ok());
    EXPECT_EQ(service_->CheckHeartbeats(), 0);
  }
  EXPECT_EQ(service_->GetJob((*job)->id)->state, JobState::kRunning);
}

TEST_F(ControlServiceTest, DispatchIsFifoWithinSystem) {
  MakeDemoEvaluation({json::Json(1)});  // 2 jobs (engine sweep x 1 thread).
  model::Deployment deployment = AddDeployment(system_id_);
  // Jobs dispatch in creation (id) order.
  auto first = service_->PollJob(deployment.id);
  ASSERT_TRUE(first->has_value());
  json::Json data = json::Json::MakeObject();
  data.Set("throughput", 1.0);
  ASSERT_TRUE(service_->UploadResult((*first)->id, data, "").ok());
  auto second = service_->PollJob(deployment.id);
  ASSERT_TRUE(second->has_value());
  EXPECT_LT((*first)->id, (*second)->id);
  // First job's engine is the first sweep value.
  EXPECT_EQ((*first)->parameters.at("engine").as_string(), "wiredtiger");
  EXPECT_EQ((*second)->parameters.at("engine").as_string(), "mmapv1");
}

TEST_F(ControlServiceTest, PollUnknownDeploymentFails) {
  EXPECT_TRUE(service_->PollJob("ghost").status().IsNotFound());
}

TEST_F(ControlServiceTest, EventTimelineOrderSurvivesRestart) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  ASSERT_TRUE(service_->AppendLog((*job)->id, {"one"}).ok());

  // Restart the service over the same store; the event sequence must
  // continue past persisted events, keeping order stable.
  std::string job_id = (*job)->id;
  service_ = std::make_unique<ControlService>(db_.get(), &clock_, options_);
  ASSERT_TRUE(service_->AppendLog(job_id, {"two", "three"}).ok());
  EXPECT_EQ(service_->JobLog(job_id), "one\ntwo\nthree\n");
  auto events = service_->JobEvents(job_id);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

TEST_F(ControlServiceTest, SummarizeMissingEvaluationFails) {
  EXPECT_TRUE(service_->Summarize("ghost").status().IsNotFound());
  EXPECT_TRUE(service_->CollectResults("ghost").status().IsNotFound());
  EXPECT_TRUE(service_->EvaluationDiagrams("ghost").status().IsNotFound());
}

TEST_F(ControlServiceTest, DeploymentDeletionStopsDispatch) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  ASSERT_TRUE(service_->DeleteDeployment(deployment.id).ok());
  EXPECT_TRUE(service_->PollJob(deployment.id).status().IsNotFound());
  EXPECT_TRUE(service_->DeleteDeployment(deployment.id).IsNotFound());
}

// --- Analysis integration ---

TEST_F(ControlServiceTest, DiagramsFromFinishedJobs) {
  model::Evaluation evaluation = MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  // Run all four jobs, uploading synthetic throughput results.
  double throughput = 1000;
  while (true) {
    auto job = service_->PollJob(deployment.id);
    ASSERT_TRUE(job.ok());
    if (!job->has_value()) break;
    json::Json data = json::Json::MakeObject();
    data.Set("throughput", throughput);
    throughput += 500;
    ASSERT_TRUE(service_->UploadResult((*job)->id, data, "").ok());
  }
  auto results = service_->CollectResults(evaluation.id);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 4u);

  auto diagrams = service_->EvaluationDiagrams(evaluation.id);
  ASSERT_TRUE(diagrams.ok());
  ASSERT_EQ(diagrams->size(), 1u);
  EXPECT_EQ((*diagrams)[0].series.size(), 2u);   // Two engines.
  EXPECT_EQ((*diagrams)[0].x_values.size(), 2u); // Two thread counts.
}

// --- Archiving (requirement iv) ---

TEST_F(ControlServiceTest, ProjectArchiveContainsEverything) {
  model::Evaluation evaluation = MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  ASSERT_TRUE(service_->AppendLog((*job)->id, {"log line"}).ok());
  json::Json data = json::Json::MakeObject();
  data.Set("throughput", 99.0);
  std::string bundle = archive::ZipFiles({{"raw.txt", "raw-bytes"}});
  ASSERT_TRUE(service_
                  ->UploadResult((*job)->id, data,
                                 strings::Base64Encode(bundle))
                  .ok());

  auto archive_bytes = BuildProjectArchive(service_.get(), project_id_,
                                           admin_id_);
  ASSERT_TRUE(archive_bytes.ok()) << archive_bytes.status();
  auto reader = archive::ZipReader::Open(*archive_bytes);
  ASSERT_TRUE(reader.ok());

  EXPECT_TRUE(reader->Has("project.json"));
  std::string job_prefix = "experiments/" + experiment_id_ + "/evaluations/" +
                           evaluation.id + "/jobs/" + (*job)->id + "/";
  EXPECT_TRUE(reader->Has(job_prefix + "job.json"));
  EXPECT_TRUE(reader->Has(job_prefix + "job.log"));
  EXPECT_TRUE(reader->Has(job_prefix + "result.json"));
  EXPECT_TRUE(reader->Has(job_prefix + "bundle.zip"));
  // The nested bundle is itself a valid zip with the raw file.
  auto nested = archive::ZipReader::Open(*reader->Read(job_prefix +
                                                       "bundle.zip"));
  ASSERT_TRUE(nested.ok());
  EXPECT_EQ(*nested->Read("raw.txt"), "raw-bytes");
  // Parameters that led to the results are preserved (requirement iv).
  auto job_json = json::Parse(*reader->Read(job_prefix + "job.json"));
  ASSERT_TRUE(job_json.ok());
  EXPECT_TRUE(job_json->at("parameters").Has("engine"));
}

TEST_F(ControlServiceTest, ArchiveImportRecreatesExperiments) {
  MakeDemoEvaluation();
  auto archive_bytes =
      BuildProjectArchive(service_.get(), project_id_, admin_id_);
  ASSERT_TRUE(archive_bytes.ok());
  auto imported =
      ImportProjectArchive(service_.get(), *archive_bytes, admin_id_);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(*imported, 2);  // Project + one experiment.
  EXPECT_EQ(service_->ListProjects(admin_id_).size(), 2u);
}

// --- Durability of control state ---

TEST_F(ControlServiceTest, StateSurvivesServiceRestart) {
  model::Evaluation evaluation = MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  std::string job_id = (*job)->id;

  // Simulate a Chronos Control crash: reopen the MetaDb from disk.
  service_.reset();
  db_.reset();
  auto db = model::MetaDb::Open(dir_.path());
  ASSERT_TRUE(db.ok());
  db_ = std::move(db).value();
  service_ = std::make_unique<ControlService>(db_.get(), &clock_, options_);

  auto recovered = service_->GetJob(job_id);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->state, JobState::kRunning);
  // The recovered control plane can still fail/reschedule it.
  clock_.AdvanceMs(5000);
  EXPECT_EQ(service_->CheckHeartbeats(), 1);
  EXPECT_EQ(service_->GetJob(job_id)->state, JobState::kScheduled);
}

// --- Idempotent terminal reports (crash-safe agent retries) ---

TEST_F(ControlServiceTest, UploadResultIsIdempotentPerAttempt) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  const std::string job_id = (*job)->id;
  const std::string key = job_id + "#1";

  json::Json data = json::Json::MakeObject();
  data.Set("throughput", 7.0);
  ASSERT_TRUE(service_->UploadResult(job_id, data, "", key).ok());
  EXPECT_EQ(service_->GetJob(job_id)->state, JobState::kFinished);

  // A retried delivery of the same report is acknowledged, not re-applied:
  // still one result row, still exactly one finished transition.
  ASSERT_TRUE(service_->UploadResult(job_id, data, "", key).ok());
  EXPECT_EQ(db_->jobs().Get(job_id)->terminal_key, key);
  EXPECT_EQ(db_->results().FindBy("job_id", json::Json(job_id)).size(), 1u);
  int finished_events = 0;
  for (const model::JobEvent& event : service_->JobEvents(job_id)) {
    if (event.kind == "state" &&
        event.message.find("-> finished") != std::string::npos) {
      ++finished_events;
    }
  }
  EXPECT_EQ(finished_events, 1);

  // A keyless upload still hits the legacy state check.
  EXPECT_TRUE(service_->UploadResult(job_id, data, "").IsFailedPrecondition());
}

TEST_F(ControlServiceTest, UploadReplayCompletesHalfAppliedTransition) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  const std::string job_id = (*job)->id;
  const std::string key = job_id + "#1";

  // Simulate a crash between the result insert and the finished transition:
  // the row exists but the job is still running.
  model::Result half;
  half.id = GenerateUuid();
  half.job_id = job_id;
  half.data = json::Json::MakeObject();
  half.idempotency_key = key;
  ASSERT_TRUE(db_->results().Insert(half).ok());
  ASSERT_EQ(service_->GetJob(job_id)->state, JobState::kRunning);

  // The agent's retry with the same key completes the transition instead of
  // inserting a duplicate row.
  ASSERT_TRUE(
      service_->UploadResult(job_id, json::Json::MakeObject(), "", key).ok());
  EXPECT_EQ(service_->GetJob(job_id)->state, JobState::kFinished);
  EXPECT_EQ(db_->results().FindBy("job_id", json::Json(job_id)).size(), 1u);
}

TEST_F(ControlServiceTest, FailJobReplayDoesNotBurnNextAttempt) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  const std::string job_id = (*job)->id;

  // First delivery fails attempt 1; auto-reschedule makes attempt 2.
  ASSERT_TRUE(service_->FailJob(job_id, "boom", job_id + "#1").ok());
  auto rescheduled = service_->GetJob(job_id);
  EXPECT_EQ(rescheduled->state, JobState::kScheduled);
  EXPECT_EQ(rescheduled->attempt, 2);

  // The retried delivery (e.g. after a Control restart ate the ack) must
  // not fail the freshly scheduled attempt.
  ASSERT_TRUE(service_->FailJob(job_id, "boom", job_id + "#1").ok());
  auto after = service_->GetJob(job_id);
  EXPECT_EQ(after->state, JobState::kScheduled);
  EXPECT_EQ(after->attempt, 2);

  // Even after the next claim, the stale key is still a no-op.
  auto reclaimed = service_->PollJob(deployment.id);
  ASSERT_TRUE(reclaimed->has_value());
  ASSERT_EQ((*reclaimed)->id, job_id);
  ASSERT_TRUE(service_->FailJob(job_id, "boom", job_id + "#1").ok());
  EXPECT_EQ(service_->GetJob(job_id)->state, JobState::kRunning);
}

TEST_F(ControlServiceTest, FailJobAtExhaustedBudgetStaysFailed) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  const std::string job_id = (*job)->id;
  for (int attempt = 1; attempt < options_.max_attempts; ++attempt) {
    ASSERT_TRUE(service_->FailJob(job_id, "boom").ok());
    ASSERT_EQ(service_->GetJob(job_id)->state, JobState::kScheduled);
    auto again = service_->PollJob(deployment.id);
    ASSERT_TRUE(again->has_value());
    ASSERT_EQ((*again)->id, job_id);
  }
  // Attempt == max_attempts: failure is final, no reschedule.
  ASSERT_TRUE(service_->FailJob(job_id, "boom").ok());
  auto final_state = service_->GetJob(job_id);
  EXPECT_EQ(final_state->state, JobState::kFailed);
  EXPECT_EQ(final_state->attempt, options_.max_attempts);
}

TEST_F(ControlServiceTest, StaleAttemptPostsAreRejectedWithoutMutation) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  const std::string job_id = (*job)->id;

  // Attempt 1 dies; the job is rescheduled and re-claimed as attempt 2.
  clock_.AdvanceMs(2000);
  ASSERT_EQ(service_->CheckHeartbeats(), 1);
  auto reclaimed = service_->PollJob(deployment.id);
  ASSERT_TRUE(reclaimed->has_value());
  ASSERT_EQ((*reclaimed)->attempt, 2);

  // Zombie posts from attempt 1 are told to stop (kAborted) and must not
  // touch the current attempt's progress or heartbeat.
  auto progress = service_->ReportProgress(job_id, 93, /*attempt=*/1);
  ASSERT_TRUE(progress.ok());
  EXPECT_EQ(*progress, JobState::kAborted);
  EXPECT_EQ(service_->GetJob(job_id)->progress_percent, 0);
  TimestampMs heartbeat_before = service_->GetJob(job_id)->last_heartbeat_at;
  clock_.AdvanceMs(100);
  auto beat = service_->Heartbeat(job_id, /*attempt=*/1);
  ASSERT_TRUE(beat.ok());
  EXPECT_EQ(*beat, JobState::kAborted);
  EXPECT_EQ(service_->GetJob(job_id)->last_heartbeat_at, heartbeat_before);

  // The live attempt's posts go through.
  auto live = service_->ReportProgress(job_id, 55, /*attempt=*/2);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, JobState::kRunning);
  EXPECT_EQ(service_->GetJob(job_id)->progress_percent, 55);
}

// --- Graceful drain ---

TEST_F(ControlServiceTest, DrainStopsDispatchAndFiresCallbackOnce) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  int callbacks = 0;
  service_->SetDrainCallback([&callbacks] { ++callbacks; });

  auto held = service_->PollJob(deployment.id);
  ASSERT_TRUE(held->has_value());
  EXPECT_FALSE(service_->draining());
  service_->BeginDrain();
  EXPECT_TRUE(service_->draining());
  EXPECT_EQ(callbacks, 1);
  service_->BeginDrain();  // Idempotent.
  EXPECT_EQ(callbacks, 1);

  // No new work is handed out, but the in-flight job can still finish.
  auto denied = service_->PollJob(deployment.id);
  ASSERT_TRUE(denied.ok());
  EXPECT_FALSE(denied->has_value());
  json::Json data = json::Json::MakeObject();
  data.Set("throughput", 1.0);
  ASSERT_TRUE(service_->UploadResult((*held)->id, data, "").ok());
  EXPECT_EQ(service_->GetJob((*held)->id)->state, JobState::kFinished);
}

// --- Startup reconciliation ---

TEST_F(ControlServiceTest, ReconcileGrantsGraceLeaseToOrphanedRunningJobs) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  const std::string job_id = (*job)->id;

  // "Crash": a fresh service over the same db, long after the heartbeat.
  clock_.AdvanceMs(5000);
  service_ = std::make_unique<ControlService>(db_.get(), &clock_, options_);
  ReconcileReport report = service_->ReconcileOnStartup();
  EXPECT_FALSE(report.clean_shutdown);
  EXPECT_EQ(report.actions["grace_lease"], 1);
  EXPECT_EQ(service_->reconcile_report().total(), 1);

  // The lease shields the job for one full timeout window...
  EXPECT_EQ(service_->CheckHeartbeats(), 0);
  EXPECT_EQ(service_->GetJob(job_id)->state, JobState::kRunning);
  // ...then the normal failure handling recycles it through the budget.
  clock_.AdvanceMs(1500);
  EXPECT_EQ(service_->CheckHeartbeats(), 1);
  auto recycled = service_->GetJob(job_id);
  EXPECT_EQ(recycled->state, JobState::kScheduled);
  EXPECT_EQ(recycled->attempt, 2);
}

TEST_F(ControlServiceTest, ReconcileCompletesHalfAppliedUpload) {
  MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  const std::string job_id = (*job)->id;

  // Crash window: result row committed, finished transition lost.
  model::Result half;
  half.id = GenerateUuid();
  half.job_id = job_id;
  half.data = json::Json::MakeObject();
  half.idempotency_key = job_id + "#1";
  ASSERT_TRUE(db_->results().Insert(half).ok());

  service_ = std::make_unique<ControlService>(db_.get(), &clock_, options_);
  ReconcileReport report = service_->ReconcileOnStartup();
  EXPECT_EQ(report.actions["complete_upload"], 1);
  EXPECT_EQ(service_->GetJob(job_id)->state, JobState::kFinished);
  EXPECT_EQ(db_->results().FindBy("job_id", json::Json(job_id)).size(), 1u);
}

TEST_F(ControlServiceTest, ReconcileScrubsResidueAndDropsOrphans) {
  model::Evaluation evaluation = MakeDemoEvaluation();
  model::Deployment deployment = AddDeployment(system_id_);
  auto job = service_->PollJob(deployment.id);
  ASSERT_TRUE(job->has_value());
  const std::string job_id = (*job)->id;

  // A scheduled job that kept executor residue (torn reschedule).
  {
    auto snapshot = db_->jobs().GetWithVersion(job_id);
    ASSERT_TRUE(snapshot.ok());
    auto [fresh, version] = *snapshot;
    fresh.state = JobState::kScheduled;
    ASSERT_TRUE(db_->jobs().UpdateIfVersion(fresh, version).ok());
  }
  // Orphan rows pointing at a job that does not exist.
  model::Result orphan_result;
  orphan_result.id = GenerateUuid();
  orphan_result.job_id = "ghost-job";
  ASSERT_TRUE(db_->results().Insert(orphan_result).ok());
  model::JobEvent orphan_event;
  orphan_event.id = GenerateUuid();
  orphan_event.job_id = "ghost-job";
  orphan_event.kind = "note";
  ASSERT_TRUE(db_->job_events().Insert(orphan_event).ok());
  // An evaluation shell with zero jobs (crash mid-expansion).
  model::Evaluation empty;
  empty.id = GenerateUuid();
  empty.experiment_id = experiment_id_;
  empty.name = "torn";
  ASSERT_TRUE(db_->evaluations().Insert(empty).ok());

  service_ = std::make_unique<ControlService>(db_.get(), &clock_, options_);
  ReconcileReport report = service_->ReconcileOnStartup();
  EXPECT_EQ(report.actions["sanitize_scheduled"], 1);
  EXPECT_EQ(report.actions["drop_empty_evaluation"], 1);
  EXPECT_EQ(report.actions["drop_orphan_result"], 1);
  EXPECT_EQ(report.actions["drop_orphan_event"], 1);

  auto scrubbed = service_->GetJob(job_id);
  EXPECT_TRUE(scrubbed->deployment_id.empty());
  EXPECT_EQ(scrubbed->last_heartbeat_at, 0);
  EXPECT_FALSE(db_->evaluations().Exists(empty.id));
  EXPECT_FALSE(db_->results().Exists(orphan_result.id));
  EXPECT_FALSE(db_->job_events().Exists(orphan_event.id));
  // The healthy evaluation was untouched.
  EXPECT_TRUE(db_->evaluations().Exists(evaluation.id));
  // The scrubbed job is dispatchable again.
  auto redispatched = service_->PollJob(deployment.id);
  ASSERT_TRUE(redispatched->has_value());
  EXPECT_EQ((*redispatched)->id, job_id);
}

TEST_F(ControlServiceTest, CleanShutdownMarkerShortCircuitsReconcileOnce) {
  MakeDemoEvaluation();
  ASSERT_TRUE(service_->MarkCleanShutdown().ok());

  // Boot 1: fast path, marker consumed.
  service_ = std::make_unique<ControlService>(db_.get(), &clock_, options_);
  ReconcileReport report = service_->ReconcileOnStartup();
  EXPECT_TRUE(report.clean_shutdown);
  EXPECT_EQ(report.total(), 0);
  json::Json as_json = report.ToJson();
  EXPECT_TRUE(as_json.GetBoolOr("clean_shutdown", false));
  EXPECT_EQ(as_json.GetIntOr("total", -1), 0);

  // Boot 2 without an intervening MarkCleanShutdown (i.e. after a crash):
  // the one-shot marker no longer applies.
  service_ = std::make_unique<ControlService>(db_.get(), &clock_, options_);
  EXPECT_FALSE(service_->ReconcileOnStartup().clean_shutdown);
}

// --- Heartbeat monitor jitter ---

TEST(HeartbeatMonitorJitterTest, ZeroJitterIsExactInterval) {
  HeartbeatMonitorOptions options;
  options.interval_ms = 250;
  options.jitter = 0.0;
  HeartbeatMonitor monitor(nullptr, options);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(monitor.NextIntervalMs(), 250);
  }
}

TEST(HeartbeatMonitorJitterTest, JitterStaysInBoundsAndVaries) {
  HeartbeatMonitorOptions options;
  options.interval_ms = 1000;
  options.jitter = 0.2;
  options.seed = 42;
  HeartbeatMonitor monitor(nullptr, options);
  bool varied = false;
  int64_t previous = -1;
  for (int i = 0; i < 200; ++i) {
    int64_t interval = monitor.NextIntervalMs();
    EXPECT_GE(interval, 800);
    EXPECT_LE(interval, 1200);
    if (previous >= 0 && interval != previous) varied = true;
    previous = interval;
  }
  EXPECT_TRUE(varied);
}

TEST(HeartbeatMonitorJitterTest, ScheduleIsDeterministicPerSeed) {
  HeartbeatMonitorOptions options;
  options.interval_ms = 1000;
  options.jitter = 0.3;
  options.seed = 1337;
  HeartbeatMonitor a(nullptr, options);
  HeartbeatMonitor b(nullptr, options);
  std::vector<int64_t> sequence_a, sequence_b;
  for (int i = 0; i < 50; ++i) {
    sequence_a.push_back(a.NextIntervalMs());
    sequence_b.push_back(b.NextIntervalMs());
  }
  EXPECT_EQ(sequence_a, sequence_b);

  // A different seed draws a different schedule.
  options.seed = 1338;
  HeartbeatMonitor c(nullptr, options);
  std::vector<int64_t> sequence_c;
  for (int i = 0; i < 50; ++i) sequence_c.push_back(c.NextIntervalMs());
  EXPECT_NE(sequence_a, sequence_c);
}

}  // namespace
}  // namespace chronos::control
