#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace chronos::obs {
namespace {

TEST(MetricsRegistryTest, CounterIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_total", "help");
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test_depth", "help");
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 7);
  gauge->Add(3);
  EXPECT_EQ(gauge->value(), 10);
}

TEST(MetricsRegistryTest, HistogramObserves) {
  MetricsRegistry registry;
  HistogramMetric* histogram = registry.GetHistogram("test_latency_us");
  histogram->Observe(100);
  histogram->Observe(200);
  histogram->Observe(300);
  EXPECT_EQ(histogram->count(), 3u);
  EXPECT_EQ(histogram->sum(), 600u);
  EXPECT_GE(histogram->Percentile(1.0), 300u);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", "help",
                                   {{"route", "/x"}});
  Counter* b = registry.GetCounter("requests_total", "",
                                   {{"route", "/x"}});
  EXPECT_EQ(a, b);
  // A different label set is a different series in the same family.
  Counter* c = registry.GetCounter("requests_total", "", {{"route", "/y"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.family_count(), 1u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("t", "", {{"a", "1"}, {"b", "2"}});
  Counter* b = registry.GetCounter("t", "", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, KindConflictReturnsDetachedDummy) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mixed", "first registration wins");
  counter->Increment();
  // Asking for the same name as a gauge must not crash or disturb the
  // counter; the caller gets a detached handle.
  Gauge* gauge = registry.GetGauge("mixed");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(99);
  EXPECT_EQ(counter->value(), 1u);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE mixed counter"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE mixed gauge"), std::string::npos);
}

TEST(MetricsRegistryTest, RenderPrometheusFormat) {
  MetricsRegistry registry;
  registry.GetCounter("b_total", "b help")->Increment(7);
  registry.GetGauge("a_depth", "a help")->Set(-2);
  registry.GetCounter("c_total", "", {{"route", "/api"}})->Increment(3);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP b_total b help\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("b_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE a_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("a_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("c_total{route=\"/api\"} 3\n"), std::string::npos);
  // Families render sorted by name.
  EXPECT_LT(text.find("a_depth"), text.find("b_total"));
  EXPECT_LT(text.find("b_total"), text.find("c_total"));
}

TEST(MetricsRegistryTest, RenderEscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("esc_total", "", {{"path", "a\\b\"c\nd"}})->Increment();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, HistogramRendersAsSummaryWithQuantiles) {
  MetricsRegistry registry;
  HistogramMetric* histogram =
      registry.GetHistogram("lat_us", "latency", {{"route", "/r"}});
  for (int i = 1; i <= 100; ++i) histogram->Observe(i);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE lat_us summary\n"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.9\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum{route=\"/r\"} 5050\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count{route=\"/r\"} 100\n"), std::string::npos);
}

TEST(MetricsRegistryTest, CollectionHooksRunOnRender) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("hooked");
  int runs = 0;
  registry.AddCollectionHook([&] {
    ++runs;
    gauge->Set(runs);
  });
  std::string text = registry.RenderPrometheus();
  EXPECT_EQ(runs, 1);
  EXPECT_NE(text.find("hooked 1\n"), std::string::npos);
  registry.RenderPrometheus();
  EXPECT_EQ(runs, 2);
}

TEST(MetricsRegistryTest, ConcurrentGetAndIncrement) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("contended_total")->Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("contended_total")->value(), 8000u);
}

TEST(MetricsRegistryTest, GlobalInstanceExposesLoggerDrops) {
  std::string text = MetricsRegistry::Get()->RenderPrometheus();
  EXPECT_NE(text.find("chronos_logger_dropped_records"), std::string::npos);
}

TEST(TraceTest, GenerateProducesValidContext) {
  TraceContext trace = TraceContext::Generate();
  EXPECT_EQ(trace.trace_id.size(), 32u);
  EXPECT_EQ(trace.span_id.size(), 16u);
  EXPECT_TRUE(trace.valid());
  // Distinct per call.
  EXPECT_NE(trace.trace_id, TraceContext::Generate().trace_id);
}

TEST(TraceTest, HeaderRoundTrip) {
  TraceContext trace = TraceContext::Generate();
  std::string header = trace.ToHeader();
  EXPECT_EQ(header, trace.trace_id + "-" + trace.span_id);
  auto parsed = TraceContext::Parse(header);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->trace_id, trace.trace_id);
  EXPECT_EQ(parsed->span_id, trace.span_id);
}

TEST(TraceTest, ParseRejectsMalformed) {
  EXPECT_FALSE(TraceContext::Parse("").ok());
  EXPECT_FALSE(TraceContext::Parse("not-a-trace").ok());
  EXPECT_FALSE(TraceContext::Parse(std::string(32, 'g') + "-" +
                                   std::string(16, '0'))
                   .ok());
  EXPECT_FALSE(TraceContext::Parse(std::string(32, '0') + ":" +
                                   std::string(16, '0'))
                   .ok());
  EXPECT_FALSE(
      TraceContext::Parse(std::string(31, '0') + "-" + std::string(17, '0'))
          .ok());
  EXPECT_TRUE(TraceContext::Parse(std::string(32, 'a') + "-" +
                                  std::string(16, '0'))
                  .ok());
}

TEST(TraceTest, ChildKeepsTraceIdChangesSpan) {
  TraceContext parent = TraceContext::Generate();
  TraceContext child = parent.Child();
  EXPECT_EQ(child.trace_id, parent.trace_id);
  EXPECT_NE(child.span_id, parent.span_id);
}

TEST(TraceTest, FromHeaderOrNewAdoptsOrStartsFresh) {
  TraceContext remote = TraceContext::Generate();
  TraceContext adopted = TraceContext::FromHeaderOrNew(remote.ToHeader());
  EXPECT_EQ(adopted.trace_id, remote.trace_id);
  EXPECT_NE(adopted.span_id, remote.span_id);

  TraceContext fresh = TraceContext::FromHeaderOrNew("garbage");
  EXPECT_TRUE(fresh.valid());
  EXPECT_NE(fresh.trace_id, remote.trace_id);
}

TEST(TraceTest, ScopeStampsLogRecordsAndRestores) {
  CaptureLogSink capture;
  CHRONOS_LOG(kInfo, "test") << "before";
  TraceContext trace = TraceContext::Generate();
  {
    TraceScope scope(trace);
    EXPECT_EQ(CurrentTrace().trace_id, trace.trace_id);
    CHRONOS_LOG(kInfo, "test") << "inside";
    {
      TraceScope nested(trace.Child());
      EXPECT_EQ(CurrentTrace().trace_id, trace.trace_id);
      EXPECT_NE(CurrentTrace().span_id, trace.span_id);
    }
    // Inner scope restored the outer span.
    EXPECT_EQ(CurrentTrace().span_id, trace.span_id);
  }
  EXPECT_FALSE(CurrentTrace().valid());
  CHRONOS_LOG(kInfo, "test") << "after";

  std::vector<LogRecord> records = capture.Drain();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].trace_id.empty());
  EXPECT_EQ(records[1].trace_id, trace.trace_id);
  EXPECT_EQ(records[1].span_id, trace.span_id);
  EXPECT_TRUE(records[2].trace_id.empty());
  // The formatted line carries the ids for grep-ability.
  EXPECT_NE(records[1].Format().find("trace=" + trace.trace_id),
            std::string::npos);
}

TEST(TraceTest, ScopeIsPerThread) {
  TraceContext trace = TraceContext::Generate();
  TraceScope scope(trace);
  std::string other_thread_trace = "unset";
  std::thread thread([&other_thread_trace] {
    other_thread_trace = CurrentTrace().trace_id;
  });
  thread.join();
  EXPECT_EQ(other_thread_trace, "");
  EXPECT_EQ(CurrentTrace().trace_id, trace.trace_id);
}

}  // namespace
}  // namespace chronos::obs
