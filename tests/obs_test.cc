#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "common/threading.h"
#include "json/json.h"
#include "obs/metrics_registry.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace chronos::obs {
namespace {

TEST(MetricsRegistryTest, CounterIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test_total", "help");
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test_depth", "help");
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 7);
  gauge->Add(3);
  EXPECT_EQ(gauge->value(), 10);
}

TEST(MetricsRegistryTest, HistogramObserves) {
  MetricsRegistry registry;
  HistogramMetric* histogram = registry.GetHistogram("test_latency_us");
  histogram->Observe(100);
  histogram->Observe(200);
  histogram->Observe(300);
  EXPECT_EQ(histogram->count(), 3u);
  EXPECT_EQ(histogram->sum(), 600u);
  EXPECT_GE(histogram->Percentile(1.0), 300u);
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total", "help",
                                   {{"route", "/x"}});
  Counter* b = registry.GetCounter("requests_total", "",
                                   {{"route", "/x"}});
  EXPECT_EQ(a, b);
  // A different label set is a different series in the same family.
  Counter* c = registry.GetCounter("requests_total", "", {{"route", "/y"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(registry.family_count(), 1u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("t", "", {{"a", "1"}, {"b", "2"}});
  Counter* b = registry.GetCounter("t", "", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, KindConflictReturnsDetachedDummy) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("mixed", "first registration wins");
  counter->Increment();
  // Asking for the same name as a gauge must not crash or disturb the
  // counter; the caller gets a detached handle.
  Gauge* gauge = registry.GetGauge("mixed");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(99);
  EXPECT_EQ(counter->value(), 1u);
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE mixed counter"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE mixed gauge"), std::string::npos);
}

TEST(MetricsRegistryTest, RenderPrometheusFormat) {
  MetricsRegistry registry;
  registry.GetCounter("b_total", "b help")->Increment(7);
  registry.GetGauge("a_depth", "a help")->Set(-2);
  registry.GetCounter("c_total", "", {{"route", "/api"}})->Increment(3);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP b_total b help\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("b_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE a_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("a_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("c_total{route=\"/api\"} 3\n"), std::string::npos);
  // Families render sorted by name.
  EXPECT_LT(text.find("a_depth"), text.find("b_total"));
  EXPECT_LT(text.find("b_total"), text.find("c_total"));
}

TEST(MetricsRegistryTest, RenderEscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("esc_total", "", {{"path", "a\\b\"c\nd"}})->Increment();
  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, HistogramRendersAsSummaryWithQuantiles) {
  MetricsRegistry registry;
  HistogramMetric* histogram =
      registry.GetHistogram("lat_us", "latency", {{"route", "/r"}});
  for (int i = 1; i <= 100; ++i) histogram->Observe(i);

  std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE lat_us summary\n"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.9\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum{route=\"/r\"} 5050\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count{route=\"/r\"} 100\n"), std::string::npos);
}

TEST(MetricsRegistryTest, CollectionHooksRunOnRender) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("hooked");
  int runs = 0;
  registry.AddCollectionHook([&] {
    ++runs;
    gauge->Set(runs);
  });
  std::string text = registry.RenderPrometheus();
  EXPECT_EQ(runs, 1);
  EXPECT_NE(text.find("hooked 1\n"), std::string::npos);
  registry.RenderPrometheus();
  EXPECT_EQ(runs, 2);
}

TEST(MetricsRegistryTest, ConcurrentGetAndIncrement) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("contended_total")->Increment();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("contended_total")->value(), 8000u);
}

TEST(MetricsRegistryTest, GlobalInstanceExposesLoggerDrops) {
  std::string text = MetricsRegistry::Get()->RenderPrometheus();
  EXPECT_NE(text.find("chronos_logger_dropped_records"), std::string::npos);
}

TEST(TraceTest, GenerateProducesValidContext) {
  TraceContext trace = TraceContext::Generate();
  EXPECT_EQ(trace.trace_id.size(), 32u);
  EXPECT_EQ(trace.span_id.size(), 16u);
  EXPECT_TRUE(trace.valid());
  // Distinct per call.
  EXPECT_NE(trace.trace_id, TraceContext::Generate().trace_id);
}

TEST(TraceTest, HeaderRoundTrip) {
  TraceContext trace = TraceContext::Generate();
  std::string header = trace.ToHeader();
  EXPECT_EQ(header, trace.trace_id + "-" + trace.span_id);
  auto parsed = TraceContext::Parse(header);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->trace_id, trace.trace_id);
  EXPECT_EQ(parsed->span_id, trace.span_id);
}

TEST(TraceTest, ParseRejectsMalformed) {
  EXPECT_FALSE(TraceContext::Parse("").ok());
  EXPECT_FALSE(TraceContext::Parse("not-a-trace").ok());
  EXPECT_FALSE(TraceContext::Parse(std::string(32, 'g') + "-" +
                                   std::string(16, '0'))
                   .ok());
  EXPECT_FALSE(TraceContext::Parse(std::string(32, '0') + ":" +
                                   std::string(16, '0'))
                   .ok());
  EXPECT_FALSE(
      TraceContext::Parse(std::string(31, '0') + "-" + std::string(17, '0'))
          .ok());
  EXPECT_TRUE(TraceContext::Parse(std::string(32, 'a') + "-" +
                                  std::string(16, '0'))
                  .ok());
}

TEST(TraceTest, ChildKeepsTraceIdChangesSpan) {
  TraceContext parent = TraceContext::Generate();
  TraceContext child = parent.Child();
  EXPECT_EQ(child.trace_id, parent.trace_id);
  EXPECT_NE(child.span_id, parent.span_id);
}

TEST(TraceTest, FromHeaderOrNewAdoptsOrStartsFresh) {
  TraceContext remote = TraceContext::Generate();
  TraceContext adopted = TraceContext::FromHeaderOrNew(remote.ToHeader());
  EXPECT_EQ(adopted.trace_id, remote.trace_id);
  EXPECT_NE(adopted.span_id, remote.span_id);

  TraceContext fresh = TraceContext::FromHeaderOrNew("garbage");
  EXPECT_TRUE(fresh.valid());
  EXPECT_NE(fresh.trace_id, remote.trace_id);
}

TEST(TraceTest, ScopeStampsLogRecordsAndRestores) {
  CaptureLogSink capture;
  CHRONOS_LOG(kInfo, "test") << "before";
  TraceContext trace = TraceContext::Generate();
  {
    TraceScope scope(trace);
    EXPECT_EQ(CurrentTrace().trace_id, trace.trace_id);
    CHRONOS_LOG(kInfo, "test") << "inside";
    {
      TraceScope nested(trace.Child());
      EXPECT_EQ(CurrentTrace().trace_id, trace.trace_id);
      EXPECT_NE(CurrentTrace().span_id, trace.span_id);
    }
    // Inner scope restored the outer span.
    EXPECT_EQ(CurrentTrace().span_id, trace.span_id);
  }
  EXPECT_FALSE(CurrentTrace().valid());
  CHRONOS_LOG(kInfo, "test") << "after";

  std::vector<LogRecord> records = capture.Drain();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_TRUE(records[0].trace_id.empty());
  EXPECT_EQ(records[1].trace_id, trace.trace_id);
  EXPECT_EQ(records[1].span_id, trace.span_id);
  EXPECT_TRUE(records[2].trace_id.empty());
  // The formatted line carries the ids for grep-ability.
  EXPECT_NE(records[1].Format().find("trace=" + trace.trace_id),
            std::string::npos);
}

TEST(TraceTest, ScopeIsPerThread) {
  TraceContext trace = TraceContext::Generate();
  TraceScope scope(trace);
  std::string other_thread_trace = "unset";
  std::thread thread([&other_thread_trace] {
    other_thread_trace = CurrentTrace().trace_id;
  });
  thread.join();
  EXPECT_EQ(other_thread_trace, "");
  EXPECT_EQ(CurrentTrace().trace_id, trace.trace_id);
}

TEST(TraceTest, MalformedHeadersAreRejectedAndCounted) {
  Counter* malformed = MetricsRegistry::Get()->GetCounter(
      "chronos_trace_header_malformed_total",
      "X-Chronos-Trace headers discarded as unparseable");
  // Fixed ids so case-damage below is guaranteed to touch a hex letter.
  const std::string valid =
      "0123456789abcdef0123456789abcdef-0123456789abcdef";
  ASSERT_TRUE(TraceContext::Parse(valid).ok());

  // Absent and valid headers never count as malformed.
  uint64_t before = malformed->value();
  EXPECT_FALSE(TraceContext::FromHeader("").has_value());
  auto remote = TraceContext::FromHeader(valid);
  ASSERT_TRUE(remote.has_value());
  // FromHeader returns the remote context VERBATIM (exact parenting at
  // ingress); Child() is the caller's choice.
  EXPECT_EQ(remote->ToHeader(), valid);
  EXPECT_EQ(malformed->value(), before);

  // Property sweep: truncations at various lengths, uppercase hex, alphabet
  // damage, separator damage, overlong input. Every one must be rejected,
  // counted exactly once, and degrade FromHeaderOrNew to a fresh trace.
  std::vector<std::string> garbage;
  for (size_t len = 1; len < valid.size(); len += 7) {
    garbage.push_back(valid.substr(0, len));
  }
  std::string upper = valid;
  for (char& c : upper) c = static_cast<char>(toupper(c));
  garbage.push_back(upper);
  garbage.push_back(valid + "00");
  std::string bad_separator = valid;
  bad_separator[TraceContext::kTraceIdLength] = '_';
  garbage.push_back(bad_separator);
  std::string bad_alphabet = valid;
  bad_alphabet[3] = 'g';
  garbage.push_back(bad_alphabet);
  garbage.push_back("-");
  garbage.push_back(std::string(valid.size(), 'z'));
  for (const std::string& header : garbage) {
    uint64_t count = malformed->value();
    EXPECT_FALSE(TraceContext::FromHeader(header).has_value())
        << "accepted garbage: " << header;
    EXPECT_EQ(malformed->value(), count + 1) << "not counted: " << header;
    EXPECT_TRUE(TraceContext::FromHeaderOrNew(header).valid());
  }
}

// --- Span / SpanCollector ---

TEST(SpanTest, NestedSpansParentAndRestoreScope) {
  SpanCollector collector(/*capacity=*/64, /*shards=*/4);
  std::string trace_id;
  std::string outer_span_id;
  {
    Span outer("outer", &collector);
    ASSERT_TRUE(outer.context().valid());
    trace_id = outer.context().trace_id;
    outer_span_id = outer.context().span_id;
    EXPECT_EQ(CurrentTrace().trace_id, trace_id);
    {
      Span inner("inner", &collector);
      EXPECT_EQ(inner.context().trace_id, trace_id);
      EXPECT_NE(inner.context().span_id, outer_span_id);
      EXPECT_EQ(CurrentTrace().span_id, inner.context().span_id);
    }
    // Inner End() restored the outer context.
    EXPECT_EQ(CurrentTrace().span_id, outer_span_id);
  }
  EXPECT_FALSE(CurrentTrace().valid());

  std::vector<SpanRecord> spans = collector.ForTrace(trace_id);
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& outer = spans[0].name == "outer" ? spans[0] : spans[1];
  const SpanRecord& inner = spans[0].name == "inner" ? spans[0] : spans[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.name, "inner");
  EXPECT_TRUE(outer.parent_span_id.empty());
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  for (const SpanRecord& span : spans) {
    EXPECT_GE(span.end_nanos, span.start_nanos);
  }
  EXPECT_EQ(collector.recorded(), 2u);
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST(SpanTest, DisabledCollectorIsInert) {
  SpanCollector collector(/*capacity=*/64, /*shards=*/4);
  collector.set_enabled(false);
  {
    Span span("noop", &collector);
    EXPECT_FALSE(span.context().valid());
    // No scope installed either: log correlation falls back to the caller.
    EXPECT_FALSE(CurrentTrace().valid());
    span.SetAttribute("k", "v");  // Must be a no-op, not a crash.
  }
  EXPECT_EQ(collector.recorded(), 0u);
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(SpanTest, StatusAndAttributesLandInTheRecord) {
  SpanCollector collector(/*capacity=*/64, /*shards=*/4);
  std::string trace_id;
  {
    Span span("op", &collector);
    trace_id = span.context().trace_id;
    span.SetAttribute("job_id", "j1");
    span.SetStatus(Status::Ok());  // Ok must not overwrite anything.
    span.SetError("boom");
  }
  std::vector<SpanRecord> spans = collector.ForTrace(trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].status, "boom");
  ASSERT_EQ(spans[0].attributes.size(), 1u);
  EXPECT_EQ(spans[0].attributes[0].first, "job_id");
  EXPECT_EQ(spans[0].attributes[0].second, "j1");
}

TEST(SpanCollectorTest, EvictsOldestFirstAndCountsDrops) {
  SpanCollector collector(/*capacity=*/4, /*shards=*/1);
  for (int i = 0; i < 6; ++i) {
    SpanRecord record;
    record.trace_id = "feed";
    record.span_id = "span" + std::to_string(i);
    record.name = "op" + std::to_string(i);
    record.start_nanos = static_cast<uint64_t>(i);
    record.end_nanos = static_cast<uint64_t>(i) + 1;
    collector.Record(std::move(record));
  }
  EXPECT_EQ(collector.recorded(), 6u);
  EXPECT_EQ(collector.dropped(), 2u);
  std::vector<SpanRecord> spans = collector.ForTrace("feed");
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().name, "op2");  // The two oldest were evicted.
  EXPECT_EQ(spans.back().name, "op5");
  EXPECT_FALSE(collector.Contains("feed", "span0"));
  EXPECT_TRUE(collector.Contains("feed", "span5"));
  EXPECT_EQ(collector.active_traces(), 1u);
}

TEST(SpanCollectorTest, SnapshotSinceIsAShippingCursor) {
  SpanCollector collector(/*capacity=*/64, /*shards=*/4);
  auto make = [](const std::string& trace, const std::string& span) {
    SpanRecord record;
    record.trace_id = trace;
    record.span_id = span;
    record.name = span;
    return record;
  };
  uint64_t first = collector.Record(make("aaaa", "s1"));
  uint64_t second = collector.Record(make("bbbb", "s2"));
  EXPECT_LT(first, second);
  std::vector<SpanRecord> tail = collector.SnapshotSince(first);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].span_id, "s2");
  EXPECT_EQ(collector.Snapshot().size(), 2u);
  EXPECT_EQ(collector.active_traces(), 2u);
  EXPECT_GE(collector.last_seq(), second);
  collector.Clear();
  EXPECT_TRUE(collector.Snapshot().empty());
  EXPECT_EQ(collector.active_traces(), 0u);
  EXPECT_EQ(collector.recorded(), 2u);  // Lifetime counters survive Clear.
}

TEST(SpanTest, SlowSpansWarnWithAttributesAndCount) {
  SimulatedClock clock;
  SpanCollector collector(/*capacity=*/64, /*shards=*/4, &clock);
  collector.set_slow_span_threshold_ms(10);
  Counter* slow = MetricsRegistry::Get()->GetCounter(
      "chronos_slow_spans_total",
      "Spans exceeding the slow-span threshold, by span name",
      {{"span", "slow.op"}});
  uint64_t before = slow->value();
  CaptureLogSink capture;
  {
    Span fast("fast.op", &collector);
    clock.AdvanceMs(5);  // Under threshold: no WARN, no count.
  }
  {
    Span span("slow.op", &collector);
    span.SetAttribute("job_id", "j1");
    clock.AdvanceMs(50);
  }
  EXPECT_EQ(slow->value(), before + 1);
  bool warned = false;
  for (const LogRecord& record : capture.Drain()) {
    if (record.level != LogLevel::kWarning) continue;
    if (record.message.find("slow span slow.op") == std::string::npos) {
      continue;
    }
    warned = true;
    EXPECT_NE(record.message.find("job_id=j1"), std::string::npos);
    EXPECT_NE(record.message.find("threshold 10ms"), std::string::npos);
    EXPECT_EQ(record.message.find("fast.op"), std::string::npos);
  }
  EXPECT_TRUE(warned);
}

TEST(SpanCollectorTest, ConcurrentRecordAndSnapshotAreSafe) {
  SpanCollector collector(/*capacity=*/512, /*shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::atomic<bool> stop{false};
  std::thread reader([&collector, &stop] {
    while (!stop.load()) {
      collector.Snapshot();
      collector.ForTrace("absent");
      collector.active_traces();
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&collector] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("stress.op", &collector);
        span.SetAttribute("i", std::to_string(i));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  reader.join();
  // Exactly one record per span; everything not retained was counted as
  // dropped — no double counting, no losses.
  EXPECT_EQ(collector.recorded(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(collector.recorded(),
            collector.dropped() + collector.Snapshot().size());
}

TEST(ThreadPoolTraceTest, SubmitPropagatesSubmittersContext) {
  ThreadPool pool(2);
  TraceContext trace = TraceContext::Generate();
  TraceIds observed;
  CountDownLatch ran(1);
  {
    TraceScope scope(trace);
    ASSERT_TRUE(pool.Submit([&observed, &ran] {
      observed = CurrentTraceIds();
      ran.CountDown();
    }));
  }
  ran.Wait();
  EXPECT_EQ(observed.trace_id, trace.trace_id);
  EXPECT_EQ(observed.span_id, trace.span_id);
  // A submission without an active scope runs traceless — the worker's
  // context is restored between tasks, not leaked.
  TraceIds later;
  CountDownLatch ran_later(1);
  ASSERT_TRUE(pool.Submit([&later, &ran_later] {
    later = CurrentTraceIds();
    ran_later.CountDown();
  }));
  ran_later.Wait();
  EXPECT_TRUE(later.trace_id.empty());
  pool.Shutdown();
}

// --- Serialization & rendering ---

TEST(SpanSerializationTest, JsonRoundTripPreservesEverything) {
  SpanRecord record;
  record.trace_id = "0123456789abcdef0123456789abcdef";
  record.span_id = "0123456789abcdef";
  record.parent_span_id = "fedcba9876543210";
  record.name = "control.claim";
  record.start_nanos = 1000;
  record.end_nanos = 4500;
  record.status = "deadline exceeded";
  record.attributes = {{"job_id", "j1"}, {"deployment_id", "d1"}};
  auto round = SpanFromJson(SpanToJson(record));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->trace_id, record.trace_id);
  EXPECT_EQ(round->span_id, record.span_id);
  EXPECT_EQ(round->parent_span_id, record.parent_span_id);
  EXPECT_EQ(round->name, record.name);
  EXPECT_EQ(round->start_nanos, record.start_nanos);
  EXPECT_EQ(round->end_nanos, record.end_nanos);
  EXPECT_EQ(round->status, record.status);
  EXPECT_EQ(round->attributes.size(), record.attributes.size());

  // Malformed inputs fail closed rather than fabricating spans.
  EXPECT_FALSE(SpanFromJson(json::Json::MakeArray()).ok());
  EXPECT_FALSE(SpanFromJson(json::Json::MakeObject()).ok());
}

TEST(SpanRenderTest, ChromeTraceHasLanesAndCompleteEvents) {
  SpanCollector collector(/*capacity=*/64, /*shards=*/4);
  std::string trace_id;
  {
    Span control("control.claim", &collector);
    trace_id = control.context().trace_id;
    Span agent("agent.execute", &collector);
    agent.End();
  }
  std::vector<SpanRecord> spans = collector.ForTrace(trace_id);
  ASSERT_EQ(spans.size(), 2u);
  auto parsed = json::Parse(RenderChromeTrace(spans));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetStringOr("displayTimeUnit", ""), "ms");
  const json::Json& events = parsed->at("traceEvents");
  ASSERT_TRUE(events.is_array());
  size_t complete_events = 0;
  for (const json::Json& event : events.as_array()) {
    if (event.GetStringOr("ph", "") == "M") continue;  // Lane metadata.
    ++complete_events;
    EXPECT_EQ(event.GetStringOr("ph", ""), "X");
    EXPECT_EQ(event.GetStringOr("cat", ""), "chronos");
    for (const char* key : {"name", "ts", "dur", "pid", "tid", "args"}) {
      EXPECT_TRUE(event.Has(key)) << "missing key " << key;
    }
    EXPECT_EQ(event.GetIntOr("tid", 0),
              event.GetStringOr("name", "") == "agent.execute" ? 2 : 1);
    EXPECT_EQ(event.at("args").GetStringOr("trace_id", ""), trace_id);
  }
  EXPECT_EQ(complete_events, 2u);
}

TEST(SpanRenderTest, TreeIndentsChildrenAndKeepsOrphans) {
  SpanRecord root;
  root.trace_id = "t";
  root.span_id = "aaaa";
  root.name = "agent.poll";
  root.start_nanos = 0;
  root.end_nanos = 5000000;
  SpanRecord child;
  child.trace_id = "t";
  child.span_id = "bbbb";
  child.parent_span_id = "aaaa";
  child.name = "control.claim";
  child.start_nanos = 1000;
  child.end_nanos = 2000000;
  child.status = "boom";
  SpanRecord orphan;
  orphan.trace_id = "t";
  orphan.span_id = "cccc";
  orphan.parent_span_id = "gone";  // Parent not shipped (yet).
  orphan.name = "wal.append";
  orphan.start_nanos = 500;
  orphan.end_nanos = 600;

  std::string tree = RenderSpanTree({root, child, orphan});
  EXPECT_NE(tree.find("agent.poll  5.000ms"), std::string::npos);
  EXPECT_NE(tree.find("\n  control.claim"), std::string::npos);  // Indented.
  EXPECT_NE(tree.find("status=boom"), std::string::npos);
  // The orphan renders at root level instead of disappearing.
  EXPECT_NE(tree.find("\nwal.append"), std::string::npos);
}

}  // namespace
}  // namespace chronos::obs
