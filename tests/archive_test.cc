#include <gtest/gtest.h>

#include "archive/compress.h"
#include "archive/crc32.h"
#include "archive/zip.h"
#include "common/random.h"

namespace chronos::archive {
namespace {

// --- CRC32 ---

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);  // The classic check value.
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string data = "hello world, this is a longer buffer";
  uint32_t one_shot = Crc32(data);
  uint32_t incremental = Crc32(data.substr(0, 10));
  incremental = Crc32(data.substr(10), incremental);
  EXPECT_EQ(one_shot, incremental);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "payload";
  uint32_t original = Crc32(data);
  data[3] ^= 1;
  EXPECT_NE(Crc32(data), original);
}

// --- ZIP ---

TEST(ZipTest, RoundTripSingleEntry) {
  ZipWriter writer;
  ASSERT_TRUE(writer.Add("result.json", "{\"ok\":true}").ok());
  std::string blob = writer.Finish();

  auto reader = ZipReader::Open(blob);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->entry_count(), 1u);
  EXPECT_TRUE(reader->Has("result.json"));
  EXPECT_EQ(*reader->Read("result.json"), "{\"ok\":true}");
}

TEST(ZipTest, RoundTripManyEntries) {
  ZipWriter writer;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer
                    .Add("dir/file" + std::to_string(i) + ".txt",
                         std::string(i * 13, 'x') + std::to_string(i))
                    .ok());
  }
  auto reader = ZipReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->entry_count(), 50u);
  EXPECT_EQ(*reader->Read("dir/file7.txt"), std::string(91, 'x') + "7");
}

TEST(ZipTest, EmptyArchive) {
  ZipWriter writer;
  auto reader = ZipReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->entry_count(), 0u);
}

TEST(ZipTest, BinaryContentsSurvive) {
  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  ZipWriter writer;
  ASSERT_TRUE(writer.Add("bin", binary).ok());
  auto reader = ZipReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(*reader->Read("bin"), binary);
}

TEST(ZipTest, RejectsDuplicateNames) {
  ZipWriter writer;
  ASSERT_TRUE(writer.Add("a", "1").ok());
  EXPECT_TRUE(writer.Add("a", "2").IsAlreadyExists());
}

TEST(ZipTest, RejectsEmptyName) {
  ZipWriter writer;
  EXPECT_FALSE(writer.Add("", "x").ok());
}

TEST(ZipTest, MissingEntryIsNotFound) {
  ZipWriter writer;
  writer.Add("a", "1").IgnoreError();
  auto reader = ZipReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->Read("zzz").status().IsNotFound());
}

TEST(ZipTest, DetectsCorruptPayload) {
  ZipWriter writer;
  writer.Add("a", "payload-bytes-here").IgnoreError();
  std::string blob = writer.Finish();
  // Flip a payload byte (after the 30-byte local header + 1-byte name).
  blob[31 + 3] ^= 0xFF;
  EXPECT_FALSE(ZipReader::Open(blob).ok());
}

TEST(ZipTest, RejectsGarbage) {
  EXPECT_FALSE(ZipReader::Open("not a zip file at all").ok());
  EXPECT_FALSE(ZipReader::Open("").ok());
}

TEST(ZipTest, ConvenienceHelpers) {
  std::map<std::string, std::string> files = {{"x/1", "one"}, {"y", "two"}};
  auto unpacked = UnzipFiles(ZipFiles(files));
  ASSERT_TRUE(unpacked.ok());
  EXPECT_EQ(*unpacked, files);
}

// --- LZ compression ---

TEST(CompressTest, EmptyInput) {
  auto out = LzDecompress(LzCompress(""));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, "");
}

TEST(CompressTest, ShortLiteralOnly) {
  std::string input = "abc";
  auto out = LzDecompress(LzCompress(input));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(CompressTest, RepetitiveInputShrinks) {
  std::string input;
  for (int i = 0; i < 200; ++i) input += "the same phrase again and again. ";
  std::string compressed = LzCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 4);
  auto out = LzDecompress(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(CompressTest, RunLengthOverlappingMatch) {
  std::string input(10000, 'z');
  std::string compressed = LzCompress(input);
  EXPECT_LT(compressed.size(), 100u);
  auto out = LzDecompress(compressed);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(CompressTest, JsonDocumentRoundTrip) {
  std::string input =
      R"({"name":"doc-1","value":42,"tags":["a","b","c"],"nested":)"
      R"({"name":"doc-2","value":43,"tags":["a","b","c"]}})";
  auto out = LzDecompress(LzCompress(input));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(CompressTest, RejectsTruncated) {
  // Trailing unique literals guarantee the final token carries payload, so
  // any truncation leaves the stream short of the declared size.
  std::string compressed = LzCompress(std::string(500, 'q') + "UNIQUE-TAIL");
  for (size_t cut : {size_t(0), compressed.size() / 2, compressed.size() - 1}) {
    EXPECT_FALSE(LzDecompress(compressed.substr(0, cut)).ok())
        << "cut=" << cut;
  }
}

TEST(CompressTest, RejectsBadOffset) {
  // Valid header (size=100) followed by a token referencing offset 0.
  std::string bogus;
  bogus.push_back(100);          // varint original size
  bogus.push_back(0x01);         // 0 literals, match nibble 1 (len 4)
  bogus.push_back(0);            // offset lo = 0 (invalid)
  bogus.push_back(0);            // offset hi
  EXPECT_FALSE(LzDecompress(bogus).ok());
}

class CompressPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CompressPropertyTest, RandomRoundTrip) {
  Rng rng(GetParam() * 977);
  for (int trial = 0; trial < 20; ++trial) {
    std::string input;
    size_t len = rng.NextUint64(5000);
    int alphabet = 1 + static_cast<int>(rng.NextUint64(60));
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>('A' + rng.NextUint64(alphabet)));
    }
    auto out = LzDecompress(LzCompress(input));
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace chronos::archive
