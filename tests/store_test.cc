#include <gtest/gtest.h>

#include <thread>

#include "common/file_util.h"
#include "common/random.h"
#include "fault/failpoint.h"
#include "store/table_store.h"
#include "store/wal.h"

namespace chronos::store {
namespace {

using chronos::file::TempDir;

json::Json Row(const std::string& name, int64_t value = 0) {
  json::Json row = json::Json::MakeObject();
  row.Set("name", name);
  row.Set("value", value);
  return row;
}

// --- WAL ---

TEST(WalTest, AppendAndReplay) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append("first", true).ok());
    ASSERT_TRUE((*wal)->Append("second", true).ok());
    ASSERT_TRUE((*wal)->Append("", true).ok());  // Empty payloads are legal.
  }
  auto records = Wal::Replay(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0], "first");
  EXPECT_EQ((*records)[1], "second");
  EXPECT_EQ((*records)[2], "");
}

TEST(WalTest, ReplayMissingFileIsEmpty) {
  auto records = Wal::Replay("/nonexistent/wal.log");
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

TEST(WalTest, TornTailIsDropped) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("intact", true).ok());
    ASSERT_TRUE((*wal)->Append("will-be-torn", true).ok());
  }
  // Simulate a crash mid-write: chop the last 5 bytes.
  auto contents = file::ReadFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(
      file::WriteFile(path, contents->substr(0, contents->size() - 5)).ok());

  auto records = Wal::Replay(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], "intact");
}

TEST(WalTest, CorruptTailIsDropped) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("good", true).ok());
    ASSERT_TRUE((*wal)->Append("soon-bad", true).ok());
  }
  auto contents = file::ReadFile(path);
  std::string data = *contents;
  data[data.size() - 2] ^= 0xFF;  // Flip a byte in the last payload.
  ASSERT_TRUE(file::WriteFile(path, data).ok());

  auto records = Wal::Replay(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], "good");
}

TEST(WalTest, CorruptMidFileRecordEndsReplayAtCleanPrefix) {
  // A bad-CRC record in the MIDDLE of the log (bit rot, not a torn tail):
  // replay must stop there and return only the clean prefix — it must not
  // skip ahead and resurrect records whose predecessors are untrustworthy.
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("first", true).ok());
    ASSERT_TRUE((*wal)->Append("second", true).ok());
    ASSERT_TRUE((*wal)->Append("third", true).ok());
  }
  auto contents = file::ReadFile(path);
  ASSERT_TRUE(contents.ok());
  std::string data = *contents;
  // Frame layout: [16B header]["first"][16B header]["second"]... The first
  // byte of "second"'s payload sits at 16 + 5 + 16.
  size_t second_payload = 16 + 5 + 16;
  ASSERT_LT(second_payload, data.size());
  data[second_payload] ^= 0xFF;
  ASSERT_TRUE(file::WriteFile(path, data).ok());

  auto records = Wal::Replay(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], "first");
}

TEST(WalTest, PartialHeaderTailIsDropped) {
  // Crash after writing only part of a frame header: too short to even
  // decode a length. The tail is dropped; the prefix survives.
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("keep", true).ok());
  }
  auto contents = file::ReadFile(path);
  ASSERT_TRUE(contents.ok());
  ASSERT_TRUE(file::WriteFile(path, *contents + "\x03\x00\x00").ok());

  auto records = Wal::Replay(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], "keep");
}

TEST(WalTest, ZeroLengthTailHeaderIsDropped) {
  // A full header promising a payload that never made it to disk (declared
  // length > remaining bytes, here: 5 promised, 0 present).
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("keep", true).ok());
  }
  auto contents = file::ReadFile(path);
  ASSERT_TRUE(contents.ok());
  std::string header;
  header += '\x05';  // length = 5, little endian...
  header += std::string(3, '\0');
  header += std::string(4, '\xAB');   // ...a CRC of nothing real...
  header += std::string(8, '\x02');  // ...and some sequence number.
  ASSERT_TRUE(file::WriteFile(path, *contents + header).ok());

  auto records = Wal::Replay(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], "keep");
}

TEST(WalTest, TruncateResets) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  auto wal = Wal::Open(path);
  ASSERT_TRUE((*wal)->Append("x", true).ok());
  EXPECT_GT((*wal)->size_bytes(), 0u);
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_EQ((*wal)->size_bytes(), 0u);
  auto records = Wal::Replay(path);
  EXPECT_TRUE(records->empty());
}

TEST(WalTest, ReopenAppends) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("a", true).ok());
  }
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("b", true).ok());
  }
  auto records = Wal::Replay(path);
  ASSERT_EQ(records->size(), 2u);
}

TEST(WalTest, SequenceNumbersStartAtOneAndIncrement) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ((*wal)->last_seq(), 0u);
    ASSERT_TRUE((*wal)->Append("a", true).ok());
    ASSERT_TRUE((*wal)->Append("b", true).ok());
    EXPECT_EQ((*wal)->last_seq(), 2u);
  }
  auto records = Wal::ReplayRecords(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].seq, 1u);
  EXPECT_EQ((*records)[0].payload, "a");
  EXPECT_EQ((*records)[1].seq, 2u);
  EXPECT_EQ((*records)[1].payload, "b");
}

TEST(WalTest, SequenceNumbersSurviveTruncateAndReopen) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE((*wal)->Append("a", true).ok());
    ASSERT_TRUE((*wal)->Append("b", true).ok());
    ASSERT_TRUE((*wal)->Truncate().ok());
    // The counter must not restart: a snapshot covering seq <= 2 would
    // otherwise mask this record on replay.
    ASSERT_TRUE((*wal)->Append("c", true).ok());
    EXPECT_EQ((*wal)->last_seq(), 3u);
  }
  {
    // Reopen recovers the counter from the surviving records.
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ((*wal)->last_seq(), 3u);
    ASSERT_TRUE((*wal)->Append("d", true).ok());
  }
  auto records = Wal::ReplayRecords(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].seq, 3u);
  EXPECT_EQ((*records)[1].seq, 4u);
}

TEST(WalTest, NonMonotonicSequenceEndsReplay) {
  // Two logs spliced together (or any corruption that rewinds the sequence)
  // must not replay past the rewind point.
  TempDir dir;
  std::string path_a = dir.path() + "/a.log";
  std::string path_b = dir.path() + "/b.log";
  {
    auto wal = Wal::Open(path_a);
    ASSERT_TRUE((*wal)->Append("a1", true).ok());
    ASSERT_TRUE((*wal)->Append("a2", true).ok());
  }
  {
    auto wal = Wal::Open(path_b);
    ASSERT_TRUE((*wal)->Append("b1", true).ok());
  }
  auto a = file::ReadFile(path_a);
  auto b = file::ReadFile(path_b);
  std::string spliced = dir.path() + "/spliced.log";
  ASSERT_TRUE(file::WriteFile(spliced, *a + *b).ok());

  auto records = Wal::Replay(spliced);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);  // b1 (seq 1 again) must not replay.
  EXPECT_EQ((*records)[1], "a2");
}

TEST(WalTest, TruncateKeepsFileAppendable) {
  TempDir dir;
  std::string path = dir.path() + "/wal.log";
  auto wal = Wal::Open(path);
  ASSERT_TRUE((*wal)->Append("before", true).ok());
  ASSERT_TRUE((*wal)->Truncate().ok());
  ASSERT_TRUE((*wal)->Append("after", true).ok());
  auto records = Wal::Replay(path);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0], "after");
}

// --- TableStore CRUD ---

class TableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto opened = TableStore::Open(dir_.path(), options_);
    ASSERT_TRUE(opened.ok()) << opened.status();
    ts_ = std::move(opened).value();
  }

  void Reopen() {
    ts_.reset();
    auto opened = TableStore::Open(dir_.path(), options_);
    ASSERT_TRUE(opened.ok()) << opened.status();
    ts_ = std::move(opened).value();
  }

  TempDir dir_;
  TableStoreOptions options_;
  std::unique_ptr<TableStore> ts_;
};

TEST_F(TableStoreTest, InsertGet) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("alpha", 10)).ok());
  auto row = ts_->Get("t", "1");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->at("name").as_string(), "alpha");
  EXPECT_EQ(row->at("id").as_string(), "1");
  EXPECT_EQ(row->at("_version").as_int(), 1);
}

TEST_F(TableStoreTest, InsertDuplicateFails) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("a")).ok());
  EXPECT_TRUE(ts_->Insert("t", "1", Row("b")).IsAlreadyExists());
}

TEST_F(TableStoreTest, InsertRejectsNonObject) {
  EXPECT_TRUE(ts_->Insert("t", "1", json::Json(5)).IsInvalidArgument());
}

TEST_F(TableStoreTest, UpdateBumpsVersion) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("a")).ok());
  ASSERT_TRUE(ts_->Update("t", "1", Row("b")).ok());
  auto row = ts_->Get("t", "1");
  EXPECT_EQ(row->at("name").as_string(), "b");
  EXPECT_EQ(row->at("_version").as_int(), 2);
}

TEST_F(TableStoreTest, UpdateMissingFails) {
  EXPECT_TRUE(ts_->Update("t", "zzz", Row("x")).IsNotFound());
}

TEST_F(TableStoreTest, OptimisticVersionCheck) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("a")).ok());
  EXPECT_TRUE(ts_->Update("t", "1", Row("b"), /*expected_version=*/99)
                  .IsFailedPrecondition());
  EXPECT_TRUE(ts_->Update("t", "1", Row("b"), /*expected_version=*/1).ok());
  // Version moved to 2; a stale retry with 1 must fail now.
  EXPECT_TRUE(ts_->Update("t", "1", Row("c"), /*expected_version=*/1)
                  .IsFailedPrecondition());
}

TEST_F(TableStoreTest, UpsertInsertsThenUpdates) {
  ASSERT_TRUE(ts_->Upsert("t", "k", Row("first")).ok());
  EXPECT_EQ(ts_->Get("t", "k")->at("_version").as_int(), 1);
  ASSERT_TRUE(ts_->Upsert("t", "k", Row("second")).ok());
  EXPECT_EQ(ts_->Get("t", "k")->at("_version").as_int(), 2);
  EXPECT_EQ(ts_->Get("t", "k")->at("name").as_string(), "second");
}

TEST_F(TableStoreTest, DeleteRemoves) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("a")).ok());
  ASSERT_TRUE(ts_->Delete("t", "1").ok());
  EXPECT_TRUE(ts_->Get("t", "1").status().IsNotFound());
  EXPECT_TRUE(ts_->Delete("t", "1").IsNotFound());
}

TEST_F(TableStoreTest, ScanSortedById) {
  ASSERT_TRUE(ts_->Insert("t", "b", Row("2")).ok());
  ASSERT_TRUE(ts_->Insert("t", "a", Row("1")).ok());
  ASSERT_TRUE(ts_->Insert("t", "c", Row("3")).ok());
  auto rows = ts_->Scan("t");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].at("id").as_string(), "a");
  EXPECT_EQ(rows[2].at("id").as_string(), "c");
  EXPECT_TRUE(ts_->Scan("empty").empty());
}

TEST_F(TableStoreTest, FindByField) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("x", 5)).ok());
  ASSERT_TRUE(ts_->Insert("t", "2", Row("y", 5)).ok());
  ASSERT_TRUE(ts_->Insert("t", "3", Row("z", 7)).ok());
  auto rows = ts_->FindBy("t", "value", json::Json(5));
  EXPECT_EQ(rows.size(), 2u);
  auto none = ts_->FindBy("t", "value", json::Json(99));
  EXPECT_TRUE(none.empty());
}

TEST_F(TableStoreTest, CountAndTableNames) {
  ASSERT_TRUE(ts_->Insert("jobs", "1", Row("a")).ok());
  ASSERT_TRUE(ts_->Insert("projects", "1", Row("b")).ok());
  ASSERT_TRUE(ts_->Insert("projects", "2", Row("c")).ok());
  EXPECT_EQ(ts_->Count("projects"), 2u);
  EXPECT_EQ(ts_->Count("missing"), 0u);
  auto names = ts_->TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "jobs");
  EXPECT_EQ(names[1], "projects");
}

// --- Durability / recovery ---

TEST_F(TableStoreTest, SurvivesReopen) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("keep", 11)).ok());
  ASSERT_TRUE(ts_->Insert("t", "2", Row("gone")).ok());
  ASSERT_TRUE(ts_->Delete("t", "2").ok());
  ASSERT_TRUE(ts_->Update("t", "1", Row("kept", 12)).ok());
  Reopen();
  auto row = ts_->Get("t", "1");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->at("name").as_string(), "kept");
  EXPECT_EQ(row->at("_version").as_int(), 2);
  EXPECT_TRUE(ts_->Get("t", "2").status().IsNotFound());
}

TEST_F(TableStoreTest, SurvivesCheckpointPlusWal) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("snap")).ok());
  ASSERT_TRUE(ts_->Checkpoint().ok());
  EXPECT_EQ(ts_->wal_bytes(), 0u);
  ASSERT_TRUE(ts_->Insert("t", "2", Row("walonly")).ok());
  Reopen();
  EXPECT_TRUE(ts_->Get("t", "1").ok());
  EXPECT_TRUE(ts_->Get("t", "2").ok());
  EXPECT_EQ(ts_->Count("t"), 2u);
}

TEST_F(TableStoreTest, WritesAfterCheckpointedReopenSurviveCrashyReopen) {
  // Incarnation 1: checkpoint empties the WAL and stamps covered_seq in the
  // snapshot. Incarnation 2 opens an empty WAL — its sequence counter must
  // resume above the stamp, or everything it writes is masked on replay.
  ASSERT_TRUE(ts_->Insert("t", "1", Row("snapped")).ok());
  ASSERT_TRUE(ts_->Checkpoint().ok());
  Reopen();
  ASSERT_TRUE(ts_->Insert("t", "2", Row("post-restart")).ok());
  ASSERT_TRUE(ts_->Delete("t", "1").ok());
  // Incarnation 3 reopens without a checkpoint in between (a crash): the
  // WAL-only writes must replay, not be skipped as snapshot-covered.
  Reopen();
  EXPECT_TRUE(ts_->Get("t", "2").ok());
  EXPECT_TRUE(ts_->Get("t", "1").status().IsNotFound());
  EXPECT_EQ(ts_->Count("t"), 1u);
}

TEST_F(TableStoreTest, TornWalTailRecoversPrefix) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("committed")).ok());
  ASSERT_TRUE(ts_->Insert("t", "2", Row("torn")).ok());
  ts_.reset();
  // Tear the last WAL record.
  std::string wal_path = dir_.path() + "/wal.log";
  auto contents = file::ReadFile(wal_path);
  ASSERT_TRUE(
      file::WriteFile(wal_path, contents->substr(0, contents->size() - 3))
          .ok());
  Reopen();
  EXPECT_TRUE(ts_->Get("t", "1").ok());
  EXPECT_TRUE(ts_->Get("t", "2").status().IsNotFound());
}

TEST_F(TableStoreTest, AutoCheckpointTriggers) {
  ts_.reset();
  options_.checkpoint_wal_bytes = 512;
  Reopen();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        ts_->Insert("t", std::to_string(i), Row(std::string(64, 'p'))).ok());
  }
  // The WAL must have been truncated at least once.
  EXPECT_LT(ts_->wal_bytes(), 50u * 64u);
  EXPECT_TRUE(file::Exists(dir_.path() + "/snapshot.json"));
  Reopen();
  EXPECT_EQ(ts_->Count("t"), 50u);
}

TEST_F(TableStoreTest, CorruptSnapshotIsRejectedNotMisread) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("a")).ok());
  ASSERT_TRUE(ts_->Checkpoint().ok());
  ts_.reset();
  ASSERT_TRUE(
      file::WriteFile(dir_.path() + "/snapshot.json", "{not json").ok());
  auto reopened = store::TableStore::Open(dir_.path());
  EXPECT_FALSE(reopened.ok());  // Refuse to open on corrupt snapshot.
}

TEST_F(TableStoreTest, NonObjectSnapshotIsCorruption) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("a")).ok());
  ASSERT_TRUE(ts_->Checkpoint().ok());
  ts_.reset();
  ASSERT_TRUE(file::WriteFile(dir_.path() + "/snapshot.json", "[1,2]").ok());
  auto reopened = store::TableStore::Open(dir_.path());
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(TableStoreTest, AppliedMutationsCounterAdvances) {
  uint64_t before = ts_->applied_mutations();
  ASSERT_TRUE(ts_->Insert("t", "1", Row("a")).ok());
  ASSERT_TRUE(ts_->Update("t", "1", Row("b")).ok());
  ASSERT_TRUE(ts_->Delete("t", "1").ok());
  EXPECT_EQ(ts_->applied_mutations(), before + 3);
}

TEST_F(TableStoreTest, CrashBetweenSnapshotRenameAndWalTruncateIsLossless) {
  // The checkpoint crash window: the new snapshot has been renamed into
  // place but the WAL has not been truncated yet. Every WAL record is
  // already folded into the snapshot; replaying them over it used to
  // resurrect deleted rows and roll back version counters. The snapshot's
  // covered-sequence stamp must make recovery skip them.
  ASSERT_TRUE(ts_->Insert("t", "keep", Row("a", 1)).ok());
  ASSERT_TRUE(ts_->Insert("t", "gone", Row("b", 2)).ok());
  ASSERT_TRUE(ts_->Update("t", "keep", Row("a2", 3)).ok());  // _version 2.
  ASSERT_TRUE(ts_->Delete("t", "gone").ok());

  // Arm the seam between rename and truncate: Checkpoint errors out with the
  // snapshot durable and the stale WAL still on disk — byte-for-byte the
  // state a crash at that instant leaves behind.
  ASSERT_TRUE(fault::FailPointRegistry::Get()
                  ->SetFromString("store.checkpoint.after_rename", "error")
                  .ok());
  EXPECT_FALSE(ts_->Checkpoint().ok());
  fault::FailPointRegistry::Get()->ClearAll();
  EXPECT_GT(ts_->wal_bytes(), 0u);  // The stale WAL really is still there.

  Reopen();
  EXPECT_TRUE(ts_->Get("t", "gone").status().IsNotFound());
  auto row = ts_->Get("t", "keep");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->at("name").as_string(), "a2");
  EXPECT_EQ(row->at("_version").as_int(), 2);

  // New mutations after the interrupted checkpoint replay fine too.
  ASSERT_TRUE(ts_->Update("t", "keep", Row("a3", 4)).ok());
  Reopen();
  row = ts_->Get("t", "keep");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->at("name").as_string(), "a3");
  EXPECT_EQ(row->at("_version").as_int(), 3);
}

TEST_F(TableStoreTest, SnapshotMetaKeyIsNotATable) {
  ASSERT_TRUE(ts_->Insert("t", "1", Row("a")).ok());
  ASSERT_TRUE(ts_->Checkpoint().ok());
  Reopen();
  for (const std::string& name : ts_->TableNames()) {
    EXPECT_NE(name, "_meta");
  }
  EXPECT_EQ(ts_->Count("_meta"), 0u);
}

// Property: state after crash+recover equals state before crash, for a
// randomized mutation stream with interleaved checkpoints.
class StoreRecoveryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StoreRecoveryPropertyTest, RecoveryIsLossless) {
  TempDir dir;
  Rng rng(GetParam() * 31337);
  std::map<std::string, int64_t> expected;  // id -> value
  {
    auto ts = TableStore::Open(dir.path());
    ASSERT_TRUE(ts.ok());
    for (int op = 0; op < 300; ++op) {
      std::string id = std::to_string(rng.NextUint64(40));
      uint64_t action = rng.NextUint64(10);
      if (action < 5) {
        int64_t value = static_cast<int64_t>(rng.NextUint64(1000));
        ASSERT_TRUE((*ts)->Upsert("t", id, Row("r", value)).ok());
        expected[id] = value;
      } else if (action < 8) {
        Status st = (*ts)->Delete("t", id);
        if (expected.count(id) > 0) {
          ASSERT_TRUE(st.ok());
          expected.erase(id);
        } else {
          ASSERT_TRUE(st.IsNotFound());
        }
      } else if (action == 8) {
        ASSERT_TRUE((*ts)->Checkpoint().ok());
      }
    }
  }
  auto ts = TableStore::Open(dir.path());
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ((*ts)->Count("t"), expected.size());
  for (const auto& [id, value] : expected) {
    auto row = (*ts)->Get("t", id);
    ASSERT_TRUE(row.ok()) << id;
    EXPECT_EQ(row->at("value").as_int(), value) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreRecoveryPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Concurrency ---

TEST_F(TableStoreTest, ConcurrentInsertsAllLand) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string id = std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(ts_->Insert("t", id, Row(id)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ts_->Count("t"), static_cast<size_t>(kThreads * kPerThread));
}

TEST_F(TableStoreTest, ConcurrentOptimisticUpdatesSerialize) {
  ASSERT_TRUE(ts_->Insert("t", "ctr", Row("counter", 0)).ok());
  constexpr int kThreads = 4;
  constexpr int kIncrements = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this] {
      for (int i = 0; i < kIncrements; ++i) {
        while (true) {  // Optimistic retry loop.
          auto row = ts_->Get("t", "ctr");
          ASSERT_TRUE(row.ok());
          int64_t version = row->at("_version").as_int();
          json::Json next = Row("counter", row->at("value").as_int() + 1);
          if (ts_->Update("t", "ctr", next, version).ok()) break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ts_->Get("t", "ctr")->at("value").as_int(),
            kThreads * kIncrements);
}

}  // namespace
}  // namespace chronos::store
