// Kill-9 crash-recovery harness: forks the real chronos_control_server
// binary, drives it with an in-process agent, _exit(137)s it at injected
// seams (store commit, post-claim, checkpoint rename), restarts it on the
// same data directory and asserts the crash-consistency invariants:
//
//   * no job is lost and none is duplicated,
//   * every job reaches a terminal state after recovery,
//   * each job's terminal transition is applied exactly once,
//   * a SIGTERM shutdown exits 0 and the next cold start reconciles nothing.
//
// The workload shape varies with CHRONOS_CRASH_SEED (scripts/check.sh
// --crash runs the suite over three fixed seeds) but each seed is fully
// deterministic: the agent is single-threaded (keepalives disabled) and the
// heartbeat monitor runs a seeded jitter schedule.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "agent/agent.h"
#include "common/file_util.h"
#include "common/logging.h"
#include "common/strings.h"
#include "json/json.h"
#include "model/repository.h"
#include "net/http.h"

namespace chronos {
namespace {

using chronos::file::TempDir;
using model::JobState;

uint64_t CrashSeed() {
  const char* env = std::getenv("CHRONOS_CRASH_SEED");
  uint64_t seed = 0;
  if (env != nullptr && strings::ParseUint64(env, &seed)) return seed;
  return 7;
}

// A forked chronos_control_server child on a fixed data directory. The
// bound (ephemeral) port is read back through --port-file.
class ServerProcess {
 public:
  ~ServerProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
  }

  // Starts the server and blocks until it is listening (or the child
  // died). `extra` is appended to the base flag set.
  void Start(const std::string& data_dir,
             const std::vector<std::string>& extra) {
    port_file_ = data_dir + "/port";
    ::unlink(port_file_.c_str());
    std::vector<std::string> args = {
        "chronos_control_server", "--data-dir", data_dir,
        "--port", "0", "--port-file", port_file_,
        "--bootstrap-admin", "admin:secret",
        "--monitor-interval-ms", "100",
        "--monitor-jitter", "0.2",
        "--monitor-seed", std::to_string(CrashSeed()),
        "--heartbeat-timeout-ms", "1000"};
    args.insert(args.end(), extra.begin(), extra.end());
    pid_ = ::fork();
    ASSERT_NE(pid_, -1);
    if (pid_ == 0) {
      std::vector<char*> argv;
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(CHRONOS_CONTROL_SERVER_BINARY, argv.data());
      ::_exit(127);  // exec failed. chronos-lint: allow
    }
    // Wait for the port file, watching for an early child death.
    for (int i = 0; i < 500; ++i) {
      auto contents = file::ReadFile(port_file_);
      if (contents.ok() && !contents->empty() &&
          contents->back() == '\n') {
        uint64_t port = 0;
        ASSERT_TRUE(strings::ParseUint64(
            strings::Trim(*contents), &port));
        port_ = static_cast<int>(port);
        return;
      }
      int status = 0;
      ASSERT_EQ(::waitpid(pid_, &status, WNOHANG), 0)
          << "server died during startup, status " << status;
      SystemClock::Get()->SleepMs(20);
    }
    FAIL() << "server never wrote its port file";
  }

  int port() const { return port_; }
  pid_t pid() const { return pid_; }

  void Signal(int signum) { ::kill(pid_, signum); }

  // Reaps the child within ~15s and returns its exit code (-1: timeout or
  // killed by signal).
  int WaitExit() {
    for (int i = 0; i < 750; ++i) {
      int status = 0;
      pid_t reaped = ::waitpid(pid_, &status, WNOHANG);
      if (reaped == pid_) {
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
      }
      SystemClock::Get()->SleepMs(20);
    }
    return -1;
  }

 private:
  pid_t pid_ = -1;
  int port_ = 0;
  std::string port_file_;
};

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::Get()->set_stderr_enabled(false);
    // Seed-varied workload: 2 swept modes x repetitions jobs.
    repetitions_ = 1 + static_cast<int>(CrashSeed() % 3);
    total_jobs_ = 2 * repetitions_;
  }

  // Logs in as the bootstrapped admin and returns a session-scoped client.
  std::unique_ptr<net::HttpClient> AdminClient(int port) {
    auto client = std::make_unique<net::HttpClient>("127.0.0.1", port);
    auto login = client->Post("/api/v1/auth/login",
                              R"({"username":"admin","password":"secret"})");
    EXPECT_TRUE(login.ok()) << login.status();
    EXPECT_EQ(login->status_code, 200) << login->body;
    client->SetDefaultHeader(
        "X-Session", json::Parse(login->body)->GetStringOr("token", ""));
    return client;
  }

  // Builds project -> system -> deployment -> experiment -> evaluation over
  // REST and remembers the ids the agent and assertions need.
  void SetUpEvaluation(net::HttpClient* client) {
    auto project = client->Post("/api/v1/projects", R"({"name":"crash"})");
    ASSERT_EQ(project->status_code, 201) << project->body;
    std::string project_id =
        json::Parse(project->body)->GetStringOr("id", "");

    json::Json system = json::Json::MakeObject();
    system.Set("name", "crashdb");
    json::Json mode = json::Json::MakeObject();
    mode.Set("name", "mode");
    mode.Set("type", "value");
    json::Json parameters = json::Json::MakeArray();
    parameters.Append(mode);
    system.Set("parameters", parameters);
    auto registered = client->Post("/api/v1/systems", system.Dump());
    ASSERT_EQ(registered->status_code, 201) << registered->body;
    std::string system_id =
        json::Parse(registered->body)->GetStringOr("id", "");

    json::Json deployment = json::Json::MakeObject();
    deployment.Set("system_id", system_id);
    deployment.Set("name", "crash-deploy");
    auto deployed = client->Post("/api/v1/deployments", deployment.Dump());
    ASSERT_EQ(deployed->status_code, 201) << deployed->body;
    deployment_id_ = json::Parse(deployed->body)->GetStringOr("id", "");

    json::Json setting = json::Json::MakeObject();
    setting.Set("name", "mode");
    json::Json sweep = json::Json::MakeArray();
    sweep.Append(json::Json("fast"));
    sweep.Append(json::Json("safe"));
    setting.Set("sweep", sweep);
    json::Json settings = json::Json::MakeArray();
    settings.Append(setting);
    json::Json experiment = json::Json::MakeObject();
    experiment.Set("project_id", project_id);
    experiment.Set("system_id", system_id);
    experiment.Set("name", "crash-exp");
    experiment.Set("settings", settings);
    auto created = client->Post("/api/v1/experiments", experiment.Dump());
    ASSERT_EQ(created->status_code, 201) << created->body;

    json::Json evaluation = json::Json::MakeObject();
    evaluation.Set("experiment_id",
                   json::Parse(created->body)->GetStringOr("id", ""));
    evaluation.Set("name", "crash-eval");
    evaluation.Set("repetitions", static_cast<int64_t>(repetitions_));
    auto made = client->Post("/api/v1/evaluations", evaluation.Dump());
    ASSERT_EQ(made->status_code, 201) << made->body;
    auto summary = json::Parse(made->body);
    evaluation_id_ = summary->at("evaluation").GetStringOr("id", "");
    ASSERT_EQ(summary->GetIntOr("total_jobs", 0), total_jobs_);
  }

  void ArmFailpoint(net::HttpClient* client, const std::string& point) {
    json::Json body = json::Json::MakeObject();
    body.Set("point", point);
    body.Set("spec", "crash");
    auto response = client->Post("/api/v1/admin/failpoints", body.Dump());
    ASSERT_EQ(response->status_code, 200) << response->body;
  }

  // A strictly single-threaded agent (keepalives disabled) with a trivial
  // handler; deterministic given the server's responses.
  std::unique_ptr<agent::ChronosAgent> MakeAgent(int port) {
    agent::AgentOptions options;
    options.control_port = port;
    options.username = "admin";
    options.password = "secret";
    options.deployment_id = deployment_id_;
    options.poll_interval_ms = 20;
    options.heartbeat_interval_ms = 0;
    options.log_flush_interval_ms = 0;
    auto chronos_agent = std::make_unique<agent::ChronosAgent>(options);
    chronos_agent->SetHandler([](agent::JobContext* context) {
      context->SetResultField("throughput", json::Json(1.0));
      return Status::Ok();
    });
    return chronos_agent;
  }

  // Runs an agent against the (crashing) server until the server exits;
  // the agent's own errors are expected and ignored.
  void RunAgentThroughCrash(ServerProcess* server) {
    auto chronos_agent = MakeAgent(server->port());
    chronos_agent->Connect().IgnoreError();
    chronos_agent->StartAsync();
    EXPECT_EQ(server->WaitExit(), 137) << "server did not crash at the seam";
    chronos_agent->Stop();
  }

  // Runs a fresh agent until every job of the evaluation is terminal (the
  // recovery path may first wait out the reconciliation grace lease).
  void RunAgentToCompletion(int port) {
    auto chronos_agent = MakeAgent(port);
    ASSERT_TRUE(chronos_agent->Connect().ok());
    chronos_agent->StartAsync();
    auto client = AdminClient(port);
    bool done = false;
    for (int i = 0; i < 600 && !done; ++i) {
      auto response =
          client->Get("/api/v1/evaluations/" + evaluation_id_);
      if (response.ok() && response->status_code == 200) {
        auto summary = json::Parse(response->body);
        done = summary->at("state_counts").GetIntOr("finished", 0) ==
               total_jobs_;
      }
      if (!done) SystemClock::Get()->SleepMs(50);
    }
    chronos_agent->Stop();
    EXPECT_TRUE(done) << "jobs never all finished after recovery";
  }

  // SIGTERMs the server (graceful drain + final checkpoint) and then audits
  // the database offline: nothing lost, nothing double-applied.
  void ShutdownAndVerify(ServerProcess* server, const std::string& data_dir) {
    server->Signal(SIGTERM);
    EXPECT_EQ(server->WaitExit(), 0);
    // The final checkpoint leaves an empty WAL behind.
    auto wal = file::ReadFile(data_dir + "/wal.log");
    ASSERT_TRUE(wal.ok());
    EXPECT_TRUE(wal->empty());

    auto db = model::MetaDb::Open(data_dir);
    ASSERT_TRUE(db.ok()) << db.status();
    std::vector<model::Job> jobs = (*db)->jobs().All();
    ASSERT_EQ(jobs.size(), static_cast<size_t>(total_jobs_));
    for (const model::Job& job : jobs) {
      EXPECT_EQ(job.state, JobState::kFinished) << job.failure_reason;
      // Exactly one result row — retried uploads must not duplicate it.
      EXPECT_EQ((*db)->results().FindBy("job_id", json::Json(job.id)).size(),
                1u)
          << job.id;
      // The terminal transition was applied exactly once.
      int finished_transitions = 0;
      for (const model::JobEvent& event :
           (*db)->job_events().FindBy("job_id", json::Json(job.id))) {
        if (event.kind == "state" &&
            event.message.find("-> finished") != std::string::npos) {
          ++finished_transitions;
        }
      }
      EXPECT_EQ(finished_transitions, 1) << job.id;
    }
  }

  // One full crash-recovery cycle: boot, build the workload, arm `seam` to
  // crash, drive an agent into the wall, restart on the same data dir,
  // finish the workload, shut down cleanly and audit.
  void RunSeam(const std::string& seam,
               const std::vector<std::string>& extra_flags) {
    TempDir dir("crash-recovery");
    ServerProcess server;
    {
      ServerProcess first;
      first.Start(dir.path(), extra_flags);
      if (HasFatalFailure()) return;
      auto client = AdminClient(first.port());
      SetUpEvaluation(client.get());
      if (HasFatalFailure()) return;
      ArmFailpoint(client.get(), seam);
      if (HasFatalFailure()) return;
      RunAgentThroughCrash(&first);
    }
    server.Start(dir.path(), extra_flags);
    if (HasFatalFailure()) return;
    RunAgentToCompletion(server.port());
    ShutdownAndVerify(&server, dir.path());
  }

  int repetitions_ = 1;
  int total_jobs_ = 2;
  std::string deployment_id_, evaluation_id_;
};

// Crash inside the store commit path, before the WAL append: the claim that
// was being written is simply absent after recovery.
TEST_F(CrashRecoveryTest, KillAtStoreCommitSeam) {
  RunSeam("store.commit", {});
}

// Crash after the claim transition committed but before the agent saw the
// response: the job is durably running with no live agent. Reconciliation
// grants a grace lease and the heartbeat monitor recycles it.
TEST_F(CrashRecoveryTest, KillAfterClaimCommitted) {
  RunSeam("control.claim.committed", {});
}

// Crash between the snapshot rename and the WAL truncate of an
// auto-checkpoint (tiny threshold forces one on the first post-arm write):
// recovery must not re-apply WAL records the snapshot already covers.
TEST_F(CrashRecoveryTest, KillAtCheckpointRenameSeam) {
  RunSeam("store.checkpoint.after_rename",
          {"--checkpoint-wal-bytes", "256"});
}

// SIGTERM is a graceful drain: exit 0, final checkpoint, and the next cold
// start's reconciliation takes the clean-shutdown fast path (zero actions).
TEST_F(CrashRecoveryTest, SigtermDrainsAndColdStartReconcilesNothing) {
  TempDir dir("crash-clean");
  {
    ServerProcess server;
    server.Start(dir.path(), {});
    if (HasFatalFailure()) return;
    auto client = AdminClient(server.port());
    SetUpEvaluation(client.get());
    if (HasFatalFailure()) return;
    RunAgentToCompletion(server.port());
    server.Signal(SIGTERM);
    EXPECT_EQ(server.WaitExit(), 0);
  }
  auto wal = file::ReadFile(dir.path() + "/wal.log");
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->empty());

  ServerProcess restarted;
  restarted.Start(dir.path(), {});
  if (HasFatalFailure()) return;
  net::HttpClient client("127.0.0.1", restarted.port());
  auto response = client.Get("/api/v1/status");
  ASSERT_TRUE(response.ok());
  auto body = json::Parse(response->body);
  ASSERT_TRUE(body.ok());
  const json::Json& reconciliation = body->at("reconciliation");
  EXPECT_TRUE(reconciliation.GetBoolOr("clean_shutdown", false))
      << reconciliation.Dump();
  EXPECT_EQ(reconciliation.GetIntOr("total", -1), 0);
  restarted.Signal(SIGTERM);
  EXPECT_EQ(restarted.WaitExit(), 0);
}

// The drain endpoint reaches the same clean shutdown as SIGTERM: the admin
// posts /admin/drain, dispatch stops, and the process exits 0 on its own.
TEST_F(CrashRecoveryTest, AdminDrainEndpointShutsDownCleanly) {
  TempDir dir("crash-drain");
  ServerProcess server;
  server.Start(dir.path(), {});
  if (HasFatalFailure()) return;
  auto client = AdminClient(server.port());
  auto drained = client->Post("/api/v1/admin/drain", "{}");
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->status_code, 200) << drained->body;
  EXPECT_EQ(server.WaitExit(), 0);
  auto wal = file::ReadFile(dir.path() + "/wal.log");
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->empty());
}

}  // namespace
}  // namespace chronos
