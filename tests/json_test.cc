#include <gtest/gtest.h>

#include "common/random.h"
#include "json/json.h"

namespace chronos::json {
namespace {

// --- Construction / accessors ---

TEST(JsonValueTest, DefaultIsNull) {
  Json v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Type::kNull);
}

TEST(JsonValueTest, ScalarTypes) {
  EXPECT_TRUE(Json(true).is_bool());
  EXPECT_TRUE(Json(42).is_int());
  EXPECT_TRUE(Json(3.5).is_double());
  EXPECT_TRUE(Json("s").is_string());
  EXPECT_TRUE(Json(Array{}).is_array());
  EXPECT_TRUE(Json(Object{}).is_object());
  EXPECT_TRUE(Json(42).is_number());
  EXPECT_TRUE(Json(3.5).is_number());
}

TEST(JsonValueTest, NumericCrossAccess) {
  EXPECT_EQ(Json(42).as_double(), 42.0);
  EXPECT_EQ(Json(42.9).as_int(), 42);
}

TEST(JsonValueTest, ObjectSetAndAt) {
  Json obj = Json::MakeObject();
  obj.Set("a", 1).Set("b", "two");
  EXPECT_TRUE(obj.Has("a"));
  EXPECT_FALSE(obj.Has("c"));
  EXPECT_EQ(obj.at("a").as_int(), 1);
  EXPECT_EQ(obj.at("b").as_string(), "two");
  EXPECT_TRUE(obj.at("missing").is_null());
}

TEST(JsonValueTest, SetOnNullPromotesToObject) {
  Json v;
  v.Set("k", 1);
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.at("k").as_int(), 1);
}

TEST(JsonValueTest, AppendOnNullPromotesToArray) {
  Json v;
  v.Append(1);
  v.Append("x");
  EXPECT_TRUE(v.is_array());
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.at(0).as_int(), 1);
  EXPECT_TRUE(v.at(5).is_null());  // Out of range.
}

TEST(JsonValueTest, CheckedGetters) {
  Json obj = Json::MakeObject();
  obj.Set("s", "str").Set("i", 7).Set("d", 1.5).Set("b", true);
  EXPECT_EQ(*obj.GetString("s"), "str");
  EXPECT_EQ(*obj.GetInt("i"), 7);
  EXPECT_DOUBLE_EQ(*obj.GetDouble("d"), 1.5);
  EXPECT_DOUBLE_EQ(*obj.GetDouble("i"), 7.0);  // Int readable as double.
  EXPECT_TRUE(*obj.GetBool("b"));
  EXPECT_FALSE(obj.GetString("i").ok());
  EXPECT_FALSE(obj.GetInt("missing").ok());
}

TEST(JsonValueTest, GetOrDefaults) {
  Json obj = Json::MakeObject();
  obj.Set("i", 7);
  EXPECT_EQ(obj.GetIntOr("i", -1), 7);
  EXPECT_EQ(obj.GetIntOr("x", -1), -1);
  EXPECT_EQ(obj.GetStringOr("x", "d"), "d");
  EXPECT_TRUE(obj.GetBoolOr("x", true));
  EXPECT_DOUBLE_EQ(obj.GetDoubleOr("x", 2.5), 2.5);
}

// --- Serialization ---

TEST(JsonDumpTest, Scalars) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(-17).Dump(), "-17");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonDumpTest, DoubleShortestRoundTrip) {
  EXPECT_EQ(Json(0.5).Dump(), "0.5");
  EXPECT_EQ(Json(1e100).Dump(), "1e+100");
}

TEST(JsonDumpTest, EscapesControlCharacters) {
  EXPECT_EQ(Json("a\"b\\c\nd\te").Dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json(std::string("\x01", 1)).Dump(), "\"\\u0001\"");
}

TEST(JsonDumpTest, DeterministicKeyOrder) {
  Json obj = Json::MakeObject();
  obj.Set("zebra", 1).Set("alpha", 2);
  EXPECT_EQ(obj.Dump(), "{\"alpha\":2,\"zebra\":1}");
}

TEST(JsonDumpTest, NestedCompact) {
  Json obj = Json::MakeObject();
  Json arr = Json::MakeArray();
  arr.Append(1);
  arr.Append(Json::MakeObject());
  obj.Set("a", std::move(arr));
  EXPECT_EQ(obj.Dump(), "{\"a\":[1,{}]}");
}

TEST(JsonDumpTest, PrettyHasIndentation) {
  Json obj = Json::MakeObject();
  obj.Set("a", 1);
  EXPECT_EQ(obj.DumpPretty(), "{\n  \"a\": 1\n}");
}

// --- Parsing ---

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_TRUE(Parse("true")->as_bool());
  EXPECT_EQ(Parse("-42")->as_int(), -42);
  EXPECT_DOUBLE_EQ(Parse("2.5e3")->as_double(), 2500.0);
  EXPECT_EQ(Parse("\"str\"")->as_string(), "str");
}

TEST(JsonParseTest, IntegerStaysInt) {
  auto v = Parse("9007199254740993");  // 2^53+1, not representable as double.
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_int());
  EXPECT_EQ(v->as_int(), 9007199254740993ll);
}

TEST(JsonParseTest, HugeIntegerFallsBackToDouble) {
  auto v = Parse("123456789012345678901234567890");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_double());
}

TEST(JsonParseTest, WhitespaceTolerant) {
  auto v = Parse(" { \"a\" : [ 1 , 2 ] } ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->at("a").size(), 2u);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = Parse(R"("a\"b\\c\/d\b\f\n\r\t")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\b\f\n\r\t");
}

TEST(JsonParseTest, UnicodeEscapes) {
  EXPECT_EQ(Parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(Parse(R"("é")")->as_string(), "\xc3\xa9");      // é
  EXPECT_EQ(Parse(R"("€")")->as_string(), "\xe2\x82\xac");  // €
  // Surrogate pair: U+1D11E (musical G clef).
  EXPECT_EQ(Parse(R"("𝄞")")->as_string(), "\xf0\x9d\x84\x9e");
}

TEST(JsonParseTest, RejectsMalformed) {
  const char* bad_cases[] = {
      "",           "{",           "}",
      "[1,]",       "{\"a\":}",    "{\"a\" 1}",
      "tru",        "nul",         "01",
      "1.",         "1e",          "+1",
      "\"abc",      "\"\\q\"",     "\"\\u12\"",
      "\"\\ud834\"",               // Unpaired high surrogate.
      "\"\\udd1e\"",               // Unpaired low surrogate.
      "{\"a\":1} x",               // Trailing garbage.
      "[1] [2]",
      "'single'",
      "{\"a\":1,}",
  };
  for (const char* bad : bad_cases) {
    EXPECT_FALSE(Parse(bad).ok()) << "should reject: " << bad;
  }
}

TEST(JsonParseTest, RejectsUnescapedControlChars) {
  EXPECT_FALSE(Parse("\"a\nb\"").ok());
}

TEST(JsonParseTest, DepthLimitEnforced) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Parse(deep).ok());
  std::string ok_depth(100, '[');
  ok_depth += std::string(100, ']');
  EXPECT_TRUE(Parse(ok_depth).ok());
}

TEST(JsonParseTest, DuplicateKeysLastWins) {
  auto v = Parse("{\"a\":1,\"a\":2}");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->at("a").as_int(), 2);
}

// --- Equality ---

TEST(JsonEqualityTest, DeepEquality) {
  auto a = Parse(R"({"x":[1,{"y":true}],"z":null})");
  auto b = Parse(R"({"z":null,"x":[1,{"y":true}]})");
  EXPECT_EQ(*a, *b);
}

TEST(JsonEqualityTest, IntDoubleCrossEquality) {
  EXPECT_EQ(Json(2), Json(2.0));
  EXPECT_NE(Json(2), Json(2.5));
}

TEST(JsonEqualityTest, DifferentTypesUnequal) {
  EXPECT_NE(Json(1), Json("1"));
  EXPECT_NE(Json(), Json(false));
}

// --- Property-style round-trip on randomized documents ---

Json RandomJson(Rng* rng, int depth) {
  int pick = depth >= 4 ? static_cast<int>(rng->NextUint64(5))
                        : static_cast<int>(rng->NextUint64(7));
  switch (pick) {
    case 0:
      return Json();
    case 1:
      return Json(rng->NextBool());
    case 2:
      return Json(static_cast<int64_t>(rng->NextUint64()) / 2);
    case 3:
      return Json(rng->NextDouble() * 1e6 - 5e5);
    case 4: {
      std::string s;
      size_t len = rng->NextUint64(20);
      for (size_t i = 0; i < len; ++i) {
        // Mix ASCII with escapes and multi-byte UTF-8.
        uint64_t c = rng->NextUint64(40);
        if (c < 30) {
          s.push_back(static_cast<char>('a' + c % 26));
        } else if (c < 34) {
          s.push_back('"');
        } else if (c < 37) {
          s.push_back('\n');
        } else {
          s += "\xc3\xa9";
        }
      }
      return Json(std::move(s));
    }
    case 5: {
      Json arr = Json::MakeArray();
      size_t n = rng->NextUint64(5);
      for (size_t i = 0; i < n; ++i) arr.Append(RandomJson(rng, depth + 1));
      return arr;
    }
    default: {
      Json obj = Json::MakeObject();
      size_t n = rng->NextUint64(5);
      for (size_t i = 0; i < n; ++i) {
        obj.Set("k" + std::to_string(rng->NextUint64(100)),
                RandomJson(rng, depth + 1));
      }
      return obj;
    }
  }
}

class JsonRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(JsonRoundTripTest, DumpParseIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Json original = RandomJson(&rng, 0);
    auto reparsed = Parse(original.Dump());
    ASSERT_TRUE(reparsed.ok()) << original.Dump();
    EXPECT_EQ(original, *reparsed) << original.Dump();
    // Pretty form parses back identically too.
    auto pretty = Parse(original.DumpPretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(original, *pretty);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace chronos::json
